#!/usr/bin/env python
"""CI smoke test for the estimation server (stdlib only).

Boots ``python -m repro.serve`` on a free port, then exercises the
serving contract end to end:

1. ``GET /healthz`` answers once the banner is printed;
2. ``POST /estimate`` returns a result document for one configuration;
3. a concurrent duplicate pair reports a coalesced hit on ``/stats``
   (the batch window makes the overlap deterministic in practice, but the
   pair is retried a few times so a pathologically slow runner cannot
   flake the build);
4. ``POST /shutdown`` stops the server, which must exit 0.

Usage::

    python scripts/serve_smoke.py
"""

from __future__ import annotations

import concurrent.futures
import json
import os
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Hard cap on the whole smoke run.  A server that never prints its banner
#: would otherwise park ``readline()`` forever and hang CI until the job
#: timeout; the watchdog kills the process instead, which unblocks every
#: pipe read, and the failure path prints the captured server log.
WATCHDOG_SECONDS = 300

#: Small enough to finish in well under a second, large enough that the
#: request does not complete before its duplicate arrives.
SMOKE_CONFIG = {
    "pattern_family": "gaussian",
    "dtype": "fp16_t",
    "matrix_size": 96,
    "seeds": 2,
    "iterations": 50,
    "sampling": {"output_samples": 32},
}

COALESCE_ATTEMPTS = 3


def post(base: str, path: str, body: dict, timeout: float = 120.0) -> dict:
    request = urllib.request.Request(
        f"{base}{path}",
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def get(base: str, path: str, timeout: float = 30.0) -> dict:
    with urllib.request.urlopen(f"{base}{path}", timeout=timeout) as response:
        return json.loads(response.read())


def _dump_server_log(log_path: Path) -> None:
    try:
        log = log_path.read_text(errors="replace").strip()
    except OSError:
        log = ""
    print("---- captured server log ----", file=sys.stderr)
    print(log or "(empty)", file=sys.stderr)
    print("---- end server log ----", file=sys.stderr)


def main() -> int:
    env = dict(
        os.environ,
        PYTHONPATH=str(REPO_ROOT / "src"),
        PYTHONUNBUFFERED="1",
        # A wide batch window keeps the first request of a concurrent pair
        # in flight long enough that its duplicate always coalesces.
        REPRO_SERVE_BATCH_WINDOW_MS="100",
    )
    log_file = tempfile.NamedTemporaryFile(
        prefix="serve-smoke-", suffix=".log", delete=False
    )
    log_path = Path(log_file.name)
    timed_out = threading.Event()
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=log_file,
        env=env,
        text=True,
    )

    def _watchdog_fire() -> None:
        timed_out.set()
        proc.kill()

    watchdog = threading.Timer(WATCHDOG_SECONDS, _watchdog_fire)
    watchdog.daemon = True
    watchdog.start()
    try:
        assert proc.stdout is not None
        banner_line = proc.stdout.readline()
        if not banner_line:
            reason = (
                f"watchdog killed the server after {WATCHDOG_SECONDS}s"
                if timed_out.is_set()
                else (
                    "server exited (code "
                    f"{proc.wait(timeout=10)}) before printing its banner"
                )
            )
            print(f"error: {reason}", file=sys.stderr)
            _dump_server_log(log_path)
            return 1
        banner = json.loads(banner_line)
        base = banner["listening"]
        print(f"server up at {base} (pid {banner['pid']})")

        deadline = time.monotonic() + 30
        while True:
            try:
                assert get(base, "/healthz") == {"status": "ok"}
                break
            except (urllib.error.URLError, ConnectionError):
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.2)

        single = post(base, "/estimate", SMOKE_CONFIG)
        assert "result" in single and "fingerprint" in single, sorted(single)
        watts = single["result"]["mean_power_watts"]
        print(f"single request OK: {watts:.2f} W, fingerprint {single['fingerprint'][:12]}")

        for attempt in range(1, COALESCE_ATTEMPTS + 1):
            with concurrent.futures.ThreadPoolExecutor(max_workers=2) as pool:
                pair = list(
                    pool.map(lambda _: post(base, "/estimate", SMOKE_CONFIG), range(2))
                )
            assert pair[0] == pair[1], "duplicate responses must be bit-for-bit identical"
            stats = get(base, "/stats")
            coalesced = stats["service"]["coalesced"]
            print(f"attempt {attempt}: coalesced={coalesced}")
            if coalesced >= 1:
                break
        else:
            print("error: no coalesced hit after "
                  f"{COALESCE_ATTEMPTS} duplicate pairs", file=sys.stderr)
            print(json.dumps(stats, indent=2), file=sys.stderr)
            _dump_server_log(log_path)
            return 1
        print("stats:", json.dumps(stats["service"]))

        assert post(base, "/shutdown", {}) == {"status": "stopping"}
        code = proc.wait(timeout=30)
        if code != 0:
            print(f"error: server exited {code} after shutdown", file=sys.stderr)
            _dump_server_log(log_path)
            return 1
        print("clean shutdown OK")
        return 0
    except Exception as exc:  # noqa: BLE001  (any failure must surface the log)
        reason = (
            f"watchdog killed the server after {WATCHDOG_SECONDS}s"
            if timed_out.is_set()
            else f"smoke test failed: {exc!r}"
        )
        print(f"error: {reason}", file=sys.stderr)
        _dump_server_log(log_path)
        return 1
    finally:
        watchdog.cancel()
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
        log_file.close()
        log_path.unlink(missing_ok=True)


if __name__ == "__main__":
    sys.exit(main())
