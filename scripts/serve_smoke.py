#!/usr/bin/env python
"""CI smoke test for the estimation server (stdlib only).

Runs the serving contract end to end, twice:

**Healthy phase** — boots ``python -m repro.serve`` on a free port, then:

1. ``GET /healthz`` answers ``ok`` once the banner is printed;
2. ``POST /estimate`` returns a result document for one configuration
   (plus a few variant configurations recorded for the fault phase);
3. a concurrent duplicate pair reports a coalesced hit on ``/stats``
   (the batch window makes the overlap deterministic in practice, but the
   pair is retried a few times so a pathologically slow runner cannot
   flake the build);
4. ``POST /shutdown`` stops the server, which must exit 0.

**Fault-injected phase** — the same flow under a deterministic
``REPRO_FAULTS`` schedule (a busy sqlite cache write plus killed pool
workers) with a disk cache and the ``processes`` backend.  Two distinct
configurations posted concurrently land in one drained batch, which is
what sends the batch through the process pool (a single pending
configuration deliberately collapses to serial); the killed workers then
force a pool rebuild and the threads fallback.  Every response must be
**bit-for-bit identical** to the healthy phase's, the resilience
counters must be visible on ``/stats``, and ``/healthz`` must flip to
``degraded`` — the resilience layer's whole contract: absorb the fault,
keep the answer, raise a flag.

Usage::

    python scripts/serve_smoke.py
"""

from __future__ import annotations

import concurrent.futures
import json
import os
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Hard cap on one smoke phase.  A server that never prints its banner
#: would otherwise park ``readline()`` forever and hang CI until the job
#: timeout; the watchdog kills the process instead, which unblocks every
#: pipe read, and the failure path prints the captured server log.
WATCHDOG_SECONDS = 300

#: Small enough to finish in well under a second, large enough that the
#: request does not complete before its duplicate arrives.
SMOKE_CONFIG = {
    "pattern_family": "gaussian",
    "dtype": "fp16_t",
    "matrix_size": 96,
    "seeds": 2,
    "iterations": 50,
    "sampling": {"output_samples": 32},
}

COALESCE_ATTEMPTS = 3

#: Concurrent distinct-config pairs tried per phase.  Each attempt uses a
#: fresh pair (cached configs would drain as hits and bypass the pool);
#: one landing in a shared batch is enough for the fault phase.
BATCH_ATTEMPTS = 3

#: The fault-phase schedule: the first sqlite cache write comes back
#: busy (absorbed by retry), and every pool worker dies on its first
#: chunk (pool rebuild, then threads fallback → a degraded /healthz).
FAULT_SCHEDULE = "cache.sqlite.write:busy@1;pool.worker:kill@1"


def _variant(iterations: int) -> dict:
    config = dict(SMOKE_CONFIG)
    config["iterations"] = iterations
    return config


def _pair(attempt: int) -> "list[dict]":
    base = 60 + 2 * attempt
    return [_variant(base), _variant(base + 1)]


def post(base: str, path: str, body: dict, timeout: float = 120.0) -> dict:
    request = urllib.request.Request(
        f"{base}{path}",
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def get(base: str, path: str, timeout: float = 30.0) -> dict:
    with urllib.request.urlopen(f"{base}{path}", timeout=timeout) as response:
        return json.loads(response.read())


def _dump_server_log(log_path: Path) -> None:
    try:
        log = log_path.read_text(errors="replace").strip()
    except OSError:
        log = ""
    print("---- captured server log ----", file=sys.stderr)
    print(log or "(empty)", file=sys.stderr)
    print("---- end server log ----", file=sys.stderr)


class SmokeFailure(Exception):
    """A phase failed; the message is already printed."""


def run_phase(
    phase: str,
    extra_env: "dict[str, str]",
    reference: "dict[str, dict] | None" = None,
) -> "dict[str, dict]":
    """Boot one server, run the smoke flow, return its estimate documents.

    With ``reference`` (the healthy phase's documents), the phase runs
    fault-injected: every response is asserted bit-for-bit identical to
    its healthy counterpart, and the resilience counters and the degraded
    health roll-up must become visible.
    """
    env = dict(
        os.environ,
        PYTHONPATH=str(REPO_ROOT / "src"),
        PYTHONUNBUFFERED="1",
        # A wide batch window keeps the first request of a concurrent pair
        # in flight long enough that its duplicate always coalesces.
        REPRO_SERVE_BATCH_WINDOW_MS="100",
        **extra_env,
    )
    log_file = tempfile.NamedTemporaryFile(
        prefix=f"serve-smoke-{phase}-", suffix=".log", delete=False
    )
    log_path = Path(log_file.name)
    timed_out = threading.Event()
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=log_file,
        env=env,
        text=True,
    )

    def _watchdog_fire() -> None:
        timed_out.set()
        proc.kill()

    watchdog = threading.Timer(WATCHDOG_SECONDS, _watchdog_fire)
    watchdog.daemon = True
    watchdog.start()
    try:
        assert proc.stdout is not None
        banner_line = proc.stdout.readline()
        if not banner_line:
            reason = (
                f"watchdog killed the server after {WATCHDOG_SECONDS}s"
                if timed_out.is_set()
                else (
                    "server exited (code "
                    f"{proc.wait(timeout=10)}) before printing its banner"
                )
            )
            print(f"error [{phase}]: {reason}", file=sys.stderr)
            _dump_server_log(log_path)
            raise SmokeFailure(phase)
        banner = json.loads(banner_line)
        base = banner["listening"]
        print(f"[{phase}] server up at {base} (pid {banner['pid']})")

        deadline = time.monotonic() + 30
        while True:
            try:
                health = get(base, "/healthz")
                assert health == {"status": "ok", "reasons": []}, health
                break
            except (urllib.error.URLError, ConnectionError):
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.2)

        documents: "dict[str, dict]" = {}

        def record(key: str, document: dict) -> dict:
            assert "result" in document and "fingerprint" in document, sorted(document)
            if reference is not None:
                assert document == reference[key], (
                    f"response {key!r} differs from the healthy phase"
                )
            documents[key] = document
            return document

        single = record("single", post(base, "/estimate", SMOKE_CONFIG))
        watts = single["result"]["mean_power_watts"]
        print(
            f"[{phase}] single request OK: {watts:.2f} W, "
            f"fingerprint {single['fingerprint'][:12]}"
        )

        for attempt in range(1, COALESCE_ATTEMPTS + 1):
            with concurrent.futures.ThreadPoolExecutor(max_workers=2) as pool:
                pair = list(
                    pool.map(lambda _: post(base, "/estimate", SMOKE_CONFIG), range(2))
                )
            assert pair[0] == pair[1], "duplicate responses must be bit-for-bit identical"
            assert pair[0] == single, "coalesced responses must match the original"
            stats = get(base, "/stats")
            coalesced = stats["service"]["coalesced"]
            print(f"[{phase}] attempt {attempt}: coalesced={coalesced}")
            if coalesced >= 1:
                break
        else:
            print(
                f"error [{phase}]: no coalesced hit after "
                f"{COALESCE_ATTEMPTS} duplicate pairs",
                file=sys.stderr,
            )
            print(json.dumps(stats, indent=2), file=sys.stderr)
            _dump_server_log(log_path)
            raise SmokeFailure(phase)
        print(f"[{phase}] stats:", json.dumps(stats["service"]))

        # Distinct-config pairs.  Healthy: recorded as the reference.
        # Fault-injected: posted concurrently so one pair lands in a
        # shared batch, which routes through the (sabotaged) process
        # pool; responses must still match the healthy documents.
        for attempt in range(BATCH_ATTEMPTS):
            configs = _pair(attempt)
            if reference is None:
                docs = [post(base, "/estimate", config) for config in configs]
            else:
                with concurrent.futures.ThreadPoolExecutor(max_workers=2) as pool:
                    docs = list(
                        pool.map(lambda cfg: post(base, "/estimate", cfg), configs)
                    )
            for config, doc in zip(configs, docs):
                record(f"pair-{config['iterations']}", doc)
            if reference is not None:
                run = get(base, "/stats")["service"]["run"]
                if run["pool_rebuilds"] >= 1:
                    break
        if reference is not None:
            stats = get(base, "/stats")
            run = stats["service"]["run"]
            if run["pool_rebuilds"] < 1:
                print(
                    f"error [{phase}]: no batch reached the process pool in "
                    f"{BATCH_ATTEMPTS} attempts",
                    file=sys.stderr,
                )
                print(json.dumps(stats, indent=2), file=sys.stderr)
                _dump_server_log(log_path)
                raise SmokeFailure(phase)
            assert run["chunks_resubmitted"] >= 1, run
            assert run["degraded_backend"] == "threads", run
            retries = sum(
                tier.get("resilience", {}).get("retries", 0)
                for tier in stats["caches"].values()
            )
            assert retries >= 1, stats["caches"]
            health = get(base, "/healthz")
            assert health["status"] == "degraded", health
            assert any("threads" in reason for reason in health["reasons"]), health
            print(
                f"[{phase}] absorbed faults: pool_rebuilds={run['pool_rebuilds']} "
                f"chunks_resubmitted={run['chunks_resubmitted']} "
                f"cache_retries={retries}"
            )
            print(f"[{phase}] degraded as expected: {health['reasons']}")

        assert post(base, "/shutdown", {}) == {"status": "stopping"}
        code = proc.wait(timeout=30)
        if code != 0:
            print(f"error [{phase}]: server exited {code} after shutdown", file=sys.stderr)
            _dump_server_log(log_path)
            raise SmokeFailure(phase)
        print(f"[{phase}] clean shutdown OK")
        return documents
    except SmokeFailure:
        raise
    except Exception as exc:  # noqa: BLE001  (any failure must surface the log)
        reason = (
            f"watchdog killed the server after {WATCHDOG_SECONDS}s"
            if timed_out.is_set()
            else f"smoke test failed: {exc!r}"
        )
        print(f"error [{phase}]: {reason}", file=sys.stderr)
        _dump_server_log(log_path)
        raise SmokeFailure(phase) from exc
    finally:
        watchdog.cancel()
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
        log_file.close()
        log_path.unlink(missing_ok=True)


def main() -> int:
    try:
        healthy = run_phase("healthy", {})
        with tempfile.TemporaryDirectory(prefix="serve-smoke-cache-") as cache_dir:
            run_phase(
                "faults",
                {
                    "REPRO_FAULTS": FAULT_SCHEDULE,
                    "REPRO_FAULTS_SEED": "0",
                    "REPRO_CACHE_DIR": cache_dir,
                    "REPRO_SERVE_BACKEND": "processes",
                    "REPRO_SERVE_WORKERS": "2",
                },
                reference=healthy,
            )
    except SmokeFailure:
        return 1
    print("fault-injected responses are bit-for-bit identical to the healthy ones")
    return 0


if __name__ == "__main__":
    sys.exit(main())
