#!/usr/bin/env python
"""CI smoke test for the estimation server (stdlib only).

Boots ``python -m repro.serve`` on a free port, then exercises the
serving contract end to end:

1. ``GET /healthz`` answers once the banner is printed;
2. ``POST /estimate`` returns a result document for one configuration;
3. a concurrent duplicate pair reports a coalesced hit on ``/stats``
   (the batch window makes the overlap deterministic in practice, but the
   pair is retried a few times so a pathologically slow runner cannot
   flake the build);
4. ``POST /shutdown`` stops the server, which must exit 0.

Usage::

    python scripts/serve_smoke.py
"""

from __future__ import annotations

import concurrent.futures
import json
import os
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Small enough to finish in well under a second, large enough that the
#: request does not complete before its duplicate arrives.
SMOKE_CONFIG = {
    "pattern_family": "gaussian",
    "dtype": "fp16_t",
    "matrix_size": 96,
    "seeds": 2,
    "iterations": 50,
    "sampling": {"output_samples": 32},
}

COALESCE_ATTEMPTS = 3


def post(base: str, path: str, body: dict, timeout: float = 120.0) -> dict:
    request = urllib.request.Request(
        f"{base}{path}",
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def get(base: str, path: str, timeout: float = 30.0) -> dict:
    with urllib.request.urlopen(f"{base}{path}", timeout=timeout) as response:
        return json.loads(response.read())


def main() -> int:
    env = dict(
        os.environ,
        PYTHONPATH=str(REPO_ROOT / "src"),
        PYTHONUNBUFFERED="1",
        # A wide batch window keeps the first request of a concurrent pair
        # in flight long enough that its duplicate always coalesces.
        REPRO_SERVE_BATCH_WINDOW_MS="100",
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--port", "0"],
        stdout=subprocess.PIPE,
        env=env,
        text=True,
    )
    try:
        assert proc.stdout is not None
        banner = json.loads(proc.stdout.readline())
        base = banner["listening"]
        print(f"server up at {base} (pid {banner['pid']})")

        deadline = time.monotonic() + 30
        while True:
            try:
                assert get(base, "/healthz") == {"status": "ok"}
                break
            except (urllib.error.URLError, ConnectionError):
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.2)

        single = post(base, "/estimate", SMOKE_CONFIG)
        assert "result" in single and "fingerprint" in single, sorted(single)
        watts = single["result"]["mean_power_watts"]
        print(f"single request OK: {watts:.2f} W, fingerprint {single['fingerprint'][:12]}")

        for attempt in range(1, COALESCE_ATTEMPTS + 1):
            with concurrent.futures.ThreadPoolExecutor(max_workers=2) as pool:
                pair = list(
                    pool.map(lambda _: post(base, "/estimate", SMOKE_CONFIG), range(2))
                )
            assert pair[0] == pair[1], "duplicate responses must be bit-for-bit identical"
            stats = get(base, "/stats")
            coalesced = stats["service"]["coalesced"]
            print(f"attempt {attempt}: coalesced={coalesced}")
            if coalesced >= 1:
                break
        else:
            print("error: no coalesced hit after "
                  f"{COALESCE_ATTEMPTS} duplicate pairs", file=sys.stderr)
            print(json.dumps(stats, indent=2), file=sys.stderr)
            return 1
        print("stats:", json.dumps(stats["service"]))

        assert post(base, "/shutdown", {}) == {"status": "stopping"}
        code = proc.wait(timeout=30)
        if code != 0:
            print(f"error: server exited {code} after shutdown", file=sys.stderr)
            return 1
        print("clean shutdown OK")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


if __name__ == "__main__":
    sys.exit(main())
