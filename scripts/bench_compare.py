#!/usr/bin/env python3
"""Compare two pytest-benchmark JSON files and flag regressions, noise-aware.

Used by CI to diff the current run's tiny-size timings against the previous
successful run's uploaded artifact (or, when none is available, against the
seeded ``benchmarks/BENCH_sweep_backends.json`` baseline).  Regressions are
*warnings*, never failures: CI machines differ in speed, so a timing delta
annotates the run for a human to look at instead of gating the build.

A benchmark "regressed" only when its mean grew by more than the *larger* of

* ``--threshold`` percent of the baseline mean (the floor for benchmarks
  whose measured noise is negligible), and
* ``--zscore`` standard errors of the difference of the two means
  (``sqrt(sb²/rb + sc²/rc)`` from each file's recorded stddev and rounds).

so a noisy benchmark needs a proportionally larger delta before it warns —
the flat-percentage gate used to fire on pure jitter.  Regressions are
reported with the benchmark's *axes* (subsystem / backend / cache
temperature, parsed from its name) so the annotation says which dimension
of the matrix moved.

Usage::

    python scripts/bench_compare.py CURRENT.json BASELINE.json \
        [--threshold 25] [--zscore 3] [--github]

``--github`` emits ``::warning::`` workflow commands so regressions surface
as annotations on the run.  Exit status is always 0 unless the inputs are
unreadable; pass ``--fail-on-regression`` to gate locally.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path
from typing import NamedTuple


class BenchStats(NamedTuple):
    """The subset of pytest-benchmark stats the gate needs."""

    mean: float
    stddev: float
    rounds: int


#: Name-token vocabularies for axis attribution.  A benchmark named
#: ``bench_sweep_cold`` reports as ``subsystem=sweep, temperature=cold``.
AXES = {
    "subsystem": (
        "sweep",
        "kernel",
        "fleet",
        "popcount",
        "optimize",
        "serve",
        "cache",
        "figure",
        "activity",
    ),
    "backend": ("serial", "threads", "processes", "nogil"),
    "temperature": ("cold", "warm"),
}


def load_stats(path: Path) -> "dict[str, BenchStats]":
    """Map benchmark name -> (mean, stddev, rounds) from a pytest-benchmark JSON."""
    data = json.loads(path.read_text())
    stats: "dict[str, BenchStats]" = {}
    for bench in data.get("benchmarks", []):
        name = bench.get("name")
        entry = bench.get("stats", {})
        mean = entry.get("mean")
        if not name or not isinstance(mean, (int, float)) or mean <= 0:
            continue
        stddev = entry.get("stddev")
        rounds = entry.get("rounds")
        stats[name] = BenchStats(
            mean=float(mean),
            stddev=float(stddev) if isinstance(stddev, (int, float)) and stddev > 0 else 0.0,
            rounds=int(rounds) if isinstance(rounds, int) and rounds > 0 else 1,
        )
    return stats


def axes_of(name: str) -> str:
    """Attribute a benchmark name to the matrix axes its tokens match."""
    tokens = set(name.lower().replace("-", "_").split("_"))
    parts = []
    for axis, vocabulary in AXES.items():
        hits = [token for token in vocabulary if token in tokens]
        if hits:
            parts.append(f"{axis}={'/'.join(hits)}")
    return ", ".join(parts) if parts else "axis=unclassified"


def noise_threshold(base: BenchStats, cur: BenchStats, pct: float, zscore: float) -> float:
    """Allowed mean growth in seconds: the percent floor or the noise band."""
    floor = base.mean * pct / 100.0
    sem_delta = math.sqrt(
        base.stddev**2 / base.rounds + cur.stddev**2 / cur.rounds
    )
    return max(floor, zscore * sem_delta)


def compare(
    current: "dict[str, BenchStats]",
    baseline: "dict[str, BenchStats]",
    threshold_pct: float,
    zscore: float,
) -> "tuple[list[tuple[str, BenchStats, BenchStats, float, float]], list[str]]":
    """Pair up benchmarks; return (rows, regressed names).

    Each row is ``(name, baseline, current, delta_pct, allowed_pct)`` for
    benchmarks present in both files; benchmarks only on one side are
    reported but cannot regress.
    """
    rows = []
    regressed = []
    for name in sorted(set(current) & set(baseline)):
        base, cur = baseline[name], current[name]
        delta_pct = (cur.mean / base.mean - 1.0) * 100.0
        allowed = noise_threshold(base, cur, threshold_pct, zscore)
        allowed_pct = allowed / base.mean * 100.0
        rows.append((name, base, cur, delta_pct, allowed_pct))
        if cur.mean - base.mean > allowed:
            regressed.append(name)
    return rows, regressed


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", type=Path, help="this run's benchmark JSON")
    parser.add_argument("baseline", type=Path, help="previous/baseline benchmark JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=25.0,
        help="minimum percent growth to warn about (floor under the noise band)",
    )
    parser.add_argument(
        "--zscore",
        type=float,
        default=3.0,
        help="standard errors of the mean-difference the noise band allows",
    )
    parser.add_argument(
        "--github",
        action="store_true",
        help="emit ::warning:: workflow commands for regressions",
    )
    parser.add_argument(
        "--fail-on-regression",
        action="store_true",
        help="exit non-zero when any benchmark regressed (off in CI: warn only)",
    )
    args = parser.parse_args(argv)

    try:
        current = load_stats(args.current)
        baseline = load_stats(args.baseline)
    except (OSError, ValueError) as exc:
        print(f"bench-compare: cannot read inputs: {exc}", file=sys.stderr)
        return 2
    if not current or not baseline:
        print("bench-compare: nothing to compare (empty benchmark set)")
        return 0

    rows, regressed = compare(current, baseline, args.threshold, args.zscore)
    width = max((len(name) for name, *_ in rows), default=10)
    print(
        f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  "
        f"{'delta':>8}  {'allowed':>8}"
    )
    for name, base, cur, delta, allowed_pct in rows:
        marker = "  <-- regression" if name in regressed else ""
        print(
            f"{name:<{width}}  {base.mean * 1e3:>10.3f}ms  {cur.mean * 1e3:>10.3f}ms  "
            f"{delta:>+7.1f}%  {allowed_pct:>7.1f}%{marker}"
        )
    only_current = sorted(set(current) - set(baseline))
    if only_current:
        print(f"new benchmarks (no baseline): {', '.join(only_current)}")
    only_baseline = sorted(set(baseline) - set(current))
    if only_baseline:
        print(f"dropped benchmarks (baseline only): {', '.join(only_baseline)}")

    if regressed:
        failing_axes = "; ".join(f"{name} [{axes_of(name)}]" for name in regressed)
        summary = (
            f"{len(regressed)} benchmark(s) regressed beyond the noise band "
            f"(threshold {args.threshold:g}%, z={args.zscore:g}): {failing_axes}"
        )
        if args.github:
            print(f"::warning title=Benchmark regression::{summary}")
        else:
            print(f"WARNING: {summary}")
        if args.fail_on_regression:
            return 1
    else:
        print(
            f"no regressions beyond the noise band "
            f"(threshold {args.threshold:g}%, z={args.zscore:g})"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
