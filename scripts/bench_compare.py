#!/usr/bin/env python3
"""Compare two pytest-benchmark JSON files and flag regressions.

Used by CI to diff the current run's tiny-size timings against the previous
successful run's uploaded artifact (or, when none is available, against the
seeded ``benchmarks/BENCH_sweep_backends.json`` baseline).  Regressions are
*warnings*, never failures: CI machines differ in speed, so a timing delta
annotates the run for a human to look at instead of gating the build.

Usage::

    python scripts/bench_compare.py CURRENT.json BASELINE.json \
        [--threshold 25] [--github]

``--github`` emits ``::warning::`` workflow commands so regressions surface
as annotations on the run.  Exit status is always 0 unless the inputs are
unreadable; pass ``--fail-on-regression`` to gate locally.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_means(path: Path) -> dict[str, float]:
    """Map benchmark name -> mean seconds from a pytest-benchmark JSON."""
    data = json.loads(path.read_text())
    means: dict[str, float] = {}
    for bench in data.get("benchmarks", []):
        name = bench.get("name")
        mean = bench.get("stats", {}).get("mean")
        if name and isinstance(mean, (int, float)) and mean > 0:
            means[name] = float(mean)
    return means


def compare(
    current: dict[str, float], baseline: dict[str, float], threshold_pct: float
) -> "tuple[list[tuple[str, float, float, float]], list[str]]":
    """Pair up benchmarks; return (rows, regressed names).

    Each row is ``(name, baseline_mean, current_mean, delta_pct)`` for
    benchmarks present in both files; benchmarks only on one side are
    reported but cannot regress.
    """
    rows = []
    regressed = []
    for name in sorted(set(current) & set(baseline)):
        base, cur = baseline[name], current[name]
        delta_pct = (cur / base - 1.0) * 100.0
        rows.append((name, base, cur, delta_pct))
        if delta_pct > threshold_pct:
            regressed.append(name)
    return rows, regressed


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", type=Path, help="this run's benchmark JSON")
    parser.add_argument("baseline", type=Path, help="previous/baseline benchmark JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=25.0,
        help="warn when a benchmark's mean grew by more than this percent",
    )
    parser.add_argument(
        "--github",
        action="store_true",
        help="emit ::warning:: workflow commands for regressions",
    )
    parser.add_argument(
        "--fail-on-regression",
        action="store_true",
        help="exit non-zero when any benchmark regressed (off in CI: warn only)",
    )
    args = parser.parse_args(argv)

    try:
        current = load_means(args.current)
        baseline = load_means(args.baseline)
    except (OSError, ValueError) as exc:
        print(f"bench-compare: cannot read inputs: {exc}", file=sys.stderr)
        return 2
    if not current or not baseline:
        print("bench-compare: nothing to compare (empty benchmark set)")
        return 0

    rows, regressed = compare(current, baseline, args.threshold)
    width = max((len(name) for name, *_ in rows), default=10)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  {'delta':>8}")
    for name, base, cur, delta in rows:
        marker = "  <-- regression" if delta > args.threshold else ""
        print(
            f"{name:<{width}}  {base * 1e3:>10.3f}ms  {cur * 1e3:>10.3f}ms  "
            f"{delta:>+7.1f}%{marker}"
        )
    only_current = sorted(set(current) - set(baseline))
    if only_current:
        print(f"new benchmarks (no baseline): {', '.join(only_current)}")
    only_baseline = sorted(set(baseline) - set(current))
    if only_baseline:
        print(f"dropped benchmarks (baseline only): {', '.join(only_baseline)}")

    if regressed:
        summary = (
            f"{len(regressed)} benchmark(s) regressed by more than "
            f"{args.threshold:g}% vs baseline: {', '.join(regressed)}"
        )
        if args.github:
            print(f"::warning title=Benchmark regression::{summary}")
        else:
            print(f"WARNING: {summary}")
        if args.fail_on_regression:
            return 1
    else:
        print(f"no regressions above {args.threshold:g}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
