"""Load ``repro.staticcheck``'s stdlib-only modules on a bare interpreter.

The docs and lint CI jobs install nothing, and ``import repro`` executes
``repro/__init__.py``, which imports numpy — so the repo scripts cannot
simply ``from repro.staticcheck import walker``.  Instead this helper
registers *stub* package objects for ``repro`` and ``repro.staticcheck``
in ``sys.modules`` whose ``__path__`` points at the real source
directories, then imports the requested submodule through the normal
machinery.  Intra-package imports between the stdlib-only modules
(``envscan`` importing ``walker``) resolve through the stubs too, and the
package ``__init__`` files are never executed.

Only :mod:`repro.staticcheck.walker` and :mod:`repro.staticcheck.envscan`
are safe to load this way — they are the modules contractually kept free
of third-party and intra-``repro`` imports.  If the real ``repro`` package
is already imported (e.g. a test process with the package installed), the
stubs are skipped and the genuine package serves the import.
"""

from __future__ import annotations

import importlib
import sys
import types
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Modules this loader is allowed to serve; everything else in the package
#: may import numpy-adjacent code and must go through a real install.
_STDLIB_ONLY = ("walker", "envscan")

_PACKAGE_DIRS = {
    "repro": REPO_ROOT / "src" / "repro",
    "repro.staticcheck": REPO_ROOT / "src" / "repro" / "staticcheck",
}


def load(name: str) -> types.ModuleType:
    """Import ``repro.staticcheck.<name>`` without running ``repro/__init__``."""
    if name not in _STDLIB_ONLY:
        raise ValueError(
            f"refusing to side-load repro.staticcheck.{name}: only "
            f"{', '.join(_STDLIB_ONLY)} are stdlib-only"
        )
    full = f"repro.staticcheck.{name}"
    if full in sys.modules:
        return sys.modules[full]
    for package, directory in _PACKAGE_DIRS.items():
        if package not in sys.modules:
            stub = types.ModuleType(package)
            stub.__path__ = [str(directory)]
            sys.modules[package] = stub
    return importlib.import_module(full)
