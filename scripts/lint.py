#!/usr/bin/env python
"""Lint gate with an offline fallback.

Runs ``ruff check .`` (the configuration lives in ``pyproject.toml``) when
ruff is installed — this is what CI enforces.  In environments without ruff
(e.g. air-gapped containers) it falls back to a minimal built-in pass that
still catches the highest-value problems: syntax errors (via compilation)
and unused imports.

Usage:  python scripts/lint.py [paths...]
"""

from __future__ import annotations

import ast
import re
import shutil
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_PATHS = ["src", "tests", "benchmarks", "examples", "scripts"]
_IDENTIFIER = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def run_ruff(paths: list[str]) -> int:
    return subprocess.call(["ruff", "check", *paths], cwd=REPO_ROOT)


def _used_names(tree: ast.AST) -> set[str]:
    """Names referenced anywhere, including inside string annotations/docs.

    String constants are scanned for identifier tokens so imports used only
    in quoted annotations (``"Sequence[int] | None"``) do not come back as
    false positives; this errs on the permissive side, which is the right
    bias for a fallback linter.
    """
    used: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            used.add(node.attr)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            used.update(_IDENTIFIER.findall(node.value))
    return used


def _imported_bindings(tree: ast.AST) -> list[tuple[str, str, int]]:
    """(bound name, display name, line) for every module-or-function import."""
    bindings = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                bindings.append((bound, alias.name, node.lineno))
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                bindings.append((bound, alias.name, node.lineno))
    return bindings


def check_file(path: Path) -> list[str]:
    source = path.read_text()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return [f"{path}:{error.lineno}: syntax error: {error.msg}"]
    used = _used_names(tree)
    problems = []
    for bound, display, lineno in _imported_bindings(tree):
        if bound.startswith("_") or bound == "annotations":
            continue
        if bound not in used:
            problems.append(f"{path}:{lineno}: unused import: {display}")
    return problems


def run_fallback(paths: list[str]) -> int:
    print("ruff not found; running built-in fallback (syntax + unused imports)")
    problems: list[str] = []
    for root in paths:
        target = REPO_ROOT / root
        if target.is_file():
            files = [target]
        else:
            files = sorted(target.rglob("*.py"))
        for file in files:
            problems.extend(check_file(file))
    for problem in problems:
        print(problem)
    print(f"fallback lint: {len(problems)} problem(s)")
    return 1 if problems else 0


def main() -> int:
    paths = sys.argv[1:] or DEFAULT_PATHS
    if shutil.which("ruff"):
        return run_ruff(paths)
    return run_fallback(paths)


if __name__ == "__main__":
    raise SystemExit(main())
