#!/usr/bin/env python
"""Lint gate with an offline fallback.

Runs ``ruff check .`` (the configuration lives in ``pyproject.toml``) when
ruff is installed — this is what CI enforces.  In environments without ruff
(e.g. air-gapped containers) it falls back to a minimal built-in pass that
still catches the highest-value problems: syntax errors (via compilation)
and unused imports.  The AST plumbing for the fallback is shared with
``python -m repro.staticcheck`` (see :mod:`repro.staticcheck.walker`),
side-loaded so the script still runs on a bare interpreter.

Usage:  python scripts/lint.py [paths...]
"""

from __future__ import annotations

import shutil
import subprocess
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import _staticcheck_bootstrap  # noqa: E402

walker = _staticcheck_bootstrap.load("walker")

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_PATHS = ["src", "tests", "benchmarks", "examples", "scripts"]


def run_ruff(paths: list[str]) -> int:
    return subprocess.call(["ruff", "check", *paths], cwd=REPO_ROOT)


def check_file(path: Path) -> list[str]:
    source = path.read_text()
    try:
        tree = walker.parse_source(source, filename=str(path))
    except SyntaxError as error:
        return [f"{path}:{error.lineno}: syntax error: {error.msg}"]
    used = walker.used_names(tree)
    problems = []
    for bound, display, lineno in walker.imported_bindings(tree):
        if bound.startswith("_") or bound == "annotations":
            continue
        if bound not in used:
            problems.append(f"{path}:{lineno}: unused import: {display}")
    return problems


def run_fallback(paths: list[str]) -> int:
    print("ruff not found; running built-in fallback (syntax + unused imports)")
    problems: list[str] = []
    for file in walker.iter_python_files(REPO_ROOT, paths):
        problems.extend(check_file(file))
    for problem in problems:
        print(problem)
    print(f"fallback lint: {len(problems)} problem(s)")
    return 1 if problems else 0


def main() -> int:
    paths = sys.argv[1:] or DEFAULT_PATHS
    if shutil.which("ruff"):
        return run_ruff(paths)
    return run_fallback(paths)


if __name__ == "__main__":
    raise SystemExit(main())
