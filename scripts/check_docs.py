#!/usr/bin/env python
"""Documentation consistency checks (stdlib only; run by CI's docs job).

Two checks, either of which fails the build:

1. **Link resolution** — every intra-repo Markdown link in ``README.md``
   and ``docs/**/*.md`` must point at a file or directory that exists.
   External links (``http(s)://``, ``mailto:``) and pure in-page anchors
   (``#...``) are ignored; a link's ``#fragment`` suffix is stripped
   before the filesystem check.

2. **Environment-variable sync** — ``docs/configuration.md`` claims to be
   the authoritative table of every ``REPRO_*`` knob.  This check greps
   ``src/**/*.py`` and ``benchmarks/**/*.py`` for ``REPRO_[A-Z_]+`` names
   and fails if any is missing from the configuration page (undocumented
   knob) or documented there without appearing in the code (stale doc).

Usage::

    python scripts/check_docs.py [--root REPO_ROOT]
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

#: Markdown inline link: ``[text](target)``.  Targets with spaces are not
#: used in this repo, which keeps the pattern simple.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Environment-variable names (digits allowed, e.g. a hypothetical
#: ``REPRO_TIER2_CACHE``); the trailing guard strips regex/prose artifacts
#: like a dangling underscore.
ENV_RE = re.compile(r"REPRO_[A-Z0-9][A-Z0-9_]*[A-Z0-9]")

#: Markdown files whose links are checked.
LINKED_DOCS = ("README.md", "docs")

#: Where env vars must be documented.
CONFIG_DOC = Path("docs") / "configuration.md"

#: Code trees whose REPRO_* references must be documented.
CODE_TREES = ("src", "benchmarks")


def _markdown_files(root: Path) -> list[Path]:
    files: list[Path] = []
    for entry in LINKED_DOCS:
        path = root / entry
        if path.is_file():
            files.append(path)
        elif path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
    return files


def check_links(root: Path) -> list[str]:
    problems: list[str] = []
    for md_file in _markdown_files(root):
        text = md_file.read_text(encoding="utf-8")
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = (md_file.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                problems.append(
                    f"{md_file.relative_to(root)}: broken link -> {target}"
                )
    return problems


def check_env_sync(root: Path) -> list[str]:
    problems: list[str] = []
    config_doc = root / CONFIG_DOC
    if not config_doc.is_file():
        return [f"missing {CONFIG_DOC} (the authoritative env-var reference)"]
    documented = set(ENV_RE.findall(config_doc.read_text(encoding="utf-8")))

    in_code: set[str] = set()
    for tree in CODE_TREES:
        for py_file in sorted((root / tree).rglob("*.py")):
            in_code |= set(ENV_RE.findall(py_file.read_text(encoding="utf-8")))

    for name in sorted(in_code - documented):
        problems.append(
            f"undocumented environment variable: {name} "
            f"(used in code, absent from {CONFIG_DOC})"
        )
    for name in sorted(documented - in_code):
        problems.append(
            f"stale documentation: {name} is listed in {CONFIG_DOC} "
            "but appears nowhere under " + " or ".join(CODE_TREES)
        )
    return problems


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repository root (default: the checkout containing this script)",
    )
    args = parser.parse_args(argv)
    root = args.root.resolve()

    problems = check_links(root) + check_env_sync(root)
    for problem in problems:
        print(f"error: {problem}", file=sys.stderr)
    if problems:
        print(f"{len(problems)} documentation problem(s)", file=sys.stderr)
        return 1
    md_count = len(_markdown_files(root))
    print(f"docs OK: {md_count} markdown files checked, env-var table in sync")
    return 0


if __name__ == "__main__":
    sys.exit(main())
