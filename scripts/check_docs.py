#!/usr/bin/env python
"""Documentation consistency checks (stdlib only; run by CI's docs job).

Three checks, any of which fails the build:

1. **Link resolution** — every intra-repo Markdown link in ``README.md``
   and ``docs/**/*.md`` must point at a file or directory that exists.
   External links (``http(s)://``, ``mailto:``) and pure in-page anchors
   (``#...``) are ignored; a link's ``#fragment`` suffix is stripped
   before the filesystem check.

2. **Environment-variable sync** — ``docs/configuration.md`` claims to be
   the authoritative table of every ``REPRO_*`` knob.  This check scans
   ``src/**/*.py`` and ``benchmarks/**/*.py`` for ``REPRO_[A-Z_]+`` names
   and fails if any is missing from the configuration page (undocumented
   knob) or documented there without appearing in the code (stale doc).

3. **Default-value sync** — for knobs whose read site spells the fallback
   as a literal (``environ.get("REPRO_X", "quick")``,
   ``_env_int("REPRO_X", 64)``, or an UPPER_CASE constant assigned a
   literal in the same file), the *Default* cell of the configuration
   table must carry the same value in backticks.  Knobs with sentinel
   fallbacks (empty string) or prose defaults (``unset``, ``calibrated``)
   are exempt — there is nothing mechanical to compare.

The name and default extraction is shared with the ``env-registry`` pass
of ``python -m repro.staticcheck`` (see
:mod:`repro.staticcheck.envscan`); this script side-loads the stdlib-only
modules so it still runs on a bare interpreter.

Usage::

    python scripts/check_docs.py [--root REPO_ROOT]
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import _staticcheck_bootstrap  # noqa: E402

envscan = _staticcheck_bootstrap.load("envscan")
walker = _staticcheck_bootstrap.load("walker")

#: Markdown inline link: ``[text](target)``.  Targets with spaces are not
#: used in this repo, which keeps the pattern simple.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Environment-variable names; see envscan.ENV_NAME_RE for the shape
#: rationale (digit support, wildcard-prose lookahead).
ENV_RE = envscan.ENV_NAME_RE

#: Markdown files whose links are checked.
LINKED_DOCS = ("README.md", "docs")

#: Where env vars must be documented.
CONFIG_DOC = Path("docs") / "configuration.md"

#: Code trees whose REPRO_* references must be documented.
CODE_TREES = ("src", "benchmarks")


def _markdown_files(root: Path) -> list[Path]:
    files: list[Path] = []
    for entry in LINKED_DOCS:
        path = root / entry
        if path.is_file():
            files.append(path)
        elif path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
    return files


def check_links(root: Path) -> list[str]:
    problems: list[str] = []
    for md_file in _markdown_files(root):
        text = md_file.read_text(encoding="utf-8")
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = (md_file.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                problems.append(
                    f"{md_file.relative_to(root)}: broken link -> {target}"
                )
    return problems


def check_env_sync(root: Path) -> list[str]:
    problems: list[str] = []
    config_doc = root / CONFIG_DOC
    if not config_doc.is_file():
        return [f"missing {CONFIG_DOC} (the authoritative env-var reference)"]
    documented = envscan.env_names_in_text(config_doc.read_text(encoding="utf-8"))

    in_code: set[str] = set()
    for py_file in walker.iter_python_files(root, CODE_TREES):
        in_code |= envscan.env_names_in_text(py_file.read_text(encoding="utf-8"))

    for name in sorted(in_code - documented):
        problems.append(
            f"undocumented environment variable: {name} "
            f"(used in code, absent from {CONFIG_DOC})"
        )
    for name in sorted(documented - in_code):
        problems.append(
            f"stale documentation: {name} is listed in {CONFIG_DOC} "
            "but appears nowhere under " + " or ".join(CODE_TREES)
        )
    return problems


#: A table row of the configuration page: ``| `REPRO_X` | <default> | ...``.
DOC_ROW_RE = re.compile(r"^\|\s*`(REPRO_[A-Z0-9_]+)`\s*\|\s*([^|]*)\|")

#: A Default cell that is one backticked literal (anything else is prose).
DOC_LITERAL_RE = re.compile(r"^`([^`]+)`$")


def _code_defaults(root: Path) -> "dict[str, set[str]]":
    """Env-var name -> literal fallback values found at read sites."""
    defaults: "dict[str, set[str]]" = {}
    for py_file in walker.iter_python_files(root, CODE_TREES):
        try:
            tree = walker.parse_source(
                py_file.read_text(encoding="utf-8"), filename=str(py_file)
            )
        except SyntaxError:
            continue  # lint's job, not the doc gate's
        for name, values in envscan.env_default_literals(tree).items():
            defaults.setdefault(name, set()).update(values)
    return defaults


def check_env_defaults(root: Path) -> list[str]:
    problems: list[str] = []
    config_doc = root / CONFIG_DOC
    if not config_doc.is_file():
        return []  # check_env_sync already reports the missing page
    documented: "dict[str, str]" = {}
    for line in config_doc.read_text(encoding="utf-8").splitlines():
        row = DOC_ROW_RE.match(line)
        if row is None:
            continue
        literal = DOC_LITERAL_RE.match(row.group(2).strip())
        if literal is not None:
            documented[row.group(1)] = literal.group(1)

    code = _code_defaults(root)
    for name, values in sorted(code.items()):
        if len(values) > 1:
            problems.append(
                f"inconsistent defaults in code for {name}: "
                + ", ".join(sorted(values))
            )
            continue
        (value,) = values
        doc_value = documented.get(name)
        if doc_value is None:
            if name in config_doc.read_text(encoding="utf-8"):
                problems.append(
                    f"default mismatch for {name}: code falls back to "
                    f"`{value}` but the Default cell in {CONFIG_DOC} is not "
                    f"the literal `{value}`"
                )
            continue
        if doc_value != value:
            problems.append(
                f"default mismatch for {name}: code falls back to `{value}` "
                f"but {CONFIG_DOC} documents `{doc_value}`"
            )
    return problems


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repository root (default: the checkout containing this script)",
    )
    args = parser.parse_args(argv)
    root = args.root.resolve()

    problems = check_links(root) + check_env_sync(root) + check_env_defaults(root)
    for problem in problems:
        print(f"error: {problem}", file=sys.stderr)
    if problems:
        print(f"{len(problems)} documentation problem(s)", file=sys.stderr)
        return 1
    md_count = len(_markdown_files(root))
    print(
        f"docs OK: {md_count} markdown files checked, "
        "env-var table and defaults in sync"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
