#!/usr/bin/env python
"""Cached sweeps: warm reruns of a figure-style sweep cost (almost) nothing.

Every experiment configuration is deterministic, so its result is cached
under a content-addressed fingerprint (config + code version).  This script
runs the paper's sparsity sweep twice against one cache — cold, then warm —
and prints the timing plus the cache/run statistics.  It also shows the
deduplication the sweep runner applies when a config list repeats points,
and the per-seed *activity* cache tier: a cross-GPU sweep (fig7-style)
estimates the expensive bit-level activity once per seed, because the
estimate depends on the workload, not the device.

Run with:  python examples/cached_sweep.py
"""

from __future__ import annotations

import time

import repro
from repro.cache import ActivityCache, ExperimentCache
from repro.experiments.sweep import RunStats, run_configs, run_sweep

MATRIX_SIZE = 512
SPARSITIES = [0.0, 0.25, 0.5, 0.75, 1.0]


def main() -> None:
    base = repro.ExperimentConfig(
        pattern_family="sparsity",
        dtype="fp16_t",
        gpu="a100",
        matrix_size=MATRIX_SIZE,
        seeds=2,
    )
    cache = ExperimentCache(max_entries=64)

    print(f"Sparsity sweep, {MATRIX_SIZE}x{MATRIX_SIZE} FP16-T GEMM on a simulated A100")
    print(f"{len(SPARSITIES)} sweep points x {base.seeds} seeds\n")

    def timed_sweep(tag: str) -> None:
        stats = RunStats()
        started = time.perf_counter()
        sweep = run_sweep(
            base,
            "sparsity",
            SPARSITIES,
            cache=cache,
            stats=stats,
            progress=lambda done, total, label: print(f"  [{done}/{total}] {label}"),
        )
        elapsed = time.perf_counter() - started
        print(
            f"{tag}: {elapsed:.3f}s — computed {stats.executed}, "
            f"served {stats.cache_hits} from cache"
        )
        low, high = min(sweep.powers()), max(sweep.powers())
        print(f"  power range: {low:.1f} W (all-zero) .. {high:.1f} W (dense)\n")

    timed_sweep("cold run")
    timed_sweep("warm run")

    print("cache stats:", cache.stats.as_dict())
    print(
        "\nThe warm run re-used every point: repeated figure/benchmark runs "
        "only pay for configurations they have never measured before."
    )

    # ---- the activity tier: cross-GPU sweeps share per-seed estimates ----

    gpus = ["v100", "a100", "h100"]
    activity_cache = ActivityCache()
    configs = [base.with_overrides(gpu=gpu) for gpu in gpus]

    print(f"\nCross-GPU run ({', '.join(gpus)}) with a shared activity cache:")
    started = time.perf_counter()
    results = run_configs(configs, cache=None, activity_cache=activity_cache)
    elapsed = time.perf_counter() - started
    print(f"  {elapsed:.3f}s for {len(results)} devices x {base.seeds} seeds")
    print(f"  activity estimations: {activity_cache.stats.misses} "
          f"(once per seed), served from cache: {activity_cache.stats.hits}")
    for gpu, result in zip(gpus, results):
        print(f"  {gpu:<8} {result.mean_power_watts:7.1f} W")
    print(
        "\nOnly the first device estimated switching activity; the others "
        "re-used its per-seed reports and just re-ran the power model."
    )


if __name__ == "__main__":
    main()
