#!/usr/bin/env python
"""Power-aware sparsity design: trading approximation error for watts.

The paper's §V proposes sparsity designs that optimize power alongside the
usual performance/accuracy/memory trade-offs.  This example prunes a weight
matrix at several sparsity levels — both unstructured magnitude pruning and
the hardware-friendly 2:4 structured pattern — and reports the predicted
GEMM power next to the introduced approximation error, plus the interaction
with sorting that produces the paper's counter-intuitive T13 result.

Run with:  python examples/power_aware_sparsity.py
"""

from __future__ import annotations

import numpy as np

from repro.optimize.estimation import quick_power_estimate
from repro.optimize.sparsity_design import design_sparsity
from repro.patterns.placement import sort_rows
from repro.util.rng import derive_rng
from repro.util.tables import format_series_chart, format_table

SIZE = 1024
GPU = "a100"
DTYPE = "fp16_t"


def main() -> None:
    rng = derive_rng(7, "sparsity_example")
    activations = rng.normal(0.0, 1.0, size=(SIZE, SIZE))
    weights = rng.normal(0.0, 0.02, size=(SIZE, SIZE))

    baseline = quick_power_estimate(activations, weights, dtype=DTYPE, gpu=GPU)
    print(f"Baseline dense GEMM on simulated {GPU.upper()}: {baseline.power_watts:.1f} W\n")

    rows = []
    for sparsity in (0.25, 0.5, 0.75, 0.9):
        design = design_sparsity(activations, weights, sparsity=sparsity, dtype=DTYPE, gpu=GPU)
        rows.append(
            ["unstructured", f"{sparsity:.0%}", design.pruned.power_watts,
             design.power_reduction_watts, design.relative_error]
        )
    structured = design_sparsity(activations, weights, sparsity=0.5, structured=(2, 4), dtype=DTYPE, gpu=GPU)
    rows.append(
        ["2:4 structured", "50%", structured.pruned.power_watts,
         structured.power_reduction_watts, structured.relative_error]
    )
    print(
        format_table(
            ["pattern", "sparsity", "power_W", "saved_W", "relative_error"],
            rows,
            precision=3,
            title="Power vs. approximation error for pruned weights (T12)",
        )
    )

    # The T13 interaction: random zeros injected into *sorted* weights first
    # increase power before the zeros dominate.
    sorted_weights = sort_rows(weights, 1.0)
    sparsities = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 1.0]
    powers = []
    for sparsity in sparsities:
        mask = rng.random(sorted_weights.shape) >= sparsity
        pruned = np.where(mask, sorted_weights, 0.0)
        powers.append(quick_power_estimate(activations, pruned, dtype=DTYPE, gpu=GPU).power_watts)
    print()
    print(
        format_series_chart(
            sparsities,
            {"power_W": powers},
            title="Sparsity applied to SORTED weights (T13): power peaks at moderate sparsity",
        )
    )
    peak = sparsities[int(np.argmax(powers))]
    print(
        f"\nPower peaks at ~{peak:.0%} sparsity ({max(powers):.1f} W) before falling to "
        f"{powers[-1]:.1f} W when fully sparse — sorting and sparsity do not compound."
    )


if __name__ == "__main__":
    main()
