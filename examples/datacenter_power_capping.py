#!/usr/bin/env python
"""Datacenter power capping with input-aware scheduling and data pruning.

Two of the paper's motivating applications combined:

1. **Power-aware scheduling** — a fleet of simulated GPUs runs a mix of GEMM
   jobs whose power draw is predicted per-job from their input data; the
   scheduler packs jobs into time slots without exceeding the provisioned
   fleet power budget.
2. **Data pruning for power capping** — when a single job must fit under a
   device-level cap, the smallest magnitude-pruning sparsity that satisfies
   the cap is found with the power model, instead of sacrificing clock
   frequency.

The simulated NVML facade plays the role of the datacenter telemetry that
would verify the cap in production.

Run with:  python examples/datacenter_power_capping.py
"""

from __future__ import annotations

from repro.gpu.device import Device
from repro.optimize.power_capping import find_sparsity_for_cap
from repro.optimize.scheduler import FleetScheduler, GemmJob
from repro.patterns.library import build_pattern
from repro.telemetry.nvml import SimulatedNVML
from repro.util.rng import derive_rng
from repro.util.tables import format_table

SIZE = 768
DTYPE = "fp16_t"
FLEET = ["a100", "a100", "h100"]
FLEET_BUDGET_WATTS = 600.0
DEVICE_CAP_WATTS = 0.0  # filled in below relative to the job's baseline


def make_job(name: str, family: str, **params) -> GemmJob:
    pattern = build_pattern(family, DTYPE, **params)
    rng_a = derive_rng(31, name, "A")
    rng_b = derive_rng(31, name, "B")
    activations = pattern.generate((SIZE, SIZE), DTYPE, rng_a)
    weights = pattern.generate((SIZE, SIZE), DTYPE, rng_b)
    return GemmJob(name, activations, weights, dtype=DTYPE, iterations=2000)


def main() -> None:
    devices = [Device.create(name, instance_id=i) for i, name in enumerate(FLEET)]
    jobs = [
        make_job("dense-training-step", "gaussian"),
        make_job("sorted-weights-serving", "sorted_rows", fraction=1.0),
        make_job("pruned-model-serving", "sparsity", sparsity=0.6),
        make_job("quantization-calibration", "value_set", set_size=16),
        make_job("embedding-lookup-gemm", "zero_lsb", fraction=0.5),
    ]

    scheduler = FleetScheduler(devices, power_budget_watts=FLEET_BUDGET_WATTS)
    schedule = scheduler.schedule(jobs)

    rows = [
        [p.time_slot, p.job_name, FLEET[p.device_index], p.predicted_power_watts, p.duration_s]
        for p in sorted(schedule.placements, key=lambda p: (p.time_slot, p.device_index))
    ]
    print(
        format_table(
            ["slot", "job", "device", "predicted_W", "duration_s"],
            rows,
            precision=2,
            title=f"Fleet schedule under a {FLEET_BUDGET_WATTS:.0f} W budget "
            f"(peak {schedule.peak_power_watts:.0f} W across {schedule.num_slots} slots)",
        )
    )
    assert schedule.within_budget

    # Device-level cap on the heaviest job via data pruning.
    heavy = jobs[0]
    baseline_power = scheduler.predict_job(heavy, devices[0])[0]
    cap = baseline_power - 6.0
    plan = find_sparsity_for_cap(
        heavy.activations, heavy.weights, power_cap_watts=cap, dtype=DTYPE, gpu=devices[0]
    )
    print(
        f"\nCapping '{heavy.name}' on {devices[0].name}: baseline {baseline_power:.1f} W, "
        f"cap {cap:.1f} W -> prune {plan.sparsity:.0%} of the smallest weights "
        f"({plan.capped.power_watts:.1f} W, relative error {plan.relative_error:.3f})."
    )

    # Verify the capped job through the NVML facade, as a datacenter agent would.
    with SimulatedNVML(devices) as nvml:
        handle = nvml.device_get_handle_by_index(0)
        nvml.attach_load(handle, power_watts=plan.capped.power_watts)
        reading_w = nvml.device_get_power_usage(handle) / 1000.0
        limit_w = nvml.device_get_enforced_power_limit(handle) / 1000.0
        print(
            f"NVML check: instantaneous reading {reading_w:.1f} W "
            f"(enforced board limit {limit_w:.0f} W) — cap respected: {reading_w <= cap + 2.0}"
        )


if __name__ == "__main__":
    main()
