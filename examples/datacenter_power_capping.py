#!/usr/bin/env python
"""Datacenter power capping with input-aware scheduling and data pruning.

Two of the paper's motivating applications combined, built on the fleet
simulator (:mod:`repro.fleet`):

1. **Power-aware fleet simulation** — a mixed-tenant trace of GEMM jobs
   whose power draw is predicted per-workload from their input data is
   placed onto a small modeled fleet.  Halfway through the trace a
   fleet-wide power-cap event lands and propagates into DVFS frequency
   scaling: capped jobs slow down and the cluster power series flattens
   against the cap, all resolved through the estimation engine's cache
   tiers (every workload is estimated once per GPU model, no matter how
   many kernels the trace schedules).
2. **Data pruning for power capping** — when a single job must fit under a
   device-level cap, the smallest magnitude-pruning sparsity that
   satisfies the cap is found with the power model, instead of
   sacrificing clock frequency.

The simulated NVML facade plays the role of the datacenter telemetry that
would verify the cap in production.

Run with:  python examples/datacenter_power_capping.py
"""

from __future__ import annotations

from repro import api
from repro.fleet import CapEvent, FleetSpec, Trace, TraceJob, WorkloadSpec
from repro.gpu.device import Device
from repro.optimize.power_capping import find_sparsity_for_cap
from repro.patterns.library import build_pattern
from repro.telemetry.nvml import SimulatedNVML
from repro.util.rng import derive_rng

SIZE = 768
DTYPE = "fp16_t"
FLEET = ["a100", "a100", "h100"]
CAP_TICK = 6  # fleet-wide cap event lands here
CAP_WATTS = 60.0  # per-GPU cap, low enough to force DVFS throttling

WORKLOADS = {
    "dense-training-step": WorkloadSpec("gaussian", {}, DTYPE, SIZE),
    "sorted-weights-serving": WorkloadSpec("sorted_rows", {"fraction": 1.0}, DTYPE, SIZE),
    "pruned-model-serving": WorkloadSpec("sparsity", {"sparsity": 0.6}, DTYPE, SIZE),
    "quantization-calibration": WorkloadSpec("value_set", {"set_size": 16}, DTYPE, SIZE),
    "embedding-lookup-gemm": WorkloadSpec("zero_lsb", {"fraction": 0.5}, DTYPE, SIZE),
}


def build_trace() -> Trace:
    """Three tenants launching the workload mix over a 12-tick horizon."""
    jobs = []
    for tick in range(12):
        for tenant, workload in (
            ("training", "dense-training-step"),
            ("serving", "sorted-weights-serving" if tick % 2 else "pruned-model-serving"),
            ("batch", "quantization-calibration" if tick % 3 else "embedding-lookup-gemm"),
        ):
            jobs.append(
                TraceJob(arrival_tick=tick, tenant=tenant, workload=workload, kernels=500)
            )
    return Trace(name="capping-demo", tick_s=60.0, workloads=WORKLOADS, jobs=jobs)


def main() -> None:
    # --- 1. Fleet simulation with a mid-trace power-cap event -------------
    trace = build_trace()
    fleet = FleetSpec.from_counts(
        {"a100": 2, "h100": 1},
        cap_events=[CapEvent(tick=CAP_TICK, cap_watts=CAP_WATTS)],
    )
    result = api.simulate_fleet(trace, fleet)
    print(result.render())
    print(
        f"\nCap event at tick {CAP_TICK} ({CAP_WATTS:.0f} W/GPU): "
        f"{result.throttled_jobs} of {result.jobs} jobs ran DVFS-throttled; "
        f"{result.distinct_configs} engine estimates covered "
        f"{result.scheduled_kernels} scheduled kernels."
    )

    # --- 2. Device-level cap on the heaviest job via data pruning ---------
    heavy_name = "dense-training-step"
    heavy = WORKLOADS[heavy_name]
    devices = [Device.create(name, instance_id=i) for i, name in enumerate(FLEET)]
    pattern = build_pattern(heavy.pattern_family, DTYPE, **dict(heavy.pattern_params))
    activations = pattern.generate((SIZE, SIZE), DTYPE, derive_rng(31, heavy_name, "A"))
    weights = pattern.generate((SIZE, SIZE), DTYPE, derive_rng(31, heavy_name, "B"))

    baseline = api.run_experiment(heavy.to_config(gpu=devices[0].name))
    baseline_power = baseline.mean_power_watts
    cap = baseline_power - 6.0
    plan = find_sparsity_for_cap(
        activations, weights, power_cap_watts=cap, dtype=DTYPE, gpu=devices[0]
    )
    print(
        f"\nCapping '{heavy_name}' on {devices[0].name}: baseline {baseline_power:.1f} W, "
        f"cap {cap:.1f} W -> prune {plan.sparsity:.0%} of the smallest weights "
        f"({plan.capped.power_watts:.1f} W, relative error {plan.relative_error:.3f})."
    )

    # --- 3. Verify the capped job through the NVML facade ------------------
    with SimulatedNVML(devices) as nvml:
        handle = nvml.device_get_handle_by_index(0)
        nvml.attach_load(handle, power_watts=plan.capped.power_watts)
        reading_w = nvml.device_get_power_usage(handle) / 1000.0
        limit_w = nvml.device_get_enforced_power_limit(handle) / 1000.0
        print(
            f"NVML check: instantaneous reading {reading_w:.1f} W "
            f"(enforced board limit {limit_w:.0f} W) — cap respected: {reading_w <= cap + 2.0}"
        )


if __name__ == "__main__":
    main()
