#!/usr/bin/env python
"""Quickstart: how input data changes GPU power for the same GEMM.

Runs the same 1024x1024 FP16 tensor-core GEMM on a simulated A100 with four
different input patterns and prints the measured power, runtime and energy.
The shapes, the kernel and the datatype never change — only the values do.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import repro
from repro.analysis.reporting import render_experiment_table

MATRIX_SIZE = 1024
GPU = "a100"
DTYPE = "fp16_t"

#: (label, pattern family, pattern parameters)
WORKLOADS = [
    ("Gaussian random (paper baseline)", "gaussian", {}),
    ("Single repeated value", "constant_random", {}),
    ("Fully sorted values", "sorted_rows", {"fraction": 1.0}),
    ("50% random sparsity", "sparsity", {"sparsity": 0.5}),
    ("Zeroed low mantissa bits", "zero_lsb", {"fraction": 0.5}),
]


def main() -> None:
    print(f"Simulated {GPU.upper()} | {MATRIX_SIZE}x{MATRIX_SIZE} GEMM | dtype {DTYPE}")
    print("Measuring each input pattern (2 seeds, DCGM-style 100 ms sampling)...\n")

    results = []
    for label, family, params in WORKLOADS:
        result = repro.measure_gemm_power(
            pattern=family,
            pattern_params=params,
            dtype=DTYPE,
            gpu=GPU,
            matrix_size=MATRIX_SIZE,
            seeds=2,
        )
        result.config["label"] = label
        results.append(result)

    print(render_experiment_table(results, title="Input-dependent GEMM power"))

    baseline = results[0].mean_power_watts
    lowest = min(results, key=lambda r: r.mean_power_watts)
    swing = (baseline - lowest.mean_power_watts) / baseline
    print(
        f"\nSame kernel, same shapes: input data alone moved power by "
        f"{swing:.1%} (from {baseline:.1f} W down to {lowest.mean_power_watts:.1f} W "
        f"for '{lowest.config['label']}')."
    )
    print("Iteration runtime stayed constant across patterns — only power changed.")


if __name__ == "__main__":
    main()
