#!/usr/bin/env python
"""LLM inference power: estimating and reducing the power of transformer GEMMs.

The paper motivates its study with large language models, whose GPU time is
dominated by GEMMs over learned weight matrices.  This example builds a
small transformer block's worth of projection GEMMs with realistic weight
statistics, estimates per-layer power with the input-dependent power model,
and then applies the paper's §V proposals through the power-aware compiler:

* permutation-invariant reordering of output neurons (exact), and
* weight mean-shifting / magnitude pruning on layers marked as tolerant.

Run with:  python examples/llm_inference_power.py
"""

from __future__ import annotations

import numpy as np

from repro.optimize.compiler import GemmOp, Pipeline, PowerAwareCompiler
from repro.util.rng import derive_rng
from repro.util.tables import format_table

HIDDEN = 1024          # model width (kept modest so the example runs in seconds)
BATCH_TOKENS = 512     # tokens per forward pass
GPU = "a100"
DTYPE = "fp16_t"


def build_transformer_block() -> Pipeline:
    """One attention + MLP block as a pipeline of GEMMs (weights stored (out, in))."""
    rng = derive_rng(2024, "llm_example")
    # Activations after layer norm: roughly unit variance.
    activations = rng.normal(0.0, 1.0, size=(BATCH_TOKENS, HIDDEN))
    # Trained weights are small and roughly Gaussian (std ~ 1/sqrt(fan_in)).
    std = 1.0 / np.sqrt(HIDDEN)

    def weights(out_features: int) -> np.ndarray:
        return rng.normal(0.0, std, size=(out_features, HIDDEN))

    pipeline = Pipeline()
    pipeline.add(
        GemmOp("attn.qkv_proj", activations, weights(3 * HIDDEN) [: HIDDEN, :],
               dtype=DTYPE, allowed_transforms=("permute_columns",))
    )
    pipeline.add(
        GemmOp("attn.out_proj", activations, weights(HIDDEN),
               dtype=DTYPE, allowed_transforms=("permute_columns",))
    )
    pipeline.add(
        GemmOp("mlp.up_proj", activations, weights(HIDDEN),
               dtype=DTYPE, allowed_transforms=("permute_columns", "shift_mean"))
    )
    pipeline.add(
        GemmOp("mlp.down_proj", activations, weights(HIDDEN),
               dtype=DTYPE, allowed_transforms=("permute_columns", "prune"), prune_sparsity=0.3)
    )
    return pipeline


def main() -> None:
    print(f"Transformer block on a simulated {GPU.upper()} ({DTYPE}, {BATCH_TOKENS} tokens, width {HIDDEN})\n")
    pipeline = build_transformer_block()
    compiler = PowerAwareCompiler(GPU)
    report = compiler.compile(pipeline)

    rows = []
    for op in report.ops:
        rows.append(
            [
                op.name,
                op.baseline.power_watts,
                op.optimized.power_watts,
                op.power_reduction_watts,
                op.transform or "(none)",
                "exact" if op.exact else "approximate",
            ]
        )
    print(
        format_table(
            ["layer", "baseline_W", "optimized_W", "saved_W", "transform", "semantics"],
            rows,
            precision=2,
            title="Per-layer power before/after power-aware compilation",
        )
    )

    print(
        f"\nPipeline energy per forward pass: {report.baseline_energy_j * 1e3:.2f} mJ -> "
        f"{report.optimized_energy_j * 1e3:.2f} mJ "
        f"({report.energy_reduction_fraction:.1%} saved)."
    )
    print(
        "Permutation reordering is computation-preserving (outputs are un-permuted "
        "downstream); mean-shifting and pruning are opt-in approximations, mirroring "
        "the paper's discussion of accuracy trade-offs."
    )


if __name__ == "__main__":
    main()
