"""Shared AST plumbing for the invariant checker and the repo scripts.

This module is deliberately **self-contained** (stdlib only, no imports
from the rest of :mod:`repro`): ``scripts/check_docs.py`` and
``scripts/lint.py`` run in CI jobs that install nothing, so they side-load
this file through ``scripts/_staticcheck_bootstrap.py`` (stub packages in
``sys.modules``) instead of importing the (numpy-importing) ``repro``
package.  Keep it that way — anything here must work on a bare Python
interpreter, and only :mod:`repro.staticcheck.envscan` may be imported
alongside it.

What lives here:

* file discovery and parsing (:func:`iter_python_files`, :func:`parse_source`),
* the name-usage and import-binding walkers that ``scripts/lint.py``'s
  offline fallback used to carry privately,
* small resolution helpers shared by several checker passes: rendering an
  attribute chain as a dotted name, resolving ``import``/``from-import``
  aliases, and looking up module-level constant assignments.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "iter_python_files",
    "parse_source",
    "used_names",
    "imported_bindings",
    "import_aliases",
    "dotted_name",
    "module_constants",
    "module_bindings",
]

_IDENTIFIER = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def iter_python_files(root: Path, trees: Iterable[str]) -> Iterator[Path]:
    """Yield every ``*.py`` file under ``root/<tree>`` (sorted, per tree).

    A tree entry may also name a single file; missing entries are skipped
    so callers can pass a fixed tuple of candidate directories.
    """
    for tree in trees:
        target = Path(root) / tree
        if target.is_file():
            yield target
        elif target.is_dir():
            yield from sorted(target.rglob("*.py"))


def parse_source(source: str, filename: str = "<unknown>") -> ast.Module:
    """``ast.parse`` under its canonical name (one import site for scripts)."""
    return ast.parse(source, filename=filename)


def used_names(tree: ast.AST) -> set[str]:
    """Names referenced anywhere, including inside string annotations/docs.

    String constants are scanned for identifier tokens so imports used only
    in quoted annotations (``"Sequence[int] | None"``) do not come back as
    false positives; this errs on the permissive side, which is the right
    bias for an offline fallback linter.
    """
    used: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            used.add(node.attr)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            used.update(_IDENTIFIER.findall(node.value))
    return used


def imported_bindings(tree: ast.AST) -> list[tuple[str, str, int]]:
    """(bound name, display name, line) for every module-or-function import."""
    bindings: list[tuple[str, str, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                bindings.append((bound, alias.name, node.lineno))
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                bindings.append((bound, alias.name, node.lineno))
    return bindings


def import_aliases(tree: ast.AST) -> dict[str, str]:
    """Local name -> canonical dotted target for every import in ``tree``.

    ``import numpy as np`` maps ``np -> numpy``; ``from os import environ``
    maps ``environ -> os.environ``; ``from repro.cache import store as s``
    maps ``s -> repro.cache.store``.  Relative imports keep their leading
    dots (callers resolve them against the importing module's package).
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                # Unaliased dotted imports bind the *top* package name.
                aliases[bound] = alias.name if alias.asname else alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            prefix = "." * node.level + (node.module or "")
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                aliases[bound] = f"{prefix}.{alias.name}" if prefix else alias.name
    return aliases


def dotted_name(node: ast.AST) -> "str | None":
    """Render a ``Name``/``Attribute`` chain as ``a.b.c`` (None otherwise)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def module_constants(tree: ast.Module) -> dict[str, object]:
    """Module-level ``NAME = <str-or-int literal>`` assignments.

    Used to resolve UPPER_CASE fallbacks at environment-variable read sites
    and constant-named env vars (``os.environ.get(ENV_BACKEND, ...)``).
    """
    constants: dict[str, object] = {}
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, (str, int))
            and not isinstance(node.value.value, bool)
        ):
            constants[node.targets[0].id] = node.value.value
        elif (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, (str, int))
            and not isinstance(node.value.value, bool)
        ):
            constants[node.target.id] = node.value.value
    return constants


def module_bindings(tree: ast.Module) -> set[str]:
    """Every name bound at module level: assignments, defs, classes, imports.

    The export-drift pass uses this to decide whether an ``__all__`` entry
    resolves.  Names bound inside ``if``/``try`` blocks at module level
    count (conditional exports are still exports).
    """
    bound: set[str] = set()

    def visit_block(statements: "list[ast.stmt]") -> None:
        for node in statements:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                bound.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    bound.update(_target_names(target))
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                bound.add(node.target.id)
            elif isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Name):
                bound.add(node.target.id)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    bound.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name != "*":
                        bound.add(alias.asname or alias.name)
            elif isinstance(node, ast.If):
                visit_block(node.body)
                visit_block(node.orelse)
            elif isinstance(node, ast.Try):
                visit_block(node.body)
                for handler in node.handlers:
                    visit_block(handler.body)
                visit_block(node.orelse)
                visit_block(node.finalbody)
            elif isinstance(node, (ast.With, ast.For, ast.While)):
                visit_block(node.body)

    def _target_names(target: ast.expr) -> set[str]:
        if isinstance(target, ast.Name):
            return {target.id}
        if isinstance(target, (ast.Tuple, ast.List)):
            names: set[str] = set()
            for element in target.elts:
                names.update(_target_names(element))
            return names
        if isinstance(target, ast.Starred):
            return _target_names(target.value)
        return set()

    visit_block(tree.body)
    return bound
