"""repro.staticcheck: AST-based invariant checker for this repository.

The test suite proves behaviour at the points it samples; the invariants
that hold the system together — fingerprint purity, event-loop
responsiveness, lock discipline, the env-var registry, the public API
surface — are *structural* and decay through edits that every individual
test still passes.  This package walks the source tree once, builds a
shared symbol table, and runs repo-specific passes over it, reporting
:class:`Finding` records with file:line precision and a fix hint.

Run it as a tool::

    python -m repro.staticcheck            # human-readable report
    python -m repro.staticcheck --json     # stable machine-readable schema
    python -m repro.staticcheck --list-rules

or drive it programmatically::

    from repro.staticcheck import run_staticcheck

    report = run_staticcheck()
    assert report.ok, [f.render() for f in report.findings]

Known-benign findings live in ``staticcheck-baseline.json`` at the repo
root (``--baseline`` to point elsewhere); every entry carries a mandatory
``reason`` and stale entries fail the run so suppressions cannot outlive
the code they excuse.  ``docs/staticcheck.md`` has the rule catalogue and
the recipe for adding a pass.
"""

from __future__ import annotations

from pathlib import Path

from repro.staticcheck.baseline import (
    BASELINE_FILENAME,
    Baseline,
    BaselineError,
    apply_baseline,
    load_baseline,
)
from repro.staticcheck.loader import Codebase, ModuleInfo, load_codebase
from repro.staticcheck.model import SCHEMA_VERSION, Finding, Report
from repro.staticcheck.registry import all_passes, get_pass, register_pass, run_passes

__all__ = [
    "SCHEMA_VERSION",
    "BASELINE_FILENAME",
    "Finding",
    "Report",
    "Codebase",
    "ModuleInfo",
    "Baseline",
    "BaselineError",
    "load_codebase",
    "load_baseline",
    "apply_baseline",
    "register_pass",
    "all_passes",
    "get_pass",
    "run_passes",
    "run_staticcheck",
]


def run_staticcheck(
    root: "Path | str | None" = None,
    *,
    rules: "list[str] | None" = None,
    baseline_path: "Path | str | None" = None,
) -> Report:
    """Load the codebase under ``root`` and run the registered passes.

    ``root`` defaults to the repository this package is installed from
    (three parents up from this file: ``src/repro/staticcheck`` -> repo).
    ``baseline_path`` defaults to ``<root>/staticcheck-baseline.json``
    when that file exists; pass an explicit path to require it.
    """
    # Importing the passes package registers every pass; done lazily so
    # callers embedding the framework can register their own set first.
    import repro.staticcheck.passes  # noqa: F401

    if root is None:
        root = Path(__file__).resolve().parents[3]
    root = Path(root)

    codebase = load_codebase(root)
    rule_ids, findings = run_passes(codebase, rules=rules)

    if baseline_path is None:
        candidate = root / BASELINE_FILENAME
        baseline = load_baseline(candidate if candidate.is_file() else None)
    else:
        baseline = load_baseline(Path(baseline_path))
    if rules is not None:
        # A rule-filtered run must not report the other rules' baseline
        # entries as stale.
        baseline = Baseline(
            path=baseline.path,
            entries=[e for e in baseline.entries if e["rule"] in rule_ids],
        )
    new, suppressed, stale = apply_baseline(findings, baseline)

    return Report(
        root=str(root),
        rules=rule_ids,
        findings=new,
        suppressed=suppressed,
        stale_baseline=stale,
        modules=len(codebase.modules),
    )
