"""Finding records and the report produced by a checker run.

A :class:`Finding` pins one invariant violation to ``file:line`` with a
rule id, a human message and a fix hint.  Its *baseline key* deliberately
excludes the line number: baselined findings must survive unrelated edits
shifting code around, so suppression matches on ``rule``, ``file`` and a
per-finding stable ``detail`` (a qualified function name, an attribute
path, an env-var name — whatever identifies the violation within the
file) instead.

The JSON shapes emitted by :meth:`Finding.as_dict` and
:meth:`Report.as_dict` are a stable schema (``SCHEMA_VERSION``) so future
tooling can diff findings across commits; add fields, never rename or
remove them, and bump the version on any breaking change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["SCHEMA_VERSION", "Finding", "Report"]

#: Version of the JSON document ``python -m repro.staticcheck --json``
#: emits.  Bump on any backwards-incompatible change to the field layout.
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class Finding:
    """One invariant violation, pinned to a file and line."""

    #: rule id (``fingerprint-purity``, ``async-blocking``, ...)
    rule: str
    #: repo-relative posix path of the offending file
    file: str
    #: 1-indexed line of the violation
    line: int
    #: one-sentence statement of what is wrong
    message: str
    #: stable identifier of the violation *within* the file (function
    #: qualname, attribute path, env-var name ...); part of the baseline key
    detail: str
    #: how to fix it (or how to suppress it when genuinely benign)
    hint: str = ""

    @property
    def baseline_key(self) -> "tuple[str, str, str]":
        """The (rule, file, detail) triple a baseline entry suppresses."""
        return (self.rule, self.file, self.detail)

    def as_dict(self) -> "dict[str, Any]":
        return {
            "rule": self.rule,
            "file": self.file,
            "line": self.line,
            "message": self.message,
            "detail": self.detail,
            "hint": self.hint,
        }

    def render(self) -> str:
        text = f"{self.file}:{self.line}: [{self.rule}] {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


@dataclass
class Report:
    """Everything one checker run produced, ready to print or serialize."""

    #: repo root the run analyzed (absolute path, as given)
    root: str
    #: rule ids that actually ran, sorted
    rules: "list[str]"
    #: findings *not* suppressed by the baseline, sorted (file, line, rule)
    findings: "list[Finding]"
    #: findings matched (and silenced) by baseline entries
    suppressed: "list[Finding]" = field(default_factory=list)
    #: baseline entries that matched nothing — stale suppressions are
    #: failures too, so the baseline can only shrink over time
    stale_baseline: "list[dict[str, str]]" = field(default_factory=list)
    #: modules the loader parsed
    modules: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings and not self.stale_baseline

    def as_dict(self) -> "dict[str, Any]":
        return {
            "schema_version": SCHEMA_VERSION,
            "root": self.root,
            "rules": list(self.rules),
            "modules": self.modules,
            "counts": {
                "findings": len(self.findings),
                "suppressed": len(self.suppressed),
                "stale_baseline": len(self.stale_baseline),
            },
            "findings": [finding.as_dict() for finding in self.findings],
            "suppressed": [finding.as_dict() for finding in self.suppressed],
            "stale_baseline": list(self.stale_baseline),
            "ok": self.ok,
        }
