"""Baseline suppressions: let the gate land green, then only get stricter.

A baseline file records pre-existing findings that are judged genuinely
benign, so the CI gate fails on *new* violations without demanding the
world be fixed first.  The contract keeps baselines honest:

* every entry carries a non-empty ``reason`` — a suppression nobody can
  justify is not allowed to exist;
* entries match on ``(rule, file, detail)`` — never line numbers, so
  unrelated edits cannot silently re-arm or orphan a suppression;
* an entry that matches nothing is **stale** and fails the run: the
  baseline can only shrink as violations get fixed.

File format (``staticcheck-baseline.json`` at the repo root)::

    {
      "version": 1,
      "entries": [
        {"rule": "...", "file": "...", "detail": "...", "reason": "why this is benign"}
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.staticcheck.model import Finding

__all__ = ["BASELINE_FILENAME", "BaselineError", "Baseline", "load_baseline", "apply_baseline"]

#: Default baseline file name, looked up at the analyzed root.
BASELINE_FILENAME = "staticcheck-baseline.json"


class BaselineError(ValueError):
    """A malformed baseline file (bad JSON, missing fields, empty reason)."""


@dataclass
class Baseline:
    """Parsed baseline entries, keyed for matching."""

    path: "Path | None"
    entries: "list[dict[str, str]]"

    @property
    def keys(self) -> "set[tuple[str, str, str]]":
        return {(e["rule"], e["file"], e["detail"]) for e in self.entries}


def load_baseline(path: "str | Path | None") -> Baseline:
    """Load and validate a baseline file (``None``/missing -> empty)."""
    if path is None:
        return Baseline(path=None, entries=[])
    path = Path(path)
    if not path.exists():
        return Baseline(path=path, entries=[])
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(document, dict) or not isinstance(document.get("entries"), list):
        raise BaselineError(f'{path}: baseline must be {{"version": 1, "entries": [...]}}')
    entries: "list[dict[str, str]]" = []
    for index, entry in enumerate(document["entries"]):
        if not isinstance(entry, dict):
            raise BaselineError(f"{path}: entry {index} is not an object")
        missing = [key for key in ("rule", "file", "detail", "reason") if not entry.get(key)]
        if missing:
            raise BaselineError(
                f"{path}: entry {index} is missing {', '.join(missing)} — every "
                "suppression must name its finding and justify itself"
            )
        entries.append({key: str(entry[key]) for key in ("rule", "file", "detail", "reason")})
    return Baseline(path=path, entries=entries)


def apply_baseline(
    findings: "list[Finding]", baseline: Baseline
) -> "tuple[list[Finding], list[Finding], list[dict[str, str]]]":
    """Split findings into (new, suppressed) and report stale entries."""
    keys = baseline.keys
    new = [f for f in findings if f.baseline_key not in keys]
    suppressed = [f for f in findings if f.baseline_key in keys]
    matched = {f.baseline_key for f in suppressed}
    stale = [
        entry
        for entry in baseline.entries
        if (entry["rule"], entry["file"], entry["detail"]) not in matched
    ]
    return new, suppressed, stale
