"""Codebase loader: parse the repo once, share the ASTs across passes.

Every pass consumes the same :class:`Codebase`: the parsed modules (path,
dotted name, AST, source), a symbol table of function definitions keyed by
qualified name, and per-module import-alias maps.  Loading is strictly
syntactic — target code is never imported, so the checker can analyze a
tree that does not have its dependencies installed, and seeded-violation
fixtures in tests can mirror the real package layout without shadowing it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.staticcheck.walker import import_aliases, iter_python_files

__all__ = ["SOURCE_TREES", "ModuleInfo", "FunctionInfo", "Codebase", "load_codebase"]

#: Trees scanned relative to the repo root.  ``src`` holds the package;
#: ``benchmarks`` is included because its env-var reads fall under the
#: same registry contract as the package's (mirroring the docs gate).
SOURCE_TREES = ("src", "benchmarks")


@dataclass
class ModuleInfo:
    """One parsed source file."""

    #: absolute path
    path: Path
    #: repo-relative posix path (``src/repro/cache/store.py``)
    relpath: str
    #: dotted module name (``repro.cache.store``; benchmark files get their
    #: bare stem since they are scripts, not package members)
    name: str
    tree: ast.Module
    source: str
    #: local name -> canonical dotted import target
    aliases: "dict[str, str]" = field(default_factory=dict)


@dataclass(frozen=True)
class FunctionInfo:
    """One function (or method) definition in the codebase."""

    #: ``module.qualname`` (``repro.cache.store.JsonDiskCache.get``)
    qualname: str
    module: str
    node: "ast.FunctionDef | ast.AsyncFunctionDef"


@dataclass
class Codebase:
    """Parsed modules plus the lookup tables every pass shares."""

    root: Path
    modules: "list[ModuleInfo]"
    by_name: "dict[str, ModuleInfo]" = field(default_factory=dict)
    #: qualified function name -> definition
    functions: "dict[str, FunctionInfo]" = field(default_factory=dict)

    def module(self, name: str) -> "ModuleInfo | None":
        return self.by_name.get(name)

    def iter_modules(self, prefix: str = "") -> "Iterator[ModuleInfo]":
        for info in self.modules:
            if not prefix or info.name == prefix or info.name.startswith(prefix + "."):
                yield info

    def has_module(self, name: str) -> bool:
        return name in self.by_name


def _module_name(path: Path, root: Path) -> str:
    """Dotted module name for a file under ``root/src``; stem otherwise."""
    try:
        relative = path.relative_to(root / "src")
    except ValueError:
        return path.stem
    parts = list(relative.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts) if parts else path.stem


def _collect_functions(info: ModuleInfo, table: "dict[str, FunctionInfo]") -> None:
    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}.{child.name}" if prefix else child.name
                table[f"{info.name}.{qualname}"] = FunctionInfo(
                    qualname=f"{info.name}.{qualname}", module=info.name, node=child
                )
                visit(child, qualname)
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}.{child.name}" if prefix else child.name)

    visit(info.tree, "")


def load_codebase(root: "str | Path", trees: "tuple[str, ...]" = SOURCE_TREES) -> Codebase:
    """Parse every Python file under ``root``'s source trees.

    Files that fail to parse are skipped (the lint gate owns syntax
    errors; a half-written file must not take the whole checker down).
    """
    root = Path(root).resolve()
    modules: "list[ModuleInfo]" = []
    for path in iter_python_files(root, trees):
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError:
            continue
        modules.append(
            ModuleInfo(
                path=path,
                relpath=path.relative_to(root).as_posix(),
                name=_module_name(path, root),
                tree=tree,
                source=source,
                aliases=import_aliases(tree),
            )
        )
    codebase = Codebase(root=root, modules=modules)
    for info in modules:
        codebase.by_name[info.name] = info
        _collect_functions(info, codebase.functions)
    return codebase
