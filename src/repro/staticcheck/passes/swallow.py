"""``no-silent-swallow``: broad exception handlers must fail loudly.

The resilience layer's contract (``docs/resilience.md``) is "degrade
loudly, never silently": a fault may be absorbed, but only while leaving a
trace — a typed error re-raised, a sentinel returned, a counter or log
line written.  The pattern that breaks the contract is the silent broad
swallow::

    try:
        publish(entry)
    except Exception:
        pass          # fault absorbed, nobody will ever know

This pass flags every ``except Exception``/``except BaseException``/bare
``except`` handler in ``repro`` modules whose body does **none** of:

* re-raise (any ``raise``),
* return (a sentinel/fallback the caller can observe),
* reference the bound exception name (``except Exception as exc`` + any
  use of ``exc`` — error mapping, accounting, message building), or
* call something that records the event (``logging``/``warnings``
  functions, ``log``-like receivers, ``print``).

Narrow handlers (``except OSError:``) are never flagged — catching a
specific exception is a statement about what can happen; catching
*everything* and discarding it is a statement that nothing matters.
Intentional broad swallows that must stay earn a baseline entry with a
written reason (see ``staticcheck-baseline.json``), which is exactly the
loudness this rule is after.
"""

from __future__ import annotations

import ast

from repro.staticcheck.loader import Codebase, ModuleInfo
from repro.staticcheck.model import Finding
from repro.staticcheck.registry import register_pass
from repro.staticcheck.walker import dotted_name

__all__ = ["BROAD_NAMES", "LOG_METHODS", "check_swallow"]

#: Exception names (after alias resolution) considered "broad".
BROAD_NAMES = frozenset(
    {"Exception", "BaseException", "builtins.Exception", "builtins.BaseException"}
)

#: Method names that count as logging when called on a log-like receiver.
LOG_METHODS = frozenset(
    {"debug", "info", "warning", "warn", "error", "exception", "critical", "log"}
)

_HINT = (
    "re-raise, return a sentinel, use the bound exception (as exc + use of "
    "exc), or log the event; if the swallow is genuinely benign, narrow the "
    "exception type or add a baseline entry with a written reason"
)

#: ``TryStar`` exists from Python 3.11; alias it to ``Try`` earlier so the
#: isinstance check below stays version-portable.
_TRY_NODES = (ast.Try, getattr(ast, "TryStar", ast.Try))


def _caught_label(handler: ast.ExceptHandler, aliases: "dict[str, str]") -> "str | None":
    """``"bare"``/``"Exception"``/``"BaseException"`` when broad, else None."""
    if handler.type is None:
        return "bare"
    exprs = (
        handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    for expr in exprs:
        dotted = dotted_name(expr)
        if dotted is None:
            continue
        head, _, rest = dotted.partition(".")
        canonical = aliases.get(head, head) + (f".{rest}" if rest else "")
        if canonical in BROAD_NAMES or dotted in BROAD_NAMES:
            return canonical.rpartition(".")[2]
    return None


def _is_loud(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body leaves any observable trace of the fault."""
    bound = handler.name
    for statement in handler.body:
        for node in ast.walk(statement):
            if isinstance(node, (ast.Raise, ast.Return)):
                return True
            if bound and isinstance(node, ast.Name) and node.id == bound:
                return True
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "print":
                return True
            if isinstance(func, ast.Attribute):
                dotted = dotted_name(func)
                if dotted is not None and dotted.partition(".")[0] in (
                    "logging",
                    "warnings",
                ):
                    return True
                if func.attr in LOG_METHODS:
                    receiver = dotted_name(func.value)
                    if receiver is not None and "log" in receiver.lower():
                        return True
    return False


def _check_module(info: ModuleInfo) -> "list[Finding]":
    findings: "list[Finding]" = []
    #: (scope, label) -> count, for stable details when one function has
    #: several silent handlers of the same breadth.
    counters: "dict[tuple[str, str], int]" = {}

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                visit(child, f"{prefix}.{child.name}" if prefix else child.name)
                continue
            if isinstance(child, _TRY_NODES):
                for handler in child.handlers:
                    _check_handler(handler, prefix)
            visit(child, prefix)

    def _check_handler(handler: ast.ExceptHandler, prefix: str) -> None:
        label = _caught_label(handler, info.aliases)
        if label is None or _is_loud(handler):
            return
        scope = prefix or "<module>"
        count = counters.get((scope, label), 0) + 1
        counters[(scope, label)] = count
        detail = f"{scope}:{label}" + (f"#{count}" if count > 1 else "")
        caught = "bare except:" if label == "bare" else f"except {label}:"
        findings.append(
            Finding(
                rule="no-silent-swallow",
                file=info.relpath,
                line=handler.lineno,
                message=(
                    f"{scope} swallows a broad exception silently "
                    f"({caught} with no raise/return/exception-use/log)"
                ),
                detail=detail,
                hint=_HINT,
            )
        )

    visit(info.tree, "")
    return findings


@register_pass(
    "no-silent-swallow",
    "broad except handlers must re-raise, return, use the exception, or log",
)
def check_swallow(codebase: Codebase) -> "list[Finding]":
    findings: "list[Finding]" = []
    for info in codebase.iter_modules("repro"):
        findings.extend(_check_module(info))
    return findings
