"""The repo-specific checker passes.

Importing this package registers every pass with
:mod:`repro.staticcheck.registry`; the CLI and tests import it for that
side effect.  One module per rule:

========================  ====================================================
``fingerprint-purity``    functions reachable from the fingerprint entry
                          points must be pure (no env/time/RNG reads)
``async-blocking``        ``repro.serve`` coroutines must never call known
                          blocking functions on the event loop
``lock-discipline``       attributes of lock-holding classes must not be
                          written both inside and outside the lock
``env-registry``          every environment read uses a documented
                          ``REPRO_*`` name with an extractable default
``api-drift``             ``__all__`` lists, the lazy-submodule map and the
                          ``repro.api`` façade stay mutually consistent
``no-silent-swallow``     broad ``except`` handlers must re-raise, return,
                          use the bound exception, or log — never swallow
``engine-registry``       every registered optimization engine is imported
                          by the engines package, exported, and documented
========================  ====================================================
"""

from repro.staticcheck.passes import (  # noqa: F401  (imported for registration)
    blocking,
    engines,
    envvars,
    exports,
    locks,
    purity,
    swallow,
)

__all__ = ["purity", "blocking", "locks", "envvars", "exports", "swallow", "engines"]
