"""``fingerprint-purity``: cache keys must be functions of their inputs.

Every cache tier's correctness rests on one sentence in
:mod:`repro.cache.fingerprint`: *two configs with the same fingerprint are
guaranteed to produce bit-identical results*.  That guarantee dies quietly
if any function reachable from a fingerprint entry point consults ambient
state — the environment, the clock, a random source — because the key
would no longer determine the value and stale cache entries would be
served as fresh.  Review vigilance does not scale to that class of bug;
this pass makes it a CI failure.

Mechanics: build a best-effort static call graph over the codebase (direct
calls and module-attribute calls; method calls through objects are out of
static reach and documented as such), take every top-level function of the
entry module as a root, and flag two things inside the reachable set:

* calls/reads of known-impure stdlib and numpy surfaces (``os.environ``,
  ``os.getenv``, the wall clocks in ``time``/``datetime``, ``random``,
  ``numpy.random``, ``uuid``, ``secrets``);
* reads of module globals that some function of the same module rebinds
  via ``global`` — mutable module state is invisible to a content hash.

Registry *lookups* (``get_dtype`` reading ``_REGISTRY``) are deliberately
not flagged: the registries mutate through container item assignment, not
``global`` rebinding, and the fingerprint payload already folds in the
resolved specs precisely so that re-registration invalidates keys.
"""

from __future__ import annotations

import ast

from repro.staticcheck.loader import Codebase, ModuleInfo
from repro.staticcheck.model import Finding
from repro.staticcheck.registry import register_pass
from repro.staticcheck.walker import dotted_name

__all__ = ["ENTRY_MODULE", "IMPURE_PREFIXES", "check_purity"]

#: The module whose top-level functions are the purity roots.
ENTRY_MODULE = "repro.cache.fingerprint"

#: Canonical dotted prefixes whose call (or attribute read, for
#: ``os.environ``) is impure.  Aliases are resolved through each module's
#: import table before matching (``np.random`` -> ``numpy.random``).
IMPURE_PREFIXES = (
    "os.environ",
    "os.getenv",
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.sleep",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "random.",
    "numpy.random",
    "uuid.uuid1",
    "uuid.uuid4",
    "secrets.",
)

_HINT = (
    "fingerprint inputs must come from arguments alone; thread ambient "
    "state in explicitly (and include it in the fingerprint payload)"
)


def _canonical(dotted: str, aliases: "dict[str, str]") -> str:
    """Rewrite the first segment of ``dotted`` through the import table."""
    head, _, rest = dotted.partition(".")
    target = aliases.get(head)
    if target is None:
        return dotted
    return f"{target}.{rest}" if rest else target


def _is_impure(canonical: str) -> bool:
    for prefix in IMPURE_PREFIXES:
        if prefix.endswith("."):
            if canonical.startswith(prefix):
                return True
        elif canonical == prefix or canonical.startswith(prefix + "."):
            return True
    return False


def _call_targets(info: ModuleInfo, node: ast.AST, codebase: Codebase) -> "set[str]":
    """Qualified names of in-repo functions ``node``'s body calls.

    Resolution is deliberately conservative: bare names through the local
    module or its from-imports, dotted names through imported-module
    aliases.  Method calls on objects are skipped — the entry module's
    reachable surface is free functions, which is what makes this pass
    tractable without type inference.
    """
    targets: "set[str]" = set()
    for child in ast.walk(node):
        if not isinstance(child, ast.Call):
            continue
        dotted = dotted_name(child.func)
        if dotted is None:
            continue
        if "." not in dotted:
            local = f"{info.name}.{dotted}"
            if local in codebase.functions:
                targets.add(local)
                continue
            imported = info.aliases.get(dotted)
            if imported is not None and imported in codebase.functions:
                targets.add(imported)
        else:
            canonical = _canonical(dotted, info.aliases)
            if canonical in codebase.functions:
                targets.add(canonical)
    return targets


def _rebound_globals(info: ModuleInfo) -> "set[str]":
    """Module globals some function rebinds via a ``global`` statement."""
    rebound: "set[str]" = set()
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Global):
            rebound.update(node.names)
    return rebound


def _impure_uses(info: ModuleInfo, func: ast.AST) -> "list[tuple[int, str]]":
    """(line, canonical name) of impure calls/reads inside ``func``.

    One finding per line: a flagged call's own ``Attribute`` chain (and
    ``os.environ`` inside ``os.environ.get``) must not double-report.
    """
    by_line: "dict[int, str]" = {}
    for child in ast.walk(func):
        if not isinstance(child, ast.Call):
            continue
        dotted = dotted_name(child.func)
        if dotted is None:
            continue
        canonical = _canonical(dotted, info.aliases)
        if _is_impure(canonical):
            by_line.setdefault(child.lineno, canonical)
    for child in ast.walk(func):
        if not isinstance(child, ast.Attribute) or child.lineno in by_line:
            continue
        # Bare ``os.environ`` reads (subscripts, iteration) have no call;
        # catch the attribute access itself.
        dotted = dotted_name(child)
        if dotted is None:
            continue
        canonical = _canonical(dotted, info.aliases)
        if canonical == "os.environ" or canonical.startswith("os.environ."):
            by_line.setdefault(child.lineno, canonical)
    return sorted(by_line.items())


@register_pass(
    "fingerprint-purity",
    "functions reachable from the fingerprint entry points must be pure",
)
def check_purity(codebase: Codebase) -> "list[Finding]":
    entry = codebase.module(ENTRY_MODULE)
    if entry is None:
        return []

    # Roots: every top-level function of the entry module.
    queue = [
        f"{entry.name}.{node.name}"
        for node in entry.tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    reachable: "set[str]" = set()
    while queue:
        qualname = queue.pop()
        if qualname in reachable:
            continue
        reachable.add(qualname)
        func = codebase.functions.get(qualname)
        if func is None:
            continue
        info = codebase.module(func.module)
        if info is None:
            continue
        queue.extend(_call_targets(info, func.node, codebase))

    findings: "list[Finding]" = []
    rebound_cache: "dict[str, set[str]]" = {}
    for qualname in sorted(reachable):
        func = codebase.functions[qualname]
        info = codebase.module(func.module)
        if info is None:
            continue
        for line, name in _impure_uses(info, func.node):
            findings.append(
                Finding(
                    rule="fingerprint-purity",
                    file=info.relpath,
                    line=line,
                    message=(
                        f"{qualname} (reachable from {ENTRY_MODULE}) uses "
                        f"impure {name}; fingerprints derived through it can "
                        "go stale without the key changing"
                    ),
                    detail=f"{qualname}:{name}",
                    hint=_HINT,
                )
            )
        rebound = rebound_cache.setdefault(func.module, _rebound_globals(info))
        if rebound:
            for child in ast.walk(func.node):
                if (
                    isinstance(child, ast.Name)
                    and isinstance(child.ctx, ast.Load)
                    and child.id in rebound
                ):
                    findings.append(
                        Finding(
                            rule="fingerprint-purity",
                            file=info.relpath,
                            line=child.lineno,
                            message=(
                                f"{qualname} (reachable from {ENTRY_MODULE}) reads "
                                f"module global {child.id!r}, which is rebound via "
                                "'global' elsewhere in the module"
                            ),
                            detail=f"{qualname}:global:{child.id}",
                            hint=_HINT,
                        )
                    )
    return findings
