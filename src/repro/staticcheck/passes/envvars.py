"""``env-registry``: every environment read is a documented ``REPRO_*`` knob.

``docs/configuration.md`` claims to be the authoritative table of every
knob.  The docs gate already diffs *names and defaults* between code and
table; this pass closes the remaining gaps at the read sites themselves:

* the variable name must resolve statically — a string literal, a
  same-module UPPER_CASE constant, or a parameter of a reader-helper
  function (``_env_int(name, ...)``) whose call sites then carry the
  literal; anything else is unauditable;
* the resolved name must belong to the ``REPRO_*`` namespace (no stray
  ``MY_DEBUG`` switches bypassing the registry);
* the name must appear in ``docs/configuration.md``;
* the fallback must be mechanically extractable: a literal, a resolvable
  constant, or the ``""``/absent "unset" sentinel.  Subscript reads
  (``os.environ["X"]``) have no fallback and are flagged outright.

Shared extraction lives in :mod:`repro.staticcheck.envscan`, the same
module ``scripts/check_docs.py`` drives — one parser, two gates.
"""

from __future__ import annotations

from pathlib import Path

from repro.staticcheck.envscan import ENV_NAME_RE, env_names_in_text, environ_read_sites
from repro.staticcheck.loader import Codebase
from repro.staticcheck.model import Finding
from repro.staticcheck.registry import register_pass

__all__ = ["CONFIG_DOC", "check_env_registry"]

#: Where every knob must be documented, relative to the repo root.
CONFIG_DOC = Path("docs") / "configuration.md"


@register_pass(
    "env-registry",
    "environment reads use documented REPRO_* names with extractable defaults",
)
def check_env_registry(codebase: Codebase) -> "list[Finding]":
    config_doc = codebase.root / CONFIG_DOC
    documented = (
        env_names_in_text(config_doc.read_text(encoding="utf-8"))
        if config_doc.is_file()
        else set()
    )

    findings: "list[Finding]" = []
    for info in codebase.modules:
        for site in environ_read_sites(info.tree):
            if site.name_source == "parameter":
                # Reader helper (``_env_int(name, fallback)``): its call
                # sites carry the literal names and are checked there.
                continue
            if site.name is None:
                findings.append(
                    Finding(
                        rule="env-registry",
                        file=info.relpath,
                        line=site.lineno,
                        message=(
                            "environment read with a name that does not "
                            "resolve statically (not a literal or a "
                            "same-module constant)"
                        ),
                        detail=f"unresolved:{site.lineno}",
                        hint=(
                            "name the variable with a string literal or a "
                            'module-level NAME = "REPRO_..." constant'
                        ),
                    )
                )
                continue
            if not ENV_NAME_RE.fullmatch(site.name):
                findings.append(
                    Finding(
                        rule="env-registry",
                        file=info.relpath,
                        line=site.lineno,
                        message=(
                            f"environment read of {site.name!r} outside the "
                            "REPRO_* namespace"
                        ),
                        detail=site.name,
                        hint="rename the knob into the REPRO_* family",
                    )
                )
                continue
            if site.name not in documented:
                findings.append(
                    Finding(
                        rule="env-registry",
                        file=info.relpath,
                        line=site.lineno,
                        message=(
                            f"{site.name} is read here but missing from "
                            f"{CONFIG_DOC.as_posix()}"
                        ),
                        detail=f"undocumented:{site.name}",
                        hint=f"add a table row for {site.name} (name, default, effect)",
                    )
                )
            if site.kind == "subscript":
                findings.append(
                    Finding(
                        rule="env-registry",
                        file=info.relpath,
                        line=site.lineno,
                        message=(
                            f"os.environ[{site.name!r}] subscript read: no "
                            "fallback, raises KeyError when unset"
                        ),
                        detail=f"subscript:{site.name}",
                        hint='use environ.get with an explicit default (or "" sentinel)',
                    )
                )
            elif not site.default_extractable:
                findings.append(
                    Finding(
                        rule="env-registry",
                        file=info.relpath,
                        line=site.lineno,
                        message=(
                            f"{site.name} fallback is not mechanically "
                            "extractable (not a literal, constant, or "
                            "unset sentinel), so the docs default cannot "
                            "be verified"
                        ),
                        detail=f"default:{site.name}",
                        hint=(
                            "spell the fallback as a literal or UPPER_CASE "
                            "constant at the read site"
                        ),
                    )
                )
    return findings
