"""``lock-discipline``: thread-shared state mutates under its lock or not at all.

The cache LRUs (:class:`~repro.cache.store.JsonDiskCache`), the plan tier
(:class:`~repro.experiments.plan.PlanCache`) and the SQLite store all
follow the same pattern: a class holds a ``threading.Lock``/``RLock`` and
promises that its bookkeeping mutates only while holding it.  The pattern
decays silently — a new method writes ``self._entries`` without the
``with`` block and nothing fails until a sweep races.

This pass finds classes that create a lock in ``__init__``/``__post_init__``
(``self._lock = threading.RLock()``), collects every write to a ``self``
attribute across the class's methods, and flags attributes written **both**
inside and outside ``with self._lock:`` blocks.  Constructor methods are
exempt (no concurrent access exists before ``__init__`` returns), as is
the lock attribute itself.  Attributes written *only* outside the lock are
not flagged — a class may legitimately keep some members single-threaded;
it is the mixed pattern that indicates a forgotten guard.

Limits, stated so nobody trusts this further than it sees: mutation
through method calls (``self._entries.move_to_end(...)``) and writes in
nested functions are invisible; reads are not tracked at all.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.staticcheck.loader import Codebase, ModuleInfo
from repro.staticcheck.model import Finding
from repro.staticcheck.registry import register_pass
from repro.staticcheck.walker import dotted_name

__all__ = ["LOCK_TYPES", "CONSTRUCTOR_METHODS", "check_locks"]

#: Callables whose result is a lock (after alias resolution).
LOCK_TYPES = ("threading.Lock", "threading.RLock", "Lock", "RLock")

#: Methods where unguarded attribute writes are expected and safe.
CONSTRUCTOR_METHODS = frozenset({"__init__", "__post_init__", "__new__", "__init_subclass__"})


@dataclass
class _AttrWrites:
    locked: "list[int]" = field(default_factory=list)
    unlocked: "list[int]" = field(default_factory=list)


def _self_attr_path(node: ast.expr, self_name: str) -> "str | None":
    """``self.a.b`` -> ``a.b`` (None when not rooted at ``self``)."""
    parts: "list[str]" = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and node.id == self_name and parts:
        return ".".join(reversed(parts))
    return None


def _lock_attrs(class_node: ast.ClassDef, aliases: "dict[str, str]") -> "set[str]":
    """Names of ``self.<attr>`` assigned a Lock/RLock anywhere in the class."""
    locks: "set[str]" = set()
    for node in ast.walk(class_node):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        dotted = dotted_name(node.value.func)
        if dotted is None:
            continue
        head, _, rest = dotted.partition(".")
        canonical = aliases.get(head, head) + (f".{rest}" if rest else "")
        if canonical not in LOCK_TYPES and dotted not in LOCK_TYPES:
            continue
        for target in node.targets:
            path = _self_attr_path(target, "self")
            if path is not None and "." not in path:
                locks.add(path)
    return locks


class _MethodVisitor:
    """Track attribute writes and whether they happen under the lock."""

    def __init__(self, self_name: str, lock_attrs: "set[str]") -> None:
        self.self_name = self_name
        self.lock_attrs = lock_attrs
        self.writes: "dict[str, _AttrWrites]" = {}

    def _is_lock_context(self, item: ast.withitem) -> bool:
        path = _self_attr_path(item.context_expr, self.self_name)
        if path is not None:
            return path in self.lock_attrs
        # ``with self._lock.acquire_timeout():``-style wrappers: treat any
        # context manager reached through the lock attribute as the lock.
        if isinstance(item.context_expr, ast.Call):
            receiver = _self_attr_path(item.context_expr.func, self.self_name)
            if receiver is not None:
                return receiver.split(".")[0] in self.lock_attrs
        return False

    def _record(self, target: ast.expr, line: int, locked: bool) -> None:
        path = _self_attr_path(target, self.self_name)
        if path is None or path.split(".")[0] in self.lock_attrs:
            return
        writes = self.writes.setdefault(path, _AttrWrites())
        (writes.locked if locked else writes.unlocked).append(line)

    def visit_block(self, statements: "list[ast.stmt]", locked: bool) -> None:
        for node in statements:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # nested scopes run elsewhere; out of static reach
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    for element in self._flatten(target):
                        self._record(element, node.lineno, locked)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                self._record(node.target, node.lineno, locked)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                inner = locked or any(self._is_lock_context(item) for item in node.items)
                self.visit_block(node.body, inner)
                continue
            # Recurse into compound statements, keeping the lock context.
            for child_block in self._child_blocks(node):
                self.visit_block(child_block, locked)

    @staticmethod
    def _flatten(target: ast.expr) -> "list[ast.expr]":
        if isinstance(target, (ast.Tuple, ast.List)):
            out: "list[ast.expr]" = []
            for element in target.elts:
                out.extend(_MethodVisitor._flatten(element))
            return out
        if isinstance(target, ast.Starred):
            return _MethodVisitor._flatten(target.value)
        return [target]

    @staticmethod
    def _child_blocks(node: ast.stmt) -> "list[list[ast.stmt]]":
        blocks: "list[list[ast.stmt]]" = []
        for name in ("body", "orelse", "finalbody"):
            block = getattr(node, name, None)
            if isinstance(block, list) and not isinstance(node, (ast.With, ast.AsyncWith)):
                blocks.append(block)
        for handler in getattr(node, "handlers", []) or []:
            blocks.append(handler.body)
        return blocks


def _check_class(info: ModuleInfo, class_node: ast.ClassDef) -> "list[Finding]":
    lock_attrs = _lock_attrs(class_node, info.aliases)
    if not lock_attrs:
        return []
    writes: "dict[str, _AttrWrites]" = {}
    for node in class_node.body:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if node.name in CONSTRUCTOR_METHODS:
            continue
        if not node.args.args:
            continue
        visitor = _MethodVisitor(node.args.args[0].arg, lock_attrs)
        visitor.visit_block(node.body, locked=False)
        for path, seen in visitor.writes.items():
            merged = writes.setdefault(path, _AttrWrites())
            merged.locked.extend(seen.locked)
            merged.unlocked.extend(seen.unlocked)

    findings: "list[Finding]" = []
    lock_display = "/".join(sorted(lock_attrs))
    for path in sorted(writes):
        seen = writes[path]
        if seen.locked and seen.unlocked:
            findings.append(
                Finding(
                    rule="lock-discipline",
                    file=info.relpath,
                    line=min(seen.unlocked),
                    message=(
                        f"{class_node.name}.{path} is written under "
                        f"'with self.{lock_display}:' (line "
                        f"{min(seen.locked)}) but also without it (line "
                        f"{min(seen.unlocked)})"
                    ),
                    detail=f"{class_node.name}.{path}",
                    hint=(
                        "move the unguarded write inside the with-lock block, "
                        "or document why this attribute is single-threaded and "
                        "stop guarding the other sites"
                    ),
                )
            )
    return findings


@register_pass(
    "lock-discipline",
    "attributes of lock-holding classes must not be written both inside and "
    "outside the lock",
)
def check_locks(codebase: Codebase) -> "list[Finding]":
    findings: "list[Finding]" = []
    for info in codebase.modules:
        for node in ast.walk(info.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(_check_class(info, node))
    return findings
