"""``engine-registry``: registered optimization engines stay consistent.

The engine registry in :mod:`repro.optimize.engines` is populated by
``@register_engine("name")`` decorators as the engine modules import.
Nothing at runtime ties the registry to the package exports or the
documentation until an unlucky ``get_engine("...")`` fails in user code
— or worse, silently works locally because some other import happened to
load the module.  This pass checks, statically:

* every ``@register_engine`` name is registered exactly once;
* every engine's defining module is imported by the engines package
  ``__init__`` (so registration reliably fires on package import);
* every engine class is exported from the engines package ``__all__``;
* every registered engine *name* is documented in ``docs/optimize.md``.
"""

from __future__ import annotations

import ast

from repro.staticcheck.loader import Codebase, ModuleInfo
from repro.staticcheck.model import Finding
from repro.staticcheck.registry import register_pass

__all__ = ["ENGINES_PACKAGE", "ENGINES_DOC", "check_engine_registry"]

#: The package whose modules register engines and whose ``__init__`` must
#: import them all.
ENGINES_PACKAGE = "repro.optimize.engines"

#: Documentation page that must name every registered engine.
ENGINES_DOC = "docs/optimize.md"


def _decorator_engine_name(node: ast.expr) -> "str | None":
    """The literal name in ``@register_engine("name")``, if this is one."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    called = None
    if isinstance(func, ast.Name):
        called = func.id
    elif isinstance(func, ast.Attribute):
        called = func.attr
    if called != "register_engine":
        return None
    if node.args and isinstance(node.args[0], ast.Constant):
        value = node.args[0].value
        if isinstance(value, str):
            return value
    return None


def _registered_engines(info: ModuleInfo) -> "list[tuple[str, str, int]]":
    """``(engine_name, class_name, line)`` for each decorated class."""
    found = []
    for node in ast.walk(info.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for decorator in node.decorator_list:
            name = _decorator_engine_name(decorator)
            if name is not None:
                found.append((name, node.name, node.lineno))
    return found


def _package_imports(info: ModuleInfo) -> "set[str]":
    """Module names the package ``__init__`` imports (absolute + relative)."""
    imported: "set[str]" = set()
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                imported.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.module is None:
                continue
            source = node.module
            if node.level:
                source = f"{ENGINES_PACKAGE}.{source}" if source else ENGINES_PACKAGE
            imported.add(source)
            for alias in node.names:
                imported.add(f"{source}.{alias.name}")
    return imported


def _exported_names(info: ModuleInfo) -> "set[str] | None":
    """Static ``__all__`` entries, or None when the module has none."""
    for node in info.tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not any(isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets):
            continue
        if not isinstance(node.value, (ast.List, ast.Tuple)):
            return None
        names: "set[str]" = set()
        for element in node.value.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                names.add(element.value)
        return names
    return None


@register_pass(
    "engine-registry",
    "every registered optimization engine is imported by the engines "
    "package, exported from it, and documented",
)
def check_engine_registry(codebase: Codebase) -> "list[Finding]":
    findings: "list[Finding]" = []
    engines: "list[tuple[str, str, ModuleInfo, int]]" = []
    for info in codebase.iter_modules(ENGINES_PACKAGE):
        for engine_name, class_name, line in _registered_engines(info):
            engines.append((engine_name, class_name, info, line))
    if not engines:
        return []

    seen: "dict[str, str]" = {}
    for engine_name, class_name, info, line in engines:
        if engine_name in seen:
            findings.append(
                Finding(
                    rule="engine-registry",
                    file=info.relpath,
                    line=line,
                    message=(
                        f"engine name {engine_name!r} is registered more than "
                        f"once (also by {seen[engine_name]})"
                    ),
                    detail=f"{info.name}:duplicate:{engine_name}",
                    hint="pick a unique registry name per engine class",
                )
            )
        else:
            seen[engine_name] = f"{info.name}.{class_name}"

    package = codebase.module(ENGINES_PACKAGE)
    package_imports = _package_imports(package) if package is not None else set()
    package_exports = _exported_names(package) if package is not None else None
    doc_path = codebase.root / ENGINES_DOC
    doc_text = doc_path.read_text(encoding="utf-8") if doc_path.is_file() else None

    for engine_name, class_name, info, line in engines:
        if package is not None and info.name != ENGINES_PACKAGE:
            if info.name not in package_imports:
                findings.append(
                    Finding(
                        rule="engine-registry",
                        file=package.relpath,
                        line=1,
                        message=(
                            f"{ENGINES_PACKAGE} does not import {info.name}, so "
                            f"engine {engine_name!r} may never register"
                        ),
                        detail=f"{ENGINES_PACKAGE}:unimported:{info.name}",
                        hint=(
                            "import the engine module in the package __init__ "
                            "(registration is an import side effect)"
                        ),
                    )
                )
        if package_exports is not None and class_name not in package_exports:
            findings.append(
                Finding(
                    rule="engine-registry",
                    file=info.relpath,
                    line=line,
                    message=(
                        f"engine class {class_name!r} ({engine_name!r}) is not "
                        f"exported from {ENGINES_PACKAGE}.__all__"
                    ),
                    detail=f"{info.name}:unexported:{class_name}",
                    hint="add the class to the engines package __all__",
                )
            )
        if doc_text is not None and f"`{engine_name}`" not in doc_text:
            findings.append(
                Finding(
                    rule="engine-registry",
                    file=info.relpath,
                    line=line,
                    message=(
                        f"engine {engine_name!r} is registered but not "
                        f"documented in {ENGINES_DOC}"
                    ),
                    detail=f"{info.name}:undocumented:{engine_name}",
                    hint=f"add the engine to the table in {ENGINES_DOC}",
                )
            )
    return findings
