"""``async-blocking``: serve coroutines must never stall the event loop.

The serving layer's responsiveness contract (one compute thread, an always
-free event loop for admission/coalescing/rejection — see
:mod:`repro.serve.service`) holds only if no coroutine calls a blocking
function directly.  This pass walks every ``async def`` under
``repro/serve/`` and flags:

* calls to known-blocking callees: ``time.sleep``, sqlite, ``open`` and
  the ``Path`` read/write methods, ``subprocess``, synchronous
  ``urllib``/``socket`` entry points, and the repo's own compute entry
  points (``run_configs``/``run_experiment``/``run_sweep``/
  ``estimate_experiment``) — the documented escape hatch is handing the
  callable to ``run_in_executor``/``asyncio.to_thread``, which passes a
  *reference*, not a call, and therefore never trips this rule;
* ``import`` statements inside coroutine bodies — first import executes
  module code and hits the filesystem, on the event loop.

Calls that *look* blocking but are awaited through an executor are not
flagged because the blocking callee appears as an argument, not as a call
expression.  Nested ``def``/``async def`` bodies are analyzed in their own
right (a sync helper defined inside a coroutine runs wherever it is
called, which this pass cannot see).
"""

from __future__ import annotations

import ast

from repro.staticcheck.loader import Codebase, ModuleInfo
from repro.staticcheck.model import Finding
from repro.staticcheck.registry import register_pass
from repro.staticcheck.walker import dotted_name

__all__ = ["SERVE_PREFIX", "BLOCKING_CALLS", "BLOCKING_METHODS", "check_blocking"]

#: Module prefix whose coroutines are checked.
SERVE_PREFIX = "repro.serve"

#: Canonical dotted names (after alias resolution) that block the loop.
#: Exact names or ``prefix.`` entries matching a whole subtree.
BLOCKING_CALLS = (
    "time.sleep",
    "open",
    "input",
    "sqlite3.connect",
    "subprocess.",
    "urllib.request.urlopen",
    "socket.create_connection",
    "requests.",
    "shutil.",
    # The repo's own compute/estimation entry points: each drains a whole
    # batch of experiments and belongs on the compute thread, never inline
    # in a coroutine.
    "repro.experiments.sweep.run_configs",
    "repro.experiments.sweep.run_sweep",
    "repro.experiments.harness.run_experiment",
    "repro.core.pipeline.estimate_experiment",
    "repro.api.run_configs",
    "repro.api.run_sweep",
    "repro.api.run_experiment",
)

#: Method names (attribute calls on any receiver) that mean file I/O.
BLOCKING_METHODS = frozenset(
    {"read_text", "write_text", "read_bytes", "write_bytes"}
)

_HINT = (
    "run blocking work on the compute thread: await "
    "loop.run_in_executor(...)/asyncio.to_thread(...) with the callable, "
    "or use the asyncio-native equivalent (asyncio.sleep, streams)"
)


def _canonical(dotted: str, aliases: "dict[str, str]") -> str:
    head, _, rest = dotted.partition(".")
    target = aliases.get(head)
    if target is None:
        return dotted
    return f"{target}.{rest}" if rest else target


def _is_blocking(canonical: str) -> bool:
    for entry in BLOCKING_CALLS:
        if entry.endswith("."):
            if canonical.startswith(entry):
                return True
        elif canonical == entry:
            return True
    return False


def _walk_coroutine(node: ast.AsyncFunctionDef):
    """Yield nodes of the coroutine body without entering nested defs."""
    stack: "list[ast.AST]" = list(node.body)
    while stack:
        current = stack.pop()
        yield current
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(current))


def _check_module(info: ModuleInfo) -> "list[Finding]":
    findings: "list[Finding]" = []

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.AsyncFunctionDef):
                qualname = f"{prefix}.{child.name}" if prefix else child.name
                findings.extend(_check_coroutine(info, qualname, child))
                visit(child, qualname)
            elif isinstance(child, (ast.FunctionDef, ast.ClassDef)):
                visit(child, f"{prefix}.{child.name}" if prefix else child.name)

    visit(info.tree, "")
    return findings


def _check_coroutine(
    info: ModuleInfo, qualname: str, node: ast.AsyncFunctionDef
) -> "list[Finding]":
    findings: "list[Finding]" = []
    for child in _walk_coroutine(node):
        if isinstance(child, (ast.Import, ast.ImportFrom)):
            what = ", ".join(
                alias.name for alias in child.names
            )
            findings.append(
                Finding(
                    rule="async-blocking",
                    file=info.relpath,
                    line=child.lineno,
                    message=(
                        f"async def {qualname} imports {what} in its body; "
                        "first import runs module code and filesystem I/O "
                        "on the event loop"
                    ),
                    detail=f"{qualname}:import:{what}",
                    hint="move the import to module scope",
                )
            )
            continue
        if not isinstance(child, ast.Call):
            continue
        dotted = dotted_name(child.func)
        blocking_name: "str | None" = None
        if dotted is not None:
            canonical = _canonical(dotted, info.aliases)
            if _is_blocking(canonical):
                blocking_name = canonical
        if (
            blocking_name is None
            and isinstance(child.func, ast.Attribute)
            and child.func.attr in BLOCKING_METHODS
        ):
            blocking_name = f"*.{child.func.attr}"
        if blocking_name is not None:
            findings.append(
                Finding(
                    rule="async-blocking",
                    file=info.relpath,
                    line=child.lineno,
                    message=(
                        f"async def {qualname} calls blocking "
                        f"{blocking_name} directly on the event loop"
                    ),
                    detail=f"{qualname}:{blocking_name}",
                    hint=_HINT,
                )
            )
    return findings


@register_pass(
    "async-blocking",
    "repro.serve coroutines must not call blocking functions on the event loop",
)
def check_blocking(codebase: Codebase) -> "list[Finding]":
    findings: "list[Finding]" = []
    for info in codebase.iter_modules(SERVE_PREFIX):
        findings.extend(_check_module(info))
    return findings
