"""``api-drift``: the public surface the docs promise actually resolves.

Three artefacts describe the public API and nothing ties them together at
runtime until an unlucky ``from repro import X`` fails in user code:

* ``__all__`` lists scattered across the package;
* the lazy-submodule map ``_LAZY_SUBMODULES`` in ``repro/__init__.py``
  (names served by module ``__getattr__``, invisible to a naive
  name-resolution check);
* the ``repro.api`` façade, whose re-exports must keep resolving as the
  underlying modules move.

This pass checks, for every module that declares ``__all__``:

* ``__all__`` is a statically-readable list/tuple of strings with no
  duplicates;
* every exported name is bound at module level — or, for the package
  root, served by the lazy map;

and for the package root specifically:

* every lazy entry names a real submodule, appears in ``__all__``, and is
  not shadowed by an eager module-level binding (a shadowed entry means
  ``__getattr__`` never fires and the "lazy" import went eager silently);

and for the two façade modules (``repro`` and ``repro.api``):

* every ``from repro.x import name`` resolves in the source module —
  against its bindings, its lazy map, or its direct submodules.
"""

from __future__ import annotations

import ast

from repro.staticcheck.loader import Codebase, ModuleInfo
from repro.staticcheck.model import Finding
from repro.staticcheck.registry import register_pass
from repro.staticcheck.walker import module_bindings

__all__ = ["ROOT_PACKAGE", "FACADE_MODULES", "check_exports"]

#: The package whose ``__init__`` carries the lazy-submodule map.
ROOT_PACKAGE = "repro"

#: Modules whose ``from repro... import`` statements must resolve.
FACADE_MODULES = ("repro", "repro.api")


def _literal_names(node: ast.expr) -> "list[tuple[str, int]] | None":
    """String elements of a list/tuple literal, or None if not static."""
    if not isinstance(node, (ast.List, ast.Tuple)):
        return None
    out: "list[tuple[str, int]]" = []
    for element in node.elts:
        if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
            return None
        out.append((element.value, element.lineno))
    return out


def _module_level_list(info: ModuleInfo, name: str) -> "tuple[list[tuple[str, int]] | None, int | None]":
    """Statically-readable elements of a module-level ``name = [...]``.

    Returns ``(elements, line_of_assignment)``; ``(None, line)`` means the
    assignment exists but is not a literal list of strings, ``(None, None)``
    that there is no such assignment.
    """
    for node in info.tree.body:
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if name in targets:
                return _literal_names(node.value), node.lineno
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and node.target.id == name and node.value is not None:
                return _literal_names(node.value), node.lineno
    return None, None


def _direct_submodules(codebase: Codebase, package: str) -> "set[str]":
    prefix = package + "."
    return {
        name[len(prefix):]
        for name in codebase.by_name
        if name.startswith(prefix) and "." not in name[len(prefix):]
    }


def _eager_bindings(info: ModuleInfo) -> "set[str]":
    return module_bindings(info.tree)


def _check_all_list(
    codebase: Codebase, info: ModuleInfo, lazy: "set[str]"
) -> "list[Finding]":
    names, line = _module_level_list(info, "__all__")
    if line is None:
        return []
    if names is None:
        return [
            Finding(
                rule="api-drift",
                file=info.relpath,
                line=line,
                message=f"{info.name}.__all__ is not a literal list of strings",
                detail=f"{info.name}:__all__:non-literal",
                hint="spell __all__ as a plain list of string literals",
            )
        ]

    findings: "list[Finding]" = []
    bindings = _eager_bindings(info)
    submodules = _direct_submodules(codebase, info.name)
    seen: "set[str]" = set()
    for name, name_line in names:
        if name in seen:
            findings.append(
                Finding(
                    rule="api-drift",
                    file=info.relpath,
                    line=name_line,
                    message=f"{info.name}.__all__ lists {name!r} more than once",
                    detail=f"{info.name}:__all__:duplicate:{name}",
                    hint="remove the duplicate entry",
                )
            )
            continue
        seen.add(name)
        if name in bindings or name in lazy or name in submodules:
            continue
        findings.append(
            Finding(
                rule="api-drift",
                file=info.relpath,
                line=name_line,
                message=(
                    f"{info.name}.__all__ exports {name!r} but nothing binds "
                    "that name at module level"
                ),
                detail=f"{info.name}:__all__:{name}",
                hint=(
                    "bind the name (import/def/assignment) or drop it from "
                    "__all__; lazy names must be in the lazy-submodule map"
                ),
            )
        )
    return findings


def _check_lazy_map(codebase: Codebase, info: ModuleInfo) -> "list[Finding]":
    entries, line = _module_level_list(info, "_LAZY_SUBMODULES")
    if line is None:
        return []
    if entries is None:
        return [
            Finding(
                rule="api-drift",
                file=info.relpath,
                line=line,
                message=f"{info.name}._LAZY_SUBMODULES is not a literal tuple of strings",
                detail=f"{info.name}:_LAZY_SUBMODULES:non-literal",
                hint="spell the lazy map as a plain tuple of string literals",
            )
        ]

    findings: "list[Finding]" = []
    all_names, _ = _module_level_list(info, "__all__")
    exported = {name for name, _ in all_names} if all_names else set()
    bindings = _eager_bindings(info)
    for name, name_line in entries:
        if not codebase.has_module(f"{info.name}.{name}"):
            findings.append(
                Finding(
                    rule="api-drift",
                    file=info.relpath,
                    line=name_line,
                    message=(
                        f"lazy submodule {name!r} has no matching module "
                        f"{info.name}.{name}"
                    ),
                    detail=f"{info.name}:lazy:missing-module:{name}",
                    hint="create the submodule or drop the lazy entry",
                )
            )
        if all_names is not None and name not in exported:
            findings.append(
                Finding(
                    rule="api-drift",
                    file=info.relpath,
                    line=name_line,
                    message=(
                        f"lazy submodule {name!r} is served by __getattr__ "
                        "but missing from __all__"
                    ),
                    detail=f"{info.name}:lazy:unexported:{name}",
                    hint="add the submodule name to __all__",
                )
            )
        if name in bindings:
            findings.append(
                Finding(
                    rule="api-drift",
                    file=info.relpath,
                    line=name_line,
                    message=(
                        f"lazy submodule {name!r} is shadowed by an eager "
                        "module-level binding, so __getattr__ never fires"
                    ),
                    detail=f"{info.name}:lazy:shadowed:{name}",
                    hint="remove the eager binding or the lazy entry",
                )
            )
    return findings


def _lazy_entries(codebase: Codebase, module_name: str) -> "set[str]":
    info = codebase.module(module_name)
    if info is None:
        return set()
    entries, _ = _module_level_list(info, "_LAZY_SUBMODULES")
    return {name for name, _ in entries} if entries else set()


def _check_facade_imports(codebase: Codebase, info: ModuleInfo) -> "list[Finding]":
    findings: "list[Finding]" = []
    for node in ast.walk(info.tree):
        if not isinstance(node, ast.ImportFrom) or node.level:
            continue
        source = node.module
        if source is None or not (
            source == ROOT_PACKAGE or source.startswith(ROOT_PACKAGE + ".")
        ):
            continue
        source_info = codebase.module(source)
        if source_info is None:
            findings.append(
                Finding(
                    rule="api-drift",
                    file=info.relpath,
                    line=node.lineno,
                    message=f"{info.name} imports from {source}, which does not exist",
                    detail=f"{info.name}:from:{source}",
                    hint="fix the module path",
                )
            )
            continue
        resolvable = (
            _eager_bindings(source_info)
            | _lazy_entries(codebase, source)
            | _direct_submodules(codebase, source)
        )
        for alias in node.names:
            if alias.name == "*" or alias.name in resolvable:
                continue
            findings.append(
                Finding(
                    rule="api-drift",
                    file=info.relpath,
                    line=node.lineno,
                    message=(
                        f"{info.name} imports {alias.name!r} from {source}, "
                        "which does not bind that name"
                    ),
                    detail=f"{info.name}:from:{source}:{alias.name}",
                    hint="export the name from the source module or fix the import",
                )
            )
    return findings


@register_pass(
    "api-drift",
    "__all__ lists, the lazy-submodule map and the repro.api façade stay "
    "mutually consistent",
)
def check_exports(codebase: Codebase) -> "list[Finding]":
    findings: "list[Finding]" = []
    root = codebase.module(ROOT_PACKAGE)
    root_lazy = _lazy_entries(codebase, ROOT_PACKAGE)
    for info in codebase.iter_modules(ROOT_PACKAGE):
        lazy = root_lazy if info.name == ROOT_PACKAGE else set()
        findings.extend(_check_all_list(codebase, info, lazy))
    if root is not None:
        findings.extend(_check_lazy_map(codebase, root))
    for name in FACADE_MODULES:
        info = codebase.module(name)
        if info is not None:
            findings.extend(_check_facade_imports(codebase, info))
    return findings
