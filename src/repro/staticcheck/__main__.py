"""Command-line entry point: ``python -m repro.staticcheck``.

Exit status is 0 when the run is clean (no non-baselined findings and no
stale baseline entries), 1 otherwise, 2 for usage errors — so the CI job
is exactly ``python -m repro.staticcheck`` with no wrapper script.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.staticcheck import (
    BASELINE_FILENAME,
    BaselineError,
    Report,
    all_passes,
    run_staticcheck,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.staticcheck",
        description="Run the repo-specific AST invariant checks.",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="repository root to analyze (default: the repo this package lives in)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the stable machine-readable report instead of text",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help=(
            "baseline suppressions file (default: "
            f"<root>/{BASELINE_FILENAME} when present)"
        ),
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="RULE",
        help="run only this rule (repeatable; default: all registered rules)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )
    return parser


def _print_text(report: Report) -> None:
    for finding in report.findings:
        print(finding.render())
    for entry in report.stale_baseline:
        print(
            f"{entry['file']}: [baseline] stale suppression for "
            f"{entry['rule']} ({entry['detail']}): matches no finding — "
            "remove the entry"
        )
    scope = f"{report.modules} modules, {len(report.rules)} rules"
    if report.ok:
        suffix = f", {len(report.suppressed)} baselined" if report.suppressed else ""
        print(f"staticcheck: OK ({scope}{suffix})")
    else:
        print(
            f"staticcheck: FAILED ({scope}): {len(report.findings)} finding(s), "
            f"{len(report.stale_baseline)} stale baseline entr(y/ies)"
        )


def main(argv: "list[str] | None" = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        import repro.staticcheck.passes  # noqa: F401  (registration)

        for checker_pass in all_passes():
            print(f"{checker_pass.rule}: {checker_pass.title}")
        return 0

    try:
        report = run_staticcheck(
            root=args.root, rules=args.rules, baseline_path=args.baseline
        )
    except BaselineError as exc:
        print(f"staticcheck: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:  # unknown --rule
        print(f"staticcheck: {exc}", file=sys.stderr)
        return 2

    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=False))
    else:
        _print_text(report)
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
