"""Environment-variable extraction shared by the checker and the docs gate.

This generalizes the extractor that used to be inlined in
``scripts/check_docs.py``: the same logic now serves three consumers —

* the ``env-registry`` checker pass (:mod:`repro.staticcheck.passes.envvars`),
  which wants *read sites*: every place the code consults the process
  environment, with the variable name resolved and the fallback classified;
* ``scripts/check_docs.py``'s name-sync check, which wants every ``REPRO_*``
  name mentioned in a file (docstrings and prose included, wildcard family
  mentions like ``REPRO_SERVE_*`` excluded);
* ``scripts/check_docs.py``'s default-sync check, which wants the literal
  fallback values spelled next to ``REPRO_*`` names at call sites.

Like :mod:`repro.staticcheck.walker` this module must stay importable on a
bare interpreter (the docs CI job installs nothing): stdlib plus the
walker module only.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Iterator

from repro.staticcheck.walker import dotted_name, module_constants

__all__ = [
    "ENV_NAME_RE",
    "EnvRead",
    "env_names_in_text",
    "environ_read_sites",
    "env_default_literals",
]

#: Environment-variable names (digits allowed, so a hypothetical tier-2
#: cache knob matches whole); the trailing guard strips regex/prose artifacts
#: like a dangling underscore, and the lookahead keeps wildcard prose such
#: as ``REPRO_SERVE_*`` ("the whole family") from half-matching as a name.
ENV_NAME_RE = re.compile(r"REPRO_[A-Z0-9][A-Z0-9_]*[A-Z0-9](?![\w*])")

#: Receivers treated as the process environment.  ``os.environ`` is
#: definitive; bare ``environ``/``env`` names cover ``from os import
#: environ`` and the repo's helper idiom of threading a ``Mapping`` named
#: ``environ``/``env`` through for testability.
_ENVIRON_RECEIVERS = {"os.environ", "environ", "env"}


@dataclass(frozen=True)
class EnvRead:
    """One place the code reads the process environment."""

    #: resolved variable name, or ``None`` when the expression could not be
    #: resolved statically
    name: "str | None"
    #: how the name resolved: ``literal`` (string constant), ``constant``
    #: (module-level UPPER_CASE assignment), ``parameter`` (the enclosing
    #: function takes the name as an argument — a reader-helper like
    #: ``_env_int``), or ``unresolved``
    name_source: str
    lineno: int
    #: read shape: ``get`` (``environ.get``), ``getenv`` (``os.getenv``) or
    #: ``subscript`` (``environ[...]`` — no fallback possible)
    kind: str
    #: literal fallback value when one is spelled at the read site
    default: "str | int | None"
    #: whether any fallback argument was present at all
    has_default: bool
    #: the fallback is mechanically extractable: a string/int literal, a
    #: same-module constant, or absent entirely (``.get(name)`` — the
    #: ``None``-sentinel idiom, equivalent to the ``""`` sentinel)
    default_extractable: bool


def env_names_in_text(text: str) -> set[str]:
    """Every ``REPRO_*`` name mentioned in ``text`` (code or Markdown)."""
    return set(ENV_NAME_RE.findall(text))


def _resolve_name_expr(
    node: ast.expr, constants: "dict[str, object]", params: "set[str]"
) -> "tuple[str | None, str]":
    """Resolve the variable-name argument of a read site.

    Returns ``(name, source)`` where source is one of ``literal``,
    ``constant``, ``parameter`` or ``unresolved``.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value, "literal"
    if isinstance(node, ast.Name):
        if node.id in params:
            return None, "parameter"
        value = constants.get(node.id)
        if isinstance(value, str):
            return value, "constant"
    return None, "unresolved"


def _extract_default(
    args: "list[ast.expr]", constants: "dict[str, object]"
) -> "tuple[str | int | None, bool, bool]":
    """(default value, has_default, extractable) for a ``.get`` call."""
    if len(args) < 2:
        # ``.get(name)`` — the None-sentinel idiom; nothing to document.
        return None, False, True
    node = args[1]
    if isinstance(node, ast.Constant) and isinstance(node.value, (str, int)):
        return node.value, True, True
    if isinstance(node, ast.Name) and node.id.isupper():
        value = constants.get(node.id)
        if isinstance(value, (str, int)):
            return value, True, True
    return None, True, False


class _ReadSiteVisitor(ast.NodeVisitor):
    """Collect environment read sites, tracking enclosing-function params."""

    def __init__(self, constants: "dict[str, object]") -> None:
        self.constants = constants
        self.sites: list[EnvRead] = []
        self._param_stack: list[set[str]] = [set()]

    # ------------------------------------------------------- scope tracking

    def _function_params(self, node: ast.AST) -> set[str]:
        args = node.args  # type: ignore[attr-defined]
        names = {a.arg for a in args.args + args.posonlyargs + args.kwonlyargs}
        if args.vararg is not None:
            names.add(args.vararg.arg)
        if args.kwarg is not None:
            names.add(args.kwarg.arg)
        return names

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._param_stack.append(self._param_stack[-1] | self._function_params(node))
        self.generic_visit(node)
        self._param_stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._param_stack.append(self._param_stack[-1] | self._function_params(node))
        self.generic_visit(node)
        self._param_stack.pop()

    # ----------------------------------------------------------- read sites

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "get":
            receiver = dotted_name(func.value)
            if receiver in _ENVIRON_RECEIVERS and node.args:
                name, source = _resolve_name_expr(
                    node.args[0], self.constants, self._param_stack[-1]
                )
                default, has_default, extractable = _extract_default(
                    node.args, self.constants
                )
                self.sites.append(
                    EnvRead(name, source, node.lineno, "get", default, has_default, extractable)
                )
        elif dotted_name(func) == "os.getenv" and node.args:
            name, source = _resolve_name_expr(
                node.args[0], self.constants, self._param_stack[-1]
            )
            default, has_default, extractable = _extract_default(node.args, self.constants)
            self.sites.append(
                EnvRead(name, source, node.lineno, "getenv", default, has_default, extractable)
            )
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        receiver = dotted_name(node.value)
        if receiver in _ENVIRON_RECEIVERS and not isinstance(node.ctx, ast.Store):
            name, source = _resolve_name_expr(
                node.slice, self.constants, self._param_stack[-1]
            )
            self.sites.append(
                EnvRead(name, source, node.lineno, "subscript", None, False, False)
            )
        self.generic_visit(node)


def environ_read_sites(tree: ast.Module) -> list[EnvRead]:
    """Every statically visible environment read in one module."""
    visitor = _ReadSiteVisitor(module_constants(tree))
    visitor.visit(tree)
    return visitor.sites


def _adjacent_literal_pairs(tree: ast.Module) -> Iterator[tuple[str, ast.expr]]:
    """``("REPRO_X", <expr>)`` adjacencies in call arguments and sequences.

    This mirrors the old regex's shape — an env-var string literal directly
    followed by a comma and a value — so the default-sync check keeps its
    exact semantics while gaining real constant resolution.
    """
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            elements = node.args
        elif isinstance(node, (ast.Tuple, ast.List)):
            elements = node.elts
        else:
            continue
        for first, second in zip(elements, elements[1:]):
            if (
                isinstance(first, ast.Constant)
                and isinstance(first.value, str)
                and ENV_NAME_RE.fullmatch(first.value)
            ):
                yield first.value, second


def env_default_literals(tree: ast.Module) -> "dict[str, set[str]]":
    """Env-var name -> literal fallback values spelled at read sites.

    Values come back as strings (``64`` -> ``"64"``) because the consumer
    compares them against backticked Markdown table cells.  Empty strings
    are the "unset" sentinel, not a default, and are skipped — as are
    fallbacks that resolve to nothing mechanical (function calls, lowercase
    names, constants without a literal same-module assignment).
    """
    constants = module_constants(tree)
    defaults: "dict[str, set[str]]" = {}
    for name, value_node in _adjacent_literal_pairs(tree):
        value: "str | None" = None
        if isinstance(value_node, ast.Constant) and isinstance(value_node.value, (str, int)):
            if not isinstance(value_node.value, bool):
                value = str(value_node.value)
        elif isinstance(value_node, ast.Name) and value_node.id.isupper():
            resolved = constants.get(value_node.id)
            if isinstance(resolved, (str, int)) and not isinstance(resolved, bool):
                value = str(resolved)
        if value:  # empty string is an "unset" sentinel, not a default
            defaults.setdefault(name, set()).add(value)
    return defaults
