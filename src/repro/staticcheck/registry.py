"""Pass registry: how rules plug into the checker.

A pass is a callable taking a :class:`~repro.staticcheck.loader.Codebase`
and returning findings, registered under a rule id with
:func:`register_pass`.  The CLI runs every registered pass by default;
``--rule`` narrows the run.  Adding a rule is: write the visitor, decorate
it, document it in ``docs/staticcheck.md``, and add a seeded-violation
fixture to ``tests/test_staticcheck.py`` proving it fires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.staticcheck.loader import Codebase
from repro.staticcheck.model import Finding

__all__ = ["CheckerPass", "register_pass", "all_passes", "get_pass", "run_passes"]


@dataclass(frozen=True)
class CheckerPass:
    """One registered rule."""

    rule: str
    title: str
    run: "Callable[[Codebase], list[Finding]]"


_REGISTRY: "dict[str, CheckerPass]" = {}


def register_pass(
    rule: str, title: str
) -> "Callable[[Callable[[Codebase], list[Finding]]], Callable[[Codebase], list[Finding]]]":
    """Register ``func`` as the pass implementing ``rule``."""

    def decorator(func: "Callable[[Codebase], list[Finding]]"):
        if rule in _REGISTRY:
            raise ValueError(f"pass {rule!r} is already registered")
        _REGISTRY[rule] = CheckerPass(rule=rule, title=title, run=func)
        return func

    return decorator


def all_passes() -> "list[CheckerPass]":
    """Every registered pass, in rule-id order."""
    return [_REGISTRY[rule] for rule in sorted(_REGISTRY)]


def get_pass(rule: str) -> CheckerPass:
    try:
        return _REGISTRY[rule]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown rule {rule!r}; registered rules: {known}") from None


def run_passes(
    codebase: Codebase, rules: "Iterable[str] | None" = None
) -> "tuple[list[str], list[Finding]]":
    """Run the selected (default: all) passes over ``codebase``.

    Returns the rule ids that ran and the combined findings sorted by
    (file, line, rule) so output and JSON are deterministic.
    """
    selected = all_passes() if rules is None else [get_pass(rule) for rule in sorted(set(rules))]
    findings: "list[Finding]" = []
    for checker_pass in selected:
        findings.extend(checker_pass.run(codebase))
    findings.sort(key=lambda f: (f.file, f.line, f.rule, f.detail))
    return [p.rule for p in selected], findings
