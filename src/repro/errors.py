"""Exception hierarchy for the :mod:`repro` package.

All errors raised intentionally by the library derive from
:class:`ReproError` so that callers can catch library failures without
catching programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """Raised when a configuration value is invalid or inconsistent."""


class DTypeError(ReproError):
    """Raised when an unknown or unsupported datatype is requested."""


class PatternError(ReproError):
    """Raised when an input-pattern specification is invalid."""


class DeviceError(ReproError):
    """Raised when a GPU device specification is unknown or invalid."""


class KernelError(ReproError):
    """Raised when a GEMM problem or tiling configuration is invalid."""


class ActivityError(ReproError):
    """Raised when switching-activity estimation receives invalid inputs."""


class PowerModelError(ReproError):
    """Raised when the power model is mis-calibrated or misused."""


class TelemetryError(ReproError):
    """Raised by the simulated NVML/DCGM telemetry layer."""


class ExperimentError(ReproError):
    """Raised when an experiment definition or run is invalid."""


class ServingError(ReproError):
    """Raised by the estimation-serving layer (:mod:`repro.serve`)."""


class ServiceOverloadedError(ServingError):
    """Raised when the serving layer rejects a request for lack of queue room."""


class ServiceTimeoutError(ServingError):
    """Raised when a request exceeds its serving deadline (HTTP 504)."""


class FaultInjectionError(ReproError):
    """Raised for an invalid ``REPRO_FAULTS`` schedule or injection point."""


class InjectedFaultError(ReproError):
    """The generic exception :func:`repro.faults.fault_point` injects.

    Fault modes that simulate a specific failure raise that failure's own
    type (``sqlite3.OperationalError``, ``OSError``, ...); modes without a
    site-specific type raise this one, so chaos tests can assert "a typed
    repro error, never a hang or a wrong answer".
    """


class FleetError(ReproError):
    """Raised by the fleet-scale trace simulator (:mod:`repro.fleet`)."""


class AnalysisError(ReproError):
    """Raised by analysis routines on inconsistent inputs."""


class OptimizationError(ReproError):
    """Raised by the power-aware optimizers."""
