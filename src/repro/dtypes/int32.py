"""32-bit signed integer (INT32) datatype (extension beyond the paper's setups)."""

from __future__ import annotations

import numpy as np

from repro.dtypes.base import IntFormat, NativeIntSpec

__all__ = ["INT32", "INT32_FORMAT"]

INT32_FORMAT = IntFormat(bits=32, signed=True)

INT32 = NativeIntSpec(
    name="int32",
    value_dtype=np.dtype(np.int32),
    word_dtype=np.dtype(np.uint32),
    int_format=INT32_FORMAT,
    tensor_core=False,
)
