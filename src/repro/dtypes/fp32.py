"""IEEE-754 binary32 (FP32) datatype, executed on CUDA cores."""

from __future__ import annotations

import numpy as np

from repro.dtypes.base import FloatFormat, NativeFloatSpec

__all__ = ["FP32", "FP32_FORMAT"]

FP32_FORMAT = FloatFormat(exponent_bits=8, mantissa_bits=23)

FP32 = NativeFloatSpec(
    name="fp32",
    value_dtype=np.dtype(np.float32),
    word_dtype=np.dtype(np.uint32),
    float_format=FP32_FORMAT,
    tensor_core=False,
)
