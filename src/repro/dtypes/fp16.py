"""IEEE-754 binary16 (FP16) datatype.

Two variants mirror the paper's setups: ``fp16`` runs on CUDA cores and
``fp16_t`` runs on tensor cores (same bit format, different execution path
and therefore different throughput and power base).
"""

from __future__ import annotations

import numpy as np

from repro.dtypes.base import FloatFormat, NativeFloatSpec

__all__ = ["FP16", "FP16_T", "FP16_FORMAT"]

FP16_FORMAT = FloatFormat(exponent_bits=5, mantissa_bits=10)

FP16 = NativeFloatSpec(
    name="fp16",
    value_dtype=np.dtype(np.float16),
    word_dtype=np.dtype(np.uint16),
    float_format=FP16_FORMAT,
    tensor_core=False,
)

FP16_T = NativeFloatSpec(
    name="fp16_t",
    value_dtype=np.dtype(np.float16),
    word_dtype=np.dtype(np.uint16),
    float_format=FP16_FORMAT,
    tensor_core=True,
)
