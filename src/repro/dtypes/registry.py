"""Registry mapping datatype names to :class:`~repro.dtypes.base.DTypeSpec`."""

from __future__ import annotations

from repro.dtypes.base import DTypeSpec
from repro.dtypes.bf16 import BF16
from repro.dtypes.fp16 import FP16, FP16_T
from repro.dtypes.fp32 import FP32
from repro.dtypes.fp64 import FP64
from repro.dtypes.int8 import INT8
from repro.dtypes.int32 import INT32
from repro.errors import DTypeError

__all__ = ["get_dtype", "list_dtypes", "register_dtype", "PAPER_DTYPES"]

#: The four datatype setups evaluated in the paper, in its reporting order.
PAPER_DTYPES: tuple[str, ...] = ("fp32", "fp16", "fp16_t", "int8")

_ALIASES = {
    "float32": "fp32",
    "float16": "fp16",
    "half": "fp16",
    "fp16-t": "fp16_t",
    "fp16t": "fp16_t",
    "tf16": "fp16_t",
    "bfloat16": "bf16",
    "float64": "fp64",
    "double": "fp64",
    "int8_t": "int8",
}

_REGISTRY: dict[str, DTypeSpec] = {}


def register_dtype(spec: DTypeSpec, overwrite: bool = False) -> DTypeSpec:
    """Register a datatype spec under its canonical name."""
    key = spec.name.lower()
    if key in _REGISTRY and not overwrite:
        raise DTypeError(f"datatype {key!r} is already registered")
    _REGISTRY[key] = spec
    return spec


def get_dtype(name: "str | DTypeSpec") -> DTypeSpec:
    """Look up a datatype by name (or pass through an existing spec)."""
    if isinstance(name, DTypeSpec):
        return name
    key = str(name).strip().lower()
    key = _ALIASES.get(key, key)
    try:
        return _REGISTRY[key]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise DTypeError(f"unknown datatype {name!r}; known datatypes: {known}") from None


def list_dtypes() -> list[str]:
    """Return the canonical names of all registered datatypes."""
    return sorted(_REGISTRY)


for _spec in (FP64, FP32, FP16, FP16_T, BF16, INT8, INT32):
    register_dtype(_spec)
