"""Abstract datatype specification.

A :class:`DTypeSpec` knows how to take arbitrary real values (as
``float64``), quantize them the way the GPU kernel's input conversion would
(round to nearest representable value), and expose the exact bit patterns as
unsigned integer *words*.  All switching-activity estimation operates on
those words.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DTypeError

__all__ = ["FloatFormat", "IntFormat", "DTypeSpec"]


@dataclass(frozen=True)
class FloatFormat:
    """Bit layout of an IEEE-754-style binary floating point format."""

    exponent_bits: int
    mantissa_bits: int

    @property
    def total_bits(self) -> int:
        return 1 + self.exponent_bits + self.mantissa_bits

    @property
    def bias(self) -> int:
        return (1 << (self.exponent_bits - 1)) - 1

    @property
    def max_exponent(self) -> int:
        return (1 << self.exponent_bits) - 1

    @property
    def max_finite(self) -> float:
        """Largest finite representable magnitude."""
        max_biased = self.max_exponent - 1
        mantissa_full = 2.0 - 2.0 ** (-self.mantissa_bits)
        return mantissa_full * 2.0 ** (max_biased - self.bias)

    @property
    def min_normal(self) -> float:
        """Smallest positive normal magnitude."""
        return 2.0 ** (1 - self.bias)


@dataclass(frozen=True)
class IntFormat:
    """Bit layout of a two's-complement integer format."""

    bits: int
    signed: bool = True

    @property
    def min_value(self) -> int:
        return -(1 << (self.bits - 1)) if self.signed else 0

    @property
    def max_value(self) -> int:
        return (1 << (self.bits - 1)) - 1 if self.signed else (1 << self.bits) - 1


class DTypeSpec:
    """Base class for all datatype specifications.

    Subclasses implement :meth:`encode` (values → bit words) and
    :meth:`decode` (bit words → ``float64`` values); everything else is
    derived.
    """

    #: canonical lowercase name, e.g. ``"fp16_t"``
    name: str = "abstract"
    #: ``"float"`` or ``"int"``
    kind: str = "abstract"
    #: total bits per element
    bits: int = 0
    #: NumPy dtype of the unsigned words returned by :meth:`encode`
    word_dtype: np.dtype = np.dtype(np.uint32)
    #: NumPy dtype used to store quantized values
    value_dtype: np.dtype = np.dtype(np.float64)
    #: whether the kernel for this datatype runs on tensor cores
    tensor_core: bool = False
    #: bit layout descriptors (one of the two is set by subclasses)
    float_format: FloatFormat | None = None
    int_format: IntFormat | None = None

    # ------------------------------------------------------------------ API

    def encode(self, values: np.ndarray) -> np.ndarray:
        """Quantize ``values`` and return their bit patterns as unsigned words."""
        raise NotImplementedError

    def decode(self, words: np.ndarray) -> np.ndarray:
        """Return the ``float64`` values represented by ``words``."""
        raise NotImplementedError

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Round ``values`` to the nearest representable value (as ``float64``)."""
        return self.decode(self.encode(values))

    # -------------------------------------------------------------- helpers

    def _check_words(self, words: np.ndarray) -> np.ndarray:
        arr = np.asarray(words)
        if arr.dtype != self.word_dtype:
            raise DTypeError(
                f"{self.name}: expected words of dtype {self.word_dtype}, got {arr.dtype}"
            )
        return arr

    @property
    def representable_range(self) -> tuple[float, float]:
        """(min, max) finite representable values."""
        if self.float_format is not None:
            hi = self.float_format.max_finite
            return (-hi, hi)
        if self.int_format is not None:
            return (float(self.int_format.min_value), float(self.int_format.max_value))
        raise DTypeError(f"{self.name}: no format descriptor")

    @property
    def is_float(self) -> bool:
        return self.kind == "float"

    @property
    def is_integer(self) -> bool:
        return self.kind == "int"

    # ----------------------------------------------------- float bit fields

    def sign_field(self, words: np.ndarray) -> np.ndarray:
        """Extract the sign bit of each word (floats only)."""
        fmt = self._float_format()
        arr = self._check_words(words)
        shift = fmt.exponent_bits + fmt.mantissa_bits
        return (arr >> shift) & self.word_dtype.type(1)

    def exponent_field(self, words: np.ndarray) -> np.ndarray:
        """Extract the biased exponent field of each word (floats only)."""
        fmt = self._float_format()
        arr = self._check_words(words)
        mask = self.word_dtype.type((1 << fmt.exponent_bits) - 1)
        return (arr >> np.uint8(fmt.mantissa_bits)) & mask

    def mantissa_field(self, words: np.ndarray) -> np.ndarray:
        """Extract the mantissa field of each word (floats only)."""
        fmt = self._float_format()
        arr = self._check_words(words)
        mask = self.word_dtype.type((1 << fmt.mantissa_bits) - 1)
        return arr & mask

    def _float_format(self) -> FloatFormat:
        if self.float_format is None:
            raise DTypeError(f"{self.name}: not a floating point datatype")
        return self.float_format

    # -------------------------------------------------------------- dunders

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<DTypeSpec {self.name} ({self.bits}-bit {self.kind})>"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DTypeSpec) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("DTypeSpec", self.name))


class NativeFloatSpec(DTypeSpec):
    """Floating point datatype backed natively by a NumPy dtype.

    Covers FP64, FP32 and FP16 where NumPy provides the storage type and the
    round-to-nearest conversion; the bit pattern is obtained with a zero-copy
    view.
    """

    def __init__(
        self,
        name: str,
        value_dtype: np.dtype,
        word_dtype: np.dtype,
        float_format: FloatFormat,
        tensor_core: bool = False,
    ) -> None:
        self.name = name
        self.kind = "float"
        self.value_dtype = np.dtype(value_dtype)
        self.word_dtype = np.dtype(word_dtype)
        self.float_format = float_format
        self.int_format = None
        self.bits = float_format.total_bits
        self.tensor_core = tensor_core
        if self.value_dtype.itemsize != self.word_dtype.itemsize:
            raise DTypeError(
                f"{name}: value dtype {value_dtype} and word dtype {word_dtype} "
                "must have the same width"
            )

    def encode(self, values: np.ndarray) -> np.ndarray:
        arr = np.ascontiguousarray(np.asarray(values, dtype=np.float64))
        with np.errstate(over="ignore", invalid="ignore"):
            native = arr.astype(self.value_dtype)
        return native.view(self.word_dtype)

    def decode(self, words: np.ndarray) -> np.ndarray:
        arr = np.ascontiguousarray(self._check_words(words))
        return arr.view(self.value_dtype).astype(np.float64)


class NativeIntSpec(DTypeSpec):
    """Integer datatype backed natively by a NumPy dtype (with saturation)."""

    def __init__(
        self,
        name: str,
        value_dtype: np.dtype,
        word_dtype: np.dtype,
        int_format: IntFormat,
        tensor_core: bool = False,
    ) -> None:
        self.name = name
        self.kind = "int"
        self.value_dtype = np.dtype(value_dtype)
        self.word_dtype = np.dtype(word_dtype)
        self.int_format = int_format
        self.float_format = None
        self.bits = int_format.bits
        self.tensor_core = tensor_core
        if self.value_dtype.itemsize != self.word_dtype.itemsize:
            raise DTypeError(
                f"{name}: value dtype {value_dtype} and word dtype {word_dtype} "
                "must have the same width"
            )

    def encode(self, values: np.ndarray) -> np.ndarray:
        fmt = self.int_format
        assert fmt is not None
        arr = np.asarray(values, dtype=np.float64)
        rounded = np.rint(arr)
        clipped = np.clip(rounded, fmt.min_value, fmt.max_value)
        native = np.ascontiguousarray(clipped.astype(self.value_dtype))
        return native.view(self.word_dtype)

    def decode(self, words: np.ndarray) -> np.ndarray:
        arr = np.ascontiguousarray(self._check_words(words))
        return arr.view(self.value_dtype).astype(np.float64)
