"""bfloat16 datatype (extension beyond the paper's setups).

NumPy has no native bfloat16, so encoding goes through float32: the value is
rounded to nearest-even by adding the rounding increment to the float32 bit
pattern before truncating to the upper 16 bits.
"""

from __future__ import annotations

import numpy as np

from repro.dtypes.base import DTypeSpec, FloatFormat

__all__ = ["BF16", "BF16_FORMAT", "BFloat16Spec"]

BF16_FORMAT = FloatFormat(exponent_bits=8, mantissa_bits=7)


class BFloat16Spec(DTypeSpec):
    """bfloat16: float32 dynamic range with a 7-bit mantissa."""

    def __init__(self, name: str = "bf16", tensor_core: bool = True) -> None:
        self.name = name
        self.kind = "float"
        self.bits = 16
        self.word_dtype = np.dtype(np.uint16)
        self.value_dtype = np.dtype(np.float32)
        self.float_format = BF16_FORMAT
        self.int_format = None
        self.tensor_core = tensor_core

    def encode(self, values: np.ndarray) -> np.ndarray:
        arr = np.ascontiguousarray(np.asarray(values, dtype=np.float32))
        bits32 = arr.view(np.uint32)
        # Round to nearest even on the 16 truncated bits.
        lsb = (bits32 >> np.uint32(16)) & np.uint32(1)
        rounding = np.uint32(0x7FFF) + lsb
        rounded = bits32 + rounding
        # NaNs must stay NaN: truncation of a rounded NaN payload can produce
        # infinity, so force the quiet bit for NaN inputs.
        nan_mask = np.isnan(arr)
        upper = (rounded >> np.uint32(16)).astype(np.uint16)
        if np.any(nan_mask):
            upper = np.where(nan_mask, np.uint16(0x7FC0), upper)
        return upper

    def decode(self, words: np.ndarray) -> np.ndarray:
        arr = np.ascontiguousarray(self._check_words(words)).astype(np.uint32)
        bits32 = arr << np.uint32(16)
        return bits32.view(np.float32).astype(np.float64)


BF16 = BFloat16Spec()
