"""Value conversion helpers shared by pattern generators and experiments.

The paper generates all floating point inputs as FP32 values and converts
them to the target datatype with round-to-nearest; integer inputs are drawn
with a narrower distribution so values stay in range.  These helpers
centralize that behaviour.
"""

from __future__ import annotations

import numpy as np

from repro.dtypes.base import DTypeSpec
from repro.dtypes.registry import get_dtype

__all__ = [
    "quantize_matrix",
    "encode_matrix",
    "paper_distribution_scale",
    "clip_to_range",
]

#: Standard deviation used by the paper for Gaussian inputs: 2**10 = 210 ≈ "210"
#: for floating point datatypes and 25 for INT8 (Fig. 2 caption).
PAPER_FP_STD = 210.0
PAPER_INT8_STD = 25.0


def paper_distribution_scale(dtype: "str | DTypeSpec") -> float:
    """Return the Gaussian standard deviation the paper uses for a datatype."""
    spec = get_dtype(dtype)
    return PAPER_INT8_STD if spec.is_integer else PAPER_FP_STD


def clip_to_range(values: np.ndarray, dtype: "str | DTypeSpec", margin: float = 0.0) -> np.ndarray:
    """Clip values into the representable range of ``dtype``.

    ``margin`` shrinks the range by a relative amount (e.g. ``0.01`` keeps
    values 1% away from the extremes), mirroring the paper's practice of
    choosing parameters so that values "practically fall within each
    datatype's representation range".
    """
    spec = get_dtype(dtype)
    low, high = spec.representable_range
    if margin:
        span = (high - low) * margin / 2.0
        low, high = low + span, high - span
    return np.clip(np.asarray(values, dtype=np.float64), low, high)


def quantize_matrix(values: np.ndarray, dtype: "str | DTypeSpec") -> np.ndarray:
    """Round ``values`` to the nearest representable value of ``dtype`` (float64 out)."""
    spec = get_dtype(dtype)
    return spec.quantize(np.asarray(values, dtype=np.float64))


def encode_matrix(values: np.ndarray, dtype: "str | DTypeSpec") -> np.ndarray:
    """Return the bit patterns of ``values`` in ``dtype`` as unsigned words."""
    spec = get_dtype(dtype)
    return spec.encode(np.asarray(values, dtype=np.float64))
