"""Bit-level datatype models (FP32, FP16, FP16-T, BF16, FP64, INT8, INT32).

The paper compares GEMM power across datatype setups; every experiment needs
to (a) quantize generated FP32 values into the target datatype with
round-to-nearest conversion and (b) inspect the exact bit patterns the GPU
datapath would see.  This package provides both.
"""

from repro.dtypes.base import DTypeSpec, FloatFormat, IntFormat
from repro.dtypes.registry import (
    PAPER_DTYPES,
    get_dtype,
    list_dtypes,
    register_dtype,
)

__all__ = [
    "DTypeSpec",
    "FloatFormat",
    "IntFormat",
    "get_dtype",
    "list_dtypes",
    "register_dtype",
    "PAPER_DTYPES",
]
