"""8-bit signed integer (INT8) datatype with saturating conversion."""

from __future__ import annotations

import numpy as np

from repro.dtypes.base import IntFormat, NativeIntSpec

__all__ = ["INT8", "INT8_FORMAT"]

INT8_FORMAT = IntFormat(bits=8, signed=True)

INT8 = NativeIntSpec(
    name="int8",
    value_dtype=np.dtype(np.int8),
    word_dtype=np.dtype(np.uint8),
    int_format=INT8_FORMAT,
    tensor_core=False,
)
