"""IEEE-754 binary64 (FP64) datatype (extension beyond the paper's setups)."""

from __future__ import annotations

import numpy as np

from repro.dtypes.base import FloatFormat, NativeFloatSpec

__all__ = ["FP64", "FP64_FORMAT"]

FP64_FORMAT = FloatFormat(exponent_bits=11, mantissa_bits=52)

FP64 = NativeFloatSpec(
    name="fp64",
    value_dtype=np.dtype(np.float64),
    word_dtype=np.dtype(np.uint64),
    float_format=FP64_FORMAT,
    tensor_core=False,
)
