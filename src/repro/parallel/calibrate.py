"""Calibrated chunk-budget sizing for the batched activity engine.

The batched estimators (:mod:`repro.activity.engine`) process seed batches
in chunks whose stacked operand working set stays cache-resident: stacking
more data than fits in cache turns every estimator pass into a DRAM stream
and is *slower* than going seed by seed.  The right budget therefore
depends on the machine's cache hierarchy, not on the workload — yet it used
to be a hard-coded 1 MiB constant tuned on one development box.

This module replaces the constant with a measured value, resolved in
precedence order:

1. ``REPRO_BATCH_CHUNK_BUDGET`` — explicit override, accepts the same human
   sizes as the cache CLI (``"512K"``, ``"2M"``, plain bytes).
2. A calibration file persisted under ``$REPRO_CACHE_DIR/calibration/`` by
   a previous probe on this machine.
3. A one-shot probe (:func:`calibrate_chunk_budget`): time the engine's
   characteristic kernel (XOR + popcount + reduce, the toggle-counting
   inner loop) over working sets of increasing size and keep the largest
   one that still runs at near-peak per-byte throughput.  The result is
   written back to the calibration file when a cache directory is
   configured, so the probe runs once per machine, not once per process.
4. :data:`DEFAULT_CHUNK_BUDGET_BYTES` if the probe itself fails.

The budget only sizes chunks; chunked estimation is bit-for-bit identical
to unchunked estimation at any chunk size, so calibration can never change
results, only speed.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import ExperimentError
from repro.util.bits import popcount

__all__ = [
    "DEFAULT_CHUNK_BUDGET_BYTES",
    "ENV_CHUNK_BUDGET",
    "CALIBRATION_SUBDIR",
    "CALIBRATION_FILENAME",
    "CalibrationResult",
    "calibrate_chunk_budget",
    "chunk_budget_bytes",
    "seed_probed_budget",
    "calibration_path",
]

#: Fallback budget when nothing else is available — the historical constant
#: (half a typical per-core L2) that :mod:`repro.activity.engine` used to
#: hard-code as ``BATCH_CHUNK_BUDGET_BYTES``.
DEFAULT_CHUNK_BUDGET_BYTES = 1 << 20

#: Environment variable overriding the calibrated budget (human sizes OK).
ENV_CHUNK_BUDGET = "REPRO_BATCH_CHUNK_BUDGET"

#: Where the probe persists its result, under the shared cache root.  A
#: dedicated subdirectory keeps the file out of the experiment tier's
#: ``<root>/*.json`` namespace, so cache GC never evicts the calibration.
CALIBRATION_SUBDIR = "calibration"
CALIBRATION_FILENAME = "chunk_budget.json"

#: Working-set sizes the probe times, in bytes.  Spanning 256 KiB–8 MiB
#: covers per-core L2 through shared L3 on every x86/ARM part the paper's
#: sweeps run on; anything larger is firmly DRAM-bound and never wins.
PROBE_SIZES_BYTES = (1 << 18, 1 << 19, 1 << 20, 1 << 21, 1 << 22, 1 << 23)

#: Keep the largest probed size whose per-byte throughput is at least this
#: fraction of the best observed — "still effectively cache-resident".
PROBE_KEEP_FRACTION = 0.85

#: Bounds applied to whatever the probe (or the disk file) reports, so a
#: noisy measurement can never produce a pathological chunking policy.
MIN_CHUNK_BUDGET_BYTES = 1 << 16
MAX_CHUNK_BUDGET_BYTES = 1 << 26


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of one :func:`calibrate_chunk_budget` probe."""

    #: chosen per-chunk working-set budget, in bytes
    budget_bytes: int
    #: measured per-byte throughput for every probed size (bytes/second)
    throughput_bytes_per_s: dict[int, float] = field(default_factory=dict)

    def as_dict(self) -> dict[str, object]:
        return {
            "budget_bytes": self.budget_bytes,
            "throughput_bytes_per_s": {
                str(size): rate for size, rate in self.throughput_bytes_per_s.items()
            },
        }


def calibration_path(root: "str | Path") -> Path:
    """Calibration file location under a cache root directory."""
    return Path(root) / CALIBRATION_SUBDIR / CALIBRATION_FILENAME


def _probe_pass(words: np.ndarray, shifted: np.ndarray) -> int:
    """One timed pass of the engine's characteristic toggle kernel.

    Uses the *production* popcount (:func:`repro.util.bits.popcount` — the
    native ``bitwise_count`` ufunc or its precomputed byte-table fallback),
    so the probe measures exactly the code path whose chunking it tunes.
    """
    return int(popcount(np.bitwise_xor(words, shifted)).sum())


def calibrate_chunk_budget(
    sizes: "tuple[int, ...]" = PROBE_SIZES_BYTES,
    repeats: int = 3,
) -> CalibrationResult:
    """Measure per-byte toggle-kernel throughput across working-set sizes.

    For each candidate size the kernel runs ``repeats`` times on a buffer of
    that size and the fastest pass is kept (minimum over repeats rejects
    scheduler noise).  The chosen budget is the largest size still within
    :data:`PROBE_KEEP_FRACTION` of the best per-byte throughput: large
    chunks amortize per-pass overhead, so we take as much as the cache
    allows but back off as soon as throughput falls off the cache cliff.

    The probe costs a few tens of milliseconds and touches at most
    ``max(sizes)`` bytes of scratch memory.
    """
    if repeats < 1:
        raise ExperimentError(f"repeats must be >= 1, got {repeats}")
    throughput: dict[int, float] = {}
    for size_bytes in sizes:
        n = max(size_bytes // 8, 1)
        words = np.arange(n, dtype=np.uint64)
        words *= np.uint64(0x9E3779B97F4A7C15)  # decorrelate neighbouring words
        shifted = np.roll(words, 1)
        _probe_pass(words, shifted)  # warm the buffer and the ufunc path
        best = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            _probe_pass(words, shifted)
            best = min(best, time.perf_counter() - started)
        throughput[size_bytes] = size_bytes / best if best > 0 else float("inf")
    peak = max(throughput.values())
    eligible = [
        size
        for size, rate in throughput.items()
        if rate >= PROBE_KEEP_FRACTION * peak
    ]
    budget = max(eligible)
    budget = min(max(budget, MIN_CHUNK_BUDGET_BYTES), MAX_CHUNK_BUDGET_BYTES)
    return CalibrationResult(budget_bytes=budget, throughput_bytes_per_s=throughput)


# One probe per process at most; the chosen budget is a machine property,
# so it is also persisted to disk when a cache root is configured.
_probed_budget: int | None = None
# Memo of the fully resolved budget, keyed by the environment that produced
# it so tests (and long-lived processes) that flip the variables re-resolve.
_resolved: "tuple[tuple[str | None, str | None], int] | None" = None
# Serializes resolution: the threads backend's workers all reach
# chunk_budget_bytes() together on a cold start, and N concurrent probes
# would contend on the very cache hierarchy being measured (then persist the
# distorted result).  Under the lock, one thread probes on a quiet machine
# while the rest wait for the memo.
_resolve_lock = threading.Lock()


def _parse_budget(raw: str) -> int:
    from repro.cache.lifecycle import parse_size

    try:
        value = parse_size(raw)
    except ValueError as exc:
        raise ExperimentError(f"{ENV_CHUNK_BUDGET}: {exc}") from None
    if value < 1:
        raise ExperimentError(f"{ENV_CHUNK_BUDGET} must be >= 1 byte, got {raw!r}")
    return value


def _load_persisted(root: str) -> int | None:
    path = calibration_path(root)
    try:
        data = json.loads(path.read_text())
        budget = int(data["budget_bytes"])
    except (OSError, ValueError, KeyError, TypeError):
        return None
    if not MIN_CHUNK_BUDGET_BYTES <= budget <= MAX_CHUNK_BUDGET_BYTES:
        return None
    return budget


def _persist(root: str, result: CalibrationResult) -> None:
    """Best-effort atomic write (same temp-file dance as the cache stores)."""
    path = calibration_path(root)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(result.as_dict()))
        os.replace(tmp, path)
    except OSError:
        pass  # calibration is a pure performance hint; never fail the caller


def seed_probed_budget(budget: int) -> None:
    """Seed this process's probe memo with an already-resolved budget.

    Used as a process-pool worker initializer: the sweep runner resolves the
    budget once in the parent and hands it to every worker at start-up, so
    workers never probe — whatever the start method (fork or spawn) and
    whether or not a cache directory is configured.  Explicit configuration
    still wins inside the worker: resolution checks the
    ``REPRO_BATCH_CHUNK_BUDGET`` override and the persisted calibration file
    before falling back to this memo.
    """
    global _probed_budget, _resolved
    value = int(budget)
    if value < 1:
        raise ExperimentError(f"budget must be >= 1 byte, got {budget}")
    with _resolve_lock:
        _probed_budget = value
        _resolved = None  # let the next resolution pick the seed up


def chunk_budget_bytes(refresh: bool = False) -> int:
    """The per-chunk working-set budget the batched engine should target.

    Resolution order: ``REPRO_BATCH_CHUNK_BUDGET`` override, then the
    calibration file under ``$REPRO_CACHE_DIR``, then a one-shot probe
    (persisted back to the calibration file when possible), then the
    built-in default.  ``refresh=True`` drops the in-process memo and
    re-resolves (it does not delete the persisted file).
    """
    global _probed_budget, _resolved
    env_key = (
        os.environ.get(ENV_CHUNK_BUDGET) or None,
        os.environ.get("REPRO_CACHE_DIR") or None,
    )
    with _resolve_lock:
        if refresh:
            _resolved = None
            _probed_budget = None
        if _resolved is not None and _resolved[0] == env_key:
            return _resolved[1]

        override, root = env_key
        if override is not None:
            budget = _parse_budget(override)
        else:
            budget = _load_persisted(root) if root is not None else None
            if budget is None:
                if _probed_budget is None:
                    try:
                        result = calibrate_chunk_budget()
                    except Exception:
                        result = CalibrationResult(
                            budget_bytes=DEFAULT_CHUNK_BUDGET_BYTES
                        )
                    _probed_budget = result.budget_bytes
                else:
                    # A probe already ran (possibly before the cache root was
                    # configured); persist the memo so other processes stop
                    # re-probing — once per machine, not once per process.
                    result = CalibrationResult(budget_bytes=_probed_budget)
                if root is not None:
                    _persist(root, result)
                budget = _probed_budget
        _resolved = (env_key, budget)
        return budget
