"""Shared-memory result transfer for the process backend.

A sweep worker process used to hand its :class:`ExperimentResult` — per-seed
measurements, each carrying a full :class:`ActivityReport` — back through the
``ProcessPoolExecutor`` result pipe, which pickles the object graph, streams
it through a pipe and unpickles it in the parent.  For paper-scale sweeps the
results dwarf the operand-free configs going *out*, so the return path
dominates pool overhead.

This module moves the payload out of the pipe: the worker serializes its
chunk of results to JSON bytes (the exact representation the disk cache
already round-trips, so values stay bit-for-bit identical), publishes them
in a :class:`multiprocessing.shared_memory.SharedMemory` segment, and sends
only a tiny ``(name, size)`` handle through the pipe.  The parent attaches,
decodes and unlinks the segment.  When shared memory is unavailable (or
disabled with ``REPRO_SHM=0``) the worker falls back to returning the
results inline, i.e. the classic pickle path.

Ownership protocol: the *worker* creates a segment and never unlinks it;
the *parent* unlinks exactly once, whether decoding succeeds or not.  Both
sides detach the segment from the Python side of the resource tracker (via
``track=False`` where available, else by unregistering) because the tracker
would otherwise double-book cleanup across the process boundary.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.errors import ExperimentError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.results import ExperimentResult

__all__ = [
    "ENV_DISABLE_SHM",
    "ShmHandle",
    "InlineChunk",
    "shm_available",
    "share_chunk",
    "receive_chunk",
    "discard_chunk",
    "encode_experiment_results",
    "decode_experiment_results",
]

#: Set to ``0``/``false``-ish to force the pickle fallback even where shared
#: memory works (useful for debugging and for the equivalence tests).
ENV_DISABLE_SHM = "REPRO_SHM"


@dataclass(frozen=True)
class ShmHandle:
    """What a worker sends back instead of its results: a segment name and
    the payload length (segments are page-rounded, so the length matters)."""

    name: str
    size: int
    count: int


@dataclass(frozen=True)
class InlineChunk:
    """Pickle-fallback envelope: the results travel in the handle itself."""

    values: tuple


def _shm_disabled() -> bool:
    return os.environ.get(ENV_DISABLE_SHM, "").strip().lower() in ("0", "false", "no")


def _create_segment(size: int):
    """Create a fresh segment without leaving a tracker obligation behind.

    The creator (a pool worker) never unlinks — the parent does — but
    Python's ``resource_tracker`` assumes whoever registers a segment also
    unregisters it (``unlink`` unregisters implicitly before 3.13).  So the
    creator opts out of tracking: ``track=False`` from Python 3.13, the
    documented unregister escape hatch before that.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(create=True, size=size, track=False)
    except TypeError:  # Python < 3.13: no ``track`` parameter
        shm = shared_memory.SharedMemory(create=True, size=size)
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")  # noqa: SLF001
        except Exception:
            pass
        return shm


def _attach_segment(name: str):
    """Attach to a worker-created segment (parent side).

    No tracker fiddling needed here: before 3.13 an attach registers and the
    mandatory ``unlink`` unregisters (balanced); from 3.13 attaches are
    untracked by default.
    """
    from multiprocessing import shared_memory

    return shared_memory.SharedMemory(name=name)


def shm_available() -> bool:
    """Whether shared-memory transfer can be used in this environment."""
    if _shm_disabled():
        return False
    from multiprocessing import shared_memory

    try:
        # Default tracking: a same-process create + unlink pair is balanced
        # on every Python version.
        shm = shared_memory.SharedMemory(create=True, size=1)
    except Exception:
        return False
    try:
        shm.close()
        shm.unlink()
    except Exception:
        pass
    return True


def share_chunk(
    values: "Sequence[Any]", encode: "Callable[[Sequence[Any]], bytes]"
) -> "ShmHandle | InlineChunk":
    """Publish one chunk of results (worker side).

    Returns a :class:`ShmHandle` naming a fresh segment holding
    ``encode(values)``, or an :class:`InlineChunk` carrying the values
    themselves when shared memory cannot be used.
    """
    if _shm_disabled():
        return InlineChunk(values=tuple(values))
    try:
        payload = encode(values)
        shm = _create_segment(max(len(payload), 1))
    except Exception:
        return InlineChunk(values=tuple(values))
    try:
        shm.buf[: len(payload)] = payload
        return ShmHandle(name=shm.name, size=len(payload), count=len(values))
    finally:
        shm.close()


def receive_chunk(
    handle: "ShmHandle | InlineChunk",
    decode: "Callable[[bytes], list[Any]]",
) -> list[Any]:
    """Decode one chunk of results (parent side), unlinking the segment."""
    if isinstance(handle, InlineChunk):
        return list(handle.values)
    if not isinstance(handle, ShmHandle):
        raise ExperimentError(
            f"expected a ShmHandle or InlineChunk, got {type(handle).__name__}"
        )
    shm = _attach_segment(handle.name)
    try:
        payload = bytes(shm.buf[: handle.size])
    finally:
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double-receive guard
            pass
    values = decode(payload)
    if len(values) != handle.count:
        raise ExperimentError(
            f"shared-memory chunk decoded {len(values)} results, expected {handle.count}"
        )
    return values


def discard_chunk(handle: "ShmHandle | InlineChunk | None") -> None:
    """Free a chunk without decoding it (cleanup after a failed sweep)."""
    if not isinstance(handle, ShmHandle):
        return
    try:
        shm = _attach_segment(handle.name)
        shm.close()
        shm.unlink()
    except Exception:
        pass


# ------------------------------------------------- ExperimentResult codec

def encode_experiment_results(values: "Sequence[ExperimentResult]") -> bytes:
    """JSON-encode a chunk of results, exactly as the disk cache would.

    ``float`` round-trips through ``repr`` losslessly, so the decoded
    results are bit-for-bit identical to the originals — the same guarantee
    the content-addressed disk cache relies on.
    """
    return json.dumps([value.as_dict() for value in values]).encode("utf-8")


def decode_experiment_results(payload: bytes) -> "list[ExperimentResult]":
    from repro.experiments.results import ExperimentResult

    return [
        ExperimentResult.from_dict(item) for item in json.loads(payload.decode("utf-8"))
    ]
