"""Pluggable sweep execution backends behind one ``Executor`` interface.

Three backends run the embarrassingly parallel part of a sweep:

``serial``
    Plain in-process iteration.  No pools, no pickling; the reference
    backend every other one must match bit for bit.

``threads``
    A :class:`~concurrent.futures.ThreadPoolExecutor`.  The sweep's hot
    path — bit-level switching-activity estimation — spends its time inside
    NumPy ufuncs (XOR, ``bitwise_count``, reductions, casts) which release
    the GIL for the duration of the loop (see the "released-GIL kernels"
    notes in :mod:`repro.util.bits` and :mod:`repro.activity.toggles`), so
    threads scale near-linearly on estimation-bound workloads while sharing
    the parent's caches directly: no pickling out, no result transfer back,
    and explicit in-memory cache *instances* keep working.

``processes``
    A :class:`~concurrent.futures.ProcessPoolExecutor`, kept for workloads
    that hold the GIL (e.g. Python-loop-heavy pattern generators).  Results
    return through :mod:`multiprocessing.shared_memory` segments instead of
    the executor's pickle pipe (with a transparent pickle fallback), and
    work is submitted in chunks to amortize process start-up.

Every backend yields results in submission order and propagates the first
failure; ``shutdown(cancel=True)`` stops queued work and releases backend
resources (including unconsumed shared-memory segments).

The ``Executor`` protocol contract
----------------------------------

Implementations promise, and the sweep runner relies on, exactly four
things:

1. **Order** — :meth:`Executor.map` yields one result per submitted item,
   in submission order (never completion order).
2. **Failure** — the first worker exception propagates to the consumer of
   the result iterator; ``chunk_span`` declares how many submitted items
   fail as a unit so the consumer can bound its blame (1 for per-item
   submission, the chunk size for chunked pools).
3. **Shutdown** — ``shutdown()`` releases every backend resource;
   ``shutdown(cancel=True)`` additionally drops queued work.  Calling it
   with an unconsumed result iterator must not leak resources (the
   process backend frees published-but-unconsumed shared-memory segments).
4. **Worker persistence** — pool workers live for the executor's whole
   lifetime: one thread/process serves many items (and, for the process
   pool, many *chunks*).  Per-worker state installed by the ``initializer``
   hook — the calibrated chunk budget and each worker's plan cache (see
   :mod:`repro.experiments.plan`) — therefore stays warm across every
   chunk a worker serves, which is what lets a cold sweep plan each
   distinct configuration once per worker rather than once per point.
"""

from __future__ import annotations

import abc
import os
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Iterator, Sequence

from repro.errors import ExperimentError
from repro.parallel import shm

__all__ = [
    "BACKENDS",
    "ENV_BACKEND",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "choose_backend",
    "resolve_backend",
    "get_executor",
]

#: The selectable backends, in the order the docs present them.
BACKENDS = ("serial", "threads", "processes")

#: Environment override consulted by ``backend="auto"`` (never by an
#: explicit backend choice).
ENV_BACKEND = "REPRO_PARALLEL_BACKEND"


class Executor(abc.ABC):
    """Minimal executor protocol the sweep runner drives.

    Implementations yield results from :meth:`map` in submission order and
    let the first worker exception propagate to the consumer.
    ``chunk_span`` tells the consumer how many submitted items fail as a
    unit (1 for per-item submission, the chunk size for chunked pools).
    See the module docstring for the full four-point contract (order,
    failure, shutdown, worker persistence).
    """

    name: str = "abstract"
    chunk_span: int = 1

    @abc.abstractmethod
    def map(self, fn: "Callable[[Any], Any]", items: "Sequence[Any]") -> Iterator[Any]:
        """Apply ``fn`` to every item, yielding results in order."""

    def shutdown(self, cancel: bool = False) -> None:
        """Release backend resources; ``cancel`` drops queued work."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # A failing sweep cancels what it can; a clean exit just waits.
        self.shutdown(cancel=exc_type is not None)


class SerialExecutor(Executor):
    """In-process reference backend: a lazy map, nothing more."""

    name = "serial"

    def map(self, fn: "Callable[[Any], Any]", items: "Sequence[Any]") -> Iterator[Any]:
        return (fn(item) for item in items)


class ThreadExecutor(Executor):
    """Thread pool for estimation-bound (GIL-releasing) workloads."""

    name = "threads"

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ExperimentError(f"workers must be >= 1, got {workers}")
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-sweep"
        )

    def map(self, fn: "Callable[[Any], Any]", items: "Sequence[Any]") -> Iterator[Any]:
        futures = [self._pool.submit(fn, item) for item in items]

        def _results() -> Iterator[Any]:
            for future in futures:
                yield future.result()

        return _results()

    def shutdown(self, cancel: bool = False) -> None:
        self._pool.shutdown(wait=True, cancel_futures=cancel)


def _run_chunk(
    fn: "Callable[[Any], Any]",
    encode: "Callable[[Sequence[Any]], bytes]",
    items: "Sequence[Any]",
) -> "shm.ShmHandle | shm.InlineChunk":
    """Worker-side entry point: run one chunk, publish its results."""
    return shm.share_chunk([fn(item) for item in items], encode)


class ProcessExecutor(Executor):
    """Process pool with shared-memory result transfer.

    Work is submitted in chunks of ``chunksize`` items; each worker runs its
    chunk, serializes the results once (the JSON representation the disk
    cache round-trips bit for bit) into a fresh shared-memory segment and
    returns only the segment's name.  The parent decodes and unlinks each
    segment as it consumes the result stream.  ``transfer`` selects the
    return path: ``"shm"``, ``"pickle"``, or ``"auto"`` (shm when the
    platform supports it and ``REPRO_SHM`` does not disable it).

    Workers are persistent: :class:`~concurrent.futures.ProcessPoolExecutor`
    never recycles a worker process, so each one serves chunk after chunk
    for the pool's whole lifetime.  ``initializer``/``initargs`` run once
    per worker at start-up — the sweep runner uses the hook to seed the
    calibrated chunk budget and each worker's plan cache, which then stays
    warm across all of that worker's chunks.
    """

    name = "processes"

    def __init__(
        self,
        workers: int,
        chunksize: int = 1,
        transfer: str = "auto",
        encode: "Callable[[Sequence[Any]], bytes]" = shm.encode_experiment_results,
        decode: "Callable[[bytes], list[Any]]" = shm.decode_experiment_results,
        initializer: "Callable[..., None] | None" = None,
        initargs: tuple = (),
    ) -> None:
        if workers < 1:
            raise ExperimentError(f"workers must be >= 1, got {workers}")
        if chunksize < 1:
            raise ExperimentError(f"chunksize must be >= 1, got {chunksize}")
        if transfer not in ("auto", "shm", "pickle"):
            raise ExperimentError(
                f"transfer must be 'auto', 'shm' or 'pickle', got {transfer!r}"
            )
        self.chunksize = chunksize
        self.chunk_span = chunksize
        self._encode = encode
        self._decode = decode
        self._use_shm = transfer == "shm" or (transfer == "auto" and shm.shm_available())
        self._pool = ProcessPoolExecutor(
            max_workers=workers, initializer=initializer, initargs=initargs
        )
        self._futures: "list[Future]" = []
        self._consumed = 0

    def map(self, fn: "Callable[[Any], Any]", items: "Sequence[Any]") -> Iterator[Any]:
        items = list(items)
        chunks = [
            items[start : start + self.chunksize]
            for start in range(0, len(items), self.chunksize)
        ]
        if self._use_shm:
            self._futures = [
                self._pool.submit(_run_chunk, fn, self._encode, chunk)
                for chunk in chunks
            ]
        else:
            self._futures = [
                self._pool.submit(_run_pickled_chunk, fn, chunk) for chunk in chunks
            ]

        def _results() -> Iterator[Any]:
            for index, future in enumerate(self._futures):
                handle = future.result()
                self._consumed = index + 1
                yield from shm.receive_chunk(handle, self._decode)

        return _results()

    def shutdown(self, cancel: bool = False) -> None:
        self._pool.shutdown(wait=True, cancel_futures=cancel)
        # Any chunk that completed without being consumed still owns a
        # shared-memory segment nobody will decode; free them whether this
        # is a cancellation (sweep failure) or a clean exit with the result
        # iterator abandoned early, so neither path can leak /dev/shm
        # space.  (Cancelled or failed futures never created a segment: the
        # worker either published or raised.)
        for future in self._futures[self._consumed :]:
            if future.done() and not future.cancelled() and future.exception() is None:
                shm.discard_chunk(future.result())
        self._futures = []
        self._consumed = 0


def _run_pickled_chunk(fn: "Callable[[Any], Any]", items: "Sequence[Any]") -> "shm.InlineChunk":
    """Worker-side entry point for the forced-pickle transfer mode."""
    return shm.InlineChunk(values=tuple(fn(item) for item in items))


def choose_backend(workload: str = "estimation") -> str:
    """Per-workload default backend.

    ``"estimation"`` workloads (switching-activity sweeps — the common
    case) are NumPy-bound with released-GIL kernels, so threads win: no
    pickling, shared caches, near-linear scaling.  ``"generation"``
    workloads dominated by GIL-holding Python (custom pattern generators,
    pure-Python feature extraction) need real processes.
    """
    if workload not in ("estimation", "generation"):
        raise ExperimentError(
            f"workload must be 'estimation' or 'generation', got {workload!r}"
        )
    return "threads" if workload == "estimation" else "processes"


def resolve_backend(
    backend: str = "auto", workers: int = 1, workload: str = "estimation"
) -> str:
    """Resolve a ``backend=`` argument to a concrete backend name.

    ``"auto"`` picks per workload (see :func:`choose_backend`), collapses to
    ``"serial"`` when ``workers == 1`` (no pool can help), and honours the
    ``REPRO_PARALLEL_BACKEND`` environment override.  Explicit names are
    validated and returned unchanged.
    """
    if backend != "auto":
        if backend not in BACKENDS:
            raise ExperimentError(
                f"backend must be one of {BACKENDS + ('auto',)}, got {backend!r}"
            )
        return backend
    override = os.environ.get(ENV_BACKEND, "").strip().lower()
    if override:
        if override not in BACKENDS:
            raise ExperimentError(
                f"{ENV_BACKEND} must be one of {BACKENDS}, got {override!r}"
            )
        return override
    if workers <= 1:
        return "serial"
    return choose_backend(workload)


def get_executor(
    backend: str,
    workers: int = 1,
    chunksize: int = 1,
    transfer: str = "auto",
    initializer: "Callable[..., None] | None" = None,
    initargs: tuple = (),
) -> Executor:
    """Build the executor for a resolved backend name.

    ``initializer``/``initargs`` run once per process-pool worker at
    start-up (ignored by the in-process backends, which share the parent's
    state already).
    """
    if backend == "serial":
        return SerialExecutor()
    if backend == "threads":
        return ThreadExecutor(workers)
    if backend == "processes":
        return ProcessExecutor(
            workers,
            chunksize=chunksize,
            transfer=transfer,
            initializer=initializer,
            initargs=initargs,
        )
    raise ExperimentError(f"backend must be one of {BACKENDS}, got {backend!r}")
