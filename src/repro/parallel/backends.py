"""Pluggable sweep execution backends behind one ``Executor`` interface.

Three backends run the embarrassingly parallel part of a sweep:

``serial``
    Plain in-process iteration.  No pools, no pickling; the reference
    backend every other one must match bit for bit.

``threads``
    A :class:`~concurrent.futures.ThreadPoolExecutor`.  The sweep's hot
    path — bit-level switching-activity estimation — spends its time inside
    NumPy ufuncs (XOR, ``bitwise_count``, reductions, casts) which release
    the GIL for the duration of the loop (see the "released-GIL kernels"
    notes in :mod:`repro.util.bits` and :mod:`repro.activity.toggles`), so
    threads scale near-linearly on estimation-bound workloads while sharing
    the parent's caches directly: no pickling out, no result transfer back,
    and explicit in-memory cache *instances* keep working.

``processes``
    A :class:`~concurrent.futures.ProcessPoolExecutor`, kept for workloads
    that hold the GIL (e.g. Python-loop-heavy pattern generators).  Results
    return through :mod:`multiprocessing.shared_memory` segments instead of
    the executor's pickle pipe (with a transparent pickle fallback), and
    work is submitted in chunks to amortize process start-up.

Every backend yields results in submission order and propagates the first
failure; ``shutdown(cancel=True)`` stops queued work and releases backend
resources (including unconsumed shared-memory segments).

The process backend additionally survives *pool breakage* (a worker dying
mid-chunk — OOM kill, segfault, interpreter abort): it rebuilds the pool
once and resubmits only the chunks whose results were not yet consumed,
then falls back to a thread pool for the remaining items if the rebuilt
pool breaks again (see ``docs/resilience.md``).  Both events are counted
on :class:`ExecutorResilience` and folded into the sweep's ``RunStats``.

The ``Executor`` protocol contract
----------------------------------

Implementations promise, and the sweep runner relies on, exactly four
things:

1. **Order** — :meth:`Executor.map` yields one result per submitted item,
   in submission order (never completion order).
2. **Failure** — the first worker exception propagates to the consumer of
   the result iterator; ``chunk_span`` declares how many submitted items
   fail as a unit so the consumer can bound its blame (1 for per-item
   submission, the chunk size for chunked pools).
3. **Shutdown** — ``shutdown()`` releases every backend resource;
   ``shutdown(cancel=True)`` additionally drops queued work.  Calling it
   with an unconsumed result iterator must not leak resources (the
   process backend frees published-but-unconsumed shared-memory segments).
4. **Worker persistence** — pool workers live for the executor's whole
   lifetime: one thread/process serves many items (and, for the process
   pool, many *chunks*).  Per-worker state installed by the ``initializer``
   hook — the calibrated chunk budget and each worker's plan cache (see
   :mod:`repro.experiments.plan`) — therefore stays warm across every
   chunk a worker serves, which is what lets a cold sweep plan each
   distinct configuration once per worker rather than once per point.
"""

from __future__ import annotations

import abc
import contextlib
import os
import signal
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

from repro.errors import ExperimentError
from repro.faults import fault_point
from repro.parallel import shm

__all__ = [
    "BACKENDS",
    "ENV_BACKEND",
    "Executor",
    "ExecutorResilience",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "choose_backend",
    "resolve_backend",
    "get_executor",
]


@dataclass
class ExecutorResilience:
    """Counters describing how an executor absorbed pool failures.

    ``fallback_backend`` is non-empty once the executor stopped using its
    native pool (e.g. ``"threads"`` after repeated process-pool breakage) —
    a sticky, loud signal the sweep runner copies into its ``RunStats``.
    """

    pool_rebuilds: int = 0
    chunks_resubmitted: int = 0
    fallback_backend: str = ""

    def as_dict(self) -> "dict[str, Any]":
        return {
            "pool_rebuilds": self.pool_rebuilds,
            "chunks_resubmitted": self.chunks_resubmitted,
            "fallback_backend": self.fallback_backend,
        }

#: The selectable backends, in the order the docs present them.
BACKENDS = ("serial", "threads", "processes")

#: Environment override consulted by ``backend="auto"`` (never by an
#: explicit backend choice).
ENV_BACKEND = "REPRO_PARALLEL_BACKEND"


class Executor(abc.ABC):
    """Minimal executor protocol the sweep runner drives.

    Implementations yield results from :meth:`map` in submission order and
    let the first worker exception propagate to the consumer.
    ``chunk_span`` tells the consumer how many submitted items fail as a
    unit (1 for per-item submission, the chunk size for chunked pools).
    See the module docstring for the full four-point contract (order,
    failure, shutdown, worker persistence).
    """

    name: str = "abstract"
    chunk_span: int = 1

    @abc.abstractmethod
    def map(self, fn: "Callable[[Any], Any]", items: "Sequence[Any]") -> Iterator[Any]:
        """Apply ``fn`` to every item, yielding results in order."""

    def shutdown(self, cancel: bool = False) -> None:
        """Release backend resources; ``cancel`` drops queued work."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # A failing sweep cancels what it can; a clean exit just waits.
        self.shutdown(cancel=exc_type is not None)


class SerialExecutor(Executor):
    """In-process reference backend: a lazy map, nothing more."""

    name = "serial"

    def map(self, fn: "Callable[[Any], Any]", items: "Sequence[Any]") -> Iterator[Any]:
        return (fn(item) for item in items)


class ThreadExecutor(Executor):
    """Thread pool for estimation-bound (GIL-releasing) workloads."""

    name = "threads"

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ExperimentError(f"workers must be >= 1, got {workers}")
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-sweep"
        )

    def map(self, fn: "Callable[[Any], Any]", items: "Sequence[Any]") -> Iterator[Any]:
        futures = [self._pool.submit(fn, item) for item in items]

        def _results() -> Iterator[Any]:
            for future in futures:
                yield future.result()

        return _results()

    def shutdown(self, cancel: bool = False) -> None:
        self._pool.shutdown(wait=True, cancel_futures=cancel)


def _worker_init(
    user_initializer: "Callable[..., None] | None", user_initargs: tuple
) -> None:
    """Per-worker start-up hook: signal hygiene, then the user initializer.

    Forked workers inherit the parent's Python-level signal handlers *and*
    any ``signal.set_wakeup_fd`` registration.  In a serving parent the
    wakeup fd is the asyncio loop's self-socketpair — shared with the
    child as the same open file description — so a signal delivered to a
    worker (most notably the SIGTERM that ``concurrent.futures`` sends to
    surviving workers when a sibling dies and breaks the pool) would be
    written into the *parent's* loop and observed there as a shutdown
    request.  Detach the wakeup fd and restore default dispositions so a
    worker's signals stay the worker's problem: SIGTERM default-kills it,
    SIGINT is ignored (Ctrl-C interrupts the parent, which then tears the
    pool down deliberately).
    """
    with contextlib.suppress(ValueError, OSError):
        signal.set_wakeup_fd(-1)
    with contextlib.suppress(ValueError, OSError):
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    with contextlib.suppress(ValueError, OSError):
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    if user_initializer is not None:
        user_initializer(*user_initargs)


def _run_chunk(
    fn: "Callable[[Any], Any]",
    encode: "Callable[[Sequence[Any]], bytes]",
    items: "Sequence[Any]",
) -> "shm.ShmHandle | shm.InlineChunk":
    """Worker-side entry point: run one chunk, publish its results."""
    fault_point("pool.worker")
    return shm.share_chunk([fn(item) for item in items], encode)


class ProcessExecutor(Executor):
    """Process pool with shared-memory result transfer.

    Work is submitted in chunks of ``chunksize`` items; each worker runs its
    chunk, serializes the results once (the JSON representation the disk
    cache round-trips bit for bit) into a fresh shared-memory segment and
    returns only the segment's name.  The parent decodes and unlinks each
    segment as it consumes the result stream.  ``transfer`` selects the
    return path: ``"shm"``, ``"pickle"``, or ``"auto"`` (shm when the
    platform supports it and ``REPRO_SHM`` does not disable it).

    Workers are persistent: :class:`~concurrent.futures.ProcessPoolExecutor`
    never recycles a worker process, so each one serves chunk after chunk
    for the pool's whole lifetime.  ``initializer``/``initargs`` run once
    per worker at start-up — the sweep runner uses the hook to seed the
    calibrated chunk budget and each worker's plan cache, which then stays
    warm across all of that worker's chunks.

    A dying worker (OOM kill, segfault) breaks the whole
    :class:`~concurrent.futures.ProcessPoolExecutor` — every pending future
    fails with :class:`BrokenProcessPool`.  Consumed results are already
    safe, so this executor rebuilds the pool once and resubmits only the
    unconsumed chunks; if the rebuilt pool breaks too, the machine is
    telling us process workers do not survive here, and the remaining items
    run on a thread pool instead (``resilience.fallback_backend`` records
    the switch).  Results stay bit-for-bit identical in all three paths —
    only where they are computed changes.
    """

    name = "processes"

    def __init__(
        self,
        workers: int,
        chunksize: int = 1,
        transfer: str = "auto",
        encode: "Callable[[Sequence[Any]], bytes]" = shm.encode_experiment_results,
        decode: "Callable[[bytes], list[Any]]" = shm.decode_experiment_results,
        initializer: "Callable[..., None] | None" = None,
        initargs: tuple = (),
    ) -> None:
        if workers < 1:
            raise ExperimentError(f"workers must be >= 1, got {workers}")
        if chunksize < 1:
            raise ExperimentError(f"chunksize must be >= 1, got {chunksize}")
        if transfer not in ("auto", "shm", "pickle"):
            raise ExperimentError(
                f"transfer must be 'auto', 'shm' or 'pickle', got {transfer!r}"
            )
        self.chunksize = chunksize
        self.chunk_span = chunksize
        self.resilience = ExecutorResilience()
        self._workers = workers
        self._initializer = initializer
        self._initargs = initargs
        self._encode = encode
        self._decode = decode
        self._use_shm = transfer == "shm" or (transfer == "auto" and shm.shm_available())
        self._pool = ProcessPoolExecutor(
            max_workers=workers,
            initializer=_worker_init,
            initargs=(initializer, initargs),
        )
        self._fallback_pool: "ThreadPoolExecutor | None" = None
        self._futures: "list[Future]" = []
        self._consumed = 0
        self._fn: "Callable[[Any], Any] | None" = None
        self._chunks: "list[list[Any]]" = []

    def map(self, fn: "Callable[[Any], Any]", items: "Sequence[Any]") -> Iterator[Any]:
        items = list(items)
        self._fn = fn
        self._chunks = [
            items[start : start + self.chunksize]
            for start in range(0, len(items), self.chunksize)
        ]
        self._futures = self._submit(self._chunks)

        def _results() -> Iterator[Any]:
            index = 0
            while index < len(self._futures):
                try:
                    handle = self._futures[index].result()
                except BrokenProcessPool:
                    self._recover(index)
                    if self.resilience.fallback_backend:
                        yield from self._fallback_results(index)
                        return
                    continue  # retry this chunk's future on the rebuilt pool
                self._consumed = index + 1
                yield from shm.receive_chunk(handle, self._decode)
                index += 1

        return _results()

    def shutdown(self, cancel: bool = False) -> None:
        self._pool.shutdown(wait=True, cancel_futures=cancel)
        if self._fallback_pool is not None:
            self._fallback_pool.shutdown(wait=True, cancel_futures=cancel)
        # Any chunk that completed without being consumed still owns a
        # shared-memory segment nobody will decode; free them whether this
        # is a cancellation (sweep failure) or a clean exit with the result
        # iterator abandoned early, so neither path can leak /dev/shm
        # space.  (Cancelled or failed futures never created a segment: the
        # worker either published or raised.)
        self._discard_unconsumed()
        self._futures = []
        self._consumed = 0

    # ----------------------------------------------------------- resilience

    def _submit(self, chunks: "list[list[Any]]") -> "list[Future]":
        if self._use_shm:
            return [
                self._pool.submit(_run_chunk, self._fn, self._encode, chunk)
                for chunk in chunks
            ]
        return [
            self._pool.submit(_run_pickled_chunk, self._fn, chunk) for chunk in chunks
        ]

    def _discard_unconsumed(self) -> None:
        for future in self._futures[self._consumed :]:
            if future.done() and not future.cancelled() and future.exception() is None:
                shm.discard_chunk(future.result())

    def _recover(self, index: int) -> None:
        """React to pool breakage observed at chunk ``index``.

        First breakage: rebuild the pool (same initializer, so worker plan
        caches re-seed) and resubmit every unconsumed chunk.  Second
        breakage: mark the threads fallback; the caller reruns the
        remaining items in-process.  Either way the broken pool is torn
        down without waiting — its workers are already gone.
        """
        remaining = self._chunks[index:]
        # Chunks that published a segment before the pool broke would leak
        # it once resubmission recomputes them; free those segments first.
        self._discard_unconsumed()
        self._pool.shutdown(wait=False, cancel_futures=True)
        self.resilience.chunks_resubmitted += len(remaining)
        if not self.resilience.pool_rebuilds:
            self.resilience.pool_rebuilds += 1
            self._pool = ProcessPoolExecutor(
                max_workers=self._workers,
                initializer=_worker_init,
                initargs=(self._initializer, self._initargs),
            )
            self._futures[index:] = self._submit(remaining)
        else:
            self.resilience.fallback_backend = "threads"

    def _fallback_results(self, index: int) -> Iterator[Any]:
        """Run every item of the unconsumed chunks on a thread pool.

        The process pool broke twice; threads cannot be OOM-killed away
        from under us, and correctness does not depend on the backend (the
        serial/threads/processes contract is bit-for-bit equality).
        """
        items = [item for chunk in self._chunks[index:] for item in chunk]
        self._fallback_pool = ThreadPoolExecutor(
            max_workers=self._workers, thread_name_prefix="repro-sweep-fallback"
        )
        futures = [self._fallback_pool.submit(self._fn, item) for item in items]
        # The old futures all failed with BrokenProcessPool and own no
        # segments; mark them consumed so shutdown() skips them.
        self._consumed = len(self._futures)
        for future in futures:
            yield future.result()


def _run_pickled_chunk(fn: "Callable[[Any], Any]", items: "Sequence[Any]") -> "shm.InlineChunk":
    """Worker-side entry point for the forced-pickle transfer mode."""
    fault_point("pool.worker")
    return shm.InlineChunk(values=tuple(fn(item) for item in items))


def choose_backend(workload: str = "estimation") -> str:
    """Per-workload default backend.

    ``"estimation"`` workloads (switching-activity sweeps — the common
    case) are NumPy-bound with released-GIL kernels, so threads win: no
    pickling, shared caches, near-linear scaling.  ``"generation"``
    workloads dominated by GIL-holding Python (custom pattern generators,
    pure-Python feature extraction) need real processes.
    """
    if workload not in ("estimation", "generation"):
        raise ExperimentError(
            f"workload must be 'estimation' or 'generation', got {workload!r}"
        )
    return "threads" if workload == "estimation" else "processes"


def resolve_backend(
    backend: str = "auto", workers: int = 1, workload: str = "estimation"
) -> str:
    """Resolve a ``backend=`` argument to a concrete backend name.

    ``"auto"`` picks per workload (see :func:`choose_backend`), collapses to
    ``"serial"`` when ``workers == 1`` (no pool can help), and honours the
    ``REPRO_PARALLEL_BACKEND`` environment override.  Explicit names are
    validated and returned unchanged.
    """
    if backend != "auto":
        if backend not in BACKENDS:
            raise ExperimentError(
                f"backend must be one of {BACKENDS + ('auto',)}, got {backend!r}"
            )
        return backend
    override = os.environ.get(ENV_BACKEND, "").strip().lower()
    if override:
        if override not in BACKENDS:
            raise ExperimentError(
                f"{ENV_BACKEND} must be one of {BACKENDS}, got {override!r}"
            )
        return override
    if workers <= 1:
        return "serial"
    return choose_backend(workload)


def get_executor(
    backend: str,
    workers: int = 1,
    chunksize: int = 1,
    transfer: str = "auto",
    initializer: "Callable[..., None] | None" = None,
    initargs: tuple = (),
) -> Executor:
    """Build the executor for a resolved backend name.

    ``initializer``/``initargs`` run once per process-pool worker at
    start-up (ignored by the in-process backends, which share the parent's
    state already).
    """
    if backend == "serial":
        return SerialExecutor()
    if backend == "threads":
        return ThreadExecutor(workers)
    if backend == "processes":
        return ProcessExecutor(
            workers,
            chunksize=chunksize,
            transfer=transfer,
            initializer=initializer,
            initargs=initargs,
        )
    raise ExperimentError(f"backend must be one of {BACKENDS}, got {backend!r}")
