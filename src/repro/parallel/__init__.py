"""Pluggable parallel execution for sweeps and figures.

This package is the single place sweep/figure parallelism goes through:

* :mod:`repro.parallel.backends` — the ``Executor`` protocol and the
  ``serial`` / ``threads`` / ``processes`` backends, plus the ``auto``
  per-workload selection the sweep runner uses.
* :mod:`repro.parallel.shm` — shared-memory result transfer for the
  process backend (with a transparent pickle fallback).
* :mod:`repro.parallel.calibrate` — the measured chunk-budget probe that
  replaces the engine's historical hard-coded 1 MiB working-set constant
  (``REPRO_BATCH_CHUNK_BUDGET`` overrides, ``$REPRO_CACHE_DIR`` persists).

See ``docs/parallel.md`` for the full subsystem guide (backend selection,
the ``Executor`` contract, worker persistence and the shared-memory result
path); the one-line version is: the default ``auto`` resolves to
``threads`` for the built-in estimation workloads (their NumPy kernels
release the GIL) and ``serial`` for ``workers=1``, while ``processes``
remains available for GIL-holding pattern generators.  Results are
bit-for-bit identical across backends at any worker count.
"""

from repro.parallel.backends import (
    BACKENDS,
    ENV_BACKEND,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    choose_backend,
    get_executor,
    resolve_backend,
)
from repro.parallel.calibrate import (
    DEFAULT_CHUNK_BUDGET_BYTES,
    ENV_CHUNK_BUDGET,
    CalibrationResult,
    calibrate_chunk_budget,
    chunk_budget_bytes,
)

__all__ = [
    "BACKENDS",
    "ENV_BACKEND",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "choose_backend",
    "resolve_backend",
    "get_executor",
    "DEFAULT_CHUNK_BUDGET_BYTES",
    "ENV_CHUNK_BUDGET",
    "CalibrationResult",
    "calibrate_chunk_budget",
    "chunk_budget_bytes",
]
