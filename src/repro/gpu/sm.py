"""Streaming-multiprocessor resource description."""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.specs import GPUSpec

__all__ = ["SMResources"]


@dataclass(frozen=True)
class SMResources:
    """Per-SM execution resources relevant to GEMM power.

    These numbers partition the device's active power between the scheduler
    / instruction path and the arithmetic datapath, and define how many MAC
    lanes toggle simultaneously for a given datatype path.
    """

    cuda_cores: int
    tensor_cores: int
    warp_schedulers: int = 4
    register_file_kb: int = 256
    max_warps: int = 64

    @classmethod
    def from_spec(cls, spec: GPUSpec) -> "SMResources":
        return cls(
            cuda_cores=spec.cuda_cores_per_sm,
            tensor_cores=spec.tensor_cores_per_sm,
        )

    def mac_lanes(self, tensor_core: bool, bits: int) -> int:
        """Number of scalar MAC lanes active per cycle for a datatype path.

        CUDA cores execute one FMA per core per cycle for 32-bit types and
        pack two (16-bit) or four (8-bit) operations per core; each tensor
        core sustains many more MACs per cycle.
        """
        if tensor_core:
            # One Ampere-class tensor core performs a 4x4x4-equivalent MMA
            # slice per cycle (64 MACs); scale for narrower operands.
            per_core = 64 * max(32 // max(bits, 1), 1) // 2
            return self.tensor_cores * per_core
        packing = max(32 // max(bits, 1), 1)
        return self.cuda_cores * packing
