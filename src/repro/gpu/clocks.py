"""Clock/DVFS and TDP throttling model.

When the unconstrained power of a kernel exceeds the device's TDP, the GPU
lowers its SM clock (and slightly its voltage) until the power limit is
respected.  We model dynamic power as proportional to ``f * V^2`` with the
voltage tracking frequency over the throttling range, giving an effective
``P_dyn ∝ s^2`` dependence on the clock scale ``s``; runtime of a
compute-bound kernel scales as ``1/s``.

The paper relies on this behaviour twice: matrix size 2048 was chosen as
"the largest power of two that did not consistently throttle the A100", and
the RTX 6000 had to be run at 512x512 because it throttled at 2048x2048.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DeviceError
from repro.gpu.specs import GPUSpec

__all__ = ["ThrottleState", "ClockModel"]

#: Exponent relating dynamic power to the clock scale inside the DVFS range.
POWER_CLOCK_EXPONENT = 2.0

#: Lowest clock scale the DVFS governor will reach before giving up.
MIN_CLOCK_SCALE = 0.35


@dataclass(frozen=True)
class ThrottleState:
    """Result of resolving the steady-state clock under a power limit."""

    clock_scale: float
    throttled: bool
    unconstrained_power_watts: float
    constrained_power_watts: float

    @property
    def runtime_scale(self) -> float:
        """Multiplier on compute-bound runtime caused by the lowered clock."""
        return 1.0 / self.clock_scale


class ClockModel:
    """DVFS model for one GPU."""

    def __init__(self, spec: GPUSpec) -> None:
        self.spec = spec
        if spec.boost_clock_mhz <= 0 or spec.base_clock_mhz <= 0:
            raise DeviceError(f"{spec.name}: clocks must be positive")

    @property
    def boost_clock_hz(self) -> float:
        return self.spec.boost_clock_mhz * 1e6

    @property
    def base_clock_hz(self) -> float:
        return self.spec.base_clock_mhz * 1e6

    def dynamic_power_at_scale(self, dynamic_watts: float, clock_scale: float) -> float:
        """Dynamic power when the clock is scaled to ``clock_scale`` of boost."""
        if not 0.0 < clock_scale <= 1.0:
            raise DeviceError(f"clock_scale must be in (0, 1], got {clock_scale}")
        return dynamic_watts * clock_scale**POWER_CLOCK_EXPONENT

    def resolve_throttle(
        self, idle_watts: float, dynamic_watts: float, power_limit_watts: float | None = None
    ) -> ThrottleState:
        """Find the steady-state clock scale under the TDP (or explicit limit).

        ``dynamic_watts`` is the clock-dependent part of the power draw at
        full boost clock.  The returned state reports both the unconstrained
        power (no limit) and the constrained power actually drawn.
        """
        limit = self.spec.tdp_watts if power_limit_watts is None else float(power_limit_watts)
        if limit <= 0:
            raise DeviceError(f"power limit must be positive, got {limit}")
        if dynamic_watts < 0:
            raise DeviceError(f"dynamic power must be non-negative, got {dynamic_watts}")
        unconstrained = idle_watts + dynamic_watts
        if unconstrained <= limit or dynamic_watts == 0.0:
            return ThrottleState(
                clock_scale=1.0,
                throttled=False,
                unconstrained_power_watts=unconstrained,
                constrained_power_watts=unconstrained,
            )
        # Solve idle + s^k * dynamic = limit for s.
        headroom = max(limit - idle_watts, 0.0)
        scale = (headroom / dynamic_watts) ** (1.0 / POWER_CLOCK_EXPONENT)
        scale = max(min(scale, 1.0), MIN_CLOCK_SCALE)
        constrained = idle_watts + self.dynamic_power_at_scale(dynamic_watts, scale)
        return ThrottleState(
            clock_scale=scale,
            throttled=True,
            unconstrained_power_watts=unconstrained,
            constrained_power_watts=constrained,
        )
