"""Memory hierarchy model and DRAM traffic estimation for tiled GEMM."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DeviceError
from repro.gpu.specs import GPUSpec

__all__ = ["MemoryHierarchy", "gemm_dram_traffic_bytes"]


@dataclass(frozen=True)
class MemoryHierarchy:
    """Bandwidths and capacities of one GPU's memory system."""

    dram_bandwidth_bytes_per_s: float
    dram_capacity_bytes: float
    l2_capacity_bytes: float
    shared_mem_per_sm_bytes: float
    #: effective fraction of peak DRAM bandwidth achievable by a tuned GEMM
    efficiency: float = 0.82

    @classmethod
    def from_spec(cls, spec: GPUSpec) -> "MemoryHierarchy":
        return cls(
            dram_bandwidth_bytes_per_s=spec.memory_bandwidth_gbps * 1e9,
            dram_capacity_bytes=spec.memory_size_gb * 1024**3,
            l2_capacity_bytes=spec.l2_cache_mb * 1024**2,
            shared_mem_per_sm_bytes=spec.shared_mem_per_sm_kb * 1024,
        )

    @property
    def effective_bandwidth(self) -> float:
        """Achievable DRAM bandwidth in bytes/s."""
        return self.dram_bandwidth_bytes_per_s * self.efficiency

    def transfer_time_s(self, num_bytes: float) -> float:
        """Time to move ``num_bytes`` through DRAM at effective bandwidth."""
        if num_bytes < 0:
            raise DeviceError(f"byte count must be non-negative, got {num_bytes}")
        return num_bytes / self.effective_bandwidth

    def fits_in_l2(self, num_bytes: float) -> bool:
        return num_bytes <= self.l2_capacity_bytes


def gemm_dram_traffic_bytes(
    n: int,
    m: int,
    k: int,
    element_bytes: int,
    tile_m: int,
    tile_n: int,
    l2_capacity_bytes: float | None = None,
) -> float:
    """Estimate DRAM traffic for a tiled GEMM ``(n, k) x (k, m)``.

    With threadblock output tiles of shape ``tile_n x tile_m``, each tile
    streams a ``tile_n x k`` slice of A and a ``k x tile_m`` slice of B, so A
    is re-read once per column of tiles and B once per row of tiles.  When
    an entire operand fits in L2 the re-reads are served on chip and only
    the first read hits DRAM.
    """
    if min(n, m, k, element_bytes, tile_m, tile_n) <= 0:
        raise DeviceError("all GEMM traffic parameters must be positive")
    tiles_m = -(-m // tile_m)  # ceil division
    tiles_n = -(-n // tile_n)
    a_bytes = n * k * element_bytes
    b_bytes = k * m * element_bytes
    a_reads = tiles_m
    b_reads = tiles_n
    if l2_capacity_bytes is not None:
        if a_bytes <= l2_capacity_bytes:
            a_reads = 1
        if b_bytes <= l2_capacity_bytes:
            b_reads = 1
    c_bytes = n * m * element_bytes
    # C is read (beta term) and D written once.
    return float(a_bytes * a_reads + b_bytes * b_reads + 2 * c_bytes)
