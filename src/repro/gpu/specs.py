"""GPU specification database.

Specs describe the four GPUs evaluated in the paper plus a generic device.
Peak per-datatype throughputs follow the vendor datasheets (dense, no
sparsity acceleration); power figures use the TDPs quoted in the paper.
Absolute throughput only affects the runtime model's scale, never the
direction of any input-dependence trend.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

from repro.errors import DeviceError

__all__ = [
    "GPUSpec",
    "GPU_SPECS",
    "PAPER_GPUS",
    "get_gpu_spec",
    "list_gpus",
    "register_gpu_spec",
]


@dataclass(frozen=True)
class GPUSpec:
    """Architectural description of one GPU model."""

    name: str
    architecture: str
    year: int
    sm_count: int
    cuda_cores_per_sm: int
    tensor_cores_per_sm: int
    base_clock_mhz: float
    boost_clock_mhz: float
    memory_type: str
    memory_size_gb: float
    memory_bandwidth_gbps: float
    l2_cache_mb: float
    shared_mem_per_sm_kb: float
    tdp_watts: float
    idle_watts: float
    #: peak dense throughput in TFLOP/s (or TOP/s for integers) per datatype name
    peak_tflops: Mapping[str, float] = field(default_factory=dict)
    #: fraction of TDP attributable to data-dependent switching at full activity
    data_dependent_fraction: float = 0.42
    #: standard deviation (watts) of chip-to-chip process variation
    process_variation_watts: float = 3.5

    def peak_throughput(self, dtype_name: str) -> float:
        """Peak throughput for a datatype, in TFLOP/s (TOP/s for integers)."""
        try:
            return float(self.peak_tflops[dtype_name])
        except KeyError:
            raise DeviceError(
                f"{self.name}: no peak throughput registered for dtype {dtype_name!r}"
            ) from None

    def supports_dtype(self, dtype_name: str) -> bool:
        return dtype_name in self.peak_tflops

    @property
    def total_cuda_cores(self) -> int:
        return self.sm_count * self.cuda_cores_per_sm

    @property
    def total_tensor_cores(self) -> int:
        return self.sm_count * self.tensor_cores_per_sm

    def scaled(self, **overrides: object) -> "GPUSpec":
        """Return a copy with selected fields replaced (for what-if studies)."""
        return replace(self, **overrides)  # type: ignore[arg-type]


#: GPUs used in the paper, in the order of Figure 7.
PAPER_GPUS: tuple[str, ...] = ("v100", "a100", "h100", "rtx6000")


_A100 = GPUSpec(
    name="a100",
    architecture="Ampere",
    year=2020,
    sm_count=108,
    cuda_cores_per_sm=64,
    tensor_cores_per_sm=4,
    base_clock_mhz=765.0,
    boost_clock_mhz=1410.0,
    memory_type="HBM2e",
    memory_size_gb=80.0,
    memory_bandwidth_gbps=1935.0,
    l2_cache_mb=40.0,
    shared_mem_per_sm_kb=164.0,
    tdp_watts=300.0,  # A100 PCIe as configured in the paper's Azure VM
    idle_watts=52.0,
    peak_tflops={
        "fp64": 9.7,
        "fp32": 19.5,
        "fp16": 78.0,
        "fp16_t": 312.0,
        "bf16": 312.0,
        "int8": 156.0,
        "int32": 19.5,
    },
    data_dependent_fraction=0.42,
    process_variation_watts=3.5,
)

_H100 = GPUSpec(
    name="h100",
    architecture="Hopper",
    year=2022,
    sm_count=132,
    cuda_cores_per_sm=128,
    tensor_cores_per_sm=4,
    base_clock_mhz=1095.0,
    boost_clock_mhz=1980.0,
    memory_type="HBM3",
    memory_size_gb=80.0,
    memory_bandwidth_gbps=3350.0,
    l2_cache_mb=50.0,
    shared_mem_per_sm_kb=228.0,
    tdp_watts=700.0,  # H100 SXM5
    idle_watts=72.0,
    peak_tflops={
        "fp64": 34.0,
        "fp32": 67.0,
        "fp16": 134.0,
        "fp16_t": 990.0,
        "bf16": 990.0,
        "int8": 268.0,
        "int32": 34.0,
    },
    data_dependent_fraction=0.44,
    process_variation_watts=5.0,
)

_V100 = GPUSpec(
    name="v100",
    architecture="Volta",
    year=2017,
    sm_count=80,
    cuda_cores_per_sm=64,
    tensor_cores_per_sm=8,
    base_clock_mhz=1290.0,
    boost_clock_mhz=1530.0,
    memory_type="HBM2",
    memory_size_gb=32.0,
    memory_bandwidth_gbps=900.0,
    l2_cache_mb=6.0,
    shared_mem_per_sm_kb=96.0,
    tdp_watts=300.0,  # V100 SXM2
    idle_watts=40.0,
    peak_tflops={
        "fp64": 7.8,
        "fp32": 15.7,
        "fp16": 31.4,
        "fp16_t": 125.0,
        "bf16": 31.4,
        "int8": 62.8,
        "int32": 15.7,
    },
    data_dependent_fraction=0.40,
    process_variation_watts=3.0,
)

_RTX6000 = GPUSpec(
    name="rtx6000",
    architecture="Turing",
    year=2018,
    sm_count=72,
    cuda_cores_per_sm=64,
    tensor_cores_per_sm=8,
    base_clock_mhz=1440.0,
    boost_clock_mhz=1770.0,
    memory_type="GDDR6",
    memory_size_gb=24.0,
    memory_bandwidth_gbps=672.0,
    l2_cache_mb=6.0,
    shared_mem_per_sm_kb=64.0,
    tdp_watts=260.0,
    idle_watts=24.0,
    peak_tflops={
        "fp64": 0.5,
        "fp32": 16.3,
        "fp16": 32.6,
        "fp16_t": 130.0,
        "bf16": 32.6,
        "int8": 65.2,
        "int32": 16.3,
    },
    # Older design (GDDR6, lower TDP headroom): the paper observes less
    # pronounced input-dependent swings on this GPU.
    data_dependent_fraction=0.22,
    process_variation_watts=2.5,
)

_GENERIC = GPUSpec(
    name="generic",
    architecture="Generic",
    year=2024,
    sm_count=100,
    cuda_cores_per_sm=64,
    tensor_cores_per_sm=4,
    base_clock_mhz=1000.0,
    boost_clock_mhz=1500.0,
    memory_type="HBM",
    memory_size_gb=48.0,
    memory_bandwidth_gbps=1500.0,
    l2_cache_mb=32.0,
    shared_mem_per_sm_kb=128.0,
    tdp_watts=400.0,
    idle_watts=50.0,
    peak_tflops={
        "fp64": 10.0,
        "fp32": 20.0,
        "fp16": 80.0,
        "fp16_t": 320.0,
        "bf16": 320.0,
        "int8": 160.0,
        "int32": 20.0,
    },
)

GPU_SPECS: dict[str, GPUSpec] = {}

_ALIASES = {
    "a100-pcie": "a100",
    "a100_pcie": "a100",
    "h100-sxm": "h100",
    "h100_sxm5": "h100",
    "v100-sxm2": "v100",
    "quadro-rtx-6000": "rtx6000",
    "quadro_rtx_6000": "rtx6000",
    "rtx-6000": "rtx6000",
}


def register_gpu_spec(spec: GPUSpec, overwrite: bool = False) -> GPUSpec:
    """Register a GPU spec under its canonical (lowercase) name."""
    key = spec.name.lower()
    if key in GPU_SPECS and not overwrite:
        raise DeviceError(f"GPU spec {key!r} is already registered")
    GPU_SPECS[key] = spec
    return spec


def get_gpu_spec(name: "str | GPUSpec") -> GPUSpec:
    """Look up a GPU spec by name (aliases accepted) or pass one through."""
    if isinstance(name, GPUSpec):
        return name
    key = str(name).strip().lower()
    key = _ALIASES.get(key, key)
    try:
        return GPU_SPECS[key]
    except KeyError:
        known = ", ".join(sorted(GPU_SPECS))
        raise DeviceError(f"unknown GPU {name!r}; known GPUs: {known}") from None


def list_gpus() -> list[str]:
    """Return the canonical names of all registered GPUs."""
    return sorted(GPU_SPECS)


for _spec in (_A100, _H100, _V100, _RTX6000, _GENERIC):
    register_gpu_spec(_spec)
