"""Composite GPU device: spec + clocks + memory + SM resources.

A :class:`Device` is the object the rest of the library talks to.  It also
models the chip-to-chip *process variation* the paper observed (power
shifting by up to ~10 W when the Azure VM instance — and therefore the
physical GPU — changed): each ``instance_id`` deterministically maps to a
small constant power offset.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dtypes.registry import get_dtype
from repro.errors import DeviceError
from repro.gpu.clocks import ClockModel
from repro.gpu.memory import MemoryHierarchy
from repro.gpu.sm import SMResources
from repro.gpu.specs import GPUSpec, get_gpu_spec
from repro.gpu.tensor_core import TensorCoreConfig, default_mma_shape
from repro.util.rng import derive_rng

__all__ = ["Device"]


@dataclass
class Device:
    """A simulated GPU instance."""

    spec: GPUSpec
    instance_id: int = 0
    clock_model: ClockModel = field(init=False)
    memory: MemoryHierarchy = field(init=False)
    sm: SMResources = field(init=False)

    def __post_init__(self) -> None:
        self.clock_model = ClockModel(self.spec)
        self.memory = MemoryHierarchy.from_spec(self.spec)
        self.sm = SMResources.from_spec(self.spec)

    # ------------------------------------------------------------ factories

    @classmethod
    def create(cls, name: "str | GPUSpec", instance_id: int = 0) -> "Device":
        """Create a device from a GPU name (e.g. ``"a100"``) or spec."""
        return cls(spec=get_gpu_spec(name), instance_id=int(instance_id))

    # ------------------------------------------------------------ properties

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def tdp_watts(self) -> float:
        return self.spec.tdp_watts

    @property
    def idle_watts(self) -> float:
        return self.spec.idle_watts

    def peak_throughput_flops(self, dtype: str) -> float:
        """Peak dense throughput for a datatype in FLOP/s (OP/s for integers)."""
        spec_dtype = get_dtype(dtype)
        return self.spec.peak_throughput(spec_dtype.name) * 1e12

    def mma_shape(self, dtype: str) -> TensorCoreConfig:
        """MMA fragment configuration used for a datatype on this device."""
        return default_mma_shape(get_dtype(dtype).name)

    def process_variation_watts(self) -> float:
        """Deterministic per-instance power offset modeling chip variation."""
        rng = derive_rng(0xC0FFEE, "process_variation", self.spec.name, self.instance_id)
        offset = float(rng.normal(0.0, self.spec.process_variation_watts))
        # Clamp to the ~10 W swing the paper reports across VM instances.
        bound = 3.0 * self.spec.process_variation_watts
        return max(min(offset, bound), -bound)

    def supports_dtype(self, dtype: str) -> bool:
        return self.spec.supports_dtype(get_dtype(dtype).name)

    def validate_dtype(self, dtype: str) -> str:
        name = get_dtype(dtype).name
        if not self.spec.supports_dtype(name):
            raise DeviceError(f"{self.name} has no throughput entry for dtype {name!r}")
        return name

    def describe(self) -> dict[str, object]:
        """JSON-serializable description used in experiment metadata."""
        return {
            "name": self.spec.name,
            "architecture": self.spec.architecture,
            "instance_id": self.instance_id,
            "sm_count": self.spec.sm_count,
            "tdp_watts": self.spec.tdp_watts,
            "idle_watts": self.spec.idle_watts,
            "memory_type": self.spec.memory_type,
            "memory_bandwidth_gbps": self.spec.memory_bandwidth_gbps,
            "boost_clock_mhz": self.spec.boost_clock_mhz,
        }
