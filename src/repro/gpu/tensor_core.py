"""Tensor core configuration.

Tensor cores execute matrix-multiply-accumulate (MMA) instructions on small
fragments (e.g. 16x8x16 for FP16 on Ampere).  For the power model the
relevant properties are the fragment shape (it sets the operand streaming
granularity) and the throughput advantage over the CUDA-core path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DeviceError

__all__ = ["TensorCoreConfig", "default_mma_shape"]


@dataclass(frozen=True)
class TensorCoreConfig:
    """Shape and behaviour of the tensor-core MMA instruction for a datatype."""

    mma_m: int
    mma_n: int
    mma_k: int
    #: accumulate precision bits (FP16 MMA accumulates in FP32 on NVIDIA GPUs)
    accumulator_bits: int = 32

    @property
    def macs_per_instruction(self) -> int:
        return self.mma_m * self.mma_n * self.mma_k

    def fragments_per_gemm(self, n: int, m: int, k: int) -> int:
        """Number of MMA instructions needed to cover an (n, k) x (k, m) GEMM."""
        if min(n, m, k) <= 0:
            raise DeviceError("GEMM dimensions must be positive")
        tiles_m = -(-m // self.mma_n)
        tiles_n = -(-n // self.mma_m)
        tiles_k = -(-k // self.mma_k)
        return tiles_m * tiles_n * tiles_k


_MMA_SHAPES = {
    "fp16_t": TensorCoreConfig(mma_m=16, mma_n=8, mma_k=16),
    "bf16": TensorCoreConfig(mma_m=16, mma_n=8, mma_k=16),
    "int8": TensorCoreConfig(mma_m=16, mma_n=8, mma_k=32, accumulator_bits=32),
}


def default_mma_shape(dtype_name: str) -> TensorCoreConfig:
    """Return the MMA fragment shape used for a datatype (tensor-core path)."""
    try:
        return _MMA_SHAPES[dtype_name]
    except KeyError:
        # CUDA-core paths are modeled as scalar FMA streams.
        return TensorCoreConfig(mma_m=1, mma_n=1, mma_k=1)
