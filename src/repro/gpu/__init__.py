"""Parametric GPU device models.

The paper measures real NVIDIA GPUs (A100 PCIe, H100 SXM, V100 SXM2,
Quadro RTX 6000).  This package provides the architectural description of
those devices — SM counts, clocks, memory system, per-datatype peak
throughput, TDP — plus a DVFS/throttling model.  The power model
(:mod:`repro.power`) and runtime model (:mod:`repro.runtime`) are built on
top of these descriptions.
"""

from repro.gpu.clocks import ClockModel, ThrottleState
from repro.gpu.device import Device
from repro.gpu.memory import MemoryHierarchy, gemm_dram_traffic_bytes
from repro.gpu.sm import SMResources
from repro.gpu.specs import (
    GPU_SPECS,
    PAPER_GPUS,
    GPUSpec,
    get_gpu_spec,
    list_gpus,
    register_gpu_spec,
)
from repro.gpu.tensor_core import TensorCoreConfig

__all__ = [
    "ClockModel",
    "ThrottleState",
    "Device",
    "MemoryHierarchy",
    "gemm_dram_traffic_bytes",
    "SMResources",
    "GPUSpec",
    "GPU_SPECS",
    "PAPER_GPUS",
    "get_gpu_spec",
    "list_gpus",
    "register_gpu_spec",
    "TensorCoreConfig",
]
