"""Power component definitions and datapath weighting."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PowerModelError

__all__ = ["ComponentWeights", "PowerComponents"]


@dataclass(frozen=True)
class ComponentWeights:
    """Relative share of the data-dependent power budget per datapath component.

    The defaults follow the architectural intuition spelled out in
    DESIGN.md: switching on the operand-delivery and product/accumulator
    paths (transition driven) carries slightly more of the data-dependent
    budget than the multiplier array's partial-product density (Hamming
    driven), with the memory interface carrying the rest.  The weights are
    normalized internally, so only their ratios matter.
    """

    operand: float = 0.30
    multiplier: float = 0.22
    datapath: float = 0.28
    memory: float = 0.20

    def __post_init__(self) -> None:
        for name, value in self.as_dict().items():
            if value < 0:
                raise PowerModelError(f"weight {name!r} must be non-negative, got {value}")
        if self.total() <= 0:
            raise PowerModelError("component weights must sum to a positive value")

    def as_dict(self) -> dict[str, float]:
        return {
            "operand": self.operand,
            "multiplier": self.multiplier,
            "datapath": self.datapath,
            "memory": self.memory,
        }

    def total(self) -> float:
        return self.operand + self.multiplier + self.datapath + self.memory

    def normalized(self) -> dict[str, float]:
        total = self.total()
        return {name: value / total for name, value in self.as_dict().items()}

    def without(self, component: str) -> "ComponentWeights":
        """Return a copy with one component's weight zeroed (for ablations)."""
        values = self.as_dict()
        if component not in values:
            raise PowerModelError(
                f"unknown component {component!r}; expected one of {sorted(values)}"
            )
        values[component] = 0.0
        return ComponentWeights(**values)


@dataclass(frozen=True)
class PowerComponents:
    """Absolute power budget (watts) of one device + datatype combination."""

    idle_watts: float
    base_active_watts: float
    data_dependent_watts: float
    weights: ComponentWeights = field(default_factory=ComponentWeights)

    def __post_init__(self) -> None:
        if self.idle_watts < 0 or self.base_active_watts < 0 or self.data_dependent_watts < 0:
            raise PowerModelError("power components must be non-negative")

    @property
    def max_active_watts(self) -> float:
        """Dynamic power at full utilization and activity factor 1.0."""
        return self.base_active_watts + self.data_dependent_watts

    @property
    def max_total_watts(self) -> float:
        return self.idle_watts + self.max_active_watts

    def as_dict(self) -> dict[str, float]:
        return {
            "idle_watts": self.idle_watts,
            "base_active_watts": self.base_active_watts,
            "data_dependent_watts": self.data_dependent_watts,
        }
