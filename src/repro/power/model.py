"""The GPU power model.

``PowerModel.estimate`` combines a kernel launch plan (shapes, occupancy),
a switching-activity report and the device calibration into a steady-state
power figure, resolving TDP throttling through the device's clock model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.activity.report import ActivityReport
from repro.errors import PowerModelError
from repro.gpu.device import Device
from repro.kernels.launch import KernelLaunch
from repro.power.calibration import PowerCalibration
from repro.power.components import ComponentWeights, PowerComponents

__all__ = ["PowerEstimate", "PowerModel", "MAX_ACTIVITY_FACTOR"]

#: Activity factors are clipped to this ceiling: pathological inputs (e.g.
#: fully random MSBs on top of random LSBs) cannot toggle more bits than the
#: datapath has.
MAX_ACTIVITY_FACTOR = 1.15


@dataclass(frozen=True)
class PowerEstimate:
    """Steady-state power of one kernel on one device instance."""

    watts: float
    unconstrained_watts: float
    clock_scale: float
    throttled: bool
    activity_factor: float
    utilization: float
    idle_watts: float
    base_active_watts: float
    data_dependent_watts: float
    process_variation_watts: float
    component_breakdown: dict[str, float] = field(default_factory=dict)

    @property
    def dynamic_watts(self) -> float:
        """Power above idle actually drawn."""
        return self.watts - self.idle_watts - self.process_variation_watts


class PowerModel:
    """Maps (device, launch, activity) to watts."""

    def __init__(
        self,
        device: Device,
        calibration: PowerCalibration | None = None,
        weights: ComponentWeights | None = None,
    ) -> None:
        self.device = device
        self.calibration = calibration or PowerCalibration(weights=weights)
        if weights is not None:
            # Explicit weights take precedence over whatever the calibration holds.
            self.calibration.weights = weights

    # ------------------------------------------------------------------ API

    def components(self, dtype: str) -> PowerComponents:
        """Absolute power budget of ``dtype`` on this device."""
        return self.calibration.components(self.device, dtype)

    def activity_factor(self, activity: ActivityReport) -> float:
        """Weighted, clipped activity factor in [0, MAX_ACTIVITY_FACTOR]."""
        weighted = activity.weighted_activity(self.calibration.weights.normalized())
        return float(min(max(weighted, 0.0), MAX_ACTIVITY_FACTOR))

    def estimate(
        self,
        launch: KernelLaunch,
        activity: ActivityReport,
        power_limit_watts: float | None = None,
        include_process_variation: bool = True,
    ) -> PowerEstimate:
        """Estimate steady-state power for a launch with the given activity."""
        problem = launch.problem
        if activity.dtype not in ("unknown", problem.dtype):
            raise PowerModelError(
                f"activity report is for dtype {activity.dtype!r} but the launch "
                f"uses {problem.dtype!r}"
            )
        components = self.components(problem.dtype)
        utilization = launch.occupancy
        factor = self.activity_factor(activity)

        base = components.base_active_watts * utilization
        data = components.data_dependent_watts * utilization * factor
        dynamic = base + data

        throttle = self.device.clock_model.resolve_throttle(
            idle_watts=components.idle_watts,
            dynamic_watts=dynamic,
            power_limit_watts=power_limit_watts,
        )

        variation = self.device.process_variation_watts() if include_process_variation else 0.0
        watts = throttle.constrained_power_watts + variation
        unconstrained = throttle.unconstrained_power_watts + variation

        # Per-component share of the data-dependent draw (for ablation reports).
        normalized = self.calibration.weights.normalized()
        breakdown = {
            name: components.data_dependent_watts
            * utilization
            * normalized[name]
            * min(activity.component_activity(name), MAX_ACTIVITY_FACTOR)
            for name in normalized
        }

        return PowerEstimate(
            watts=watts,
            unconstrained_watts=unconstrained,
            clock_scale=throttle.clock_scale,
            throttled=throttle.throttled,
            activity_factor=factor,
            utilization=utilization,
            idle_watts=components.idle_watts,
            base_active_watts=base,
            data_dependent_watts=data,
            process_variation_watts=variation,
            component_breakdown=breakdown,
        )

    def idle_estimate(self) -> float:
        """Idle power of the device instance (including process variation)."""
        return self.device.idle_watts + self.device.process_variation_watts()
