"""Per-device, per-datatype power calibration.

Each datatype exercises the chip differently: the FP16 tensor-core path
(the default for AI workloads, and the paper's most power-hungry setup, T7)
keeps the widest datapath busy and pushes the device close to its TDP,
while the INT8 CUDA-core path leaves much of the machine idle.  Calibration
expresses this as the fraction of the device's dynamic headroom
(TDP - idle) that a datatype's GEMM kernel can engage; the device spec's
``data_dependent_fraction`` then splits that budget into a data-independent
base and the input-dependent switching budget this paper is about.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dtypes.registry import get_dtype
from repro.errors import PowerModelError
from repro.gpu.device import Device
from repro.gpu.specs import GPUSpec
from repro.power.components import ComponentWeights, PowerComponents

__all__ = ["DTypePowerProfile", "PowerCalibration", "DEFAULT_DTYPE_PROFILES"]


@dataclass(frozen=True)
class DTypePowerProfile:
    """How strongly one datatype's GEMM path engages the device."""

    #: fraction of (TDP - idle) the kernel can draw at full activity
    headroom_fraction: float
    #: optional override of the device-level data-dependent fraction
    data_dependent_fraction: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.headroom_fraction <= 1.2:
            raise PowerModelError(
                f"headroom_fraction must be in (0, 1.2], got {self.headroom_fraction}"
            )
        if self.data_dependent_fraction is not None and not (
            0.0 < self.data_dependent_fraction < 1.0
        ):
            raise PowerModelError(
                "data_dependent_fraction override must be in (0, 1), "
                f"got {self.data_dependent_fraction}"
            )


#: Default per-datatype engagement profiles (shared across devices).  The
#: ordering fp16_t > fp32 > fp16 > int8 reproduces the datatype power
#: ranking visible throughout the paper's Figure 4 (T7).
DEFAULT_DTYPE_PROFILES: dict[str, DTypePowerProfile] = {
    "fp16_t": DTypePowerProfile(headroom_fraction=0.98),
    "bf16": DTypePowerProfile(headroom_fraction=0.96),
    "fp64": DTypePowerProfile(headroom_fraction=0.88),
    "fp32": DTypePowerProfile(headroom_fraction=0.80),
    "fp16": DTypePowerProfile(headroom_fraction=0.70),
    "int8": DTypePowerProfile(headroom_fraction=0.60),
    "int32": DTypePowerProfile(headroom_fraction=0.58),
}


class PowerCalibration:
    """Resolves :class:`PowerComponents` for device + datatype combinations."""

    def __init__(
        self,
        profiles: dict[str, DTypePowerProfile] | None = None,
        weights: ComponentWeights | None = None,
    ) -> None:
        self.profiles = dict(DEFAULT_DTYPE_PROFILES)
        if profiles:
            self.profiles.update(profiles)
        self.weights = weights or ComponentWeights()

    def profile(self, dtype: str) -> DTypePowerProfile:
        name = get_dtype(dtype).name
        try:
            return self.profiles[name]
        except KeyError:
            raise PowerModelError(f"no power profile calibrated for dtype {name!r}") from None

    def components(self, device: "Device | GPUSpec", dtype: str) -> PowerComponents:
        """Return the absolute power budget for a device + datatype pair."""
        spec = device.spec if isinstance(device, Device) else device
        profile = self.profile(dtype)
        headroom = max(spec.tdp_watts - spec.idle_watts, 0.0)
        if headroom <= 0:
            raise PowerModelError(
                f"{spec.name}: TDP ({spec.tdp_watts} W) must exceed idle power "
                f"({spec.idle_watts} W)"
            )
        dynamic_max = headroom * profile.headroom_fraction
        data_fraction = (
            profile.data_dependent_fraction
            if profile.data_dependent_fraction is not None
            else spec.data_dependent_fraction
        )
        data_watts = dynamic_max * data_fraction
        base_watts = dynamic_max - data_watts
        return PowerComponents(
            idle_watts=spec.idle_watts,
            base_active_watts=base_watts,
            data_dependent_watts=data_watts,
            weights=self.weights,
        )
