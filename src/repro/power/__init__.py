"""GPU power model: calibration, component weighting, estimation, energy.

The model maps a device + datatype + switching-activity report to a power
draw in watts:

``P = P_idle + U * [ P_base(dtype) + P_data(dtype) * A ]``

where ``U`` is SM-array utilization, ``A`` is the weighted activity factor
from :mod:`repro.activity` (≈1 for random bits, ≈0 for all-zero operands),
``P_base`` covers data-independent dynamic power (clocks, scheduling,
instruction issue) and ``P_data`` is the data-dependent switching budget.
A TDP throttling loop converts the unconstrained estimate into the power and
clock the GPU would actually settle at.
"""

from repro.power.calibration import DTypePowerProfile, PowerCalibration
from repro.power.components import ComponentWeights, PowerComponents
from repro.power.energy import EnergyEstimate, energy_joules
from repro.power.model import PowerEstimate, PowerModel

__all__ = [
    "PowerCalibration",
    "DTypePowerProfile",
    "PowerComponents",
    "ComponentWeights",
    "PowerModel",
    "PowerEstimate",
    "EnergyEstimate",
    "energy_joules",
]
