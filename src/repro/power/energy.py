"""Energy accounting helpers."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PowerModelError

__all__ = ["energy_joules", "EnergyEstimate"]


def energy_joules(power_watts: float, duration_s: float) -> float:
    """Energy consumed at constant power over a duration."""
    if power_watts < 0:
        raise PowerModelError(f"power must be non-negative, got {power_watts}")
    if duration_s < 0:
        raise PowerModelError(f"duration must be non-negative, got {duration_s}")
    return power_watts * duration_s


@dataclass(frozen=True)
class EnergyEstimate:
    """Energy of one kernel iteration and of a whole run."""

    power_watts: float
    iteration_time_s: float
    iterations: int

    def __post_init__(self) -> None:
        if self.iterations < 0:
            raise PowerModelError(f"iterations must be non-negative, got {self.iterations}")

    @property
    def iteration_energy_j(self) -> float:
        """Energy per GEMM iteration (what Figure 2 reports, in joules)."""
        return energy_joules(self.power_watts, self.iteration_time_s)

    @property
    def iteration_energy_mj(self) -> float:
        """Energy per iteration in millijoules."""
        return self.iteration_energy_j * 1e3

    @property
    def total_energy_j(self) -> float:
        return self.iteration_energy_j * self.iterations

    @property
    def total_duration_s(self) -> float:
        return self.iteration_time_s * self.iterations

    def efficiency_flops_per_joule(self, flops_per_iteration: float) -> float:
        """Useful work per joule (higher is better)."""
        energy = self.iteration_energy_j
        if energy <= 0:
            raise PowerModelError("iteration energy must be positive to compute efficiency")
        return flops_per_iteration / energy
