"""Activity report: the output of switching-activity estimation."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Any, Mapping

from repro.errors import ActivityError

__all__ = ["ActivityReport", "COMPONENT_NAMES"]

#: Datapath components whose activity the power model weights.
COMPONENT_NAMES = ("operand", "multiplier", "datapath", "memory")


@dataclass(frozen=True)
class ActivityReport:
    """Normalized switching activity of one GEMM invocation.

    Component activities are normalized so that operands made of i.i.d.
    random bits give values close to 1.0; all-zero operands give values
    close to 0.0.  Raw (un-normalized) statistics are kept alongside for
    analysis (Figure 8 uses the Hamming weight and bit alignment fields).
    """

    # normalized component activities (what the power model weights)
    operand_activity: float
    multiplier_activity: float
    datapath_activity: float
    memory_activity: float

    # raw statistics
    operand_toggle_a: float
    operand_toggle_b: float
    multiplier_hw_product: float
    zero_mac_fraction: float
    product_toggle: float
    accumulator_toggle: float
    memory_toggle: float
    a_hamming_fraction: float
    b_hamming_fraction: float
    bit_alignment: float

    # metadata
    dtype: str = "unknown"
    shape: tuple[int, int, int] = (0, 0, 0)
    output_samples: int = 0
    extras: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name in COMPONENT_NAMES:
            value = getattr(self, f"{name}_activity")
            if value < 0.0:
                raise ActivityError(f"{name}_activity must be non-negative, got {value}")

    def component_activity(self, name: str) -> float:
        """Return the normalized activity of one component by name."""
        if name not in COMPONENT_NAMES:
            raise ActivityError(
                f"unknown component {name!r}; expected one of {COMPONENT_NAMES}"
            )
        return float(getattr(self, f"{name}_activity"))

    def weighted_activity(self, weights: dict[str, float]) -> float:
        """Weighted mean of component activities (weights need not sum to 1)."""
        total_weight = sum(weights.values())
        if total_weight <= 0:
            raise ActivityError("activity weights must sum to a positive value")
        acc = 0.0
        for name, weight in weights.items():
            acc += self.component_activity(name) * weight
        return acc / total_weight

    @property
    def mean_hamming_fraction(self) -> float:
        """Mean Hamming weight fraction of A and B (Figure 8's x-axis)."""
        return 0.5 * (self.a_hamming_fraction + self.b_hamming_fraction)

    def as_dict(self) -> dict[str, object]:
        """JSON-serializable dictionary of every field."""
        data = asdict(self)
        data["shape"] = list(self.shape)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ActivityReport":
        """Rebuild a report from :meth:`as_dict` output (e.g. a cache file).

        Unknown keys are ignored so reports written by newer code versions
        still load.
        """
        known = {f.name for f in fields(cls)}
        kwargs = {key: value for key, value in data.items() if key in known}
        if "shape" in kwargs:
            kwargs["shape"] = tuple(kwargs["shape"])
        if "extras" in kwargs and kwargs["extras"] is not None:
            kwargs["extras"] = dict(kwargs["extras"])
        return cls(**kwargs)
