"""Shared helpers for the activity estimators.

Like :mod:`repro.util.bits`, the helpers here are thin Python shells around
NumPy ufunc/reduction loops (XOR + popcount sums, comparison means, dtype
casts and views) that release the GIL inside their C inner loops and touch
no shared mutable state.  Concurrent invocations from the sweep runner's
``threads`` backend therefore execute in parallel; the Python-side
bookkeeping that does hold the GIL is a few microseconds per call against
milliseconds-to-seconds of kernel time at sweep scales.
"""

from __future__ import annotations

import numpy as np

from repro.dtypes.base import DTypeSpec
from repro.util.bits import popcount, toggle_fraction_along_axis

__all__ = [
    "stream_toggle_fraction",
    "mean_hamming_fraction",
    "zero_fraction_per_slice",
    "encode_for_accumulator",
]

#: Expected toggle fraction between successive i.i.d.-random words; used to
#: normalize stream activities so "random data" maps to activity ~1.0.
RANDOM_TOGGLE_FRACTION = 0.5

#: Expected Hamming-weight fraction of an i.i.d.-random word.
RANDOM_HAMMING_FRACTION = 0.5


def stream_toggle_fraction(words: np.ndarray, axis: int) -> float:
    """Toggle fraction between successive words along ``axis`` (raw, in [0, 1])."""
    return toggle_fraction_along_axis(words, axis)


def mean_hamming_fraction(words: np.ndarray) -> float:
    """Mean fraction of set bits per word."""
    if words.size == 0:
        return 0.0
    width = words.dtype.itemsize * 8
    return float(popcount(words).mean()) / width


def zero_fraction_per_slice(values: np.ndarray, axis: int) -> np.ndarray:
    """Fraction of exactly-zero elements along ``axis`` (one entry per slice)."""
    arr = np.asarray(values)
    return (arr == 0.0).mean(axis=axis)


def encode_for_accumulator(values: np.ndarray, dtype: DTypeSpec) -> np.ndarray:
    """Encode intermediate products / partial sums in the accumulator format.

    NVIDIA GEMM pipelines accumulate FP16/BF16 tensor-core products in FP32
    and INT8 products in INT32; FP32/FP64 accumulate at their own width.
    The returned words are what the accumulator register bits would hold.
    """
    arr = np.asarray(values, dtype=np.float64)
    if dtype.is_integer:
        clipped = np.clip(np.rint(arr), np.iinfo(np.int32).min, np.iinfo(np.int32).max)
        return np.ascontiguousarray(clipped.astype(np.int32)).view(np.uint32)
    if dtype.bits >= 64:
        return np.ascontiguousarray(arr.astype(np.float64)).view(np.uint64)
    with np.errstate(over="ignore", invalid="ignore"):
        as_fp32 = arr.astype(np.float32)
    return np.ascontiguousarray(as_fp32).view(np.uint32)
