"""Sampling configuration for the activity estimators.

Operand-stream, multiplier and memory statistics are exact (they reduce to
row/column aggregates), but the product/accumulator stream requires walking
the reduction dimension per output element, which is ``O(N*M*K)`` if done
exhaustively.  The engine therefore samples output positions; the default
sample is large enough that the sampled mean's error is far below the
trends being measured.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ActivityError

__all__ = ["SamplingConfig"]


@dataclass(frozen=True)
class SamplingConfig:
    """Controls how much of the output space the estimators sample."""

    #: number of (i, j) output positions sampled for product/accumulator toggles
    output_samples: int = 192
    #: cap on reduction length walked per sampled output (None = full K)
    max_k: int | None = None
    #: base seed for the sampling RNG (combined with the experiment seed)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.output_samples < 1:
            raise ActivityError(
                f"output_samples must be >= 1, got {self.output_samples}"
            )
        if self.max_k is not None and self.max_k < 2:
            raise ActivityError(f"max_k must be >= 2 when set, got {self.max_k}")

    def effective_k(self, k: int) -> int:
        """Reduction length actually walked for a problem with dimension ``k``."""
        if self.max_k is None:
            return k
        return min(k, self.max_k)
