"""Memory-interface activity.

DRAM and L2 move operands in storage order (row-major of the stored
matrices); the bus and sense-amplifier energy depends on how many bit-lines
change between consecutively transferred words.  Toggle-aware compression
work (Pekhimenko et al., HPCA'16) documents exactly this effect; the paper
cites it as a hypothesized mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.activity.toggles import RANDOM_TOGGLE_FRACTION, stream_toggle_fraction
from repro.kernels.schedule import OperandStreams, StackedOperandStreams
from repro.util.bits import toggle_fraction_per_slice

__all__ = ["MemoryActivity", "estimate_memory_activity", "estimate_memory_activity_batch"]


@dataclass(frozen=True)
class MemoryActivity:
    """Raw and normalized memory-interface activity."""

    toggle_a: float
    toggle_b: float
    toggle: float
    activity: float


def estimate_memory_activity(streams: OperandStreams) -> MemoryActivity:
    """Estimate memory-bus switching activity from storage-order adjacency."""
    # A is stored row-major: consecutive words on the bus are row neighbours.
    toggle_a = stream_toggle_fraction(streams.a_words, axis=1)
    # B uses its *stored* layout (before any logical transpose).
    toggle_b = stream_toggle_fraction(streams.b_stored_words, axis=1)
    toggle = 0.5 * (toggle_a + toggle_b)
    activity = toggle / RANDOM_TOGGLE_FRACTION
    return MemoryActivity(
        toggle_a=toggle_a, toggle_b=toggle_b, toggle=toggle, activity=activity
    )


def estimate_memory_activity_batch(streams: StackedOperandStreams) -> list[MemoryActivity]:
    """Stacked fast path: storage-order bus toggles for a whole batch.

    Toggle counts are integer sums computed in one pass over the 3-D word
    stacks, so each entry matches :func:`estimate_memory_activity` on the
    corresponding slice bit for bit.
    """
    toggles_a = toggle_fraction_per_slice(streams.a_words, axis=2)
    toggles_b = toggle_fraction_per_slice(streams.b_stored_words, axis=2)
    out = []
    for ta, tb in zip(toggles_a, toggles_b):
        toggle = 0.5 * (float(ta) + float(tb))
        out.append(
            MemoryActivity(
                toggle_a=float(ta),
                toggle_b=float(tb),
                toggle=toggle,
                activity=toggle / RANDOM_TOGGLE_FRACTION,
            )
        )
    return out
