"""Operand-delivery activity.

Models the shared-memory → register → multiplier-latch path: for every
output row the A operand latch sees ``A[i, 0], A[i, 1], ...`` (toggles along
rows of A), and for every output column the B latch sees ``B[0, j],
B[1, j], ...`` (toggles along columns of B as consumed).  Identical or
bit-similar successive operands barely toggle this path; that is the
mechanism behind the paper's value-similarity, small-value-set and sorting
results (T3, T4, T8–T11).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.activity.toggles import RANDOM_TOGGLE_FRACTION, stream_toggle_fraction
from repro.kernels.schedule import OperandStreams, StackedOperandStreams
from repro.util.bits import toggle_fraction_per_slice

__all__ = ["OperandActivity", "estimate_operand_activity", "estimate_operand_activity_batch"]


@dataclass(frozen=True)
class OperandActivity:
    """Raw and normalized operand-delivery activity."""

    toggle_a: float
    toggle_b: float
    activity: float


def estimate_operand_activity(streams: OperandStreams) -> OperandActivity:
    """Estimate operand-delivery switching activity for one GEMM."""
    # A operands stream along the reduction dimension, i.e. along each row.
    toggle_a = stream_toggle_fraction(streams.a_words, axis=1)
    # B operands (as consumed, shape (K, M)) stream along the reduction
    # dimension too, i.e. down each column.
    toggle_b = stream_toggle_fraction(streams.b_words, axis=0)
    activity = 0.5 * (toggle_a + toggle_b) / RANDOM_TOGGLE_FRACTION
    return OperandActivity(toggle_a=toggle_a, toggle_b=toggle_b, activity=activity)


def estimate_operand_activity_batch(streams: StackedOperandStreams) -> list[OperandActivity]:
    """Stacked fast path: one estimate per invocation of the batch.

    The bit-level toggle counts are computed in a single pass over the 3-D
    word stacks; because toggle counts are integer sums, each entry matches
    :func:`estimate_operand_activity` on the corresponding slice bit for bit.
    """
    toggles_a = toggle_fraction_per_slice(streams.a_words, axis=2)
    toggles_b = toggle_fraction_per_slice(streams.b_words, axis=1)
    return [
        OperandActivity(
            toggle_a=float(ta),
            toggle_b=float(tb),
            activity=0.5 * (float(ta) + float(tb)) / RANDOM_TOGGLE_FRACTION,
        )
        for ta, tb in zip(toggles_a, toggles_b)
    ]
