"""Top-level switching-activity engine.

``estimate_activity`` combines the per-component estimators into a single
:class:`~repro.activity.report.ActivityReport` for one GEMM invocation.
"""

from __future__ import annotations

import numpy as np

from repro.activity.accumulator import estimate_datapath_activity
from repro.activity.memory_traffic import estimate_memory_activity
from repro.activity.multiplier import estimate_multiplier_activity
from repro.activity.operand_bus import estimate_operand_activity
from repro.activity.report import ActivityReport
from repro.activity.sampler import SamplingConfig
from repro.errors import ActivityError
from repro.kernels.gemm import GemmOperands, GemmProblem
from repro.kernels.schedule import OperandStreams, build_streams

__all__ = ["estimate_activity", "activity_from_matrices"]


def estimate_activity(
    operands: "GemmOperands | OperandStreams",
    sampling: SamplingConfig | None = None,
    seed: int = 0,
) -> ActivityReport:
    """Estimate the switching activity of one GEMM invocation.

    Parameters
    ----------
    operands:
        Either concrete :class:`~repro.kernels.gemm.GemmOperands` or
        pre-built :class:`~repro.kernels.schedule.OperandStreams`.
    sampling:
        Sampling configuration for the product/accumulator estimator.
    seed:
        Extra seed mixed into the sampling RNG so repeated invocations with
        different seeds sample different output positions.
    """
    if isinstance(operands, GemmOperands):
        streams = build_streams(operands)
    elif isinstance(operands, OperandStreams):
        streams = operands
    else:
        raise ActivityError(
            f"estimate_activity expects GemmOperands or OperandStreams, got {type(operands).__name__}"
        )
    sampling = sampling or SamplingConfig()

    operand = estimate_operand_activity(streams)
    multiplier = estimate_multiplier_activity(streams)
    datapath = estimate_datapath_activity(streams, sampling, seed=seed)
    memory = estimate_memory_activity(streams)

    return ActivityReport(
        operand_activity=operand.activity,
        multiplier_activity=multiplier.activity,
        datapath_activity=datapath.activity,
        memory_activity=memory.activity,
        operand_toggle_a=operand.toggle_a,
        operand_toggle_b=operand.toggle_b,
        multiplier_hw_product=multiplier.hw_product,
        zero_mac_fraction=multiplier.zero_mac_fraction,
        product_toggle=datapath.product_toggle,
        accumulator_toggle=datapath.accumulator_toggle,
        memory_toggle=memory.toggle,
        a_hamming_fraction=multiplier.a_hamming_fraction,
        b_hamming_fraction=multiplier.b_hamming_fraction,
        bit_alignment=datapath.bit_alignment,
        dtype=streams.dtype.name,
        shape=(streams.n, streams.m, streams.k),
        output_samples=datapath.output_samples,
    )


def activity_from_matrices(
    a: np.ndarray,
    b_stored: np.ndarray,
    dtype: str = "fp16_t",
    transpose_b: bool = True,
    sampling: SamplingConfig | None = None,
    seed: int = 0,
) -> ActivityReport:
    """Convenience wrapper: estimate activity directly from two matrices."""
    a = np.asarray(a, dtype=np.float64)
    b_stored = np.asarray(b_stored, dtype=np.float64)
    n, k = a.shape
    m = b_stored.shape[0] if transpose_b else b_stored.shape[1]
    problem = GemmProblem(n=n, m=m, k=k, dtype=dtype, transpose_b=transpose_b)
    operands = GemmOperands(problem=problem, a=a, b_stored=b_stored)
    return estimate_activity(operands, sampling=sampling, seed=seed)
