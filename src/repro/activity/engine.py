"""Top-level switching-activity engine.

``estimate_activity`` combines the per-component estimators into a single
:class:`~repro.activity.report.ActivityReport` for one GEMM invocation;
``estimate_activity_batch`` does the same for a whole batch of same-shape
invocations (e.g. all seeds of one experiment configuration) with a single
stream build and stacked 3-D fast paths through every component estimator.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.activity.accumulator import (
    estimate_datapath_activity,
    estimate_datapath_activity_batch,
)
from repro.activity.memory_traffic import (
    estimate_memory_activity,
    estimate_memory_activity_batch,
)
from repro.activity.multiplier import (
    estimate_multiplier_activity,
    estimate_multiplier_activity_batch,
)
from repro.activity.operand_bus import (
    estimate_operand_activity,
    estimate_operand_activity_batch,
)
from repro.activity.report import ActivityReport
from repro.activity.sampler import SamplingConfig
from repro.errors import ActivityError
from repro.kernels.gemm import GemmOperands, GemmProblem
from repro.kernels.schedule import (
    OperandStreams,
    StackedOperandStreams,
    build_streams,
    build_streams_stacked,
)

__all__ = ["estimate_activity", "estimate_activity_batch", "activity_from_matrices"]

#: Per-chunk budget for the batched engine, in bytes of stacked A-operand
#: data.  The activity estimators are memory-bandwidth bound: stacking more
#: invocations than fit in cache makes every pass stream from DRAM and is
#: *slower* than processing seeds one at a time, so the batch is processed
#: in chunks whose working set stays cache-resident.  Stacking therefore
#: only engages for small problems, where per-call overhead (not bandwidth)
#: dominates.
BATCH_CHUNK_BUDGET_BYTES = 1 << 20


def recommended_chunk(per_invocation_values: int) -> int:
    """How many invocations of ``per_invocation_values`` float64 operand
    values to stack per pass (see :data:`BATCH_CHUNK_BUDGET_BYTES`).

    Callers that generate operands on the fly (e.g. the experiment harness)
    use this to size their generation chunks so peak memory stays bounded by
    the chunk, not the whole batch.
    """
    per_invocation_bytes = per_invocation_values * 8
    return max(1, BATCH_CHUNK_BUDGET_BYTES // max(per_invocation_bytes, 1))


def estimate_activity(
    operands: "GemmOperands | OperandStreams",
    sampling: SamplingConfig | None = None,
    seed: int = 0,
) -> ActivityReport:
    """Estimate the switching activity of one GEMM invocation.

    Parameters
    ----------
    operands:
        Either concrete :class:`~repro.kernels.gemm.GemmOperands` or
        pre-built :class:`~repro.kernels.schedule.OperandStreams`.
    sampling:
        Sampling configuration for the product/accumulator estimator.
    seed:
        Extra seed mixed into the sampling RNG so repeated invocations with
        different seeds sample different output positions.
    """
    if isinstance(operands, GemmOperands):
        streams = build_streams(operands)
    elif isinstance(operands, OperandStreams):
        streams = operands
    else:
        raise ActivityError(
            f"estimate_activity expects GemmOperands or OperandStreams, got {type(operands).__name__}"
        )
    sampling = sampling or SamplingConfig()

    operand = estimate_operand_activity(streams)
    multiplier = estimate_multiplier_activity(streams)
    datapath = estimate_datapath_activity(streams, sampling, seed=seed)
    memory = estimate_memory_activity(streams)

    return ActivityReport(
        operand_activity=operand.activity,
        multiplier_activity=multiplier.activity,
        datapath_activity=datapath.activity,
        memory_activity=memory.activity,
        operand_toggle_a=operand.toggle_a,
        operand_toggle_b=operand.toggle_b,
        multiplier_hw_product=multiplier.hw_product,
        zero_mac_fraction=multiplier.zero_mac_fraction,
        product_toggle=datapath.product_toggle,
        accumulator_toggle=datapath.accumulator_toggle,
        memory_toggle=memory.toggle,
        a_hamming_fraction=multiplier.a_hamming_fraction,
        b_hamming_fraction=multiplier.b_hamming_fraction,
        bit_alignment=datapath.bit_alignment,
        dtype=streams.dtype.name,
        shape=(streams.n, streams.m, streams.k),
        output_samples=datapath.output_samples,
    )


def estimate_activity_batch(
    operands: "Sequence[GemmOperands] | Sequence[OperandStreams] | StackedOperandStreams",
    sampling: SamplingConfig | None = None,
    seeds: "Sequence[int] | range | None" = None,
    chunk: int | None = None,
) -> list[ActivityReport]:
    """Estimate switching activity for a batch of same-shape GEMM invocations.

    This is the vectorized counterpart of calling :func:`estimate_activity`
    once per invocation: the operand streams are quantized and bit-encoded in
    one pass per stacked chunk and every component estimator runs its
    stacked fast path.  The returned reports are bit-for-bit identical to
    the sequential ones.

    Parameters
    ----------
    operands:
        A sequence of :class:`~repro.kernels.gemm.GemmOperands` (or
        pre-built :class:`~repro.kernels.schedule.OperandStreams`) sharing
        shape, dtype and transposition, or an already-stacked
        :class:`~repro.kernels.schedule.StackedOperandStreams`.
    sampling:
        Sampling configuration for the product/accumulator estimator.
    seeds:
        Per-invocation sampling seeds; defaults to ``range(batch)``, which is
        what the measurement harness uses for its seed loop.
    chunk:
        How many invocations to stack per pass.  Defaults to an automatic
        choice that keeps each chunk's working set cache-resident (see
        :data:`BATCH_CHUNK_BUDGET_BYTES`); pass an explicit value to
        override.
    """
    if isinstance(operands, StackedOperandStreams):
        return _estimate_stacked(operands, sampling or SamplingConfig(), seeds)

    items = list(operands)
    if not items:
        return []
    if not all(isinstance(op, (GemmOperands, OperandStreams)) for op in items):
        raise ActivityError(
            "estimate_activity_batch expects GemmOperands, OperandStreams or "
            "StackedOperandStreams"
        )
    sampling = sampling or SamplingConfig()
    seed_list = list(seeds) if seeds is not None else list(range(len(items)))
    if len(seed_list) != len(items):
        raise ActivityError(
            f"got {len(seed_list)} seeds for a batch of {len(items)} invocations"
        )
    if chunk is None:
        if isinstance(items[0], GemmOperands):
            per_invocation = items[0].a.size + items[0].b_stored.size
        else:
            per_invocation = items[0].a_used.size + items[0].b_stored.size
        chunk = recommended_chunk(per_invocation)
    elif chunk < 1:
        raise ActivityError(f"chunk must be >= 1, got {chunk}")

    reports: list[ActivityReport] = []
    for start in range(0, len(items), chunk):
        stacked = build_streams_stacked(items[start : start + chunk])
        reports.extend(
            _estimate_stacked(stacked, sampling, seed_list[start : start + chunk])
        )
    return reports


def _estimate_stacked(
    stacked: StackedOperandStreams,
    sampling: SamplingConfig,
    seeds: "Sequence[int] | range | None",
) -> list[ActivityReport]:
    """Run every component estimator's stacked fast path over one chunk."""
    if stacked.batch == 0:
        return []
    operand_list = estimate_operand_activity_batch(stacked)
    multiplier_list = estimate_multiplier_activity_batch(stacked)
    datapath_list = estimate_datapath_activity_batch(stacked, sampling, seeds=seeds)
    memory_list = estimate_memory_activity_batch(stacked)

    reports = []
    for operand, multiplier, datapath, memory in zip(
        operand_list, multiplier_list, datapath_list, memory_list
    ):
        reports.append(
            ActivityReport(
                operand_activity=operand.activity,
                multiplier_activity=multiplier.activity,
                datapath_activity=datapath.activity,
                memory_activity=memory.activity,
                operand_toggle_a=operand.toggle_a,
                operand_toggle_b=operand.toggle_b,
                multiplier_hw_product=multiplier.hw_product,
                zero_mac_fraction=multiplier.zero_mac_fraction,
                product_toggle=datapath.product_toggle,
                accumulator_toggle=datapath.accumulator_toggle,
                memory_toggle=memory.toggle,
                a_hamming_fraction=multiplier.a_hamming_fraction,
                b_hamming_fraction=multiplier.b_hamming_fraction,
                bit_alignment=datapath.bit_alignment,
                dtype=stacked.dtype.name,
                shape=(stacked.n, stacked.m, stacked.k),
                output_samples=datapath.output_samples,
            )
        )
    return reports


def activity_from_matrices(
    a: np.ndarray,
    b_stored: np.ndarray,
    dtype: str = "fp16_t",
    transpose_b: bool = True,
    sampling: SamplingConfig | None = None,
    seed: int = 0,
) -> ActivityReport:
    """Convenience wrapper: estimate activity directly from two matrices."""
    a = np.asarray(a, dtype=np.float64)
    b_stored = np.asarray(b_stored, dtype=np.float64)
    n, k = a.shape
    m = b_stored.shape[0] if transpose_b else b_stored.shape[1]
    problem = GemmProblem(n=n, m=m, k=k, dtype=dtype, transpose_b=transpose_b)
    operands = GemmOperands(problem=problem, a=a, b_stored=b_stored)
    return estimate_activity(operands, sampling=sampling, seed=seed)
