"""Top-level switching-activity engine.

``estimate_activity`` combines the per-component estimators into a single
:class:`~repro.activity.report.ActivityReport` for one GEMM invocation;
``estimate_activity_batch`` does the same for a whole batch of same-shape
invocations (e.g. all seeds of one experiment configuration) with a single
stream build and stacked 3-D fast paths through every component estimator.

Both entry points are cache-aware: given an
:class:`~repro.cache.store.ActivityCache` and per-invocation fingerprints
(:func:`~repro.cache.fingerprint.activity_fingerprint`), previously
estimated invocations are served from the cache and — when operands are
passed as zero-argument factories — never even generate their matrices.
:class:`ActivityEngine` bundles a sampling configuration and a cache into a
reusable object; the experiment harness drives it so sweeps that vary only
the device or measurement procedure estimate each seed exactly once.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.activity.accumulator import (
    estimate_datapath_activity,
    estimate_datapath_activity_batch,
)
from repro.activity.memory_traffic import (
    estimate_memory_activity,
    estimate_memory_activity_batch,
)
from repro.activity.multiplier import (
    estimate_multiplier_activity,
    estimate_multiplier_activity_batch,
)
from repro.activity.operand_bus import (
    estimate_operand_activity,
    estimate_operand_activity_batch,
)
from repro.activity.report import ActivityReport
from repro.activity.sampler import SamplingConfig
from repro.errors import ActivityError
from repro.kernels.gemm import GemmOperands, GemmProblem
from repro.kernels.schedule import (
    OperandStreams,
    StackedOperandStreams,
    build_streams,
    build_streams_stacked,
)
from repro.parallel.calibrate import DEFAULT_CHUNK_BUDGET_BYTES, chunk_budget_bytes

__all__ = [
    "ActivityEngine",
    "estimate_activity",
    "estimate_activity_batch",
    "activity_from_matrices",
]

#: One batch item: concrete operands, pre-built streams, or a zero-argument
#: factory producing either (invoked only when the item is not cached).
OperandSource = (
    "GemmOperands | OperandStreams | Callable[[], GemmOperands | OperandStreams]"
)

#: Historical (uncalibrated) per-chunk budget for the batched engine, in
#: bytes of stacked A-operand data.  The activity estimators are
#: memory-bandwidth bound: stacking more invocations than fit in cache makes
#: every pass stream from DRAM and is *slower* than processing seeds one at
#: a time, so the batch is processed in chunks whose working set stays
#: cache-resident.  Stacking therefore only engages for small problems,
#: where per-call overhead (not bandwidth) dominates.  The live budget now
#: comes from :func:`repro.parallel.calibrate.chunk_budget_bytes` — a
#: per-machine probe with a ``REPRO_BATCH_CHUNK_BUDGET`` override — and this
#: name remains as a back-compat alias of that module's fallback default
#: (one source of truth: ``repro.parallel.calibrate``).
BATCH_CHUNK_BUDGET_BYTES = DEFAULT_CHUNK_BUDGET_BYTES


def recommended_chunk(per_invocation_values: int) -> int:
    """How many invocations of ``per_invocation_values`` float64 operand
    values to stack per pass.

    The per-chunk working-set budget is machine-calibrated (see
    :mod:`repro.parallel.calibrate`; ``REPRO_BATCH_CHUNK_BUDGET`` overrides,
    :data:`BATCH_CHUNK_BUDGET_BYTES` is the fallback).  Callers that
    generate operands on the fly (e.g. the experiment harness) use this to
    size their generation chunks so peak memory stays bounded by the chunk,
    not the whole batch.  Chunking never changes results — chunked
    estimation is bit-for-bit identical at any chunk size — so the budget
    only affects speed.
    """
    per_invocation_bytes = per_invocation_values * 8
    return max(1, chunk_budget_bytes() // max(per_invocation_bytes, 1))


def estimate_activity(
    operands: "GemmOperands | OperandStreams",
    sampling: SamplingConfig | None = None,
    seed: int = 0,
) -> ActivityReport:
    """Estimate the switching activity of one GEMM invocation.

    Parameters
    ----------
    operands:
        Either concrete :class:`~repro.kernels.gemm.GemmOperands` or
        pre-built :class:`~repro.kernels.schedule.OperandStreams`.
    sampling:
        Sampling configuration for the product/accumulator estimator.
    seed:
        Extra seed mixed into the sampling RNG so repeated invocations with
        different seeds sample different output positions.
    """
    if isinstance(operands, GemmOperands):
        streams = build_streams(operands)
    elif isinstance(operands, OperandStreams):
        streams = operands
    else:
        raise ActivityError(
            f"estimate_activity expects GemmOperands or OperandStreams, got {type(operands).__name__}"
        )
    sampling = sampling or SamplingConfig()

    operand = estimate_operand_activity(streams)
    multiplier = estimate_multiplier_activity(streams)
    datapath = estimate_datapath_activity(streams, sampling, seed=seed)
    memory = estimate_memory_activity(streams)

    return ActivityReport(
        operand_activity=operand.activity,
        multiplier_activity=multiplier.activity,
        datapath_activity=datapath.activity,
        memory_activity=memory.activity,
        operand_toggle_a=operand.toggle_a,
        operand_toggle_b=operand.toggle_b,
        multiplier_hw_product=multiplier.hw_product,
        zero_mac_fraction=multiplier.zero_mac_fraction,
        product_toggle=datapath.product_toggle,
        accumulator_toggle=datapath.accumulator_toggle,
        memory_toggle=memory.toggle,
        a_hamming_fraction=multiplier.a_hamming_fraction,
        b_hamming_fraction=multiplier.b_hamming_fraction,
        bit_alignment=datapath.bit_alignment,
        dtype=streams.dtype.name,
        shape=(streams.n, streams.m, streams.k),
        output_samples=datapath.output_samples,
    )


def _materialize(item: "object") -> "GemmOperands | OperandStreams":
    """Invoke a factory item if needed and type-check the result."""
    if callable(item) and not isinstance(item, (GemmOperands, OperandStreams)):
        item = item()
    if not isinstance(item, (GemmOperands, OperandStreams)):
        raise ActivityError(
            "estimate_activity_batch expects GemmOperands, OperandStreams, "
            "factories returning them, or StackedOperandStreams; got "
            f"{type(item).__name__}"
        )
    return item


def _per_invocation_values(item: "GemmOperands | OperandStreams") -> int:
    if isinstance(item, GemmOperands):
        return item.a.size + item.b_stored.size
    return item.a_used.size + item.b_stored.size


def estimate_activity_batch(
    operands: "Sequence[OperandSource] | StackedOperandStreams",
    sampling: SamplingConfig | None = None,
    seeds: "Sequence[int] | range | None" = None,
    chunk: int | None = None,
    cache: "object | None" = None,
    keys: "Sequence[str] | None" = None,
) -> list[ActivityReport]:
    """Estimate switching activity for a batch of same-shape GEMM invocations.

    This is the vectorized counterpart of calling :func:`estimate_activity`
    once per invocation: the operand streams are quantized and bit-encoded in
    one pass per stacked chunk and every component estimator runs its
    stacked fast path.  The returned reports are bit-for-bit identical to
    the sequential ones.

    Parameters
    ----------
    operands:
        A sequence of :class:`~repro.kernels.gemm.GemmOperands` (or
        pre-built :class:`~repro.kernels.schedule.OperandStreams`) sharing
        shape, dtype and transposition, zero-argument factories returning
        them, or an already-stacked
        :class:`~repro.kernels.schedule.StackedOperandStreams`.  Factory
        items are invoked only for invocations the cache cannot serve, so a
        fully warm batch skips operand generation entirely.
    sampling:
        Sampling configuration for the product/accumulator estimator.
    seeds:
        Per-invocation sampling seeds; defaults to ``range(batch)``, which is
        what the measurement harness uses for its seed loop.
    chunk:
        How many invocations to stack per pass.  Defaults to an automatic
        choice that keeps each chunk's working set cache-resident (the
        machine-calibrated budget of :func:`repro.parallel.calibrate.
        chunk_budget_bytes`); pass an explicit value to override.
    cache:
        Optional :class:`~repro.cache.store.ActivityCache` (or the
        ``DEFAULT_CACHE`` sentinel for the process-wide one).  ``None`` —
        the default — always estimates.
    keys:
        Per-invocation cache keys
        (:func:`~repro.cache.fingerprint.activity_fingerprint`), required
        when ``cache`` is given; ignored without a cache.
    """
    from repro.cache.store import resolve_activity_cache

    if isinstance(operands, StackedOperandStreams):
        if cache is not None:
            raise ActivityError(
                "pre-stacked streams cannot be combined with an activity cache; "
                "pass the per-invocation operands instead"
            )
        return _estimate_stacked(operands, sampling or SamplingConfig(), seeds)

    items: list[object] = list(operands)
    if not items:
        return []
    sampling = sampling or SamplingConfig()
    seed_list = list(seeds) if seeds is not None else list(range(len(items)))
    if len(seed_list) != len(items):
        raise ActivityError(
            f"got {len(seed_list)} seeds for a batch of {len(items)} invocations"
        )
    if chunk is not None and chunk < 1:
        raise ActivityError(f"chunk must be >= 1, got {chunk}")

    resolved = resolve_activity_cache(cache) if cache is not None else None
    reports: list[ActivityReport | None] = [None] * len(items)
    if resolved is not None:
        if keys is None:
            raise ActivityError("an activity cache needs per-invocation keys")
        key_list = list(keys)
        if len(key_list) != len(items):
            raise ActivityError(
                f"got {len(key_list)} keys for a batch of {len(items)} invocations"
            )
        missing = []
        for index, key in enumerate(key_list):
            hit = resolved.get(key)
            if hit is None:
                missing.append(index)
            else:
                reports[index] = hit
    else:
        key_list = None
        missing = list(range(len(items)))

    if missing:
        if chunk is None:
            first = _materialize(items[missing[0]])
            items[missing[0]] = first
            chunk = recommended_chunk(_per_invocation_values(first))
        for start in range(0, len(missing), chunk):
            group = missing[start : start + chunk]
            materialized = [_materialize(items[index]) for index in group]
            # Drop the item slots (each index is visited once) so operands —
            # including the one materialized above for chunk sizing — stay
            # alive only for their own chunk, keeping peak memory bounded by
            # the chunk even at paper scale (~70 MB per seed).
            for index in group:
                items[index] = None
            stacked = build_streams_stacked(materialized)
            estimated = _estimate_stacked(
                stacked, sampling, [seed_list[index] for index in group]
            )
            for index, report in zip(group, estimated):
                reports[index] = report
                if resolved is not None and key_list is not None:
                    resolved.put(key_list[index], report)
    return reports  # type: ignore[return-value]


class ActivityEngine:
    """Reusable activity estimator bound to sampling knobs and a cache.

    The engine is the unit the experiment harness holds on to: one instance
    per configuration, carrying the configuration's
    :class:`~repro.activity.sampler.SamplingConfig` and the activity cache
    to consult.  ``cache`` accepts an explicit
    :class:`~repro.cache.store.ActivityCache`, ``None`` to always estimate,
    or the ``DEFAULT_CACHE`` sentinel for the process-wide tier.
    """

    def __init__(
        self,
        sampling: SamplingConfig | None = None,
        cache: "object | None" = None,
    ) -> None:
        from repro.cache.store import resolve_activity_cache

        self.sampling = sampling or SamplingConfig()
        self.cache = resolve_activity_cache(cache) if cache is not None else None

    def estimate(
        self,
        operands: "OperandSource",
        seed: int = 0,
        key: str | None = None,
    ) -> ActivityReport:
        """Estimate one invocation, consulting the cache when ``key`` is given."""
        if self.cache is not None and key is not None:
            hit = self.cache.get(key)
            if hit is not None:
                return hit
        report = estimate_activity(_materialize(operands), sampling=self.sampling, seed=seed)
        if self.cache is not None and key is not None:
            self.cache.put(key, report)
        return report

    def estimate_batch(
        self,
        operands: "Sequence[OperandSource] | StackedOperandStreams",
        seeds: "Sequence[int] | range | None" = None,
        keys: "Sequence[str] | None" = None,
        chunk: int | None = None,
    ) -> list[ActivityReport]:
        """Batch counterpart of :meth:`estimate` (see
        :func:`estimate_activity_batch`); keys are dropped when the engine
        has no cache, so callers need not special-case disabled caching."""
        return estimate_activity_batch(
            operands,
            sampling=self.sampling,
            seeds=seeds,
            chunk=chunk,
            cache=self.cache,
            keys=keys if self.cache is not None else None,
        )


def _estimate_stacked(
    stacked: StackedOperandStreams,
    sampling: SamplingConfig,
    seeds: "Sequence[int] | range | None",
) -> list[ActivityReport]:
    """Run every component estimator's stacked fast path over one chunk."""
    if stacked.batch == 0:
        return []
    operand_list = estimate_operand_activity_batch(stacked)
    multiplier_list = estimate_multiplier_activity_batch(stacked)
    datapath_list = estimate_datapath_activity_batch(stacked, sampling, seeds=seeds)
    memory_list = estimate_memory_activity_batch(stacked)

    reports = []
    for operand, multiplier, datapath, memory in zip(
        operand_list, multiplier_list, datapath_list, memory_list
    ):
        reports.append(
            ActivityReport(
                operand_activity=operand.activity,
                multiplier_activity=multiplier.activity,
                datapath_activity=datapath.activity,
                memory_activity=memory.activity,
                operand_toggle_a=operand.toggle_a,
                operand_toggle_b=operand.toggle_b,
                multiplier_hw_product=multiplier.hw_product,
                zero_mac_fraction=multiplier.zero_mac_fraction,
                product_toggle=datapath.product_toggle,
                accumulator_toggle=datapath.accumulator_toggle,
                memory_toggle=memory.toggle,
                a_hamming_fraction=multiplier.a_hamming_fraction,
                b_hamming_fraction=multiplier.b_hamming_fraction,
                bit_alignment=datapath.bit_alignment,
                dtype=stacked.dtype.name,
                shape=(stacked.n, stacked.m, stacked.k),
                output_samples=datapath.output_samples,
            )
        )
    return reports


def activity_from_matrices(
    a: np.ndarray,
    b_stored: np.ndarray,
    dtype: str = "fp16_t",
    transpose_b: bool = True,
    sampling: SamplingConfig | None = None,
    seed: int = 0,
) -> ActivityReport:
    """Convenience wrapper: estimate activity directly from two matrices."""
    a = np.asarray(a, dtype=np.float64)
    b_stored = np.asarray(b_stored, dtype=np.float64)
    n, k = a.shape
    m = b_stored.shape[0] if transpose_b else b_stored.shape[1]
    problem = GemmProblem(n=n, m=m, k=k, dtype=dtype, transpose_b=transpose_b)
    operands = GemmOperands(problem=problem, a=a, b_stored=b_stored)
    return estimate_activity(operands, sampling=sampling, seed=seed)
