"""Product / accumulator datapath activity (sampled).

For a sampled set of output positions ``(i, j)`` the estimator walks the
reduction dimension exactly as the kernel mainloop does, forming the
product sequence ``p_k = A[i, k] * B[k, j]`` and the partial-sum sequence
``s_k = s_{k-1} + p_k`` in the accumulator precision, and measures how many
bits toggle between successive values of each.

This is the component that separates "sorted" from "sorted and aligned"
inputs (T9): aligned streams produce smoothly varying products and partial
sums whose high bits barely move, while unaligned or randomly-sparsified
sorted inputs (T13) produce products that jump between zero and large
values, toggling the full datapath width.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.activity.sampler import SamplingConfig
from repro.activity.toggles import RANDOM_TOGGLE_FRACTION, encode_for_accumulator
from repro.kernels.schedule import OperandStreams, StackedOperandStreams
from repro.util.bits import popcount, toggle_fraction_along_axis, toggle_fraction_per_slice
from repro.util.rng import derive_rng

__all__ = [
    "DatapathActivity",
    "estimate_datapath_activity",
    "estimate_datapath_activity_batch",
]


@dataclass(frozen=True)
class DatapathActivity:
    """Raw and normalized product/accumulator datapath activity."""

    product_toggle: float
    accumulator_toggle: float
    bit_alignment: float
    output_samples: int
    activity: float


def estimate_datapath_activity(
    streams: OperandStreams, config: SamplingConfig | None = None, seed: int = 0
) -> DatapathActivity:
    """Estimate product and accumulator switching activity on sampled outputs."""
    if config is None:
        config = SamplingConfig()
    rng = derive_rng(config.seed, "datapath", seed)
    rows, cols = streams.sample_output_positions(rng, config.output_samples)
    k = config.effective_k(streams.k)

    # Gather the operand sequences of each sampled output: (S, K).
    a_rows = streams.a_used[rows, :k]
    b_cols = streams.b_used[:k, cols].T

    with np.errstate(over="ignore", invalid="ignore"):
        products = a_rows * b_cols
        partial_sums = np.cumsum(products, axis=1)

    product_words = encode_for_accumulator(products, streams.dtype)
    sum_words = encode_for_accumulator(partial_sums, streams.dtype)

    product_toggle = toggle_fraction_along_axis(product_words, axis=1)
    accumulator_toggle = toggle_fraction_along_axis(sum_words, axis=1)

    # Bit alignment between the operand pairs actually multiplied together
    # (Figure 8's alignment metric), measured on the same sample.
    a_pair_words = streams.dtype.encode(a_rows)
    b_pair_words = streams.dtype.encode(b_cols)
    xor = np.bitwise_xor(a_pair_words, b_pair_words)
    mean_distance = float(popcount(xor).mean())
    bit_alignment = 1.0 - mean_distance / streams.dtype.bits

    activity = 0.5 * (product_toggle + accumulator_toggle) / RANDOM_TOGGLE_FRACTION
    return DatapathActivity(
        product_toggle=product_toggle,
        accumulator_toggle=accumulator_toggle,
        bit_alignment=bit_alignment,
        output_samples=int(rows.size),
        activity=activity,
    )


def estimate_datapath_activity_batch(
    streams: StackedOperandStreams,
    config: SamplingConfig | None = None,
    seeds: "list[int] | range | None" = None,
) -> list[DatapathActivity]:
    """Stacked fast path: datapath activity for a whole batch.

    Output positions are sampled per invocation with the same derived RNGs
    as the scalar path; the product/partial-sum streams, accumulator
    encoding and toggle counting then run in single vectorized passes over
    the ``(S, samples, K)`` stack.  Each entry matches
    :func:`estimate_datapath_activity` with the corresponding seed bit for
    bit.
    """
    if config is None:
        config = SamplingConfig()
    seed_list = list(seeds) if seeds is not None else list(range(streams.batch))
    if len(seed_list) != streams.batch:
        raise ValueError(
            f"got {len(seed_list)} seeds for a batch of {streams.batch} invocations"
        )
    if streams.batch == 0:
        return []
    k = config.effective_k(streams.k)

    a_rows_parts = []
    b_cols_parts = []
    sample_counts = []
    for index, seed in enumerate(seed_list):
        rng = derive_rng(config.seed, "datapath", seed)
        view = streams.slice(index)
        rows, cols = view.sample_output_positions(rng, config.output_samples)
        a_rows_parts.append(view.a_used[rows, :k])
        b_cols_parts.append(view.b_used[:k, cols].T)
        sample_counts.append(int(rows.size))

    a_rows = np.stack(a_rows_parts)  # (S, samples, k)
    b_cols = np.stack(b_cols_parts)  # (S, samples, k)

    with np.errstate(over="ignore", invalid="ignore"):
        products = a_rows * b_cols
        partial_sums = np.cumsum(products, axis=2)

    product_words = encode_for_accumulator(products, streams.dtype)
    sum_words = encode_for_accumulator(partial_sums, streams.dtype)

    product_toggles = toggle_fraction_per_slice(product_words, axis=2)
    accumulator_toggles = toggle_fraction_per_slice(sum_words, axis=2)

    a_pair_words = streams.dtype.encode(a_rows)
    b_pair_words = streams.dtype.encode(b_cols)
    pair_distances = popcount(np.bitwise_xor(a_pair_words, b_pair_words))

    out = []
    for index in range(streams.batch):
        product_toggle = float(product_toggles[index])
        accumulator_toggle = float(accumulator_toggles[index])
        mean_distance = float(pair_distances[index].mean())
        bit_alignment = 1.0 - mean_distance / streams.dtype.bits
        activity = 0.5 * (product_toggle + accumulator_toggle) / RANDOM_TOGGLE_FRACTION
        out.append(
            DatapathActivity(
                product_toggle=product_toggle,
                accumulator_toggle=accumulator_toggle,
                bit_alignment=bit_alignment,
                output_samples=sample_counts[index],
                activity=activity,
            )
        )
    return out
