"""Bit-level switching-activity estimation for GEMM kernels.

This package turns concrete GEMM operands into the activity factors the
power model consumes: how often bits toggle on the operand delivery path,
how many partial products the multiplier array generates, how much the
product/accumulator datapath switches, and how busy the memory interface
bit-lines are.  All estimators are vectorized NumPy bit manipulation; the
only non-exact quantity is the accumulator/product stream, which is
computed on a random sample of output positions.
"""

from repro.activity.accumulator import (
    estimate_datapath_activity,
    estimate_datapath_activity_batch,
)
from repro.activity.engine import (
    ActivityEngine,
    estimate_activity,
    estimate_activity_batch,
)
from repro.activity.memory_traffic import (
    estimate_memory_activity,
    estimate_memory_activity_batch,
)
from repro.activity.multiplier import (
    estimate_multiplier_activity,
    estimate_multiplier_activity_batch,
)
from repro.activity.operand_bus import (
    estimate_operand_activity,
    estimate_operand_activity_batch,
)
from repro.activity.report import ActivityReport
from repro.activity.sampler import SamplingConfig

__all__ = [
    "ActivityEngine",
    "ActivityReport",
    "SamplingConfig",
    "estimate_activity",
    "estimate_activity_batch",
    "estimate_operand_activity",
    "estimate_operand_activity_batch",
    "estimate_multiplier_activity",
    "estimate_multiplier_activity_batch",
    "estimate_datapath_activity",
    "estimate_datapath_activity_batch",
    "estimate_memory_activity",
    "estimate_memory_activity_batch",
]
