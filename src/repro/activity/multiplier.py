"""Multiplier-array activity.

The dynamic energy of a digital multiplier grows with the number of set
bits in its operands (more partial products are generated and summed), and
a multiply where either operand is exactly zero is effectively gated.  For
a GEMM, the mean over all N*M*K multiply-accumulates of
``hw(A[i,k]) * hw(B[k,j])`` factorizes over the reduction index, so the
estimate below is *exact* and costs only ``O(N*K + K*M)``:

    mean_k [ mean_i hw(A[i,k]) * mean_j hw(B[k,j]) ]

This component is what makes Hamming-weight-reducing inputs (zeroed bits,
sparsity, small-magnitude integers) cheaper — takeaways T12, T14, T15 and
the Figure 8 Hamming-weight correlation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.activity.toggles import RANDOM_HAMMING_FRACTION
from repro.kernels.schedule import OperandStreams, StackedOperandStreams
from repro.util.bits import popcount

__all__ = [
    "MultiplierActivity",
    "estimate_multiplier_activity",
    "estimate_multiplier_activity_batch",
]

#: Residual activity of a zero-gated multiply (clocking and control overhead).
ZERO_GATED_RESIDUAL = 0.04


@dataclass(frozen=True)
class MultiplierActivity:
    """Raw and normalized multiplier-array activity."""

    hw_product: float
    zero_mac_fraction: float
    a_hamming_fraction: float
    b_hamming_fraction: float
    activity: float


def estimate_multiplier_activity(streams: OperandStreams) -> MultiplierActivity:
    """Estimate multiplier-array switching activity for one GEMM (exact)."""
    return _from_counts(
        pc_a=popcount(streams.a_words),
        pc_b=popcount(streams.b_words),
        a_used=streams.a_used,
        b_used=streams.b_used,
        width=streams.dtype.bits,
    )


def estimate_multiplier_activity_batch(
    streams: StackedOperandStreams,
) -> list[MultiplierActivity]:
    """Stacked fast path: multiplier activity for a whole batch.

    The popcount table lookups (the expensive part) run once over the 3-D
    word stacks; the cheap per-slice statistics then reuse the exact scalar
    reduction code, so each entry matches
    :func:`estimate_multiplier_activity` on the corresponding slice bit for
    bit.
    """
    pc_a = popcount(streams.a_words)  # (S, N, K)
    pc_b = popcount(streams.b_words)  # (S, K, M)
    width = streams.dtype.bits
    return [
        _from_counts(
            pc_a=pc_a[index],
            pc_b=pc_b[index],
            a_used=streams.a_used[index],
            b_used=streams.b_used[index],
            width=width,
        )
        for index in range(streams.batch)
    ]


def _from_counts(
    pc_a: np.ndarray,
    pc_b: np.ndarray,
    a_used: np.ndarray,
    b_used: np.ndarray,
    width: int,
) -> MultiplierActivity:
    """Shared reduction core operating on precomputed per-word popcounts."""
    hw_a = pc_a.astype(np.float64) / width  # (N, K)
    hw_b = pc_b.astype(np.float64) / width  # (K, M)

    a_hamming = float(hw_a.mean())
    b_hamming = float(hw_b.mean())

    # Exact mean over MACs of hw(a)*hw(b): factorizes along the reduction dim.
    mean_hw_a_per_k = hw_a.mean(axis=0)  # (K,)
    mean_hw_b_per_k = hw_b.mean(axis=1)  # (K,)
    hw_product = float((mean_hw_a_per_k * mean_hw_b_per_k).mean())

    # Exact fraction of MACs with at least one zero operand.
    zero_a_per_k = (a_used == 0.0).mean(axis=0)  # (K,)
    zero_b_per_k = (b_used == 0.0).mean(axis=1)  # (K,)
    nonzero_pair_per_k = (1.0 - zero_a_per_k) * (1.0 - zero_b_per_k)
    zero_mac_fraction = float(1.0 - nonzero_pair_per_k.mean())

    normalization = RANDOM_HAMMING_FRACTION**2
    raw_activity = hw_product / normalization
    # Zero-gated multiplies still burn a small residual; non-gated ones are
    # already captured by hw_product (zero operands contribute zero there).
    activity = raw_activity + ZERO_GATED_RESIDUAL * zero_mac_fraction

    return MultiplierActivity(
        hw_product=hw_product,
        zero_mac_fraction=zero_mac_fraction,
        a_hamming_fraction=a_hamming,
        b_hamming_fraction=b_hamming,
        activity=activity,
    )
