"""Stateful optimization engines and the runner that drives them.

Importing this package registers every engine (the ``@register_engine``
decorators fire as the modules load), so ``get_engine("nelder_mead")``
etc. work after a plain ``import repro.optimize.engines``.

Registered engines:

========== ====================================== ============================
Name       Class                                  For
========== ====================================== ============================
bisection  :class:`BisectionEngine`               monotone 1-D threshold search
nelder_mead :class:`NelderMeadEngine`             continuous minimization
random     :class:`RandomRefineEngine`            baseline / seeding
========== ====================================== ============================
"""

from repro.optimize.engines.base import (
    ENGINES,
    Evaluation,
    OptimizationEngine,
    Point,
    engine_from_state,
    get_engine,
    list_engines,
    register_engine,
)
from repro.optimize.engines.bisection import BisectionEngine
from repro.optimize.engines.nelder_mead import NelderMeadEngine
from repro.optimize.engines.random_search import RandomRefineEngine
from repro.optimize.engines.result import (
    RESULT_FORMAT,
    IterationRecord,
    OptimizationResult,
)
from repro.optimize.engines.runner import (
    CHECKPOINT_FORMAT,
    METRICS,
    STUDY_FORMAT,
    ConfigObjective,
    Constraint,
    OptimizationRunner,
    build_runner,
    load_study,
    run_study,
)
from repro.optimize.engines.space import CONFIG_FIELD_TARGETS, Dimension, ParameterSpace

__all__ = [
    # protocol + registry
    "OptimizationEngine",
    "Evaluation",
    "Point",
    "ENGINES",
    "register_engine",
    "get_engine",
    "list_engines",
    "engine_from_state",
    # engines
    "BisectionEngine",
    "NelderMeadEngine",
    "RandomRefineEngine",
    # parameter space
    "Dimension",
    "ParameterSpace",
    "CONFIG_FIELD_TARGETS",
    # runner + studies
    "OptimizationRunner",
    "ConfigObjective",
    "Constraint",
    "METRICS",
    "build_runner",
    "load_study",
    "run_study",
    "STUDY_FORMAT",
    "CHECKPOINT_FORMAT",
    # results
    "IterationRecord",
    "OptimizationResult",
    "RESULT_FORMAT",
]
