"""Seeded random / grid-refine engine: the baseline the others must beat.

Round 0 covers the whole box — uniformly at random (``mode="random"``) or
with a regular grid (``mode="grid"``).  Every later round shrinks the
sampling box by ``refine`` around the incumbent best and covers it again,
clipped into the global bounds.  This is deliberately simple: it is the
sanity baseline for the smarter engines, the seeding stage for
refinement studies, and — because each round's samples are drawn from a
generator derived from ``(seed, round)`` alone — its proposals are a
pure function of ``(seed, round, incumbent)``, so checkpoints need no
RNG state at all.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterable, Mapping

import numpy as np

from repro.errors import OptimizationError
from repro.optimize.engines.base import (
    Evaluation,
    OptimizationEngine,
    Point,
    register_engine,
)
from repro.optimize.engines.space import ParameterSpace

__all__ = ["RandomRefineEngine"]


@register_engine("random")
class RandomRefineEngine(OptimizationEngine):
    """Random (or grid) sampling with geometric refinement around the best."""

    def __init__(
        self,
        space: ParameterSpace,
        *,
        seed: int = 0,
        batch_size: int = 8,
        rounds: int = 6,
        refine: float = 0.5,
        mode: str = "random",
    ) -> None:
        super().__init__()
        if batch_size < 1:
            raise OptimizationError(f"batch_size must be >= 1, got {batch_size}")
        if rounds < 1:
            raise OptimizationError(f"rounds must be >= 1, got {rounds}")
        if not 0.0 < refine < 1.0:
            raise OptimizationError(f"refine must be in (0, 1), got {refine}")
        if mode not in ("random", "grid"):
            raise OptimizationError(f"mode must be 'random' or 'grid', got {mode!r}")
        self.space = space
        self.seed = int(seed)
        self.batch_size = int(batch_size)
        self.rounds = int(rounds)
        self.refine = float(refine)
        self.mode = mode
        self._round = 0

    # -------------------------------------------------------------- helpers

    def _box(self) -> "tuple[np.ndarray, np.ndarray]":
        """Sampling box of the current round: full space, then refined."""
        dims = self.space.dimensions
        lows = np.array([d.low for d in dims], dtype=np.float64)
        highs = np.array([d.high for d in dims], dtype=np.float64)
        if self._round == 0 or self._best is None:
            return lows, highs
        spans = (highs - lows) * (self.refine ** self._round)
        center = np.array(self.space.vector(self._best.point), dtype=np.float64)
        return np.maximum(lows, center - 0.5 * spans), np.minimum(highs, center + 0.5 * spans)

    def _proposals(self) -> "list[list[float]]":
        lows, highs = self._box()
        if self.mode == "grid":
            per_dim = max(2, int(round(self.batch_size ** (1.0 / len(self.space)))))
            axes = [
                np.linspace(low, high, per_dim) if high > low else np.array([low])
                for low, high in zip(lows, highs)
            ]
            vectors = [list(combo) for combo in itertools.product(*axes)]
        else:
            rng = np.random.default_rng([self.seed, self._round, len(self.space)])
            samples = lows + rng.uniform(0.0, 1.0, size=(self.batch_size, len(self.space))) * (
                highs - lows
            )
            vectors = [list(row) for row in samples]
        return [self.space.vector(self.space.point(v)) for v in vectors]

    # ------------------------------------------------------------- protocol

    def propose(self) -> "list[Point]":
        if self.is_converged:
            return []
        return [self.space.point(vector) for vector in self._proposals()]

    def ingest(self, evaluations: "Iterable[Evaluation]") -> None:
        if self.is_converged:
            raise OptimizationError("random engine is already converged")
        batch = list(evaluations)
        self._check_batch(self.propose(), batch)
        for evaluation in batch:
            self._observe(evaluation)
        self._round += 1

    @property
    def is_converged(self) -> bool:
        return self._round >= self.rounds

    @property
    def round(self) -> int:
        """Completed sampling rounds."""
        return self._round

    # ----------------------------------------------------------- checkpoint

    def state_dict(self) -> "dict[str, Any]":
        return {
            "engine": self.name,
            "space": self.space.as_dict(),
            "seed": self.seed,
            "batch_size": self.batch_size,
            "rounds": self.rounds,
            "refine": self.refine,
            "mode": self.mode,
            "round": self._round,
            "best": self._best_state(),
        }

    @classmethod
    def from_state(cls, state: "Mapping[str, Any]") -> "RandomRefineEngine":
        engine = cls(
            ParameterSpace.from_dict(state["space"]),
            seed=int(state["seed"]),
            batch_size=int(state["batch_size"]),
            rounds=int(state["rounds"]),
            refine=float(state["refine"]),
            mode=str(state["mode"]),
        )
        engine._round = int(state["round"])
        engine._restore_best(state)
        return engine
