"""Nelder–Mead simplex engine over the box of continuous knobs.

Classic downhill simplex (reflection α=1, expansion γ=2, contraction
ρ=0.5, shrink σ=0.5) recast as a propose/ingest state machine, the
aiida-optimize idiom: every function evaluation the textbook algorithm
would perform inline becomes one proposed batch, so the runner can
stream it through the cached, parallel sweep machinery.

Proposals are kept inside the parameter-space box, which makes the
engine natively bound-constrained.  An out-of-box coordinate is not
projected onto the bound — once every vertex shares a hard-clipped
coordinate exactly, centroid, reflection and shrink all stay inside that
face forever and the simplex is stuck one dimension short.  Instead it
is damped to the midpoint between the violated bound and the move's
interior anchor (the centroid, or the best vertex for shrink steps):
candidates stay strictly interior whenever the anchor is, while a
boundary optimum is still approached geometrically.  The initial
simplex is derived from
``seed`` alone, so a fixed seed pins the entire trajectory; all state is
JSON-scalar (Python floats round-trip exactly through ``json``), so a
checkpointed engine resumes bit for bit.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

import numpy as np

from repro.errors import OptimizationError
from repro.optimize.engines.base import (
    Evaluation,
    OptimizationEngine,
    Point,
    register_engine,
)
from repro.optimize.engines.space import ParameterSpace

__all__ = ["NelderMeadEngine"]

_ALPHA = 1.0   # reflection
_GAMMA = 2.0   # expansion
_RHO = 0.5     # contraction
_SIGMA = 0.5   # shrink

_PHASES = ("init", "reflect", "expand", "contract", "shrink", "done")


@register_engine("nelder_mead")
class NelderMeadEngine(OptimizationEngine):
    """Derivative-free simplex minimization of a continuous objective."""

    def __init__(
        self,
        space: ParameterSpace,
        *,
        seed: int = 0,
        max_iterations: int = 50,
        xtol: float = 1e-3,
        ftol: float = 1e-6,
        initial_point: "Mapping[str, float] | None" = None,
        step: float = 0.25,
    ) -> None:
        super().__init__()
        if max_iterations < 1:
            raise OptimizationError(f"max_iterations must be >= 1, got {max_iterations}")
        if xtol <= 0 or ftol <= 0:
            raise OptimizationError(f"xtol/ftol must be positive, got {xtol}/{ftol}")
        if not 0.0 < step <= 0.5:
            raise OptimizationError(f"step must be in (0, 0.5], got {step}")
        self.space = space
        self.seed = int(seed)
        self.max_iterations = int(max_iterations)
        self.xtol = float(xtol)
        self.ftol = float(ftol)
        self.step = float(step)
        self._iteration = 0
        self._phase = "init"
        self._simplex: "list[list[float]]" = []
        self._values: "list[float]" = []
        #: vectors awaiting evaluation, in proposal order
        self._pending: "list[list[float]]" = self._initial_simplex(initial_point)
        #: the reflection candidate carried into expand/contract decisions
        self._reflection: "list[float] | None" = None
        self._reflection_value: "float | None" = None
        self._contract_kind = ""

    # --------------------------------------------------------------- set-up

    def _initial_simplex(self, initial_point: "Mapping[str, float] | None") -> "list[list[float]]":
        dims = self.space.dimensions
        if initial_point is not None:
            x0 = np.array(self.space.vector(initial_point), dtype=np.float64)
        else:
            rng = np.random.default_rng([self.seed, len(dims)])
            lows = np.array([d.low for d in dims])
            spans = np.array([d.span for d in dims])
            x0 = lows + rng.uniform(0.0, 1.0, size=len(dims)) * spans
        vertices = [self.space.vector(self.space.point(x0))]
        for index, dim in enumerate(dims):
            vertex = x0.copy()
            offset = self.step * dim.span
            vertex[index] = vertex[index] + offset
            if vertex[index] > dim.high:
                vertex[index] = x0[index] - offset
            vertices.append(self.space.vector(self.space.point(vertex)))
        return vertices

    # -------------------------------------------------------------- helpers

    def _bounded(self, vector: np.ndarray, anchor: np.ndarray) -> "list[float]":
        """Damp out-of-box coordinates toward ``anchor`` instead of clipping.

        Hard projection onto a face can leave every vertex with the same
        clipped coordinate, collapsing the simplex into the face for
        good; the midpoint between the anchor and the violated bound
        stays strictly interior whenever the anchor is.
        """
        out = np.array(vector, dtype=np.float64)
        for index, dim in enumerate(self.space.dimensions):
            if out[index] < dim.low:
                out[index] = 0.5 * (float(anchor[index]) + dim.low)
            elif out[index] > dim.high:
                out[index] = 0.5 * (float(anchor[index]) + dim.high)
        return self.space.vector(self.space.point(out))

    def _centroid(self) -> np.ndarray:
        """Centroid of every vertex but the worst (simplex is kept sorted)."""
        return np.mean(np.array(self._simplex[:-1], dtype=np.float64), axis=0)

    def _sort_simplex(self) -> None:
        # Stable sort on the value alone keeps insertion order for ties,
        # which keeps the trajectory independent of how ties were batched.
        order = sorted(range(len(self._values)), key=lambda i: self._values[i])
        self._simplex = [self._simplex[i] for i in order]
        self._values = [self._values[i] for i in order]

    def _replace_worst(self, vector: "list[float]", value: float) -> None:
        self._simplex[-1] = list(vector)
        self._values[-1] = float(value)

    def _spread(self) -> "tuple[float, float]":
        points = np.array(self._simplex, dtype=np.float64)
        x_spread = float(np.max(points.max(axis=0) - points.min(axis=0)))
        f_spread = self._values[-1] - self._values[0]
        return x_spread, f_spread

    def _start_iteration(self) -> None:
        """Sort, check convergence, and stage the next reflection."""
        self._sort_simplex()
        x_spread, f_spread = self._spread()
        if self._iteration >= self.max_iterations or (
            x_spread <= self.xtol and f_spread <= self.ftol
        ):
            self._phase = "done"
            self._pending = []
            self._reflection = None
            self._reflection_value = None
            self._contract_kind = ""
            return
        centroid = self._centroid()
        worst = np.array(self._simplex[-1], dtype=np.float64)
        reflected = self._bounded(centroid + _ALPHA * (centroid - worst), centroid)
        self._phase = "reflect"
        self._pending = [reflected]
        self._reflection = None
        self._reflection_value = None
        self._contract_kind = ""

    # ------------------------------------------------------------- protocol

    def propose(self) -> "list[Point]":
        return [self.space.point(vector) for vector in self._pending]

    def ingest(self, evaluations: "Iterable[Evaluation]") -> None:
        batch = list(evaluations)
        self._check_batch(self.propose(), batch)
        if self._phase == "done":
            raise OptimizationError("Nelder-Mead engine is already converged")
        for evaluation in batch:
            self._observe(evaluation)
        values = [evaluation.objective for evaluation in batch]

        if self._phase == "init":
            self._simplex = [list(v) for v in self._pending]
            self._values = list(values)
            self._start_iteration()
            return

        if self._phase == "reflect":
            (reflected,), (f_reflected,) = self._pending, values
            if f_reflected < self._values[0]:
                centroid = self._centroid()
                expanded = self._bounded(
                    centroid + _GAMMA * (np.array(reflected) - centroid), centroid
                )
                self._reflection = list(reflected)
                self._reflection_value = f_reflected
                self._phase = "expand"
                self._pending = [expanded]
            elif f_reflected < self._values[-2]:
                self._replace_worst(reflected, f_reflected)
                self._iteration += 1
                self._start_iteration()
            else:
                centroid = self._centroid()
                if f_reflected < self._values[-1]:
                    self._contract_kind = "outside"
                    contracted = self._bounded(
                        centroid + _RHO * (np.array(reflected) - centroid), centroid
                    )
                else:
                    self._contract_kind = "inside"
                    worst = np.array(self._simplex[-1], dtype=np.float64)
                    contracted = self._bounded(
                        centroid + _RHO * (worst - centroid), centroid
                    )
                self._reflection = list(reflected)
                self._reflection_value = f_reflected
                self._phase = "contract"
                self._pending = [contracted]
            return

        if self._phase == "expand":
            (expanded,), (f_expanded,) = self._pending, values
            assert self._reflection is not None and self._reflection_value is not None
            if f_expanded < self._reflection_value:
                self._replace_worst(expanded, f_expanded)
            else:
                self._replace_worst(self._reflection, self._reflection_value)
            self._iteration += 1
            self._start_iteration()
            return

        if self._phase == "contract":
            (contracted,), (f_contracted,) = self._pending, values
            assert self._reflection_value is not None
            accepted = (
                f_contracted <= self._reflection_value
                if self._contract_kind == "outside"
                else f_contracted < self._values[-1]
            )
            if accepted:
                self._replace_worst(contracted, f_contracted)
                self._iteration += 1
                self._start_iteration()
            else:
                best = np.array(self._simplex[0], dtype=np.float64)
                self._phase = "shrink"
                self._pending = [
                    self._bounded(best + _SIGMA * (np.array(vertex) - best), best)
                    for vertex in self._simplex[1:]
                ]
            return

        # shrink: the batch replaces every vertex but the best.
        for index, (vector, value) in enumerate(zip(self._pending, values), start=1):
            self._simplex[index] = list(vector)
            self._values[index] = float(value)
        self._iteration += 1
        self._start_iteration()

    @property
    def is_converged(self) -> bool:
        return self._phase == "done"

    @property
    def iteration(self) -> int:
        """Completed Nelder-Mead iterations (simplex updates)."""
        return self._iteration

    @property
    def simplex(self) -> "list[tuple[Point, float]]":
        """Current (point, value) vertices, best first once evaluated."""
        return [
            (self.space.point(vector), value)
            for vector, value in zip(self._simplex, self._values)
        ]

    # ----------------------------------------------------------- checkpoint

    def state_dict(self) -> "dict[str, Any]":
        return {
            "engine": self.name,
            "space": self.space.as_dict(),
            "seed": self.seed,
            "max_iterations": self.max_iterations,
            "xtol": self.xtol,
            "ftol": self.ftol,
            "step": self.step,
            "iteration": self._iteration,
            "phase": self._phase,
            "simplex": [list(v) for v in self._simplex],
            "values": list(self._values),
            "pending": [list(v) for v in self._pending],
            "reflection": None if self._reflection is None else list(self._reflection),
            "reflection_value": self._reflection_value,
            "contract_kind": self._contract_kind,
            "best": self._best_state(),
        }

    @classmethod
    def from_state(cls, state: "Mapping[str, Any]") -> "NelderMeadEngine":
        engine = cls(
            ParameterSpace.from_dict(state["space"]),
            seed=int(state["seed"]),
            max_iterations=int(state["max_iterations"]),
            xtol=float(state["xtol"]),
            ftol=float(state["ftol"]),
            step=float(state["step"]),
        )
        phase = state["phase"]
        if phase not in _PHASES:
            raise OptimizationError(f"unknown Nelder-Mead phase {phase!r}")
        engine._iteration = int(state["iteration"])
        engine._phase = phase
        engine._simplex = [list(map(float, v)) for v in state["simplex"]]
        engine._values = [float(v) for v in state["values"]]
        engine._pending = [list(map(float, v)) for v in state["pending"]]
        reflection = state.get("reflection")
        engine._reflection = None if reflection is None else [float(v) for v in reflection]
        value = state.get("reflection_value")
        engine._reflection_value = None if value is None else float(value)
        engine._contract_kind = str(state.get("contract_kind", ""))
        engine._restore_best(state)
        return engine
