"""Bisection engine for monotone 1-D threshold questions.

Answers "what is the boundary of the feasible region?" for a monotone
objective: given a target value and the direction of monotonicity, find
the tightest ``x`` with ``f(x) <= target``.

* ``direction="decreasing"`` (power vs sparsity, the paper's T12): the
  feasible region is ``[x*, high]``; the engine finds the *smallest*
  feasible ``x``.  This is exactly the search
  :func:`repro.optimize.power_capping.find_sparsity_for_cap` needs.
* ``direction="increasing"``: the feasible region is ``[low, x*]``; the
  engine finds the *largest* feasible ``x``.

Evaluation order is fixed — trivial bound first, far bound second, then
midpoints — and reproduces the retired ad-hoc loop in ``power_capping``
bit for bit: same probes, same bracket updates, same stop condition
(bracket width ``<= tolerance`` checked after each midpoint, capped at
``max_iterations`` midpoints).
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.errors import OptimizationError
from repro.optimize.engines.base import (
    Evaluation,
    OptimizationEngine,
    Point,
    register_engine,
)
from repro.optimize.engines.space import ParameterSpace

__all__ = ["BisectionEngine"]

#: State-machine phases, in evaluation order.
_PHASES = ("near", "far", "search", "done")


@register_engine("bisection")
class BisectionEngine(OptimizationEngine):
    """Monotone bisection over a single dimension.

    ``space`` must be one-dimensional; ``target`` is compared against the
    *ingested objective value* directly (use a min-mode objective — the
    engine answers a threshold question, it does not minimize).
    """

    def __init__(
        self,
        space: ParameterSpace,
        *,
        target: float,
        direction: str = "decreasing",
        tolerance: float = 0.01,
        max_iterations: int = 12,
    ) -> None:
        super().__init__()
        if len(space) != 1:
            raise OptimizationError(
                f"bisection is one-dimensional; the space has {len(space)} dimensions"
            )
        if direction not in ("decreasing", "increasing"):
            raise OptimizationError(
                f"direction must be 'decreasing' or 'increasing', got {direction!r}"
            )
        if tolerance <= 0:
            raise OptimizationError(f"tolerance must be positive, got {tolerance}")
        if max_iterations < 1:
            raise OptimizationError(f"max_iterations must be >= 1, got {max_iterations}")
        self.space = space
        self.dimension = space.names[0]
        self.target = float(target)
        self.direction = direction
        self.tolerance = float(tolerance)
        self.max_iterations = int(max_iterations)
        dim = space.dimensions[0]
        self._low = dim.low
        self._high = dim.high
        self._phase = "near"
        self._iteration = 0
        self._feasible = False

    # ------------------------------------------------------------- helpers

    def _point(self, x: float) -> Point:
        return {self.dimension: float(x)}

    def _meets_target(self, value: float) -> bool:
        return value <= self.target

    @property
    def _near(self) -> float:
        """The trivially-best end of the bracket (probed first)."""
        return self._low if self.direction == "decreasing" else self._high

    @property
    def _far(self) -> float:
        """The most-feasible end of the bracket (probed second)."""
        return self._high if self.direction == "decreasing" else self._low

    @property
    def bracket(self) -> "tuple[float, float]":
        """Current ``(low, high)`` bracket around the feasibility boundary."""
        return (self._low, self._high)

    @property
    def feasible(self) -> bool:
        """Whether any probed point met the target."""
        return self._feasible

    @property
    def iteration(self) -> int:
        """Midpoint evaluations performed so far."""
        return self._iteration

    # ------------------------------------------------------------- protocol

    def propose(self) -> "list[Point]":
        if self._phase == "near":
            return [self._point(self._near)]
        if self._phase == "far":
            return [self._point(self._far)]
        if self._phase == "search":
            return [self._point(0.5 * (self._low + self._high))]
        return []

    def ingest(self, evaluations: "Iterable[Evaluation]") -> None:
        batch = list(evaluations)
        self._check_batch(self.propose(), batch)
        if self._phase == "done":
            raise OptimizationError("bisection engine is already converged")
        (evaluation,) = batch
        value = evaluation.objective
        if self._phase == "near":
            if self._meets_target(value):
                # The whole bracket is feasible: the near end is the answer.
                self._feasible = True
                self._observe(evaluation)
                self._phase = "done"
            else:
                self._phase = "far"
            return
        if self._phase == "far":
            if not self._meets_target(value):
                # Even the far end misses the target: infeasible; keep the
                # best attempt so callers can report how close it came.
                self._best = evaluation
                self._phase = "done"
            else:
                self._feasible = True
                self._best = evaluation
                self._phase = "search"
            return
        # search: shrink the bracket toward the boundary.
        mid = evaluation.point[self.dimension]
        self._iteration += 1
        if self._meets_target(value):
            self._feasible = True
            self._best = evaluation
            if self.direction == "decreasing":
                self._high = mid
            else:
                self._low = mid
        else:
            if self.direction == "decreasing":
                self._low = mid
            else:
                self._high = mid
        if self._high - self._low <= self.tolerance or self._iteration >= self.max_iterations:
            self._phase = "done"

    @property
    def is_converged(self) -> bool:
        return self._phase == "done"

    # ----------------------------------------------------------- checkpoint

    def state_dict(self) -> "dict[str, Any]":
        return {
            "engine": self.name,
            "space": self.space.as_dict(),
            "target": self.target,
            "direction": self.direction,
            "tolerance": self.tolerance,
            "max_iterations": self.max_iterations,
            "low": self._low,
            "high": self._high,
            "phase": self._phase,
            "iteration": self._iteration,
            "feasible": self._feasible,
            "best": self._best_state(),
        }

    @classmethod
    def from_state(cls, state: "Mapping[str, Any]") -> "BisectionEngine":
        engine = cls(
            ParameterSpace.from_dict(state["space"]),
            target=float(state["target"]),
            direction=str(state["direction"]),
            tolerance=float(state["tolerance"]),
            max_iterations=int(state["max_iterations"]),
        )
        phase = state["phase"]
        if phase not in _PHASES:
            raise OptimizationError(f"unknown bisection phase {phase!r}")
        engine._low = float(state["low"])
        engine._high = float(state["high"])
        engine._phase = phase
        engine._iteration = int(state["iteration"])
        engine._feasible = bool(state["feasible"])
        engine._restore_best(state)
        return engine
