"""Replayable history of one optimization run.

An :class:`OptimizationResult` records, per engine iteration, what was
proposed, what it scored, and what the evaluation *cost* (the
``run_configs`` counters: engine runs vs cache hits) — enough to replay,
diff, and audit a run.  :meth:`OptimizationResult.summary` is the replay
contract used by ``python -m repro.optimize --expect``: floats rounded
to six decimals, wall-clock and cache counters excluded, so the same
study with the same seed produces the identical summary on any machine
and any cache temperature.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.errors import OptimizationError
from repro.optimize.engines.base import INFEASIBLE, Point

__all__ = ["IterationRecord", "OptimizationResult", "RESULT_FORMAT"]

#: Wire-format tag checked by :meth:`OptimizationResult.from_dict`.
RESULT_FORMAT = "repro.optimize.result/v1"


def _encode_objective(value: "float | None") -> "float | None":
    if value is None or math.isinf(value):
        return None
    return float(value)


def _round(value: "float | None", digits: int = 6) -> "float | None":
    return None if value is None else round(float(value), digits)


@dataclass(frozen=True)
class IterationRecord:
    """One propose → evaluate → ingest round."""

    index: int
    proposals: "list[Point]"
    #: minimization objective per proposal; ``None`` = rejected by a
    #: feasibility filter (internally ``math.inf``)
    objectives: "list[float | None]"
    feasible: "list[bool]"
    best_point: "Point | None"
    best_objective: "float | None"
    #: ``run_configs`` counters for this batch ({} for callable objectives)
    run_stats: "dict[str, int]" = field(default_factory=dict)

    def as_dict(self) -> "dict[str, Any]":
        return {
            "index": self.index,
            "proposals": [dict(p) for p in self.proposals],
            "objectives": [_encode_objective(v) for v in self.objectives],
            "feasible": list(self.feasible),
            "best_point": None if self.best_point is None else dict(self.best_point),
            "best_objective": _encode_objective(self.best_objective),
            "run_stats": dict(self.run_stats),
        }

    @classmethod
    def from_dict(cls, data: "Mapping[str, Any]") -> "IterationRecord":
        return cls(
            index=int(data["index"]),
            proposals=[dict(p) for p in data["proposals"]],
            objectives=[
                INFEASIBLE if v is None else float(v) for v in data["objectives"]
            ],
            feasible=[bool(v) for v in data["feasible"]],
            best_point=None if data.get("best_point") is None else dict(data["best_point"]),
            best_objective=(
                None if data.get("best_objective") is None else float(data["best_objective"])
            ),
            run_stats={k: int(v) for k, v in dict(data.get("run_stats", {})).items()},
        )


@dataclass
class OptimizationResult:
    """Everything one optimization run did, in replayable form."""

    engine: str
    iterations: "list[IterationRecord]"
    best_point: "Point | None"
    best_objective: "float | None"
    best_metrics: "dict[str, float]"
    best_feasible: bool
    converged: bool
    evaluations: int
    #: configurations actually computed by the estimation engine (sum of
    #: per-iteration ``executed``) — 0 on a fully warm replay
    engine_runs: int
    #: configurations served from the result cache (sum of ``cache_hits``)
    cache_hits: int
    space: "list[dict[str, Any]] | None"
    objective: "dict[str, Any]"
    duration_s: float = 0.0

    # ---------------------------------------------------------------- views

    def trajectory(self) -> "list[float | None]":
        """Best-so-far objective after each iteration."""
        return [record.best_objective for record in self.iterations]

    def summary(self) -> "dict[str, Any]":
        """Machine-independent replay digest (see ``--expect``).

        Deterministic for a fixed study + seed: floats are rounded to six
        decimals and the cost counters (cache temperature) and wall-clock
        are deliberately absent.
        """
        return {
            "engine": self.engine,
            "iterations": len(self.iterations),
            "evaluations": self.evaluations,
            "converged": self.converged,
            "feasible": self.best_feasible,
            "best_point": (
                None
                if self.best_point is None
                else {k: _round(v) for k, v in sorted(self.best_point.items())}
            ),
            "best_objective": _round(self.best_objective),
            "trajectory": [_round(v) for v in self.trajectory()],
        }

    def render(self) -> str:
        """Human-readable trajectory table."""
        lines = [
            f"=== optimization: engine={self.engine} "
            f"converged={self.converged} feasible={self.best_feasible} ===",
            f"{'iter':>4}  {'evals':>5}  {'best objective':>16}  {'engine runs':>11}  {'cache hits':>10}",
        ]
        for record in self.iterations:
            best = record.best_objective
            lines.append(
                f"{record.index:>4}  {len(record.proposals):>5}  "
                f"{'-' if best is None else format(best, '>16.6f'):>16}  "
                f"{record.run_stats.get('executed', 0):>11}  "
                f"{record.run_stats.get('cache_hits', 0):>10}"
            )
        best_point = (
            "n/a"
            if self.best_point is None
            else ", ".join(f"{k}={v:.6g}" for k, v in sorted(self.best_point.items()))
        )
        lines.append(f"best point: {best_point}")
        if self.best_objective is not None:
            lines.append(f"best objective: {self.best_objective:.6f}")
        lines.append(
            f"totals: {self.evaluations} evaluations, {self.engine_runs} engine runs, "
            f"{self.cache_hits} cache hits, {self.duration_s:.3f}s"
        )
        return "\n".join(lines)

    # ----------------------------------------------------------------- wire

    def as_dict(self) -> "dict[str, Any]":
        return {
            "format": RESULT_FORMAT,
            "engine": self.engine,
            "iterations": [record.as_dict() for record in self.iterations],
            "best_point": None if self.best_point is None else dict(self.best_point),
            "best_objective": _encode_objective(self.best_objective),
            "best_metrics": dict(self.best_metrics),
            "best_feasible": self.best_feasible,
            "converged": self.converged,
            "evaluations": self.evaluations,
            "engine_runs": self.engine_runs,
            "cache_hits": self.cache_hits,
            "space": self.space,
            "objective": dict(self.objective),
            "duration_s": self.duration_s,
        }

    @classmethod
    def from_dict(cls, data: "Mapping[str, Any]") -> "OptimizationResult":
        if data.get("format") != RESULT_FORMAT:
            raise OptimizationError(
                f"not an optimization result (format {data.get('format')!r}, "
                f"expected {RESULT_FORMAT!r})"
            )
        return cls(
            engine=str(data["engine"]),
            iterations=[IterationRecord.from_dict(r) for r in data["iterations"]],
            best_point=None if data.get("best_point") is None else dict(data["best_point"]),
            best_objective=(
                None if data.get("best_objective") is None else float(data["best_objective"])
            ),
            best_metrics={k: float(v) for k, v in dict(data.get("best_metrics", {})).items()},
            best_feasible=bool(data["best_feasible"]),
            converged=bool(data["converged"]),
            evaluations=int(data["evaluations"]),
            engine_runs=int(data["engine_runs"]),
            cache_hits=int(data["cache_hits"]),
            space=None if data.get("space") is None else [dict(d) for d in data["space"]],
            objective=dict(data.get("objective", {})),
            duration_s=float(data.get("duration_s", 0.0)),
        )

    def save_json(self, path: "str | Path") -> Path:
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.as_dict(), indent=2, sort_keys=True))
        return target

    @classmethod
    def load(cls, path: "str | Path") -> "OptimizationResult":
        source = Path(path)
        try:
            payload = json.loads(source.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise OptimizationError(f"cannot read optimization result {source}: {exc}") from exc
        return cls.from_dict(payload)
