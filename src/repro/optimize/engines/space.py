"""Parameter-space encoder: abstract points ↔ valid experiment configs.

Engines optimize over an abstract box — named continuous dimensions with
bounds — and know nothing about :class:`ExperimentConfig`.  The
:class:`ParameterSpace` owns the mapping in both directions:

* :meth:`ParameterSpace.clip` normalizes a proposed point into the box
  (and rounds integer dimensions), so every engine proposal is valid by
  construction;
* :meth:`ParameterSpace.to_config` applies a point to a base config,
  writing each dimension either into ``pattern_params`` (the default) or
  onto a whitelisted numeric config field (``matrix_size``,
  ``iterations``, …).

The space serializes to plain JSON (:meth:`as_dict`/:meth:`from_dict`),
which is what makes optimization checkpoints and study files
self-contained.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from repro.errors import OptimizationError
from repro.experiments.config import ExperimentConfig
from repro.optimize.engines.base import Point

__all__ = ["Dimension", "ParameterSpace", "CONFIG_FIELD_TARGETS"]

#: Config fields a dimension may target directly (numeric knobs only —
#: categorical fields like ``dtype``/``gpu``/``pattern_family`` belong in
#: the study's base config, one study per category).
CONFIG_FIELD_TARGETS = ("matrix_size", "iterations", "seeds", "base_seed", "instance_id")

#: Targets that must be integers (rounding is forced on).
_INTEGER_TARGETS = set(CONFIG_FIELD_TARGETS)


@dataclass(frozen=True)
class Dimension:
    """One continuous (optionally integer-rounded) search dimension.

    ``target`` names where the value lands in the experiment config:
    ``"pattern_params.<key>"`` (default: ``pattern_params.<name>``) or one
    of :data:`CONFIG_FIELD_TARGETS`.
    """

    name: str
    low: float
    high: float
    target: str = ""
    integer: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise OptimizationError("dimension name must be non-empty")
        if not self.low < self.high:
            raise OptimizationError(
                f"dimension {self.name!r} needs low < high, got [{self.low}, {self.high}]"
            )
        target = self.resolved_target()
        if not target.startswith("pattern_params."):
            if target not in CONFIG_FIELD_TARGETS:
                raise OptimizationError(
                    f"dimension {self.name!r} target {target!r} is neither "
                    f"'pattern_params.<key>' nor one of {CONFIG_FIELD_TARGETS}"
                )
            if not self.integer:
                # Config-field targets are integer knobs; force rounding so
                # a proposed 127.3 becomes a valid matrix_size.
                object.__setattr__(self, "integer", True)

    def resolved_target(self) -> str:
        return self.target or f"pattern_params.{self.name}"

    def clip(self, value: float) -> float:
        clipped = min(max(float(value), self.low), self.high)
        if self.integer:
            clipped = float(int(round(clipped)))
        return clipped

    @property
    def span(self) -> float:
        return self.high - self.low

    def as_dict(self) -> "dict[str, Any]":
        return {
            "name": self.name,
            "low": self.low,
            "high": self.high,
            "target": self.target,
            "integer": self.integer,
        }

    @classmethod
    def from_dict(cls, data: "Mapping[str, Any]") -> "Dimension":
        unknown = sorted(set(data) - {"name", "low", "high", "target", "integer"})
        if unknown:
            raise OptimizationError(f"unknown dimension field(s): {', '.join(unknown)}")
        try:
            return cls(
                name=str(data["name"]),
                low=float(data["low"]),
                high=float(data["high"]),
                target=str(data.get("target", "")),
                integer=bool(data.get("integer", False)),
            )
        except KeyError as exc:
            raise OptimizationError(f"dimension is missing field {exc}") from None


class ParameterSpace:
    """An ordered set of named dimensions forming the search box."""

    def __init__(self, dimensions: "Sequence[Dimension]") -> None:
        dims = list(dimensions)
        if not dims:
            raise OptimizationError("a parameter space needs at least one dimension")
        names = [dim.name for dim in dims]
        if len(set(names)) != len(names):
            raise OptimizationError(f"duplicate dimension names: {names}")
        self.dimensions: "tuple[Dimension, ...]" = tuple(dims)

    # ------------------------------------------------------------- geometry

    def __len__(self) -> int:
        return len(self.dimensions)

    @property
    def names(self) -> "tuple[str, ...]":
        return tuple(dim.name for dim in self.dimensions)

    def clip(self, point: "Mapping[str, float]") -> Point:
        """Normalize a point into the box, in dimension order."""
        unknown = sorted(set(point) - set(self.names))
        if unknown:
            raise OptimizationError(f"point has unknown dimension(s): {', '.join(unknown)}")
        missing = sorted(set(self.names) - set(point))
        if missing:
            raise OptimizationError(f"point is missing dimension(s): {', '.join(missing)}")
        return {dim.name: dim.clip(point[dim.name]) for dim in self.dimensions}

    def vector(self, point: "Mapping[str, float]") -> "list[float]":
        """Point dict -> coordinate list in dimension order."""
        clipped = self.clip(point)
        return [clipped[name] for name in self.names]

    def point(self, vector: "Iterable[float]") -> Point:
        """Coordinate list -> clipped point dict."""
        values = list(vector)
        if len(values) != len(self.dimensions):
            raise OptimizationError(
                f"vector has {len(values)} coordinates for {len(self.dimensions)} dimensions"
            )
        return {
            dim.name: dim.clip(value) for dim, value in zip(self.dimensions, values)
        }

    def center(self) -> Point:
        return {dim.name: dim.clip(dim.low + 0.5 * dim.span) for dim in self.dimensions}

    # ------------------------------------------------------------ config map

    def to_config(self, point: "Mapping[str, float]", base: ExperimentConfig) -> ExperimentConfig:
        """Apply a (clipped) point to a base config.

        ``pattern_params.*`` targets merge into the base's pattern
        parameters; field targets go through ``with_overrides`` so config
        validation still runs on every proposal.
        """
        clipped = self.clip(point)
        pattern_params = dict(base.pattern_params)
        overrides: "dict[str, Any]" = {}
        for dim in self.dimensions:
            value: "float | int" = clipped[dim.name]
            if dim.integer:
                value = int(value)
            target = dim.resolved_target()
            if target.startswith("pattern_params."):
                pattern_params[target[len("pattern_params."):]] = value
            else:
                overrides[target] = value
        if pattern_params != dict(base.pattern_params):
            overrides["pattern_params"] = pattern_params
        return base.with_overrides(**overrides) if overrides else base

    # ---------------------------------------------------------------- wire

    def as_dict(self) -> "list[dict[str, Any]]":
        return [dim.as_dict() for dim in self.dimensions]

    @classmethod
    def from_dict(cls, data: "Sequence[Mapping[str, Any]]") -> "ParameterSpace":
        if isinstance(data, Mapping):
            raise OptimizationError("a parameter space is a list of dimensions")
        return cls([Dimension.from_dict(entry) for entry in data])
