"""Engine protocol and registry for stateful derivative-free optimization.

The paper *samples* the dtype × sparsity × pattern × GPU design space;
the engines in this package *converge* on it.  An
:class:`OptimizationEngine` is a deterministic state machine that

* **proposes** a batch of points to evaluate next (:meth:`propose`),
* **ingests** the evaluated batch (:meth:`ingest`), and
* reports :attr:`is_converged` once no further proposals would help.

Engines never evaluate anything themselves — the
:class:`~repro.optimize.engines.runner.OptimizationRunner` maps proposed
points onto :class:`~repro.experiments.config.ExperimentConfig` objects
and submits them through :func:`repro.experiments.sweep.run_configs`, so
every evaluation hits the cache tiers and the parallel backends for
free.  This follows the aiida-optimize idiom cited in the ROADMAP:
engine state is a plain JSON-serializable dict (:meth:`state_dict` /
:meth:`from_state`), which makes a half-finished optimization
checkpointable and bit-for-bit resumable.

Determinism contract (shared by every registered engine):

* the proposal sequence is a pure function of the constructor arguments
  (including ``seed``) and the ingested objective values;
* ``from_state(state_dict())`` resumes *bit-for-bit*: the resumed engine
  proposes exactly what the uninterrupted engine would have proposed;
* no engine reads clocks, environment variables or global RNG state.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

from repro.errors import OptimizationError

__all__ = [
    "Point",
    "Evaluation",
    "OptimizationEngine",
    "ENGINES",
    "register_engine",
    "get_engine",
    "list_engines",
    "engine_from_state",
]

#: A point in parameter space: dimension name -> value.
Point = dict

#: Objective value used for infeasible points under ``filter`` constraint
#: handling.  Serialized as ``None`` (JSON has no infinity).
INFEASIBLE = math.inf


@dataclass(frozen=True)
class Evaluation:
    """One evaluated point, as handed back to an engine.

    ``objective`` is the scalar the engine minimizes — already sign-flipped
    for maximization and penalty-adjusted for constrained objectives by the
    runner.  ``metrics`` carries the raw metric values (unsigned, no
    penalty) for the history record.  ``math.inf`` marks a point rejected
    by a feasibility filter.
    """

    point: "Point"
    objective: float
    feasible: bool = True
    metrics: "Mapping[str, float]" = field(default_factory=dict)

    def as_dict(self) -> "dict[str, Any]":
        return {
            "point": dict(self.point),
            "objective": None if math.isinf(self.objective) else self.objective,
            "feasible": self.feasible,
            "metrics": dict(self.metrics),
        }

    @classmethod
    def from_dict(cls, data: "Mapping[str, Any]") -> "Evaluation":
        objective = data.get("objective")
        return cls(
            point=dict(data["point"]),
            objective=INFEASIBLE if objective is None else float(objective),
            feasible=bool(data.get("feasible", True)),
            metrics=dict(data.get("metrics", {})),
        )


class OptimizationEngine(abc.ABC):
    """Stateful propose/ingest optimization engine (minimization).

    Subclasses implement the four abstract members and keep *all* mutable
    state JSON-serializable so :meth:`state_dict`/:meth:`from_state`
    round-trip exactly.  ``best`` tracking is shared: :meth:`_observe`
    keeps the first-seen minimum, which makes tie-breaking deterministic.
    """

    #: Registry name, set by :func:`register_engine`.
    name: str = ""

    def __init__(self) -> None:
        self._best: "Evaluation | None" = None

    # -------------------------------------------------------------- protocol

    @abc.abstractmethod
    def propose(self) -> "list[Point]":
        """The next batch of points to evaluate (empty once converged).

        Calling ``propose`` repeatedly without an interleaved
        :meth:`ingest` returns the same batch — proposals are part of the
        engine state, not a side effect.
        """

    @abc.abstractmethod
    def ingest(self, evaluations: "Iterable[Evaluation]") -> None:
        """Advance the engine state with the evaluated batch.

        The batch must be exactly the last :meth:`propose` result, in
        order; engines raise :class:`OptimizationError` otherwise.
        """

    @property
    @abc.abstractmethod
    def is_converged(self) -> bool:
        """True once no further proposals would improve the result."""

    @abc.abstractmethod
    def state_dict(self) -> "dict[str, Any]":
        """JSON-serializable snapshot sufficient for a bit-for-bit resume."""

    @classmethod
    @abc.abstractmethod
    def from_state(cls, state: "Mapping[str, Any]") -> "OptimizationEngine":
        """Rebuild an engine from :meth:`state_dict` output."""

    # --------------------------------------------------------------- shared

    @property
    def best(self) -> "Evaluation | None":
        """Best (minimum-objective) feasible evaluation seen so far."""
        return self._best

    def _observe(self, evaluation: Evaluation) -> None:
        """Fold one evaluation into the shared ``best`` tracker.

        Strict ``<`` keeps the *first* of equal-valued evaluations, so the
        incumbent never depends on ingest batching.
        """
        if math.isinf(evaluation.objective):
            return
        if self._best is None or evaluation.objective < self._best.objective:
            self._best = evaluation

    def _best_state(self) -> "dict[str, Any] | None":
        return None if self._best is None else self._best.as_dict()

    def _restore_best(self, state: "Mapping[str, Any]") -> None:
        best = state.get("best")
        self._best = None if best is None else Evaluation.from_dict(best)

    @staticmethod
    def _check_batch(expected: "list[Point]", got: "list[Evaluation]") -> None:
        if len(got) != len(expected):
            raise OptimizationError(
                f"engine expected {len(expected)} evaluation(s), got {len(got)}"
            )
        for want, have in zip(expected, got):
            if dict(have.point) != dict(want):
                raise OptimizationError(
                    f"evaluation out of order: expected point {dict(want)!r}, "
                    f"got {dict(have.point)!r}"
                )


# ------------------------------------------------------------------ registry

#: Registered engine name -> engine class.  Populated by
#: :func:`register_engine` when the engine modules are imported (the
#: package ``__init__`` imports them all for exactly this side effect).
ENGINES: "dict[str, type]" = {}


def register_engine(name: str) -> "Callable[[type], type]":
    """Class decorator registering an engine under ``name``.

    The name is the study-file / CLI spelling (``"nelder_mead"``,
    ``"bisection"``, ``"random"``); the ``engine-registry`` staticcheck
    pass keeps registered names, package exports and the documentation in
    sync.
    """

    def decorate(cls: type) -> type:
        if name in ENGINES:
            raise OptimizationError(f"engine {name!r} is already registered")
        cls.name = name
        ENGINES[name] = cls
        return cls

    return decorate


def get_engine(name: str) -> type:
    """Look up a registered engine class by name."""
    try:
        return ENGINES[name]
    except KeyError:
        raise OptimizationError(
            f"unknown engine {name!r}; registered: {list_engines()}"
        ) from None


def list_engines() -> "list[str]":
    """Names of all registered engines."""
    return sorted(ENGINES)


def engine_from_state(state: "Mapping[str, Any]") -> OptimizationEngine:
    """Rebuild any registered engine from its :meth:`state_dict` output.

    Every engine writes its registry name under ``"engine"``; this helper
    dispatches on it, which is what lets a checkpoint file name its engine
    without the caller knowing the concrete class.
    """
    name = state.get("engine")
    if not isinstance(name, str):
        raise OptimizationError("engine state carries no 'engine' name")
    return get_engine(name).from_state(state)
