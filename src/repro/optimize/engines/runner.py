"""The orchestration layer: engines propose, the cached sweep stack evaluates.

:class:`OptimizationRunner` drives one engine to convergence.  Each
proposed batch is mapped onto :class:`ExperimentConfig` objects by the
engine's :class:`~repro.optimize.engines.space.ParameterSpace` and
submitted through :func:`repro.experiments.sweep.run_configs` — so every
evaluation consults all three cache tiers, deduplicates, and fans out
over the serial/threads/processes backends exactly like a sweep point.
A re-run of a deterministic study is therefore free: iteration N+1
re-proposals cost zero engine runs (asserted in
``benchmarks/bench_optimize.py``).

Constrained objectives are handled before the engine sees a value:

* ``mode="penalty"`` adds ``weight * violation`` to the minimization
  scalar — the engine is steered away from, but can travel through,
  infeasible regions;
* ``mode="filter"`` replaces infeasible values with ``math.inf`` — the
  engine can never accept an infeasible incumbent.

The runner also owns checkpointing: :meth:`OptimizationRunner.checkpoint`
captures engine state + history in one JSON document, and
:meth:`OptimizationRunner.from_checkpoint` resumes it bit-for-bit (the
resumed run's history is identical to an uninterrupted run's).

Study files (the CLI/`api.optimize` wire format) describe a whole run —
engine, space, base config, objective, constraint — as one JSON
document; see :func:`load_study` / :func:`run_study`.
"""

from __future__ import annotations

import dataclasses
import inspect
import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.cache.store import DEFAULT_CACHE
from repro.errors import OptimizationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.sweep import RunStats, run_configs
from repro.optimize.engines.base import (
    INFEASIBLE,
    Evaluation,
    OptimizationEngine,
    Point,
    engine_from_state,
    get_engine,
)
from repro.optimize.engines.result import IterationRecord, OptimizationResult
from repro.optimize.engines.space import ParameterSpace

__all__ = [
    "METRICS",
    "ConfigObjective",
    "Constraint",
    "OptimizationRunner",
    "STUDY_FORMAT",
    "CHECKPOINT_FORMAT",
    "load_study",
    "build_runner",
    "run_study",
]

#: Scalar metrics an objective or constraint may target on an
#: :class:`~repro.experiments.results.ExperimentResult`.
METRICS = (
    "mean_power_watts",
    "power_std_watts",
    "mean_iteration_time_s",
    "mean_iteration_energy_j",
    "mean_activity_factor",
    "mean_bit_alignment",
    "mean_hamming_fraction",
)

#: Wire-format tags.
STUDY_FORMAT = "repro.optimize.study/v1"
CHECKPOINT_FORMAT = "repro.optimize.checkpoint/v1"


def _config_payload(config: ExperimentConfig) -> "dict[str, Any]":
    """Full JSON round-trip of a config (inverse of ``from_dict``).

    ``describe()`` substitutes the default label and drops the estimator
    knobs; checkpoints need the exact field values back.
    """
    payload = config.describe()
    payload["label"] = config.label
    payload["include_process_variation"] = config.include_process_variation
    payload["sampling"] = dataclasses.asdict(config.sampling)
    payload["telemetry"] = dataclasses.asdict(config.telemetry)
    return payload


@dataclass(frozen=True)
class ConfigObjective:
    """Minimize/maximize one result metric over experiment configurations."""

    base: ExperimentConfig
    metric: str = "mean_power_watts"
    mode: str = "min"

    def __post_init__(self) -> None:
        if self.metric not in METRICS:
            raise OptimizationError(
                f"unknown objective metric {self.metric!r}; known: {list(METRICS)}"
            )
        if self.mode not in ("min", "max"):
            raise OptimizationError(f"mode must be 'min' or 'max', got {self.mode!r}")

    def value(self, result: "Any") -> float:
        return float(getattr(result, self.metric))

    def signed(self, value: float) -> float:
        """The minimization scalar (engines always minimize)."""
        return value if self.mode == "min" else -value

    def as_dict(self) -> "dict[str, Any]":
        return {
            "kind": "config",
            "metric": self.metric,
            "mode": self.mode,
            "base_config": _config_payload(self.base),
        }

    @classmethod
    def from_dict(cls, data: "Mapping[str, Any]") -> "ConfigObjective":
        return cls(
            base=ExperimentConfig.from_dict(data["base_config"]),
            metric=str(data.get("metric", "mean_power_watts")),
            mode=str(data.get("mode", "min")),
        )


@dataclass(frozen=True)
class Constraint:
    """Bound one metric; violations are penalized or filtered out.

    For callable objectives the only legal ``metric`` is ``"objective"``
    (the returned value itself); config objectives may constrain any
    :data:`METRICS` entry — e.g. minimize energy subject to
    ``mean_iteration_time_s <= t`` (iso-runtime co-design).
    """

    metric: str
    upper: "float | None" = None
    lower: "float | None" = None
    mode: str = "penalty"
    weight: float = 1000.0

    def __post_init__(self) -> None:
        if self.metric != "objective" and self.metric not in METRICS:
            raise OptimizationError(
                f"unknown constraint metric {self.metric!r}; known: "
                f"{['objective', *METRICS]}"
            )
        if self.upper is None and self.lower is None:
            raise OptimizationError("a constraint needs an upper and/or lower bound")
        if self.mode not in ("penalty", "filter"):
            raise OptimizationError(
                f"constraint mode must be 'penalty' or 'filter', got {self.mode!r}"
            )
        if self.weight <= 0:
            raise OptimizationError(f"constraint weight must be positive, got {self.weight}")

    def violation(self, value: float) -> float:
        amount = 0.0
        if self.upper is not None and value > self.upper:
            amount += value - self.upper
        if self.lower is not None and value < self.lower:
            amount += self.lower - value
        return amount

    def as_dict(self) -> "dict[str, Any]":
        return {
            "metric": self.metric,
            "upper": self.upper,
            "lower": self.lower,
            "mode": self.mode,
            "weight": self.weight,
        }

    @classmethod
    def from_dict(cls, data: "Mapping[str, Any]") -> "Constraint":
        unknown = sorted(set(data) - {"metric", "upper", "lower", "mode", "weight"})
        if unknown:
            raise OptimizationError(f"unknown constraint field(s): {', '.join(unknown)}")
        return cls(
            metric=str(data["metric"]),
            upper=None if data.get("upper") is None else float(data["upper"]),
            lower=None if data.get("lower") is None else float(data["lower"]),
            mode=str(data.get("mode", "penalty")),
            weight=float(data.get("weight", 1000.0)),
        )


class OptimizationRunner:
    """Drive one engine to convergence through the cached sweep machinery."""

    def __init__(
        self,
        engine: OptimizationEngine,
        objective: "ConfigObjective | Callable[[Point], float]",
        *,
        constraint: "Constraint | None" = None,
        workers: int = 1,
        backend: str = "auto",
        cache: "object | None" = DEFAULT_CACHE,
        activity_cache: "object | None" = DEFAULT_CACHE,
        plan_cache: "object | None" = DEFAULT_CACHE,
        keep_results: bool = False,
        checkpoint_path: "str | Path | None" = None,
    ) -> None:
        if not isinstance(objective, ConfigObjective) and not callable(objective):
            raise OptimizationError("objective must be a ConfigObjective or a callable")
        if (
            constraint is not None
            and not isinstance(objective, ConfigObjective)
            and constraint.metric != "objective"
        ):
            raise OptimizationError(
                "callable objectives only support constraint metric 'objective'"
            )
        self.engine = engine
        self.objective = objective
        self.constraint = constraint
        self.space: ParameterSpace = engine.space
        self.workers = workers
        self.backend = backend
        self.cache = cache
        self.activity_cache = activity_cache
        self.plan_cache = plan_cache
        self.keep_results = keep_results
        self.checkpoint_path = None if checkpoint_path is None else Path(checkpoint_path)
        self.history: "list[IterationRecord]" = []
        #: incumbent-best ExperimentResult after each iteration (config
        #: objectives with ``keep_results=True`` only; ``None`` entries
        #: before the first feasible evaluation)
        self.incumbent_results: "list[Any]" = []
        self._incumbent_result: "Any | None" = None
        self._evaluations = 0
        self._engine_runs = 0
        self._cache_hits = 0
        self._duration_s = 0.0

    # ------------------------------------------------------------ evaluation

    def _evaluate(self, points: "list[Point]") -> "tuple[list[Evaluation], dict[str, int], list[Any]]":
        if isinstance(self.objective, ConfigObjective):
            return self._evaluate_configs(points)
        evaluations = []
        for point in points:
            value = float(self.objective(point))
            evaluations.append(self._constrain(point, value, {"objective": value}, value))
        return evaluations, {}, [None] * len(points)

    def _evaluate_configs(
        self, points: "list[Point]"
    ) -> "tuple[list[Evaluation], dict[str, int], list[Any]]":
        objective = self.objective
        assert isinstance(objective, ConfigObjective)
        configs = [self.space.to_config(point, objective.base) for point in points]
        stats = RunStats()
        results = run_configs(
            configs,
            workers=self.workers,
            backend=self.backend,
            cache=self.cache,
            activity_cache=self.activity_cache,
            plan_cache=self.plan_cache,
            stats=stats,
        )
        evaluations = []
        for point, result in zip(points, results):
            raw = objective.value(result)
            metrics = {objective.metric: raw}
            constrained_value = raw
            if self.constraint is not None and self.constraint.metric != objective.metric:
                constrained_value = float(getattr(result, self.constraint.metric))
                metrics[self.constraint.metric] = constrained_value
            evaluations.append(
                self._constrain(point, objective.signed(raw), metrics, constrained_value)
            )
        counters = {
            "total": stats.total,
            "unique": stats.unique,
            "cache_hits": stats.cache_hits,
            "executed": stats.executed,
        }
        return evaluations, counters, results

    def _constrain(
        self,
        point: Point,
        scalar: float,
        metrics: "dict[str, float]",
        constrained_value: float,
    ) -> Evaluation:
        if self.constraint is None:
            return Evaluation(point=point, objective=scalar, feasible=True, metrics=metrics)
        violation = self.constraint.violation(constrained_value)
        if violation == 0.0:
            return Evaluation(point=point, objective=scalar, feasible=True, metrics=metrics)
        if self.constraint.mode == "filter":
            return Evaluation(point=point, objective=INFEASIBLE, feasible=False, metrics=metrics)
        return Evaluation(
            point=point,
            objective=scalar + self.constraint.weight * violation,
            feasible=False,
            metrics=metrics,
        )

    # ------------------------------------------------------------- the loop

    def step(self) -> "IterationRecord | None":
        """One propose → evaluate → ingest round (``None`` once converged)."""
        if self.engine.is_converged:
            return None
        proposals = self.engine.propose()
        if not proposals:
            return None
        started = time.perf_counter()
        points = [self.space.clip(point) for point in proposals]
        evaluations, counters, results = self._evaluate(points)
        self.engine.ingest(evaluations)
        self._evaluations += len(points)
        self._engine_runs += counters.get("executed", 0)
        self._cache_hits += counters.get("cache_hits", 0)
        self._duration_s += time.perf_counter() - started

        best = self.engine.best
        if self.keep_results and best is not None:
            for point, result in zip(points, results):
                if result is not None and point == dict(best.point):
                    self._incumbent_result = result
        self.incumbent_results.append(self._incumbent_result)

        record = IterationRecord(
            index=len(self.history),
            proposals=points,
            objectives=[e.objective for e in evaluations],
            feasible=[e.feasible for e in evaluations],
            best_point=None if best is None else dict(best.point),
            best_objective=None if best is None else best.objective,
            run_stats=counters,
        )
        self.history.append(record)
        if self.checkpoint_path is not None:
            self.save_checkpoint(self.checkpoint_path)
        return record

    def run(self, *, max_evaluations: "int | None" = None) -> OptimizationResult:
        """Iterate to convergence (or an evaluation budget) and summarize."""
        if max_evaluations is not None and max_evaluations < 1:
            raise OptimizationError(f"max_evaluations must be >= 1, got {max_evaluations}")
        while self.step() is not None:
            if max_evaluations is not None and self._evaluations >= max_evaluations:
                break
        return self.result()

    def result(self) -> OptimizationResult:
        best = self.engine.best
        feasible = getattr(self.engine, "feasible", None)
        if feasible is None:
            feasible = best is not None and best.feasible
        objective_spec = (
            self.objective.as_dict()
            if isinstance(self.objective, ConfigObjective)
            else {"kind": "callable"}
        )
        if self.constraint is not None:
            objective_spec = dict(objective_spec)
            objective_spec["constraint"] = self.constraint.as_dict()
        return OptimizationResult(
            engine=self.engine.name,
            iterations=list(self.history),
            best_point=None if best is None else dict(best.point),
            best_objective=None if best is None else best.objective,
            best_metrics={} if best is None else dict(best.metrics),
            best_feasible=bool(feasible),
            converged=self.engine.is_converged,
            evaluations=self._evaluations,
            engine_runs=self._engine_runs,
            cache_hits=self._cache_hits,
            space=self.space.as_dict(),
            objective=objective_spec,
            duration_s=self._duration_s,
        )

    # ----------------------------------------------------------- checkpoint

    def checkpoint(self) -> "dict[str, Any]":
        """JSON document sufficient for a bit-for-bit resume."""
        objective_spec = (
            self.objective.as_dict()
            if isinstance(self.objective, ConfigObjective)
            else {"kind": "callable"}
        )
        return {
            "format": CHECKPOINT_FORMAT,
            "engine": self.engine.name,
            "engine_state": self.engine.state_dict(),
            "objective": objective_spec,
            "constraint": None if self.constraint is None else self.constraint.as_dict(),
            "iterations": [record.as_dict() for record in self.history],
            "evaluations": self._evaluations,
            "engine_runs": self._engine_runs,
            "cache_hits": self._cache_hits,
            "duration_s": self._duration_s,
        }

    def save_checkpoint(self, path: "str | Path") -> Path:
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.checkpoint(), indent=2, sort_keys=True))
        return target

    @classmethod
    def from_checkpoint(
        cls,
        source: "str | Path | Mapping[str, Any]",
        *,
        objective: "Callable[[Point], float] | None" = None,
        workers: int = 1,
        backend: str = "auto",
        cache: "object | None" = DEFAULT_CACHE,
        activity_cache: "object | None" = DEFAULT_CACHE,
        plan_cache: "object | None" = DEFAULT_CACHE,
        keep_results: bool = False,
        checkpoint_path: "str | Path | None" = None,
    ) -> "OptimizationRunner":
        """Rebuild a runner mid-flight from :meth:`checkpoint` output.

        Config objectives are self-contained; a checkpoint of a *callable*
        objective stores only the marker ``{"kind": "callable"}`` and the
        caller must pass the callable back in.
        """
        if isinstance(source, Mapping):
            payload: "Mapping[str, Any]" = source
        else:
            path = Path(source)
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError) as exc:
                raise OptimizationError(f"cannot read checkpoint {path}: {exc}") from exc
        if payload.get("format") != CHECKPOINT_FORMAT:
            raise OptimizationError(
                f"not an optimization checkpoint (format {payload.get('format')!r}, "
                f"expected {CHECKPOINT_FORMAT!r})"
            )
        engine = engine_from_state(payload["engine_state"])
        spec = dict(payload.get("objective", {}))
        kind = spec.get("kind")
        if kind == "config":
            resolved: "ConfigObjective | Callable[[Point], float]" = ConfigObjective.from_dict(spec)
        elif kind == "callable":
            if objective is None:
                raise OptimizationError(
                    "this checkpoint used a callable objective; pass objective= to resume"
                )
            resolved = objective
        else:
            raise OptimizationError(f"unknown objective kind {kind!r} in checkpoint")
        constraint_spec = payload.get("constraint")
        runner = cls(
            engine,
            resolved,
            constraint=None if constraint_spec is None else Constraint.from_dict(constraint_spec),
            workers=workers,
            backend=backend,
            cache=cache,
            activity_cache=activity_cache,
            plan_cache=plan_cache,
            keep_results=keep_results,
            checkpoint_path=checkpoint_path,
        )
        runner.history = [IterationRecord.from_dict(r) for r in payload.get("iterations", [])]
        runner._evaluations = int(payload.get("evaluations", 0))
        runner._engine_runs = int(payload.get("engine_runs", 0))
        runner._cache_hits = int(payload.get("cache_hits", 0))
        runner._duration_s = float(payload.get("duration_s", 0.0))
        return runner


# ------------------------------------------------------------------ studies


def _env_int(name: str, fallback: int) -> int:
    import os

    raw = os.environ.get(name, "").strip()
    if not raw:
        return fallback
    try:
        return int(raw)
    except ValueError as exc:
        raise OptimizationError(f"{name} must be an integer, got {raw!r}") from exc


_STUDY_FIELDS = {
    "format",
    "description",
    "engine",
    "engine_params",
    "space",
    "base_config",
    "objective",
    "constraint",
}


def load_study(source: "str | Path | Mapping[str, Any]") -> "dict[str, Any]":
    """Read and validate a study document (path or already-parsed mapping).

    A study names everything one optimization run needs::

        {
          "format": "repro.optimize.study/v1",
          "engine": "nelder_mead",
          "engine_params": {"seed": 0, "max_iterations": 20},
          "space": [{"name": "sparsity", "low": 0.0, "high": 0.95}],
          "base_config": {"pattern_family": "sparsity", "matrix_size": 128},
          "objective": {"metric": "mean_power_watts", "mode": "min"},
          "constraint": {"metric": "mean_iteration_time_s", "upper": 0.01}
        }

    Unknown top-level fields are rejected — a misspelled knob must not
    silently optimize something else.
    """
    if isinstance(source, Mapping):
        payload: "dict[str, Any]" = dict(source)
    else:
        path = Path(source)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise OptimizationError(f"cannot read study {path}: {exc}") from exc
        if not isinstance(payload, dict):
            raise OptimizationError(f"study {path} is not a JSON object")
    declared = payload.get("format", STUDY_FORMAT)
    if declared != STUDY_FORMAT:
        raise OptimizationError(
            f"unsupported study format {declared!r} (expected {STUDY_FORMAT!r})"
        )
    unknown = sorted(set(payload) - _STUDY_FIELDS)
    if unknown:
        raise OptimizationError(f"unknown study field(s): {', '.join(unknown)}")
    for required in ("engine", "space", "base_config"):
        if required not in payload:
            raise OptimizationError(f"study is missing required field {required!r}")
    return payload


def build_runner(
    study: "str | Path | Mapping[str, Any]",
    *,
    workers: int = 1,
    backend: str = "auto",
    cache: "object | None" = DEFAULT_CACHE,
    activity_cache: "object | None" = DEFAULT_CACHE,
    plan_cache: "object | None" = DEFAULT_CACHE,
    keep_results: bool = False,
    checkpoint_path: "str | Path | None" = None,
) -> OptimizationRunner:
    """Build a ready-to-run :class:`OptimizationRunner` from a study.

    When the study's ``engine_params`` carry no ``seed``, seeded engines
    default to ``REPRO_OPT_SEED`` (default ``0``), so an entire study is
    replayable from the environment alone.
    """
    payload = load_study(study)
    space = ParameterSpace.from_dict(payload["space"])
    engine_cls = get_engine(str(payload["engine"]))
    engine_params = dict(payload.get("engine_params", {}))
    signature = inspect.signature(engine_cls.__init__)
    if "seed" in signature.parameters and "seed" not in engine_params:
        engine_params["seed"] = _env_int("REPRO_OPT_SEED", 0)
    try:
        engine = engine_cls(space, **engine_params)
    except TypeError as exc:
        raise OptimizationError(
            f"invalid engine_params for {payload['engine']!r}: {exc}"
        ) from exc
    objective_spec = dict(payload.get("objective", {}))
    objective = ConfigObjective(
        base=ExperimentConfig.from_dict(payload["base_config"]),
        metric=str(objective_spec.get("metric", "mean_power_watts")),
        mode=str(objective_spec.get("mode", "min")),
    )
    constraint_spec = payload.get("constraint")
    return OptimizationRunner(
        engine,
        objective,
        constraint=None if constraint_spec is None else Constraint.from_dict(constraint_spec),
        workers=workers,
        backend=backend,
        cache=cache,
        activity_cache=activity_cache,
        plan_cache=plan_cache,
        keep_results=keep_results,
        checkpoint_path=checkpoint_path,
    )


def run_study(
    study: "str | Path | Mapping[str, Any]",
    *,
    workers: int = 1,
    backend: str = "auto",
    cache: "object | None" = DEFAULT_CACHE,
    activity_cache: "object | None" = DEFAULT_CACHE,
    plan_cache: "object | None" = DEFAULT_CACHE,
    max_evaluations: "int | None" = None,
    checkpoint_path: "str | Path | None" = None,
) -> OptimizationResult:
    """Run a study document end to end and return its result."""
    runner = build_runner(
        study,
        workers=workers,
        backend=backend,
        cache=cache,
        activity_cache=activity_cache,
        plan_cache=plan_cache,
        checkpoint_path=checkpoint_path,
    )
    return runner.run(max_evaluations=max_evaluations)
