"""Weight mean-shifting for power reduction (paper §V, first direction).

The paper observes (T2) that Gaussian inputs with a larger mean draw less
power because their exponents and high mantissa bits become identical.  For
a model that can tolerate an affine transformation of a weight matrix (the
shift can be folded into the following bias / normalization in many
architectures), shifting the weights toward a larger common mean reduces
GEMM power.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import OptimizationError
from repro.optimize.estimation import QuickEstimate, quick_power_estimate

__all__ = ["WeightShiftResult", "shift_weights_for_power", "candidate_shifts"]


@dataclass(frozen=True)
class WeightShiftResult:
    """Outcome of a weight-shift search."""

    shift: float
    baseline: QuickEstimate
    shifted: QuickEstimate
    shifted_weights: np.ndarray

    @property
    def power_reduction_watts(self) -> float:
        return self.baseline.power_watts - self.shifted.power_watts

    @property
    def power_reduction_fraction(self) -> float:
        if self.baseline.power_watts <= 0:
            return 0.0
        return self.power_reduction_watts / self.baseline.power_watts


def candidate_shifts(weights: np.ndarray, count: int = 6) -> list[float]:
    """Candidate mean shifts: powers of two above the weight scale.

    Shifts well above the weight standard deviation freeze the exponent bits
    of the shifted values; shifting by too much loses relative precision, so
    candidates stop a few binades above the scale.
    """
    if count < 1:
        raise OptimizationError(f"count must be >= 1, got {count}")
    scale = float(np.abs(weights).std()) or 1.0
    start = int(np.ceil(np.log2(scale))) + 2
    return [float(2.0 ** (start + i)) for i in range(count)]


def shift_weights_for_power(
    activations: np.ndarray,
    weights: np.ndarray,
    dtype: str = "fp16_t",
    gpu: str = "a100",
    shifts: list[float] | None = None,
    max_relative_error: float = 0.05,
) -> WeightShiftResult:
    """Pick the weight shift that minimizes GEMM power within an error budget.

    ``max_relative_error`` bounds the quantization error introduced by
    representing the shifted weights in ``dtype`` (relative Frobenius error
    of the shifted-then-unshifted weights versus the originals).
    """
    from repro.dtypes.registry import get_dtype

    weights = np.asarray(weights, dtype=np.float64)
    activations = np.asarray(activations, dtype=np.float64)
    spec = get_dtype(dtype)

    baseline = quick_power_estimate(activations, weights, dtype=dtype, gpu=gpu)
    best: WeightShiftResult | None = None
    for shift in shifts if shifts is not None else candidate_shifts(weights):
        shifted = weights + shift
        # Quantization error introduced by storing the shifted weights.
        recovered = spec.quantize(shifted) - shift
        denom = float(np.linalg.norm(weights)) or 1.0
        relative_error = float(np.linalg.norm(recovered - weights)) / denom
        if relative_error > max_relative_error:
            continue
        estimate = quick_power_estimate(activations, shifted, dtype=dtype, gpu=gpu)
        result = WeightShiftResult(
            shift=float(shift), baseline=baseline, shifted=estimate, shifted_weights=shifted
        )
        if best is None or estimate.power_watts < best.shifted.power_watts:
            best = result
    if best is None:
        # No candidate met the error budget: report the identity shift.
        best = WeightShiftResult(
            shift=0.0, baseline=baseline, shifted=baseline, shifted_weights=weights.copy()
        )
    return best
