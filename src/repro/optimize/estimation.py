"""Fast power/energy estimation for concrete matrices.

The optimizers need to score many candidate transformations; going through
the full measurement harness (simulated telemetry, multiple seeds) would be
wasteful, so this helper runs the deterministic part of the pipeline only:
activity estimation → power model → runtime model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.activity.engine import activity_from_matrices
from repro.activity.sampler import SamplingConfig
from repro.gpu.device import Device
from repro.kernels.gemm import GemmProblem
from repro.kernels.launch import plan_launch
from repro.power.energy import EnergyEstimate
from repro.power.model import PowerModel
from repro.runtime.model import RuntimeModel

__all__ = ["QuickEstimate", "quick_power_estimate"]


@dataclass(frozen=True)
class QuickEstimate:
    """Deterministic power/runtime/energy estimate for one GEMM."""

    power_watts: float
    iteration_time_s: float
    iteration_energy_j: float
    activity_factor: float
    throttled: bool

    def as_dict(self) -> dict[str, float | bool]:
        return {
            "power_watts": self.power_watts,
            "iteration_time_s": self.iteration_time_s,
            "iteration_energy_j": self.iteration_energy_j,
            "activity_factor": self.activity_factor,
            "throttled": self.throttled,
        }


def quick_power_estimate(
    a: np.ndarray,
    b_stored: np.ndarray,
    dtype: str = "fp16_t",
    gpu: "str | Device" = "a100",
    transpose_b: bool = True,
    sampling: SamplingConfig | None = None,
) -> QuickEstimate:
    """Estimate GEMM power/energy for concrete operand matrices (no telemetry noise)."""
    device = gpu if isinstance(gpu, Device) else Device.create(gpu)
    a = np.asarray(a, dtype=np.float64)
    b_stored = np.asarray(b_stored, dtype=np.float64)
    n, k = a.shape
    m = b_stored.shape[0] if transpose_b else b_stored.shape[1]
    problem = GemmProblem(n=n, m=m, k=k, dtype=dtype, transpose_b=transpose_b)
    launch = plan_launch(problem, device)
    activity = activity_from_matrices(
        a, b_stored, dtype=dtype, transpose_b=transpose_b, sampling=sampling
    )
    power = PowerModel(device).estimate(launch, activity, include_process_variation=False)
    runtime = RuntimeModel().estimate(launch, clock_scale=power.clock_scale)
    energy = EnergyEstimate(
        power_watts=power.watts, iteration_time_s=runtime.iteration_time_s, iterations=1
    )
    return QuickEstimate(
        power_watts=power.watts,
        iteration_time_s=runtime.iteration_time_s,
        iteration_energy_j=energy.iteration_energy_j,
        activity_factor=power.activity_factor,
        throttled=power.throttled,
    )
