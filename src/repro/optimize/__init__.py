"""Power-aware optimizations built on the input-dependent power model.

The paper's §V sketches several future directions; this package implements
working versions of each:

* :mod:`repro.optimize.weight_shift` — shift model weights toward value
  ranges that draw less power.
* :mod:`repro.optimize.permutation` — permutation-invariant reordering of
  weight matrices (computationally equivalent) that lowers switching.
* :mod:`repro.optimize.sparsity_design` — sparsity patterns chosen for
  power as well as accuracy/memory.
* :mod:`repro.optimize.power_capping` — data pruning to meet a power cap.
* :mod:`repro.optimize.compiler` — a small power-aware "compiler" that
  estimates pipeline power from pattern descriptors and applies
  semantics-preserving transforms.
* :mod:`repro.optimize.scheduler` — power-aware placement of GEMM jobs
  across a fleet of GPUs under a total power budget.
* :mod:`repro.optimize.engines` — stateful optimization engines
  (Nelder–Mead, bisection, random/grid-refine) and the
  :class:`~repro.optimize.engines.OptimizationRunner` that drives them
  through the cached sweep machinery.  ``python -m repro.optimize`` runs
  study files from the command line.
"""

from repro.optimize.engines import (
    BisectionEngine,
    ConfigObjective,
    Constraint,
    Dimension,
    Evaluation,
    NelderMeadEngine,
    OptimizationEngine,
    OptimizationResult,
    OptimizationRunner,
    ParameterSpace,
    RandomRefineEngine,
    engine_from_state,
    get_engine,
    list_engines,
    load_study,
    run_study,
)
from repro.optimize.estimation import quick_power_estimate
from repro.optimize.compiler import GemmOp, Pipeline, PowerAwareCompiler
from repro.optimize.permutation import (
    greedy_low_toggle_permutation,
    permutation_by_column_norm,
    permute_columns,
    restore_columns,
)
from repro.optimize.power_capping import CapPlan, find_sparsity_for_cap
from repro.optimize.scheduler import FleetScheduler, GemmJob, ScheduledJob
from repro.optimize.sparsity_design import SparsityDesign, design_sparsity
from repro.optimize.weight_shift import WeightShiftResult, shift_weights_for_power

__all__ = [
    # optimization engines (repro.optimize.engines)
    "OptimizationEngine",
    "Evaluation",
    "BisectionEngine",
    "NelderMeadEngine",
    "RandomRefineEngine",
    "Dimension",
    "ParameterSpace",
    "OptimizationRunner",
    "ConfigObjective",
    "Constraint",
    "OptimizationResult",
    "engine_from_state",
    "get_engine",
    "list_engines",
    "load_study",
    "run_study",
    # power-aware transforms
    "quick_power_estimate",
    "shift_weights_for_power",
    "WeightShiftResult",
    "permutation_by_column_norm",
    "greedy_low_toggle_permutation",
    "permute_columns",
    "restore_columns",
    "design_sparsity",
    "SparsityDesign",
    "find_sparsity_for_cap",
    "CapPlan",
    "GemmOp",
    "Pipeline",
    "PowerAwareCompiler",
    "GemmJob",
    "ScheduledJob",
    "FleetScheduler",
]
