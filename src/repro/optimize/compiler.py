"""A small power-aware "compiler" (paper §V: input-dependent power models +
power-aware compilers).

A :class:`Pipeline` is a sequence of GEMM operations; each op carries its
concrete operand matrices and flags describing which semantics-preserving or
approximation-tolerant transforms are allowed on it.  The compiler estimates
per-op power with the input-dependent power model, applies the cheapest
allowed transform that reduces predicted power, and reports the before/after
power and energy of the whole pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import OptimizationError
from repro.gpu.device import Device
from repro.optimize.estimation import QuickEstimate, quick_power_estimate
from repro.optimize.permutation import greedy_low_toggle_permutation, permute_columns
from repro.optimize.sparsity_design import magnitude_prune
from repro.optimize.weight_shift import shift_weights_for_power

__all__ = ["GemmOp", "Pipeline", "CompiledOp", "CompilationReport", "PowerAwareCompiler"]

#: Transform identifiers the compiler understands.
KNOWN_TRANSFORMS = ("permute_columns", "shift_mean", "prune")


@dataclass
class GemmOp:
    """One GEMM in a pipeline: activations (A) times weights (B, stored transposed)."""

    name: str
    activations: np.ndarray
    weights: np.ndarray
    dtype: str = "fp16_t"
    #: transforms this op can tolerate; permutation is always exact,
    #: shifting and pruning are approximations the owner must opt into.
    allowed_transforms: tuple[str, ...] = ("permute_columns",)
    #: sparsity used when "prune" is allowed
    prune_sparsity: float = 0.3

    def __post_init__(self) -> None:
        self.activations = np.asarray(self.activations, dtype=np.float64)
        self.weights = np.asarray(self.weights, dtype=np.float64)
        if self.activations.ndim != 2 or self.weights.ndim != 2:
            raise OptimizationError(f"op {self.name!r}: operands must be 2-D matrices")
        if self.activations.shape[1] != self.weights.shape[1]:
            raise OptimizationError(
                f"op {self.name!r}: activations K={self.activations.shape[1]} does not "
                f"match weights K={self.weights.shape[1]} (weights are stored transposed)"
            )
        unknown = set(self.allowed_transforms) - set(KNOWN_TRANSFORMS)
        if unknown:
            raise OptimizationError(f"op {self.name!r}: unknown transforms {sorted(unknown)}")


@dataclass
class Pipeline:
    """An ordered list of GEMM operations (e.g. the layers of a model)."""

    ops: list[GemmOp] = field(default_factory=list)

    def add(self, op: GemmOp) -> "Pipeline":
        self.ops.append(op)
        return self

    def __len__(self) -> int:
        return len(self.ops)


@dataclass(frozen=True)
class CompiledOp:
    """One op after compilation: chosen transform and predicted effect."""

    name: str
    transform: str | None
    baseline: QuickEstimate
    optimized: QuickEstimate
    exact: bool

    @property
    def power_reduction_watts(self) -> float:
        return self.baseline.power_watts - self.optimized.power_watts


@dataclass(frozen=True)
class CompilationReport:
    """Pipeline-level summary of the compilation."""

    ops: list[CompiledOp]

    @property
    def baseline_energy_j(self) -> float:
        return sum(op.baseline.iteration_energy_j for op in self.ops)

    @property
    def optimized_energy_j(self) -> float:
        return sum(op.optimized.iteration_energy_j for op in self.ops)

    @property
    def mean_power_reduction_watts(self) -> float:
        if not self.ops:
            return 0.0
        return sum(op.power_reduction_watts for op in self.ops) / len(self.ops)

    @property
    def energy_reduction_fraction(self) -> float:
        base = self.baseline_energy_j
        if base <= 0:
            return 0.0
        return (base - self.optimized_energy_j) / base


class PowerAwareCompiler:
    """Chooses per-op transforms that minimize predicted power."""

    def __init__(self, gpu: "str | Device" = "a100") -> None:
        self.device = gpu if isinstance(gpu, Device) else Device.create(gpu)

    # -------------------------------------------------------------- passes

    def _apply_transform(self, op: GemmOp, transform: str) -> tuple[np.ndarray, bool]:
        """Return the transformed weight matrix and whether it is exact."""
        if transform == "permute_columns":
            permutation = greedy_low_toggle_permutation(op.weights.T, dtype=op.dtype)
            # Weights are stored transposed (M, K); permuting output neurons
            # means permuting rows of the stored matrix.
            return op.weights[permutation, :], True
        if transform == "shift_mean":
            result = shift_weights_for_power(
                op.activations, op.weights, dtype=op.dtype, gpu=self.device
            )
            return result.shifted_weights, False
        if transform == "prune":
            mask = magnitude_prune(op.weights, op.prune_sparsity)
            return np.where(mask, op.weights, 0.0), False
        raise OptimizationError(f"unknown transform {transform!r}")

    def compile_op(self, op: GemmOp) -> CompiledOp:
        """Estimate the op and apply the best allowed power-reducing transform."""
        baseline = quick_power_estimate(
            op.activations, op.weights, dtype=op.dtype, gpu=self.device
        )
        best_transform: str | None = None
        best_estimate = baseline
        best_exact = True
        for transform in op.allowed_transforms:
            weights, exact = self._apply_transform(op, transform)
            estimate = quick_power_estimate(
                op.activations, weights, dtype=op.dtype, gpu=self.device
            )
            if estimate.power_watts < best_estimate.power_watts:
                best_transform, best_estimate, best_exact = transform, estimate, exact
        return CompiledOp(
            name=op.name,
            transform=best_transform,
            baseline=baseline,
            optimized=best_estimate,
            exact=best_exact,
        )

    def compile(self, pipeline: Pipeline) -> CompilationReport:
        """Compile every op of a pipeline."""
        if not pipeline.ops:
            raise OptimizationError("pipeline has no operations")
        return CompilationReport(ops=[self.compile_op(op) for op in pipeline.ops])
