"""Power-aware sparsity design (paper §V, third direction).

Given a weight matrix and a target sparsity, choose which elements to zero
so that (a) the approximation error is small (magnitude pruning) and (b) the
resulting GEMM draws less power.  Both unstructured and N:M structured
patterns are supported; the N:M variant is the shape sparse tensor cores
accelerate, so it also buys performance headroom.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import OptimizationError
from repro.optimize.estimation import QuickEstimate, quick_power_estimate

__all__ = ["SparsityDesign", "design_sparsity", "magnitude_prune", "structured_prune"]


@dataclass(frozen=True)
class SparsityDesign:
    """A concrete sparsity choice and its predicted consequences."""

    sparsity: float
    structured: tuple[int, int] | None
    pruned_weights: np.ndarray
    mask: np.ndarray
    relative_error: float
    baseline: QuickEstimate
    pruned: QuickEstimate

    @property
    def power_reduction_watts(self) -> float:
        return self.baseline.power_watts - self.pruned.power_watts

    @property
    def power_reduction_fraction(self) -> float:
        if self.baseline.power_watts <= 0:
            return 0.0
        return self.power_reduction_watts / self.baseline.power_watts

    @property
    def achieved_sparsity(self) -> float:
        return float(1.0 - self.mask.mean())


def magnitude_prune(weights: np.ndarray, sparsity: float) -> np.ndarray:
    """Boolean keep-mask zeroing the smallest-magnitude fraction of weights."""
    if not 0.0 <= sparsity <= 1.0:
        raise OptimizationError(f"sparsity must be in [0, 1], got {sparsity}")
    arr = np.asarray(weights, dtype=np.float64)
    mask = np.ones(arr.shape, dtype=bool)
    count = int(round(sparsity * arr.size))
    if count == 0:
        return mask
    if count >= arr.size:
        return np.zeros(arr.shape, dtype=bool)
    threshold_index = np.argsort(np.abs(arr), axis=None)[:count]
    mask.flat[threshold_index] = False
    return mask


def structured_prune(weights: np.ndarray, n: int, m: int) -> np.ndarray:
    """Boolean keep-mask implementing N:M structured sparsity along rows."""
    if m < 1 or n < 0 or n > m:
        raise OptimizationError(f"invalid N:M spec {n}:{m}")
    arr = np.asarray(weights, dtype=np.float64)
    rows, cols = arr.shape
    if cols % m != 0:
        raise OptimizationError(f"matrix width {cols} not divisible by group size {m}")
    groups = np.abs(arr).reshape(rows, cols // m, m)
    order = np.argsort(groups, axis=-1)
    keep = np.zeros(groups.shape, dtype=bool)
    np.put_along_axis(keep, order[..., m - n:], True, axis=-1)
    return keep.reshape(rows, cols)


def design_sparsity(
    activations: np.ndarray,
    weights: np.ndarray,
    sparsity: float,
    structured: tuple[int, int] | None = None,
    dtype: str = "fp16_t",
    gpu: str = "a100",
) -> SparsityDesign:
    """Produce a pruned weight matrix and its predicted power/error profile."""
    weights = np.asarray(weights, dtype=np.float64)
    activations = np.asarray(activations, dtype=np.float64)
    if structured is not None:
        mask = structured_prune(weights, structured[0], structured[1])
    else:
        mask = magnitude_prune(weights, sparsity)
    pruned = np.where(mask, weights, 0.0)

    denom = float(np.linalg.norm(weights)) or 1.0
    relative_error = float(np.linalg.norm(pruned - weights)) / denom

    baseline = quick_power_estimate(activations, weights, dtype=dtype, gpu=gpu)
    estimate = quick_power_estimate(activations, pruned, dtype=dtype, gpu=gpu)
    return SparsityDesign(
        sparsity=float(sparsity),
        structured=structured,
        pruned_weights=pruned,
        mask=mask,
        relative_error=relative_error,
        baseline=baseline,
        pruned=estimate,
    )
