"""``python -m repro.optimize`` — run, resume and inspect optimization studies.

Subcommands:

* ``run STUDY.json``       — drive the study's engine to convergence
  through the cached sweep machinery and print/save the
  :class:`~repro.optimize.engines.OptimizationResult`.  ``--expect
  SUMMARY.json`` turns the run into a replay check: the freshly computed
  summary must equal the golden file exactly (exit 1 otherwise) — this
  is what CI's optimize job runs.
* ``resume CHECKPOINT.json`` — continue a checkpointed run bit-for-bit
  (the finished history is identical to an uninterrupted run's).
* ``history RESULT.json``  — print the trajectory of a saved result
  without re-running anything.

Examples::

    python -m repro.optimize run study.json --out result.json --checkpoint ckpt.json
    python -m repro.optimize run study.json --expect golden_summary.json
    python -m repro.optimize resume ckpt.json --json
    python -m repro.optimize history result.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Mapping

from repro.errors import ReproError
from repro.optimize.engines.result import OptimizationResult
from repro.optimize.engines.runner import OptimizationRunner, _env_int, build_runner

__all__ = ["main"]


def _env_backend(environ: "Mapping[str, str] | None" = None) -> str:
    env = os.environ if environ is None else environ
    return env.get("REPRO_OPT_BACKEND", "auto").strip() or "auto"


def _check_expected(result: OptimizationResult, expect_path: Path) -> int:
    try:
        expected = json.loads(expect_path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        print(f"cannot read expected summary {expect_path}: {exc}", file=sys.stderr)
        return 1
    actual = result.summary()
    if actual == expected:
        print(f"replay OK: summary matches {expect_path}")
        return 0
    print(f"replay MISMATCH against {expect_path}:", file=sys.stderr)
    keys = sorted(set(expected) | set(actual))
    for key in keys:
        want, got = expected.get(key), actual.get(key)
        if want != got:
            print(f"  {key}: expected {want!r}, got {got!r}", file=sys.stderr)
    return 1


def _cache_kwargs(args: argparse.Namespace) -> "dict[str, object]":
    if args.no_cache:
        return {"cache": None, "activity_cache": None, "plan_cache": None}
    return {}


def _finish(result: OptimizationResult, args: argparse.Namespace) -> int:
    if args.out:
        result.save_json(args.out)
    if args.json:
        print(json.dumps(result.summary(), indent=2, sort_keys=True))
    else:
        print(result.render())
    if args.expect is not None:
        return _check_expected(result, Path(args.expect))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    runner = build_runner(
        args.study,
        workers=args.workers,
        backend=args.backend,
        checkpoint_path=args.checkpoint,
        **_cache_kwargs(args),
    )
    result = runner.run(max_evaluations=args.max_evaluations)
    return _finish(result, args)


def _cmd_resume(args: argparse.Namespace) -> int:
    runner = OptimizationRunner.from_checkpoint(
        args.checkpoint,
        workers=args.workers,
        backend=args.backend,
        checkpoint_path=args.checkpoint if args.update_checkpoint else None,
        **_cache_kwargs(args),
    )
    result = runner.run(max_evaluations=args.max_evaluations)
    return _finish(result, args)


def _cmd_history(args: argparse.Namespace) -> int:
    result = OptimizationResult.load(args.result)
    if args.json:
        print(json.dumps(result.summary(), indent=2, sort_keys=True))
    else:
        print(result.render())
    return 0


def _add_execution_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=int, default=_env_int("REPRO_OPT_WORKERS", 1),
        help="evaluation worker-pool width (default: REPRO_OPT_WORKERS or 1)",
    )
    parser.add_argument(
        "--backend", default=_env_backend(),
        help="evaluation execution backend (default: REPRO_OPT_BACKEND or auto)",
    )
    parser.add_argument(
        "--max-evaluations", type=int, default=None,
        help="stop after this many evaluations even if not converged",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass all cache tiers (every evaluation runs the engine)",
    )
    parser.add_argument("--out", default=None, help="save the full result JSON here")
    parser.add_argument(
        "--json", action="store_true", help="print the rounded summary JSON instead of tables"
    )
    parser.add_argument(
        "--expect", default=None, metavar="SUMMARY.json",
        help="replay check: fail (exit 1) unless the summary equals this file",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.optimize",
        description="Optimization studies over the input-dependent power model.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a study file to convergence")
    run.add_argument("study", help="study JSON (repro.optimize.study/v1)")
    run.add_argument(
        "--checkpoint", default=None, metavar="CKPT.json",
        help="write a resumable checkpoint here after every iteration",
    )
    _add_execution_arguments(run)
    run.set_defaults(func=_cmd_run)

    resume = sub.add_parser("resume", help="continue a checkpointed run")
    resume.add_argument("checkpoint", help="checkpoint JSON written by run --checkpoint")
    resume.add_argument(
        "--update-checkpoint", action="store_true",
        help="keep rewriting the checkpoint file while resuming",
    )
    _add_execution_arguments(resume)
    resume.set_defaults(func=_cmd_resume)

    history = sub.add_parser("history", help="print a saved result without re-running")
    history.add_argument("result", help="result JSON written by run --out")
    history.add_argument(
        "--json", action="store_true", help="summary JSON output"
    )
    history.set_defaults(func=_cmd_history)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
