"""Data pruning for power capping (paper §V / §I: "data pruning for power capping").

Datacenters cap GPU power to stay within provisioned budgets; the usual
mechanisms (frequency scaling, hard caps) cost performance.  The paper's
observation offers an orthogonal lever: prune (sparsify) the input data
until the predicted power fits under the cap, trading a bounded amount of
approximation error for watts instead of latency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import OptimizationError
from repro.optimize.estimation import QuickEstimate, quick_power_estimate
from repro.optimize.sparsity_design import magnitude_prune

__all__ = ["CapPlan", "find_sparsity_for_cap"]


@dataclass(frozen=True)
class CapPlan:
    """Result of searching for the smallest sparsity meeting a power cap."""

    power_cap_watts: float
    sparsity: float
    feasible: bool
    baseline: QuickEstimate
    capped: QuickEstimate
    relative_error: float
    pruned_weights: np.ndarray

    @property
    def power_margin_watts(self) -> float:
        """How far below the cap the capped configuration lands (negative if infeasible)."""
        return self.power_cap_watts - self.capped.power_watts


def find_sparsity_for_cap(
    activations: np.ndarray,
    weights: np.ndarray,
    power_cap_watts: float,
    dtype: str = "fp16_t",
    gpu: str = "a100",
    max_sparsity: float = 0.95,
    tolerance: float = 0.01,
    max_iterations: int = 12,
) -> CapPlan:
    """Binary-search the smallest magnitude-pruning sparsity meeting the cap.

    Power decreases monotonically with sparsity for unsorted inputs (T12),
    so bisection converges; if even ``max_sparsity`` cannot meet the cap the
    plan is marked infeasible and carries the best (most sparse) attempt.
    """
    if power_cap_watts <= 0:
        raise OptimizationError(f"power cap must be positive, got {power_cap_watts}")
    if not 0.0 < max_sparsity <= 1.0:
        raise OptimizationError(f"max_sparsity must be in (0, 1], got {max_sparsity}")
    weights = np.asarray(weights, dtype=np.float64)
    activations = np.asarray(activations, dtype=np.float64)

    baseline = quick_power_estimate(activations, weights, dtype=dtype, gpu=gpu)

    def evaluate(sparsity: float) -> tuple[QuickEstimate, np.ndarray]:
        mask = magnitude_prune(weights, sparsity)
        pruned = np.where(mask, weights, 0.0)
        return quick_power_estimate(activations, pruned, dtype=dtype, gpu=gpu), pruned

    if baseline.power_watts <= power_cap_watts:
        return CapPlan(
            power_cap_watts=power_cap_watts,
            sparsity=0.0,
            feasible=True,
            baseline=baseline,
            capped=baseline,
            relative_error=0.0,
            pruned_weights=weights.copy(),
        )

    max_estimate, max_pruned = evaluate(max_sparsity)
    if max_estimate.power_watts > power_cap_watts:
        denom = float(np.linalg.norm(weights)) or 1.0
        return CapPlan(
            power_cap_watts=power_cap_watts,
            sparsity=max_sparsity,
            feasible=False,
            baseline=baseline,
            capped=max_estimate,
            relative_error=float(np.linalg.norm(max_pruned - weights)) / denom,
            pruned_weights=max_pruned,
        )

    low, high = 0.0, max_sparsity
    best_estimate, best_pruned, best_sparsity = max_estimate, max_pruned, max_sparsity
    for _ in range(max_iterations):
        mid = 0.5 * (low + high)
        estimate, pruned = evaluate(mid)
        if estimate.power_watts <= power_cap_watts:
            best_estimate, best_pruned, best_sparsity = estimate, pruned, mid
            high = mid
        else:
            low = mid
        if high - low <= tolerance:
            break

    denom = float(np.linalg.norm(weights)) or 1.0
    return CapPlan(
        power_cap_watts=power_cap_watts,
        sparsity=float(best_sparsity),
        feasible=True,
        baseline=baseline,
        capped=best_estimate,
        relative_error=float(np.linalg.norm(best_pruned - weights)) / denom,
        pruned_weights=best_pruned,
    )
