"""Data pruning for power capping (paper §V / §I: "data pruning for power capping").

Datacenters cap GPU power to stay within provisioned budgets; the usual
mechanisms (frequency scaling, hard caps) cost performance.  The paper's
observation offers an orthogonal lever: prune (sparsify) the input data
until the predicted power fits under the cap, trading a bounded amount of
approximation error for watts instead of latency.

The sparsity search itself is a monotone threshold question, so it runs
on :class:`repro.optimize.engines.BisectionEngine` (which replaced the
ad-hoc bisection loop that used to live here — same probe sequence, same
bracket updates, bit-for-bit identical plans).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import OptimizationError
from repro.optimize.engines.base import Evaluation
from repro.optimize.engines.bisection import BisectionEngine
from repro.optimize.engines.space import Dimension, ParameterSpace
from repro.optimize.estimation import QuickEstimate, quick_power_estimate
from repro.optimize.sparsity_design import magnitude_prune

__all__ = ["CapPlan", "find_sparsity_for_cap"]


@dataclass(frozen=True)
class CapPlan:
    """Result of searching for the smallest sparsity meeting a power cap."""

    power_cap_watts: float
    sparsity: float
    feasible: bool
    baseline: QuickEstimate
    capped: QuickEstimate
    relative_error: float
    pruned_weights: np.ndarray

    @property
    def power_margin_watts(self) -> float:
        """How far below the cap the capped configuration lands (negative if infeasible)."""
        return self.power_cap_watts - self.capped.power_watts


def find_sparsity_for_cap(
    activations: np.ndarray,
    weights: np.ndarray,
    power_cap_watts: float,
    dtype: str = "fp16_t",
    gpu: str = "a100",
    max_sparsity: float = 0.95,
    tolerance: float = 0.01,
    max_iterations: int = 12,
) -> CapPlan:
    """Binary-search the smallest magnitude-pruning sparsity meeting the cap.

    Power decreases monotonically with sparsity for unsorted inputs (T12),
    so bisection converges; if even ``max_sparsity`` cannot meet the cap the
    plan is marked infeasible and carries the best (most sparse) attempt.

    The search is a :class:`~repro.optimize.engines.BisectionEngine` with
    ``direction="decreasing"`` and ``target=power_cap_watts``: sparsity 0
    first (the unpruned baseline), ``max_sparsity`` second, then midpoints
    until the bracket is within ``tolerance`` or ``max_iterations``
    midpoints have been probed.
    """
    if power_cap_watts <= 0:
        raise OptimizationError(f"power cap must be positive, got {power_cap_watts}")
    if not 0.0 < max_sparsity <= 1.0:
        raise OptimizationError(f"max_sparsity must be in (0, 1], got {max_sparsity}")
    weights = np.asarray(weights, dtype=np.float64)
    activations = np.asarray(activations, dtype=np.float64)

    baseline = quick_power_estimate(activations, weights, dtype=dtype, gpu=gpu)

    evaluated: "dict[float, tuple[QuickEstimate, np.ndarray]]" = {}

    def evaluate(sparsity: float) -> "tuple[QuickEstimate, np.ndarray]":
        if sparsity not in evaluated:
            if sparsity == 0.0:
                # Unpruned: reuse the baseline estimate (pruning at 0 is a
                # no-op on the values, so this is exact, not a shortcut).
                evaluated[sparsity] = (baseline, weights.copy())
            else:
                mask = magnitude_prune(weights, sparsity)
                pruned = np.where(mask, weights, 0.0)
                estimate = quick_power_estimate(activations, pruned, dtype=dtype, gpu=gpu)
                evaluated[sparsity] = (estimate, pruned)
        return evaluated[sparsity]

    space = ParameterSpace([Dimension(name="sparsity", low=0.0, high=max_sparsity)])
    engine = BisectionEngine(
        space,
        target=power_cap_watts,
        direction="decreasing",
        tolerance=tolerance,
        max_iterations=max_iterations,
    )
    while not engine.is_converged:
        (point,) = engine.propose()
        estimate, _ = evaluate(point["sparsity"])
        engine.ingest(
            [
                Evaluation(
                    point=point,
                    objective=estimate.power_watts,
                    metrics={"power_watts": estimate.power_watts},
                )
            ]
        )

    best = engine.best
    assert best is not None  # near/far phases always record an evaluation
    best_sparsity = float(best.point["sparsity"])
    best_estimate, best_pruned = evaluated[best_sparsity]
    denom = float(np.linalg.norm(weights)) or 1.0
    return CapPlan(
        power_cap_watts=power_cap_watts,
        sparsity=best_sparsity,
        feasible=engine.feasible,
        baseline=baseline,
        capped=best_estimate,
        relative_error=float(np.linalg.norm(best_pruned - weights)) / denom,
        pruned_weights=best_pruned,
    )
