"""Permutation-invariant weight reordering (paper §V, second direction).

Weights within a neural network layer correspond to independent neurons, so
permuting the columns of a weight matrix (and un-permuting the layer's
outputs) is computationally equivalent.  The paper proposes exploiting such
permutations to place similar values next to each other and reduce switching
— the same idea PIT (SOSP'23) uses for performance, applied to power.

Two strategies are provided:

* :func:`permutation_by_column_norm` — order columns by mean value, a cheap
  approximation of sorting;
* :func:`greedy_low_toggle_permutation` — greedy nearest-neighbour ordering
  that directly minimizes the bit toggles between successive columns.
"""

from __future__ import annotations

import numpy as np

from repro.dtypes.registry import get_dtype
from repro.errors import OptimizationError
from repro.util.bits import hamming_distance
from repro.util.rng import derive_rng

__all__ = [
    "permutation_by_column_norm",
    "greedy_low_toggle_permutation",
    "permute_columns",
    "restore_columns",
    "column_toggle_cost",
]


def permute_columns(matrix: np.ndarray, permutation: np.ndarray) -> np.ndarray:
    """Return the matrix with its columns reordered by ``permutation``."""
    arr = np.asarray(matrix)
    perm = _check_permutation(permutation, arr.shape[1])
    return arr[:, perm]


def restore_columns(matrix: np.ndarray, permutation: np.ndarray) -> np.ndarray:
    """Undo :func:`permute_columns` (used on the layer's outputs)."""
    arr = np.asarray(matrix)
    perm = _check_permutation(permutation, arr.shape[1])
    inverse = np.empty_like(perm)
    inverse[perm] = np.arange(perm.size)
    return arr[:, inverse]


def _check_permutation(permutation: np.ndarray, size: int) -> np.ndarray:
    perm = np.asarray(permutation, dtype=np.int64)
    if perm.shape != (size,) or not np.array_equal(np.sort(perm), np.arange(size)):
        raise OptimizationError(f"not a valid permutation of {size} columns")
    return perm


def permutation_by_column_norm(matrix: np.ndarray) -> np.ndarray:
    """Order columns by their mean value (ascending)."""
    arr = np.asarray(matrix, dtype=np.float64)
    if arr.ndim != 2:
        raise OptimizationError("expected a 2-D weight matrix")
    return np.argsort(arr.mean(axis=0), kind="stable").astype(np.int64)


def column_toggle_cost(matrix: np.ndarray, dtype: str, sample_rows: int = 64, seed: int = 0) -> float:
    """Mean bit toggles between successive columns (lower is better)."""
    spec = get_dtype(dtype)
    arr = np.asarray(matrix, dtype=np.float64)
    rows = _sample_rows(arr, sample_rows, seed)
    words = spec.encode(arr[rows])
    if words.shape[1] < 2:
        return 0.0
    diffs = hamming_distance(words[:, :-1], words[:, 1:])
    return float(diffs.mean())


def greedy_low_toggle_permutation(
    matrix: np.ndarray, dtype: str = "fp16_t", sample_rows: int = 64, seed: int = 0
) -> np.ndarray:
    """Greedy nearest-neighbour column ordering minimizing successive toggles.

    Starting from the column with the smallest mean, repeatedly append the
    unvisited column whose (sampled) Hamming distance to the current column
    is smallest.  Runs in O(M^2) distance evaluations over the sampled rows,
    which is fine for layer-sized matrices.
    """
    spec = get_dtype(dtype)
    arr = np.asarray(matrix, dtype=np.float64)
    if arr.ndim != 2:
        raise OptimizationError("expected a 2-D weight matrix")
    num_columns = arr.shape[1]
    if num_columns == 0:
        raise OptimizationError("matrix has no columns")
    rows = _sample_rows(arr, sample_rows, seed)
    words = spec.encode(arr[rows])  # (sample_rows, M)

    visited = np.zeros(num_columns, dtype=bool)
    order = np.empty(num_columns, dtype=np.int64)
    current = int(np.argsort(arr.mean(axis=0))[0])
    order[0] = current
    visited[current] = True
    for position in range(1, num_columns):
        distances = hamming_distance(
            np.broadcast_to(words[:, current:current + 1], words.shape), words
        ).sum(axis=0).astype(np.float64)
        distances[visited] = np.inf
        current = int(np.argmin(distances))
        order[position] = current
        visited[current] = True
    return order


def _sample_rows(arr: np.ndarray, sample_rows: int, seed: int) -> np.ndarray:
    if sample_rows <= 0:
        raise OptimizationError(f"sample_rows must be positive, got {sample_rows}")
    total = arr.shape[0]
    if total <= sample_rows:
        return np.arange(total)
    rng = derive_rng(seed, "permutation_rows")
    return np.sort(rng.choice(total, size=sample_rows, replace=False))
