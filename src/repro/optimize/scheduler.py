"""Power-aware GEMM job scheduling across a GPU fleet.

Given a set of GEMM jobs whose power draw has been predicted by the
input-dependent power model, place them on a fleet of GPUs so that the
fleet-level power stays under a provisioned budget.  Jobs that would exceed
the budget are delayed to later time slots — the scheduling analogue of the
power-capping use case in the paper's introduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import OptimizationError
from repro.gpu.device import Device
from repro.optimize.estimation import quick_power_estimate

__all__ = ["GemmJob", "ScheduledJob", "FleetSchedule", "FleetScheduler"]


@dataclass
class GemmJob:
    """One GEMM workload to place on the fleet."""

    name: str
    activations: np.ndarray
    weights: np.ndarray
    dtype: str = "fp16_t"
    iterations: int = 1000

    def __post_init__(self) -> None:
        self.activations = np.asarray(self.activations, dtype=np.float64)
        self.weights = np.asarray(self.weights, dtype=np.float64)
        if self.iterations < 1:
            raise OptimizationError(f"job {self.name!r}: iterations must be >= 1")


@dataclass(frozen=True)
class ScheduledJob:
    """Placement decision for one job."""

    job_name: str
    device_index: int
    time_slot: int
    predicted_power_watts: float
    duration_s: float


@dataclass
class FleetSchedule:
    """Complete schedule plus derived power statistics."""

    placements: list[ScheduledJob] = field(default_factory=list)
    slot_power_watts: list[float] = field(default_factory=list)
    power_budget_watts: float = 0.0

    @property
    def num_slots(self) -> int:
        return len(self.slot_power_watts)

    @property
    def peak_power_watts(self) -> float:
        return max(self.slot_power_watts) if self.slot_power_watts else 0.0

    @property
    def within_budget(self) -> bool:
        return self.peak_power_watts <= self.power_budget_watts + 1e-9

    def jobs_in_slot(self, slot: int) -> list[ScheduledJob]:
        return [p for p in self.placements if p.time_slot == slot]


class FleetScheduler:
    """Greedy power-aware scheduler.

    Jobs are sorted by predicted power (descending) and placed first-fit into
    the earliest time slot whose remaining fleet power budget and free device
    count allow them.  Each device runs at most one job per slot.
    """

    def __init__(self, devices: list[Device], power_budget_watts: float) -> None:
        if not devices:
            raise OptimizationError("the fleet needs at least one device")
        if power_budget_watts <= 0:
            raise OptimizationError("power budget must be positive")
        self.devices = list(devices)
        self.power_budget_watts = float(power_budget_watts)

    def predict_job(self, job: GemmJob, device: Device) -> tuple[float, float]:
        """Predicted (power, duration) of a job on one device."""
        estimate = quick_power_estimate(
            job.activations, job.weights, dtype=job.dtype, gpu=device
        )
        return estimate.power_watts, estimate.iteration_time_s * job.iterations

    def schedule(self, jobs: list[GemmJob]) -> FleetSchedule:
        """Produce a schedule keeping every slot under the fleet power budget."""
        if not jobs:
            raise OptimizationError("no jobs to schedule")

        # Predict each job on each device class once; devices in the fleet may differ.
        predictions: dict[tuple[int, int], tuple[float, float]] = {}
        for job_index, job in enumerate(jobs):
            for device_index, device in enumerate(self.devices):
                predictions[(job_index, device_index)] = self.predict_job(job, device)

        # Order jobs by their best-case power, descending, so heavy jobs claim
        # budget first (longest-processing-time style greedy).
        job_order = sorted(
            range(len(jobs)),
            key=lambda j: min(predictions[(j, d)][0] for d in range(len(self.devices))),
            reverse=True,
        )

        placements: list[ScheduledJob] = []
        slot_power: list[float] = []
        slot_devices_used: list[set[int]] = []

        min_job_power = min(
            min(predictions[(j, d)][0] for d in range(len(self.devices)))
            for j in range(len(jobs))
        )
        if min_job_power > self.power_budget_watts:
            raise OptimizationError(
                f"power budget {self.power_budget_watts:.0f} W cannot fit the "
                f"smallest job ({min_job_power:.0f} W)"
            )

        for job_index in job_order:
            placed = False
            slot = 0
            while not placed:
                if slot == len(slot_power):
                    slot_power.append(0.0)
                    slot_devices_used.append(set())
                # Prefer the device with the lowest predicted power for this job.
                device_choices = sorted(
                    range(len(self.devices)), key=lambda d: predictions[(job_index, d)][0]
                )
                for device_index in device_choices:
                    if device_index in slot_devices_used[slot]:
                        continue
                    power, duration = predictions[(job_index, device_index)]
                    if slot_power[slot] + power > self.power_budget_watts:
                        continue
                    placements.append(
                        ScheduledJob(
                            job_name=jobs[job_index].name,
                            device_index=device_index,
                            time_slot=slot,
                            predicted_power_watts=power,
                            duration_s=duration,
                        )
                    )
                    slot_power[slot] += power
                    slot_devices_used[slot].add(device_index)
                    placed = True
                    break
                slot += 1

        return FleetSchedule(
            placements=placements,
            slot_power_watts=slot_power,
            power_budget_watts=self.power_budget_watts,
        )

    def schedule_summary(self, schedule: FleetSchedule) -> dict[str, float]:
        """Headline numbers for reporting."""
        durations = [p.duration_s for p in schedule.placements]
        return {
            "num_slots": float(schedule.num_slots),
            "peak_power_watts": schedule.peak_power_watts,
            "power_budget_watts": schedule.power_budget_watts,
            "mean_job_duration_s": float(np.mean(durations)) if durations else 0.0,
            "within_budget": float(schedule.within_budget),
        }
