"""Pure estimation core: config in, deterministic result out, no side effects.

``repro.core`` is the seam between *estimation* and *orchestration*.  The
pipeline here (:class:`EstimationPipeline`, :func:`estimate_experiment`)
computes one configuration's measured result deterministically, touching
only the injectable activity/plan cache tiers; everything stateful —
result caching (:mod:`repro.experiments.harness`), sweeps and execution
backends (:mod:`repro.experiments.sweep`), and the long-running serving
layer with its request coalescing (:mod:`repro.serve`) — is layered on
top and calls down into this package.  One compute path, many front ends:
that is what keeps served, swept and one-shot results bit-for-bit
identical.
"""

from repro.core.pipeline import (
    MIN_MEASUREMENT_DURATION_S,
    EstimationPipeline,
    estimate_experiment,
)

__all__ = [
    "MIN_MEASUREMENT_DURATION_S",
    "EstimationPipeline",
    "estimate_experiment",
]
