"""The pure estimation pipeline: config in, measured result out.

This module is the side-effect-free core the rest of the system is built
around.  Given one :class:`~repro.experiments.config.ExperimentConfig` it

1. resolves the configuration's :class:`~repro.experiments.plan.
   ExperimentPlan` — device, pattern, CUTLASS-style launch plan and
   telemetry monitor — from the plan cache, building it only when no
   physically identical configuration has planned before;
2. for each seed, generates A and B from the plan's pattern (same pattern,
   different seeds; B stored transposed unless disabled) and estimates
   switching activity — all seeds go through the batched activity engine
   in a single call;
3. runs the power model (with TDP throttling) and the runtime model;
4. simulates the DCGM 100 ms power trace for the full iteration loop,
   trims the first 500 ms of samples, and averages the rest;
5. aggregates across seeds into an :class:`ExperimentResult`.

"Side-effect-free" means: no result-cache writes, no environment reads, no
global state beyond the (optional, injectable) activity and plan cache
tiers — everything observable is in the returned result, and the result is
a deterministic function of the config.  Orchestration concerns — the
content-addressed *result* cache, sweep deduplication, execution backends,
and the serving layer's request coalescing — live above this module:
:mod:`repro.experiments.harness` and :mod:`repro.experiments.sweep` wrap it
for one-shot and batch invocation, and :mod:`repro.serve` drives it from a
long-running server.  Both call exactly this code, which is what makes a
served response bit-for-bit identical to a local
:func:`repro.run_experiment` call.
"""

from __future__ import annotations

import math
from functools import partial
from typing import TYPE_CHECKING

from repro.activity.engine import (
    ActivityEngine,
    estimate_activity,
    recommended_chunk,
)
from repro.activity.report import ActivityReport
from repro.cache.fingerprint import activity_fingerprint
from repro.cache.store import DEFAULT_CACHE
from repro.dtypes.registry import get_dtype
from repro.experiments.plan import (
    ExperimentPlan,
    build_plan,
    build_problem,
    build_workload_pattern,
)
from repro.experiments.results import ExperimentResult, SeedMeasurement
from repro.kernels.gemm import GemmOperands, GemmProblem
from repro.kernels.launch import KernelLaunch, plan_launch
from repro.patterns.base import Pattern
from repro.power.energy import EnergyEstimate
from repro.power.model import PowerModel
from repro.runtime.model import RuntimeModel
from repro.telemetry.dcgm import DcgmMonitor
from repro.util.rng import derive_rng, derive_seed

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.config import ExperimentConfig

__all__ = [
    "MIN_MEASUREMENT_DURATION_S",
    "EstimationPipeline",
    "estimate_experiment",
]

#: Minimum simulated measurement window.  The paper sizes its iteration
#: counts so each run spans many 100 ms samples; short configurations are
#: padded up to this duration (by running more iterations) so warmup
#: trimming and trace averaging stay meaningful.
MIN_MEASUREMENT_DURATION_S = 3.0


class EstimationPipeline:
    """The pure estimation path for one configuration.

    Each pipeline resolves its configuration's
    :class:`~repro.experiments.plan.ExperimentPlan` (device, pattern,
    launch plan, monitor) from the plan cache — so physically identical
    configurations plan once per process, not once per pipeline — and
    builds its own power/runtime models and activity engine on top.
    Pipelines share nothing *mutable* with each other except the
    thread-safe caches (plans are immutable and stateless, see
    :mod:`repro.experiments.plan`), so the sweep runner and the serving
    layer may drive many of them concurrently from thread workers.  The
    expensive part of a run is switching-activity estimation, whose
    kernels release the GIL inside NumPy (see :mod:`repro.util.bits`),
    which is what makes those threads scale.
    """

    def __init__(
        self,
        config: "ExperimentConfig",
        activity_cache: "object | None" = DEFAULT_CACHE,
        plan_cache: "object | None" = DEFAULT_CACHE,
    ) -> None:
        self.config = config
        self.plan: ExperimentPlan = build_plan(config, cache=plan_cache)
        self.device = self.plan.device
        self.power_model = PowerModel(self.device)
        self.runtime_model = RuntimeModel()
        self.activity_engine = ActivityEngine(
            sampling=config.sampling, cache=activity_cache
        )

    # ------------------------------------------------------------------ API

    def run(self) -> ExperimentResult:
        """Run all seeds of the configuration through the batched pipeline.

        Problem, pattern, launch plan and telemetry monitor come from the
        pipeline's (possibly cache-shared) :class:`ExperimentPlan` and are
        shared by every seed; switching activity for the whole seed batch
        goes through the :class:`ActivityEngine` in one call.  Each seed is
        keyed by :func:`~repro.cache.fingerprint.activity_fingerprint` and
        operands are passed as factories, so seeds already in the activity
        cache (e.g. the same workload measured on another GPU) skip operand
        generation and estimation entirely.  The per-seed measurements are
        bit-for-bit identical to running each seed independently without
        any cache.
        """
        config = self.config
        problem = self.plan.problem
        pattern = self.plan.pattern
        launch = self.plan.launch
        monitor = self.plan.monitor

        # The engine materializes operand factories chunk by chunk (matching
        # its own stacking granularity) so peak memory is one chunk of seeds,
        # not the whole batch — at paper scale a seed's operands are ~70 MB.
        # The chunk is sized from the machine-calibrated working-set budget
        # (repro.parallel.calibrate), not a fixed constant.
        per_invocation = problem.n * problem.k + problem.m * problem.k
        chunk = recommended_chunk(per_invocation)
        factories = [
            partial(self.generate_operands, problem, index, pattern=pattern)
            for index in range(config.seeds)
        ]
        keys = None
        if self.activity_engine.cache is not None:
            keys = [
                activity_fingerprint(config, seed=index)
                for index in range(config.seeds)
            ]
        reports: list[ActivityReport] = self.activity_engine.estimate_batch(
            factories, seeds=range(config.seeds), keys=keys, chunk=chunk
        )
        measurements = [
            self.measure_seed(index, launch, report, monitor)
            for index, report in enumerate(reports)
        ]
        description = config.describe()
        description["device"] = self.device.describe()
        return ExperimentResult(config=description, measurements=measurements)

    def generate_operands(
        self, problem: GemmProblem, seed_index: int, pattern: Pattern | None = None
    ) -> GemmOperands:
        """Draw one seed's A/B operand pair from the workload pattern."""
        spec = get_dtype(self.config.dtype)
        if pattern is None:
            pattern = build_workload_pattern(self.config)
        rng_a = derive_rng(self.config.base_seed, "A", seed_index)
        rng_b = derive_rng(self.config.base_seed, "B", seed_index)
        a = pattern.generate(problem.a_shape, spec, rng_a)
        b_stored = pattern.generate(problem.b_storage_shape, spec, rng_b)
        return GemmOperands(problem=problem, a=a, b_stored=b_stored)

    def run_seed_reference(self, seed_index: int) -> SeedMeasurement:
        """Run a single seed end to end (the unbatched reference path).

        Deliberately bypasses the plan: problem, launch and monitor are
        rebuilt from scratch so this path stays an independent reference
        for the plan-sharing equivalence tests.
        """
        config = self.config
        problem = build_problem(config)
        operands = self.generate_operands(problem, seed_index)
        launch = plan_launch(problem, self.device)
        activity = estimate_activity(operands, sampling=config.sampling, seed=seed_index)
        monitor = DcgmMonitor(self.device, config=config.telemetry)
        return self.measure_seed(seed_index, launch, activity, monitor)

    def measure_seed(
        self,
        seed_index: int,
        launch: KernelLaunch,
        activity: ActivityReport,
        monitor: DcgmMonitor,
    ) -> SeedMeasurement:
        """Power model, runtime model and simulated trace for one seed."""
        config = self.config
        power = self.power_model.estimate(
            launch,
            activity,
            include_process_variation=config.include_process_variation,
        )
        runtime = self.runtime_model.estimate(launch, clock_scale=power.clock_scale)

        # Size the simulated measurement window like the paper sizes its
        # iteration counts: long enough for stable 100 ms sampling.
        iterations = max(
            config.iterations,
            int(math.ceil(MIN_MEASUREMENT_DURATION_S / runtime.iteration_time_s)),
        )
        duration_s = iterations * runtime.iteration_time_s

        trace_seed = derive_seed(config.base_seed, "trace", seed_index)
        trace = monitor.power_trace(power.watts, duration_s, seed=trace_seed)
        trimmed = trace.trim_warmup(config.warmup_trim_s)
        measured_power = trimmed.mean_power_watts()

        energy = EnergyEstimate(
            power_watts=measured_power,
            iteration_time_s=runtime.iteration_time_s,
            iterations=iterations,
        )

        return SeedMeasurement(
            seed=seed_index,
            power_watts=measured_power,
            unconstrained_power_watts=power.unconstrained_watts,
            iteration_time_s=runtime.iteration_time_s,
            iteration_energy_j=energy.iteration_energy_j,
            activity_factor=power.activity_factor,
            throttled=power.throttled,
            clock_scale=power.clock_scale,
            activity=activity,
        )


def estimate_experiment(
    config: "ExperimentConfig",
    *,
    activity_cache: "object | None" = DEFAULT_CACHE,
    plan_cache: "object | None" = DEFAULT_CACHE,
) -> ExperimentResult:
    """Estimate one configuration through the pure pipeline.

    This is the canonical entry point for consumers that manage their own
    result caching and orchestration (the serving layer, custom batch
    drivers): it never consults or writes the content-addressed *result*
    cache — only the injectable activity and plan tiers, which change when
    the answer is computed, never what it is.  For the cache-consulting
    one-shot call, use :func:`repro.run_experiment`.
    """
    return EstimationPipeline(
        config, activity_cache=activity_cache, plan_cache=plan_cache
    ).run()
