"""Replay a fleet trace through a running :class:`EstimationService`.

This is the serving-side twin of :func:`repro.fleet.simulate`: instead of
resolving a trace's workloads through ``run_configs`` directly, each trace
job is submitted to an :class:`~repro.serve.service.EstimationService` as
if it were an independent client request.  Because jobs are submitted
concurrently and the service coalesces on the experiment fingerprint,
a trace with many jobs over few distinct workloads exercises exactly the
serving behaviour a real inference fleet would: the first request per
distinct workload computes, every duplicate coalesces, and the cache
tiers absorb repeats across replays.

Usage::

    service = EstimationService()
    report = asyncio.run_coroutine_threadsafe(...)  # or inside a loop:
    report = await replay_trace(service, trace, gpu="a100")
    assert report.coalesced >= 1
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any

from repro.experiments.config import ExperimentConfig
from repro.experiments.results import ExperimentResult
from repro.fleet.trace import Trace
from repro.serve.service import EstimationService

__all__ = ["ReplayReport", "replay_trace"]


@dataclass
class ReplayReport:
    """Outcome of one trace replay against a service."""

    trace_name: str
    #: trace jobs submitted as requests
    requests: int = 0
    #: distinct workload configurations among those requests
    distinct_configs: int = 0
    #: requests that joined an in-flight computation (service counter delta)
    coalesced: int = 0
    #: workload name -> its (shared) estimation result
    results: "dict[str, ExperimentResult]" = field(default_factory=dict)

    def as_dict(self) -> "dict[str, Any]":
        return {
            "trace": self.trace_name,
            "requests": self.requests,
            "distinct_configs": self.distinct_configs,
            "coalesced": self.coalesced,
            "workloads": sorted(self.results),
        }


def _job_configs(
    trace: Trace, gpu: str, overrides: "dict[str, Any] | None"
) -> "list[tuple[str, ExperimentConfig]]":
    """(workload name, config) per job, in trace order."""
    extra = dict(overrides or {})
    by_workload: "dict[str, ExperimentConfig]" = {}
    pairs: "list[tuple[str, ExperimentConfig]]" = []
    for job in trace.jobs:
        config = by_workload.get(job.workload)
        if config is None:
            config = trace.workloads[job.workload].to_config(gpu=gpu, **extra)
            by_workload[job.workload] = config
        pairs.append((job.workload, config))
    return pairs


async def replay_trace(
    service: EstimationService,
    trace: Trace,
    *,
    gpu: str = "a100",
    limit: "int | None" = None,
    estimation_overrides: "dict[str, Any] | None" = None,
) -> ReplayReport:
    """Submit every trace job to ``service`` concurrently; return the report.

    ``limit`` caps how many jobs are replayed (``None`` = all); jobs keep
    their trace order but all submissions are in flight together, so
    duplicate workloads coalesce instead of consuming admission capacity.
    ``estimation_overrides`` applies extra :class:`ExperimentConfig` field
    overrides to every workload (tests pin quiet telemetry this way).
    """
    pairs = _job_configs(trace, gpu, estimation_overrides)
    if limit is not None:
        pairs = pairs[:limit]
    report = ReplayReport(trace_name=trace.name)
    report.requests = len(pairs)
    report.distinct_configs = len({name for name, _ in pairs})
    if not pairs:
        return report
    coalesced_before = service.stats.coalesced
    results = await asyncio.gather(
        *(service.submit(config) for _, config in pairs)
    )
    for (name, _), result in zip(pairs, results):
        report.results[name] = result
    report.coalesced = service.stats.coalesced - coalesced_before
    return report
