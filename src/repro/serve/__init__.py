"""Estimation-as-a-service: a long-running serving layer over the core.

``repro.serve`` turns the estimation pipeline into a small JSON-over-HTTP
service (stdlib only).  Concurrent identical requests are coalesced into
one computation (single-flight, keyed by the same content-addressed
fingerprint the result cache uses), compatible pending requests batch
through the sweep machinery, and bounded admission sheds load with 429s
instead of queueing without limit.  Because the core is deterministic,
a served report is bit-for-bit the report a direct
:func:`repro.run_experiment` call would produce.

Start a server::

    python -m repro.serve --port 8035

or programmatically via :func:`repro.serve.serve` /
:class:`repro.serve.EstimationServer`.  See ``docs/serving.md`` for the
protocol and ``docs/configuration.md`` for the ``REPRO_SERVE_*`` knobs.
"""

from repro.serve.replay import ReplayReport, replay_trace
from repro.serve.server import DEFAULT_HOST, DEFAULT_PORT, EstimationServer, serve
from repro.serve.service import EstimationService, ServiceConfig, ServiceStats

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "EstimationServer",
    "EstimationService",
    "ReplayReport",
    "ServiceConfig",
    "ServiceStats",
    "replay_trace",
    "serve",
]
