"""Asyncio HTTP server for estimation-as-a-service.

Routes (all responses JSON; one request per connection):

``POST /estimate``
    Body: an experiment configuration —
    :meth:`~repro.experiments.config.ExperimentConfig.from_dict` fields,
    either bare or wrapped as ``{"config": {...}}``.  Response 200:
    ``{"fingerprint": ..., "result": {...}}`` where ``result`` is the
    :meth:`~repro.experiments.results.ExperimentResult.as_dict` document.
    Response 429 (with a ``Retry-After`` header) when admission control
    rejects, 504 when the request exceeds its ``REPRO_SERVE_TIMEOUT_S``
    deadline, 400 on bad configs.

``GET /stats``
    Live counters: service (requests/coalesced/rejected/batches/timeouts),
    the cumulative sweep-runner accounting, per-tier cache counters with
    hit rates and resilience state, and the health roll-up (see
    :meth:`EstimationService.describe`).

``GET /healthz``
    ``{"status": "ok", "reasons": []}`` while fully healthy;
    ``{"status": "degraded", "reasons": [...]}`` once any resilience
    fallback engaged (memory-only cache tier, threads fallback after pool
    breakage).  Degraded answers are still bit-for-bit correct — the
    status flags lost persistence/parallelism, never wrong results.

``POST /shutdown``
    Acknowledges, then stops the server (used by scripted deployments and
    the CI smoke test; the server also stops cleanly on SIGINT/SIGTERM).

The server binds one :class:`~repro.serve.service.EstimationService`; see
that module for coalescing/batching/backpressure semantics and
``docs/serving.md`` for the operational story.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import signal
from typing import Any

from repro.cache.fingerprint import experiment_fingerprint
from repro.errors import ReproError, ServiceOverloadedError, ServiceTimeoutError
from repro.experiments.config import ExperimentConfig
from repro.serve.http import HttpError, HttpRequest, read_request, render_response
from repro.serve.service import EstimationService, ServiceConfig

__all__ = ["DEFAULT_HOST", "DEFAULT_PORT", "EstimationServer", "serve"]

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8035

#: ``Retry-After`` seconds suggested on 429 — long enough for the current
#: batch window to drain whatever is wedging admission, short enough that
#: well-behaved clients retry before giving up.
RETRY_AFTER_S = 1


def _env_host(environ: "dict[str, str] | None" = None) -> str:
    env = os.environ if environ is None else environ
    return env.get("REPRO_SERVE_HOST", "127.0.0.1")


def _env_port(environ: "dict[str, str] | None" = None) -> int:
    env = os.environ if environ is None else environ
    return int(env.get("REPRO_SERVE_PORT", "8035").strip() or DEFAULT_PORT)


class EstimationServer:
    """One listening socket bound to one :class:`EstimationService`."""

    def __init__(
        self,
        service: "EstimationService | None" = None,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
    ) -> None:
        self.service = service if service is not None else EstimationService()
        self.host = host
        self.port = port
        self._server: "asyncio.base_events.Server | None" = None
        self._stopping = asyncio.Event()

    # ------------------------------------------------------------ lifecycle

    async def start(self) -> None:
        """Bind and listen; ``port=0`` resolves to the assigned port."""
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def serve_until_stopped(self) -> None:
        """Block until :meth:`stop` (or ``POST /shutdown``) fires, then close."""
        if self._server is None:
            await self.start()
        await self._stopping.wait()
        await self.close()

    def stop(self) -> None:
        """Request a clean shutdown (idempotent, callable from handlers)."""
        self._stopping.set()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.close()

    # ------------------------------------------------------------- handlers

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            headers: "dict[str, str]" = {}
            try:
                request = await read_request(reader)
                status, payload = await self._dispatch(request)
            except HttpError as exc:
                status, payload, headers = exc.status, {"error": exc.message}, exc.headers
            except Exception as exc:  # noqa: BLE001 - must answer, not crash
                status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
            writer.write(render_response(status, payload, headers))
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass  # client went away (or shutdown); nothing to answer
        finally:
            writer.close()
            with contextlib.suppress(ConnectionError):
                await writer.wait_closed()

    async def _dispatch(self, request: HttpRequest) -> "tuple[int, Any]":
        route = (request.method, request.path)
        if route == ("POST", "/estimate"):
            return await self._estimate(request)
        if route == ("GET", "/stats"):
            return 200, self.service.describe()
        if route == ("GET", "/healthz"):
            return 200, self.service.health()
        if route == ("POST", "/shutdown"):
            # Answer first (the caller deserves an ack), then stop: the
            # event fires after this response is written because the
            # serve loop only observes it between scheduler turns.
            asyncio.get_running_loop().call_soon(self.stop)
            return 200, {"status": "stopping"}
        known_paths = {"/estimate", "/stats", "/healthz", "/shutdown"}
        if request.path in known_paths:
            raise HttpError(405, f"method {request.method} not allowed for {request.path}")
        raise HttpError(404, f"no route for {request.path}")

    async def _estimate(self, request: HttpRequest) -> "tuple[int, Any]":
        document = request.json()
        if not isinstance(document, dict):
            raise HttpError(400, "config document must be a JSON object")
        config_fields = document.get("config", document)
        if not isinstance(config_fields, dict):
            raise HttpError(400, '"config" must be a JSON object')
        try:
            config = ExperimentConfig.from_dict(config_fields)
        except ReproError as exc:
            raise HttpError(400, str(exc)) from exc
        try:
            result = await self.service.submit(config)
        except ServiceOverloadedError as exc:
            raise HttpError(
                429, str(exc), headers={"Retry-After": str(RETRY_AFTER_S)}
            ) from exc
        except ServiceTimeoutError as exc:
            raise HttpError(504, str(exc)) from exc
        return 200, {
            "fingerprint": experiment_fingerprint(config),
            "result": self.service.render_result(config, result),
        }


async def _serve_async(server: EstimationServer, announce: bool) -> None:
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError, ValueError):
            loop.add_signal_handler(signum, server.stop)
    await server.start()
    if announce:
        print(
            json.dumps(
                {"listening": f"http://{server.host}:{server.port}", "pid": os.getpid()},
                sort_keys=True,
            ),
            flush=True,
        )
    await server.serve_until_stopped()


def serve(
    host: "str | None" = None,
    port: "int | None" = None,
    *,
    config: "ServiceConfig | None" = None,
    announce: bool = True,
) -> None:
    """Run the estimation server until SIGINT/SIGTERM or ``POST /shutdown``.

    ``host``/``port`` default to ``REPRO_SERVE_HOST`` / ``REPRO_SERVE_PORT``
    (``port=0`` picks a free port and announces it); the service knobs come
    from ``config`` or the ``REPRO_SERVE_*`` environment family.  With
    ``announce``, a one-line JSON banner with the bound address is printed
    once the listener is up, so wrappers can scrape the chosen port.
    """
    service = EstimationService(config if config is not None else ServiceConfig.from_env())
    server = EstimationServer(
        service,
        host=host if host is not None else _env_host(),
        port=port if port is not None else _env_port(),
    )
    asyncio.run(_serve_async(server, announce))
