"""``python -m repro.serve`` — run the estimation server.

Flags beat the environment (``REPRO_SERVE_HOST`` / ``REPRO_SERVE_PORT``),
which beats the built-in defaults, matching the library-wide precedence
rules in ``docs/configuration.md``.  The remaining service knobs
(``REPRO_SERVE_MAX_PENDING``, ``REPRO_SERVE_BATCH_WINDOW_MS``,
``REPRO_SERVE_MAX_BATCH``, ``REPRO_SERVE_WORKERS``,
``REPRO_SERVE_BACKEND``) are environment-only.
"""

from __future__ import annotations

import argparse

from repro.serve.server import serve


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve GEMM power estimates over JSON/HTTP.",
    )
    parser.add_argument(
        "--host", default=None, help="bind address (default: $REPRO_SERVE_HOST or 127.0.0.1)"
    )
    parser.add_argument(
        "--port",
        type=int,
        default=None,
        help="bind port; 0 picks a free one (default: $REPRO_SERVE_PORT or 8035)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the listening banner"
    )
    args = parser.parse_args(argv)
    serve(host=args.host, port=args.port, announce=not args.quiet)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
