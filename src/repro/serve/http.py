"""Tiny HTTP/1.1 subset over asyncio streams.

The serving layer speaks just enough HTTP for ``curl``, ``urllib`` and CI
smoke tests: one request per connection (``Connection: close``), JSON
bodies, and a handful of status codes.  Implementing this by hand keeps
the server on the standard library — the container policy forbids new
dependencies — and the subset is small enough that a real framework would
be mostly dead weight.

Limits are deliberate: a request line plus headers must fit
:data:`MAX_HEADER_BYTES` and a body :data:`MAX_BODY_BYTES`, which caps
the memory a misbehaving client can pin.  Anything outside the subset
maps to a :class:`HttpError` carrying the status code to send back.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "MAX_HEADER_BYTES",
    "MAX_BODY_BYTES",
    "HttpError",
    "HttpRequest",
    "read_request",
    "render_response",
]

#: Upper bound on the request line plus all headers.
MAX_HEADER_BYTES = 16 * 1024
#: Upper bound on a request body (configs are ~1 KiB; 4 MiB is generous).
MAX_BODY_BYTES = 4 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    """A malformed or unserviceable request; ``status`` goes on the wire.

    ``headers`` are extra response headers (e.g. ``Retry-After`` on 429)
    rendered alongside the error body.
    """

    def __init__(
        self, status: int, message: str, headers: "dict[str, str] | None" = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = dict(headers) if headers else {}


@dataclass
class HttpRequest:
    """One parsed request."""

    method: str
    path: str
    headers: "dict[str, str]" = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Any:
        """The body parsed as JSON (400 on syntax errors or an empty body)."""
        if not self.body:
            raise HttpError(400, "request body must be a JSON document")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"invalid JSON body: {exc}") from exc


async def read_request(reader: asyncio.StreamReader) -> HttpRequest:
    """Parse one request off the stream; raises :class:`HttpError`."""
    try:
        header_block = await reader.readuntil(b"\r\n\r\n")
    except asyncio.LimitOverrunError as exc:
        raise HttpError(413, "request headers too large") from exc
    except asyncio.IncompleteReadError as exc:
        raise HttpError(400, "connection closed mid-request") from exc
    if len(header_block) > MAX_HEADER_BYTES:
        raise HttpError(413, "request headers too large")

    lines = header_block.decode("latin-1").split("\r\n")
    request_line = lines[0]
    parts = request_line.split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {request_line!r}")
    method, path, _version = parts

    headers: "dict[str, str]" = {}
    for line in lines[1:]:
        if not line:
            continue
        name, separator, value = line.partition(":")
        if not separator:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length_text = headers.get("content-length", "")
    if length_text:
        try:
            length = int(length_text)
        except ValueError as exc:
            raise HttpError(400, f"bad Content-Length: {length_text!r}") from exc
        if length < 0:
            raise HttpError(400, f"bad Content-Length: {length_text!r}")
        if length > MAX_BODY_BYTES:
            raise HttpError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise HttpError(400, "connection closed mid-body") from exc
    elif headers.get("transfer-encoding"):
        raise HttpError(400, "chunked request bodies are not supported")

    return HttpRequest(method=method.upper(), path=path, headers=headers, body=body)


def render_response(
    status: int, payload: Any, headers: "dict[str, str] | None" = None
) -> bytes:
    """Serialize a JSON response with ``Connection: close`` semantics.

    ``headers`` adds extra response headers (``Retry-After`` and friends)
    between the fixed ones and the blank line.
    """
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    extra = "".join(f"{name}: {value}\r\n" for name, value in (headers or {}).items())
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"{extra}"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body
