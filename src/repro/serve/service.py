"""Transport-independent estimation service: coalescing, batching, admission.

:class:`EstimationService` is the heart of the serving layer.  It accepts
experiment configurations from any front end (the HTTP server in
:mod:`repro.serve.server`, or tests driving it directly) and turns them
into calls on the sweep machinery, with three serving-specific behaviours
layered on top:

**Single-flight coalescing.**  Requests are keyed by
:func:`~repro.cache.fingerprint.experiment_fingerprint` — the same
content-addressed key the result cache uses, so two requests differing
only in label coalesce exactly when the cache would serve one from the
other.  The first request for a key creates a future and enqueues the
work; every concurrent duplicate awaits that same future and never touches
the queue.  The estimation core is deterministic, so a coalesced response
is bit-for-bit the response a dedicated computation would have produced.

**Batching.**  Admitted requests sit in a queue for a short collection
window (``batch_window_s``), then drain through one
:func:`~repro.experiments.sweep.run_configs` call per batch — inheriting
its deduplication, caching and execution backends.  A batch computes in a
single worker thread (``run_configs`` manages its own pool), keeping the
event loop free to accept, coalesce and reject while estimation runs.
Batch failures are *isolated*: when a batch raises, every configuration in
it is re-run individually, so one poisoned configuration fails only its own
future instead of rejecting every request drained into the batch.

**Bounded admission.**  At most ``max_pending`` distinct keys may be
in flight; the next new key is rejected with
:class:`~repro.errors.ServiceOverloadedError` (HTTP 429 upstream).
Duplicates of an in-flight key always coalesce — joining an existing
future consumes no new capacity, so a thundering herd of identical
requests cannot wedge the service.

**Deadlines and health.**  ``timeout_s`` (``REPRO_SERVE_TIMEOUT_S``) caps
how long any one waiter blocks: past the deadline it gets
:class:`~repro.errors.ServiceTimeoutError` (HTTP 504 upstream) while the
shielded computation keeps running for later duplicates and the cache.
:meth:`EstimationService.health` rolls up the sticky degradations the
resilience layer records — a cache tier fallen back to memory-only, a
process pool abandoned for threads — into the ``/healthz`` body, so "still
correct but needs attention" is observable without grepping logs.
"""

from __future__ import annotations

import asyncio
import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable, Mapping

from repro.cache.fingerprint import experiment_fingerprint
from repro.cache.store import DEFAULT_CACHE, peek_default_caches
from repro.errors import ServiceOverloadedError, ServiceTimeoutError, ServingError
from repro.experiments.config import ExperimentConfig
from repro.experiments.results import ExperimentResult
from repro.experiments.sweep import RunStats, run_configs
from repro.faults import fault_point

__all__ = ["ServiceConfig", "ServiceStats", "EstimationService"]


def _env_int(name: str, fallback: int, environ: Mapping[str, str]) -> int:
    raw = environ.get(name, "").strip()
    if not raw:
        return fallback
    try:
        return int(raw)
    except ValueError as exc:
        raise ServingError(f"{name} must be an integer, got {raw!r}") from exc


def _env_float(name: str, fallback: float, environ: Mapping[str, str]) -> float:
    raw = environ.get(name, "").strip()
    if not raw:
        return fallback
    try:
        return float(raw)
    except ValueError as exc:
        raise ServingError(f"{name} must be a number, got {raw!r}") from exc


@dataclass(frozen=True)
class ServiceConfig:
    """Serving knobs; :meth:`from_env` reads the ``REPRO_SERVE_*`` family."""

    #: distinct in-flight requests admitted before 429s (coalesced
    #: duplicates ride along for free)
    max_pending: int = 64
    #: how long an admitted request waits for companions before its batch
    #: drains, seconds
    batch_window_s: float = 0.010
    #: most configurations handed to one ``run_configs`` call
    max_batch: int = 16
    #: ``workers=`` for each batch (1 = inline in the compute thread)
    workers: int = 1
    #: execution backend for each batch (see :mod:`repro.parallel`)
    backend: str = "auto"
    #: per-request deadline, seconds (0 disables); an expired waiter gets
    #: :class:`~repro.errors.ServiceTimeoutError` (HTTP 504 upstream) while
    #: the shared computation keeps running for any later duplicate
    timeout_s: float = 0.0

    def __post_init__(self) -> None:
        if self.max_pending < 1:
            raise ServingError(f"max_pending must be >= 1, got {self.max_pending}")
        if self.batch_window_s < 0:
            raise ServingError(
                f"batch_window_s must be >= 0, got {self.batch_window_s}"
            )
        if self.max_batch < 1:
            raise ServingError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.workers < 1:
            raise ServingError(f"workers must be >= 1, got {self.workers}")
        if self.timeout_s < 0:
            raise ServingError(f"timeout_s must be >= 0, got {self.timeout_s}")

    @classmethod
    def from_env(cls, environ: "Mapping[str, str] | None" = None) -> "ServiceConfig":
        env = os.environ if environ is None else environ
        window_ms = _env_int("REPRO_SERVE_BATCH_WINDOW_MS", 10, env)
        if window_ms < 0:
            raise ServingError(
                f"REPRO_SERVE_BATCH_WINDOW_MS must be >= 0, got {window_ms}"
            )
        return cls(
            max_pending=_env_int("REPRO_SERVE_MAX_PENDING", 64, env),
            batch_window_s=window_ms / 1000.0,
            max_batch=_env_int("REPRO_SERVE_MAX_BATCH", 16, env),
            workers=_env_int("REPRO_SERVE_WORKERS", 1, env),
            backend=env.get("REPRO_SERVE_BACKEND", "auto"),
            timeout_s=_env_float("REPRO_SERVE_TIMEOUT_S", 0, env),
        )


@dataclass
class ServiceStats:
    """Live serving counters, exposed verbatim on ``/stats``."""

    #: requests submitted (admitted, coalesced or rejected)
    requests: int = 0
    #: requests that joined an already-in-flight computation
    coalesced: int = 0
    #: requests rejected by admission control
    rejected: int = 0
    #: distinct configurations whose computation ultimately raised (after
    #: batch-failure isolation re-ran them individually)
    errors: int = 0
    #: ``run_configs`` batches drained
    batches: int = 0
    #: configurations re-run individually because their batch failed —
    #: survivors of a poisoned batch complete instead of inheriting the
    #: poison's exception
    isolated_retries: int = 0
    #: requests whose waiter hit the per-request deadline (HTTP 504)
    timeouts: int = 0
    #: cumulative sweep-runner accounting across all batches
    run: RunStats = field(default_factory=RunStats)

    def as_dict(self) -> dict[str, Any]:
        return {
            "requests": self.requests,
            "coalesced": self.coalesced,
            "rejected": self.rejected,
            "errors": self.errors,
            "batches": self.batches,
            "isolated_retries": self.isolated_retries,
            "timeouts": self.timeouts,
            "run": self.run.as_dict(),
        }


class EstimationService:
    """Coalescing, batching front door over the estimation machinery.

    One instance serves one event loop.  ``compute`` is injectable for
    tests; it must accept the keyword arguments :meth:`_run_batch` passes
    to :func:`~repro.experiments.sweep.run_configs`.
    """

    def __init__(
        self,
        config: "ServiceConfig | None" = None,
        *,
        cache: "object | None" = DEFAULT_CACHE,
        activity_cache: "object | None" = DEFAULT_CACHE,
        plan_cache: "object | None" = DEFAULT_CACHE,
        compute: "Callable[..., list[ExperimentResult]] | None" = None,
    ) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.stats = ServiceStats()
        self._cache = cache
        self._activity_cache = activity_cache
        self._plan_cache = plan_cache
        self._compute = compute if compute is not None else run_configs
        #: key -> future shared by every coalesced waiter of that key
        self._inflight: "dict[str, asyncio.Future[ExperimentResult]]" = {}
        #: keys admitted but not yet drained into a batch
        self._queue: "list[tuple[str, ExperimentConfig]]" = []
        self._batcher: "asyncio.Task[None] | None" = None
        # One compute thread: batches serialize behind each other (each
        # batch parallelizes internally via run_configs' own backends),
        # while the event loop stays responsive for admission/coalescing.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-compute"
        )
        self._closed = False
        # Sticky record of a sweep-runner backend degradation (e.g. the
        # process pool broke twice and fell back to threads); reported by
        # health() until the process restarts.
        self._degraded_backend = ""

    # ------------------------------------------------------------------ API

    async def submit(self, config: ExperimentConfig) -> ExperimentResult:
        """Estimate one configuration, coalescing with identical in-flight work.

        Returns the (possibly shared) :class:`ExperimentResult`.  Callers
        must not mutate it; serialize with :meth:`render_result`, which
        re-stamps the label the way the result cache does.
        """
        if self._closed:
            raise ServingError("service is closed")
        self.stats.requests += 1
        key = experiment_fingerprint(config)
        existing = self._inflight.get(key)
        if existing is not None:
            self.stats.coalesced += 1
            return await self._await_result(existing)
        if len(self._inflight) >= self.config.max_pending:
            self.stats.rejected += 1
            raise ServiceOverloadedError(
                f"{len(self._inflight)} requests in flight "
                f"(max_pending={self.config.max_pending})"
            )
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[ExperimentResult]" = loop.create_future()
        self._inflight[key] = future
        self._queue.append((key, config))
        if self._batcher is None or self._batcher.done():
            self._batcher = loop.create_task(self._drain())
        return await self._await_result(future)

    async def _await_result(
        self, future: "asyncio.Future[ExperimentResult]"
    ) -> ExperimentResult:
        """Await a (possibly shared) result under the per-request deadline.

        The shield keeps a timed-out or cancelled waiter from cancelling
        the computation other coalesced requests still await; only this
        waiter's deadline expires, as :class:`ServiceTimeoutError`.
        """
        waiter = asyncio.shield(future)
        if self.config.timeout_s <= 0:
            return await waiter
        try:
            return await asyncio.wait_for(waiter, self.config.timeout_s)
        except asyncio.TimeoutError:
            self.stats.timeouts += 1
            raise ServiceTimeoutError(
                f"request exceeded its {self.config.timeout_s:g}s deadline"
            ) from None

    @staticmethod
    def render_result(config: ExperimentConfig, result: ExperimentResult) -> dict[str, Any]:
        """JSON document for one response.

        Coalesced waiters share one result object, so the per-request label
        (excluded from the fingerprint, exactly like in the result cache) is
        re-stamped on the serialized copy, never on the shared object.
        """
        payload = result.as_dict()
        payload["config"]["label"] = config.describe()["label"]
        return payload

    def describe(self) -> dict[str, Any]:
        """Service counters plus per-tier cache counters (the ``/stats`` body).

        Cache tiers appear when this process has created them — the default
        caches are lazy, so a service that has not yet computed anything
        reports no tiers rather than fabricating empty ones.
        """
        return {
            "service": self.stats.as_dict(),
            "pending": len(self._inflight),
            "config": {
                "max_pending": self.config.max_pending,
                "batch_window_s": self.config.batch_window_s,
                "max_batch": self.config.max_batch,
                "workers": self.config.workers,
                "backend": self.config.backend,
                "timeout_s": self.config.timeout_s,
            },
            "caches": {
                name: cache.describe_memory()
                for name, cache in self._cache_tiers().items()
            },
            "health": self.health(),
        }

    def health(self) -> dict[str, Any]:
        """Degradation roll-up for ``/healthz``.

        ``status`` is ``"degraded"`` when any cache tier fell back to
        memory-only operation or the sweep runner abandoned its process
        pool; ``reasons`` lists every sticky degradation.  Degraded means
        "answers are still bit-for-bit correct but the deployment needs
        attention" — hard failures surface on requests, not here.
        """
        reasons: "list[str]" = []
        for name, cache in sorted(self._cache_tiers().items()):
            resilience = getattr(cache, "resilience", None)
            if resilience is not None and resilience.degraded:
                reasons.append(f"cache.{name}: {resilience.degraded_reason}")
        if self._degraded_backend:
            reasons.append(
                f"pool: fell back to the {self._degraded_backend} backend "
                "after repeated process-pool breakage"
            )
        return {"status": "degraded" if reasons else "ok", "reasons": reasons}

    def _cache_tiers(self) -> dict[str, Any]:
        """The cache instances this service can describe: the process-wide
        defaults it actually uses plus any explicit per-service overrides."""
        tiers = dict(peek_default_caches())
        for name, cache in (
            ("experiment", self._cache),
            ("activity", self._activity_cache),
            ("plan", self._plan_cache),
        ):
            if cache is not None and cache is not DEFAULT_CACHE:
                tiers[name] = cache
        return tiers

    async def close(self) -> None:
        """Stop accepting work, fail pending futures, release the executor."""
        if self._closed:
            return
        self._closed = True
        if self._batcher is not None and not self._batcher.done():
            self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
        for key, future in list(self._inflight.items()):
            if not future.done():
                future.set_exception(ServingError("service closed"))
            self._inflight.pop(key, None)
        self._queue.clear()
        self._executor.shutdown(wait=True)

    # ------------------------------------------------------------ internals

    async def _drain(self) -> None:
        """Batcher: collect for one window, compute, publish, repeat."""
        while self._queue:
            if self.config.batch_window_s > 0:
                await asyncio.sleep(self.config.batch_window_s)
            batch = self._queue[: self.config.max_batch]
            del self._queue[: len(batch)]
            if not batch:
                continue
            await self._run_batch(batch)

    async def _run_batch(self, batch: "list[tuple[str, ExperimentConfig]]") -> None:
        self.stats.batches += 1
        try:
            results = await self._compute_in_executor(
                [config for _, config in batch]
            )
        except Exception as exc:  # noqa: BLE001 - isolated per config below
            await self._isolate_batch_failure(batch, exc)
            return
        for (key, _), result in zip(batch, results):
            self._publish(key, result)

    async def _compute_in_executor(
        self, configs: "list[ExperimentConfig]"
    ) -> "list[ExperimentResult]":
        """One ``run_configs`` call on the compute thread; accumulates its
        :class:`RunStats` into the service totals only when it succeeds."""
        run_stats = RunStats()
        loop = asyncio.get_running_loop()
        job = partial(self._compute_batch, configs, run_stats)
        results = await loop.run_in_executor(self._executor, job)
        self._accumulate(run_stats)
        return results

    def _compute_batch(
        self, configs: "list[ExperimentConfig]", run_stats: RunStats
    ) -> "list[ExperimentResult]":
        """Compute-thread entry point for one batch.

        The ``serve.batch`` fault point fires here — on the compute thread,
        where a real batch failure would surface — so injected batch faults
        exercise exactly the isolation path production failures take.
        """
        fault_point("serve.batch")
        return self._compute(
            configs,
            workers=self.config.workers,
            cache=self._cache,
            activity_cache=self._activity_cache,
            plan_cache=self._plan_cache,
            stats=run_stats,
            backend=self.config.backend,
        )

    async def _isolate_batch_failure(
        self, batch: "list[tuple[str, ExperimentConfig]]", exc: Exception
    ) -> None:
        """Contain a failed batch to the configurations that actually fail.

        ``run_configs`` raises as a unit, so one poisoned configuration
        would otherwise reject every future drained into its batch.  Each
        configuration is re-run individually: survivors get their result,
        and only the configurations that fail *alone* get an exception.  A
        single-config batch needs no re-run — its failure is already its
        own.
        """
        if len(batch) == 1:
            self.stats.errors += 1
            self._fail(batch[0][0], exc)
            return
        for key, config in batch:
            self.stats.isolated_retries += 1
            try:
                results = await self._compute_in_executor([config])
            except Exception as single_exc:  # noqa: BLE001 - this config's own failure
                self.stats.errors += 1
                self._fail(key, single_exc)
            else:
                self._publish(key, results[0])

    def _publish(self, key: str, result: ExperimentResult) -> None:
        future = self._inflight.pop(key, None)
        if future is not None and not future.done():
            future.set_result(result)

    def _fail(self, key: str, exc: Exception) -> None:
        future = self._inflight.pop(key, None)
        if future is not None and not future.done():
            future.set_exception(exc)

    def _accumulate(self, run_stats: RunStats) -> None:
        total = self.stats.run
        total.total += run_stats.total
        total.unique += run_stats.unique
        total.cache_hits += run_stats.cache_hits
        total.executed += run_stats.executed
        total.duration_s += run_stats.duration_s
        total.backend = run_stats.backend
        total.pool_rebuilds += run_stats.pool_rebuilds
        total.chunks_resubmitted += run_stats.chunks_resubmitted
        if run_stats.degraded_backend:
            total.degraded_backend = run_stats.degraded_backend
            self._degraded_backend = run_stats.degraded_backend
