"""Experiment configuration."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.activity.sampler import SamplingConfig
from repro.dtypes.registry import get_dtype
from repro.errors import ExperimentError
from repro.gpu.specs import get_gpu_spec
from repro.patterns.library import PATTERN_FAMILIES
from repro.telemetry.sampler import TelemetryConfig

__all__ = ["ExperimentConfig", "PAPER_MATRIX_SIZE", "PAPER_SEEDS", "PAPER_ITERATIONS"]

#: Matrix dimension used for the paper's main experiments.
PAPER_MATRIX_SIZE = 2048
#: Number of seeds the paper averages over.
PAPER_SEEDS = 10
#: Kernel iterations per run (the paper uses 20k for FP16-T, 10k otherwise).
PAPER_ITERATIONS = {"fp16_t": 20_000, "default": 10_000}


@dataclass(frozen=True)
class ExperimentConfig:
    """One measurement configuration (a single point of a sweep)."""

    # workload
    pattern_family: str = "gaussian"
    pattern_params: Mapping[str, Any] = field(default_factory=dict)
    dtype: str = "fp16_t"
    matrix_size: int = 512
    transpose_b: bool = True

    # device
    gpu: str = "a100"
    instance_id: int = 0

    # measurement procedure
    seeds: int = 3
    base_seed: int = 2024
    iterations: int = 2_000
    warmup_trim_s: float = 0.5
    include_process_variation: bool = True

    # estimator / telemetry knobs
    sampling: SamplingConfig = field(default_factory=SamplingConfig)
    telemetry: TelemetryConfig = field(default_factory=TelemetryConfig)

    # bookkeeping
    label: str = ""

    def __post_init__(self) -> None:
        if self.pattern_family not in PATTERN_FAMILIES:
            raise ExperimentError(
                f"unknown pattern family {self.pattern_family!r}; "
                f"known: {sorted(PATTERN_FAMILIES)}"
            )
        get_dtype(self.dtype)          # raises on unknown dtype
        get_gpu_spec(self.gpu)         # raises on unknown GPU
        if self.matrix_size < 8:
            raise ExperimentError(f"matrix_size must be >= 8, got {self.matrix_size}")
        if self.seeds < 1:
            raise ExperimentError(f"seeds must be >= 1, got {self.seeds}")
        if self.iterations < 1:
            raise ExperimentError(f"iterations must be >= 1, got {self.iterations}")
        if self.warmup_trim_s < 0:
            raise ExperimentError(f"warmup_trim_s must be >= 0, got {self.warmup_trim_s}")
        # Freeze the mapping so the config is hashable-ish and safe to share.
        object.__setattr__(self, "pattern_params", dict(self.pattern_params))

    # ------------------------------------------------------------- builders

    def with_overrides(self, **overrides: Any) -> "ExperimentConfig":
        """Return a copy of this config with selected fields replaced."""
        return replace(self, **overrides)

    def with_pattern(self, family: str, **params: Any) -> "ExperimentConfig":
        """Return a copy with a different pattern family / parameters."""
        return replace(self, pattern_family=family, pattern_params=dict(params))

    @classmethod
    def paper_defaults(cls, dtype: str = "fp16_t", **overrides: Any) -> "ExperimentConfig":
        """Configuration matching the paper's methodology (2048², 10 seeds)."""
        dtype_name = get_dtype(dtype).name
        iterations = PAPER_ITERATIONS.get(dtype_name, PAPER_ITERATIONS["default"])
        config = cls(
            dtype=dtype_name,
            matrix_size=PAPER_MATRIX_SIZE,
            seeds=PAPER_SEEDS,
            iterations=iterations,
        )
        return config.with_overrides(**overrides) if overrides else config

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentConfig":
        """Build a configuration from a JSON-shaped mapping.

        Accepts the dataclass's own field names, with ``sampling`` and
        ``telemetry`` optionally given as nested mappings (their dataclass
        fields, e.g. ``{"sampling": {"output_samples": 64}}``).  This is the
        inverse of :meth:`describe` for the fields :meth:`describe` carries,
        and the wire format of the serving layer (:mod:`repro.serve`).
        Unknown or ill-typed fields raise :class:`ExperimentError` — a
        misspelled knob must not silently measure something else.
        """
        from dataclasses import fields as dataclass_fields

        data = dict(payload)
        known = {spec.name for spec in dataclass_fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ExperimentError(
                f"unknown config field(s): {', '.join(unknown)}; "
                f"known: {sorted(known)}"
            )
        for field_name, factory in (("sampling", SamplingConfig), ("telemetry", TelemetryConfig)):
            value = data.get(field_name)
            if isinstance(value, Mapping):
                try:
                    data[field_name] = factory(**dict(value))
                except TypeError as exc:
                    raise ExperimentError(f"invalid {field_name} config: {exc}") from exc
        try:
            return cls(**data)
        except TypeError as exc:
            raise ExperimentError(f"invalid config: {exc}") from exc

    # ------------------------------------------------------------ utilities

    def describe(self) -> dict[str, Any]:
        """JSON-serializable description."""
        return {
            "pattern_family": self.pattern_family,
            "pattern_params": dict(self.pattern_params),
            "dtype": self.dtype,
            "matrix_size": self.matrix_size,
            "transpose_b": self.transpose_b,
            "gpu": self.gpu,
            "instance_id": self.instance_id,
            "seeds": self.seeds,
            "base_seed": self.base_seed,
            "iterations": self.iterations,
            "warmup_trim_s": self.warmup_trim_s,
            "label": self.label or self.default_label(),
        }

    def describe_plan(self) -> dict[str, Any]:
        """The subset of :meth:`describe` that determines the *plan*.

        A plan (:class:`~repro.experiments.plan.ExperimentPlan`) bundles
        the pattern, device, launch geometry and telemetry monitor — state
        that is independent of the seed loop and the measurement procedure.
        ``seeds``, ``base_seed``, ``iterations``, ``warmup_trim_s``,
        ``sampling``, ``include_process_variation`` and the label are
        deliberately absent, which is what lets cross-seed and
        cross-procedure sweep points share one cached plan.  (Telemetry
        knobs are folded in by :func:`~repro.cache.fingerprint.
        plan_fingerprint`, which also resolves the dtype/GPU specs.)
        """
        return {
            "pattern_family": self.pattern_family,
            "pattern_params": dict(self.pattern_params),
            "dtype": self.dtype,
            "matrix_size": self.matrix_size,
            "transpose_b": self.transpose_b,
            "gpu": self.gpu,
            "instance_id": self.instance_id,
        }

    def default_label(self) -> str:
        params = ",".join(f"{k}={v}" for k, v in sorted(self.pattern_params.items()))
        suffix = f"({params})" if params else ""
        return f"{self.pattern_family}{suffix}/{self.dtype}/{self.gpu}/{self.matrix_size}"
