"""Parameter sweeps over experiment configurations.

Sweeps are the unit of work behind every figure panel: one configuration,
one parameter varied over a list of values.  Runs are embarrassingly
parallel across sweep points; ``workers > 1`` distributes them over one of
the :mod:`repro.parallel` backends (each point re-creates its device and
models locally, so no state is shared).  ``backend="auto"`` — the default —
resolves to a thread pool: the estimation kernels release the GIL inside
NumPy, so threads scale without pickling configs out or results back.
``backend="processes"`` keeps a process pool available for GIL-holding
workloads; its results return through shared memory
(:mod:`repro.parallel.shm`) rather than the executor's pickle pipe.
Results are bit-for-bit identical across backends at any worker count.

The runner is cache- and duplicate-aware: every configuration is
fingerprinted (:mod:`repro.cache.fingerprint`), physically identical points
are computed once, previously computed points are served from the
content-addressed result cache, and only the remainder is submitted to the
backend — in chunks for the process pool, to amortize start-up costs.
Beneath the result cache sits the per-seed activity tier: points that
differ only in GPU model, clocks or measurement procedure reuse one
switching-activity estimate per seed, so a warm cross-device sweep skips
estimation entirely.  Beneath *that* sits the plan tier
(:mod:`repro.experiments.plan`): points sharing workload geometry, device
and telemetry knobs reuse one pattern/launch/monitor plan, so cold
cross-seed sweeps plan once per distinct configuration instead of once per
point — in every backend, including each persistent process-pool worker,
whose plan cache is seeded at worker start-up and stays warm across
chunks.  A ``progress`` hook and a :class:`RunStats`
out-parameter expose what happened; a failing point cancels the rest of
the backend's queue and is re-raised with its config label attached.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass
from functools import partial
from typing import Any, Callable, Iterable, Sequence

from repro.cache.fingerprint import experiment_fingerprint
from repro.cache.store import DEFAULT_CACHE, resolve_activity_cache, resolve_cache
from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import ExperimentRunner
from repro.experiments.plan import (
    PlanCache,
    resolve_plan_cache,
    set_default_plan_cache,
)
from repro.experiments.results import ExperimentResult, SweepResult
from repro.parallel import chunk_budget_bytes, get_executor, resolve_backend
from repro.parallel.calibrate import seed_probed_budget

__all__ = ["RunStats", "run_sweep", "run_configs", "sweep_configs"]

#: Signature of the optional progress hook: ``(done, total, label)`` where
#: ``done``/``total`` count the *distinct* configurations the runner resolves
#: (duplicates complete together with their representative when deduplication
#: is on) and ``label`` names the configuration that just completed or was
#: served from the cache.
ProgressHook = Callable[[int, int, str], None]


@dataclass
class RunStats:
    """What a :func:`run_configs` invocation actually did."""

    #: sweep points requested
    total: int = 0
    #: configurations resolved independently: distinct fingerprints when
    #: deduplication is on, every requested point otherwise
    unique: int = 0
    #: distinct configurations served from the result cache
    cache_hits: int = 0
    #: distinct configurations actually computed
    executed: int = 0
    #: wall-clock time of the whole call, seconds
    duration_s: float = 0.0
    #: execution backend the computed points actually ran on (``"serial"``
    #: when everything was inline or served from the cache)
    backend: str = "serial"
    #: times the process pool was rebuilt after breakage (dead worker)
    pool_rebuilds: int = 0
    #: chunks resubmitted (or rerun on the fallback) after pool breakage
    chunks_resubmitted: int = 0
    #: non-empty when the executor abandoned its native pool mid-run (e.g.
    #: ``"threads"`` after the rebuilt process pool broke again)
    degraded_backend: str = ""

    def as_dict(self) -> dict[str, Any]:
        return {
            "total": self.total,
            "unique": self.unique,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "duration_s": self.duration_s,
            "backend": self.backend,
            "pool_rebuilds": self.pool_rebuilds,
            "chunks_resubmitted": self.chunks_resubmitted,
            "degraded_backend": self.degraded_backend,
        }


def sweep_configs(
    base: ExperimentConfig,
    parameter: str,
    values: Sequence[Any],
    target: str = "pattern",
) -> list[ExperimentConfig]:
    """Build the list of configs for a sweep.

    ``target`` selects where the parameter lives: ``"pattern"`` puts it into
    the pattern parameters (e.g. ``std``, ``sparsity``, ``fraction``);
    ``"config"`` replaces a field of the experiment config itself (e.g.
    ``dtype``, ``matrix_size``, ``gpu``).
    """
    if target not in ("pattern", "config"):
        raise ExperimentError(f"target must be 'pattern' or 'config', got {target!r}")
    if not values:
        raise ExperimentError("a sweep needs at least one value")
    configs = []
    for value in values:
        if target == "pattern":
            params = dict(base.pattern_params)
            params[parameter] = value
            config = base.with_overrides(pattern_params=params)
        else:
            config = base.with_overrides(**{parameter: value})
        config = config.with_overrides(label=f"{base.label or base.pattern_family}:{parameter}={value}")
        configs.append(config)
    return configs


def _run_uncached(
    config: ExperimentConfig,
    activity_cache: "object | None" = DEFAULT_CACHE,
    plan_cache: "object | None" = DEFAULT_CACHE,
) -> ExperimentResult:
    """Pool worker entry point: always compute the experiment (workers have
    no shared result cache), but do consult the activity and plan tiers —
    each worker process uses its own defaults (the activity tier shares
    warm per-seed estimates through ``REPRO_CACHE_DIR`` when one is
    configured; the plan tier is seeded by :func:`_process_worker_init` and
    stays warm for the life of the worker, so a persistent worker plans
    each distinct configuration at most once per sweep)."""
    return ExperimentRunner(
        config, activity_cache=activity_cache, plan_cache=plan_cache
    ).run()


def _process_worker_init(budget: int, plan_entries: int) -> None:
    """Process-pool worker initializer: runs once per worker at start-up.

    Pool workers are *persistent* — one OS process serves every chunk the
    pool hands it for the whole sweep — so per-worker state seeded here is
    warm across chunks, not just within one.  Two things are seeded:

    * the parent's already-resolved batch chunk budget (see
      :func:`repro.parallel.calibrate.seed_probed_budget`), so workers
      never race to re-probe the cache hierarchy they are measuring; and
    * the worker's default plan cache, mirroring the parent's plan-cache
      decision (``plan_entries < 1`` forwards an explicit disable, since
      a parent-side ``plan_cache=None`` must mean "really rebuild per
      point" in every worker too).  In-memory plan instances cannot cross
      the process boundary, so each worker keeps its own cache; with it, a
      worker builds each distinct plan once and reuses it for every later
      point and chunk it is handed.
    """
    seed_probed_budget(budget)
    if plan_entries < 1:
        set_default_plan_cache(None)
    else:
        set_default_plan_cache(PlanCache(max_entries=plan_entries))


def _stamp_label(result: ExperimentResult, config: ExperimentConfig) -> ExperimentResult:
    """Stamp ``config``'s label onto ``result`` (labels are not fingerprinted)."""
    result.config["label"] = config.describe()["label"]
    return result


def _chunk_group(
    pending: "Sequence[tuple[str, list[int]]]", position: int, span: int
) -> "list[tuple[str, list[int]]]":
    """The pending entries submitted in the same chunk as ``position``.

    Chunks tile the pending list from the front in steps of ``span``, so the
    chunk containing ``position`` starts at the previous multiple of ``span``
    and ends at most ``span`` entries later — clamped to the list, because
    the last chunk may be partial.  Blame for a chunk failure must cover
    exactly that chunk: naming points past its boundary would accuse sweep
    points that were never even submitted together with the failing one.
    """
    start = position - (position % span)
    return list(pending[start : min(start + span, len(pending))])


def run_configs(
    configs: Iterable[ExperimentConfig],
    workers: int = 1,
    cache: "object | None" = DEFAULT_CACHE,
    activity_cache: "object | None" = DEFAULT_CACHE,
    plan_cache: "object | None" = DEFAULT_CACHE,
    dedupe: bool = True,
    chunksize: int | None = None,
    progress: ProgressHook | None = None,
    stats: RunStats | None = None,
    backend: str = "auto",
) -> list[ExperimentResult]:
    """Run a list of configurations, optionally across an execution backend.

    Parameters
    ----------
    configs:
        The configurations to run; results come back in the same order.
    workers:
        Backend pool width.  ``1`` runs inline.
    cache:
        An explicit :class:`~repro.cache.store.ExperimentCache`, ``None`` to
        disable caching, or the default sentinel for the process-wide cache.
    activity_cache:
        Per-seed activity tier (:class:`~repro.cache.store.ActivityCache`,
        ``None``, or the default sentinel).  Points that only differ in GPU
        model, clocks or measurement procedure share one activity estimate
        per seed through it.  ``None`` disables the tier everywhere,
        including pool workers.  An explicit cache *instance* is honoured by
        the in-process backends (``serial`` and ``threads``); process-pool
        workers cannot usefully share an in-memory instance, so they use
        their own process default (which still shares warm entries via
        ``REPRO_CACHE_DIR``).
    plan_cache:
        Plan tier (:class:`~repro.experiments.plan.PlanCache`, ``None``, or
        the default sentinel): sweep points sharing workload geometry,
        device and telemetry knobs reuse one pattern/launch/monitor plan
        instead of rebuilding it per point.  Purely a build-time saving —
        results are bit-for-bit identical with the tier on or off.  Same
        instance semantics as ``activity_cache``: explicit instances are
        honoured in-process, while each (persistent) process-pool worker
        keeps its own cache warm across chunks, seeded at worker start-up;
        ``None`` forwards the disable into workers.
    dedupe:
        Compute physically identical configurations (same fingerprint,
        labels aside) only once and fan the result back out.
    chunksize:
        Process-backend submission chunk size; defaults to roughly four
        chunks per worker (and never more than the number of pending
        points), which amortizes worker start-up without starving the pool.
        The in-process backends submit per point and ignore it.
    progress:
        Optional ``(done, total, label)`` hook invoked as distinct
        configurations complete (see :data:`ProgressHook`).
    stats:
        Optional :class:`RunStats` instance filled in place with what the
        call did (useful alongside the returned results).
    backend:
        ``"serial"``, ``"threads"``, ``"processes"``, or ``"auto"`` (see
        :func:`repro.parallel.resolve_backend`).  ``auto`` picks ``threads``
        for ``workers > 1`` — the estimation kernels release the GIL inside
        NumPy — and collapses to ``serial`` otherwise; set
        ``REPRO_PARALLEL_BACKEND`` to steer ``auto`` globally.  Results are
        bit-for-bit identical whatever the choice.
    """
    config_list = list(configs)
    if workers < 1:
        raise ExperimentError(f"workers must be >= 1, got {workers}")
    if chunksize is not None and chunksize < 1:
        raise ExperimentError(
            f"chunksize must be >= 1 (or None for the automatic choice), got {chunksize}"
        )
    backend_name = resolve_backend(backend, workers=workers)
    stats = stats if stats is not None else RunStats()
    # Reset every counter: a reused RunStats instance must describe this
    # call only, not accumulate across calls.
    stats.total = len(config_list)
    stats.unique = 0
    stats.cache_hits = 0
    stats.executed = 0
    stats.duration_s = 0.0
    stats.backend = "serial"
    stats.pool_rebuilds = 0
    stats.chunks_resubmitted = 0
    stats.degraded_backend = ""
    started = time.perf_counter()

    resolved = resolve_cache(cache)
    resolved_activity = (
        resolve_activity_cache(activity_cache) if activity_cache is not None else None
    )
    resolved_plan = resolve_plan_cache(plan_cache)
    results: list[ExperimentResult | None] = [None] * len(config_list)

    # Group indices by fingerprint (order-preserving).  Without deduplication
    # every index forms its own group, but fingerprints are still the cache
    # keys for the groups' representatives.
    groups: dict[str, list[int]] = {}
    if dedupe or resolved is not None:
        keys = [experiment_fingerprint(config) for config in config_list]
    else:
        keys = [str(index) for index in range(len(config_list))]
    if dedupe:
        for index, key in enumerate(keys):
            groups.setdefault(key, []).append(index)
    else:
        for index, key in enumerate(keys):
            groups.setdefault(f"{key}#{index}", []).append(index)
    stats.unique = len(groups)

    done = 0
    total = len(groups)

    def _complete(key: str, indices: list[int], result: ExperimentResult) -> None:
        nonlocal done
        for position, index in enumerate(indices):
            copied = result if position == 0 else copy.deepcopy(result)
            results[index] = _stamp_label(copied, config_list[index])
        done += 1
        if progress is not None:
            progress(done, total, config_list[indices[0]].describe()["label"])

    pending: list[tuple[str, list[int]]] = []
    for key, indices in groups.items():
        cached = resolved.get(key.split("#")[0]) if resolved is not None else None
        if cached is not None:
            stats.cache_hits += 1
            _complete(key, indices, cached)
        else:
            pending.append((key, indices))

    def _consume(computed: Iterable[ExperimentResult], span: int = 1) -> None:
        """Fold computed results into ``results``; on failure, re-raise with
        the failing config's label attached.  Results arrive in submission
        order, but a process-pool chunk fails as a unit (the worker loses
        the results of the chunk's earlier points too), so with ``span > 1``
        the raising point is only known to lie somewhere in its chunk —
        name the chunk's points, and only those (see :func:`_chunk_group`)."""
        iterator = iter(computed)
        for position, (key, indices) in enumerate(pending):
            try:
                result = next(iterator)
            except StopIteration:  # pragma: no cover - executor invariant
                raise ExperimentError(
                    "executor returned fewer results than submitted configs"
                ) from None
            except Exception as exc:
                group = _chunk_group(pending, position, span)
                labels = [
                    config_list[group_indices[0]].describe()["label"]
                    for _, group_indices in group
                ]
                if len(labels) == 1:
                    message = f"sweep point {labels[0]!r} failed: {exc}"
                else:
                    message = (
                        f"a sweep point in chunk {labels!r} failed: {exc}"
                    )
                raise ExperimentError(message) from exc
            if resolved is not None:
                resolved.put(key.split("#")[0], result)
            stats.executed += 1
            _complete(key, indices, result)

    if pending:
        pending_configs = [config_list[indices[0]] for _, indices in pending]
        if workers == 1 or len(pending_configs) == 1:
            # A pool cannot help a single point, and workers=1 means "run
            # inline" whatever the backend — both collapse to serial.
            backend_name = "serial"
        stats.backend = backend_name
        if backend_name == "processes":
            if chunksize is None:
                chunksize = max(1, len(pending_configs) // (workers * 4))
            chunksize = min(chunksize, len(pending_configs))
            # An explicit activity_cache=None is an instruction to really
            # recompute, so forward the disable into the workers; explicit
            # cache *instances* cannot cross the process boundary usefully
            # (state would not come back), so workers otherwise keep their
            # own process default.
            worker = (
                partial(_run_uncached, activity_cache=None)
                if activity_cache is None
                else _run_uncached
            )
            # Resolve the engine's calibrated chunk budget once in the
            # parent and seed every pool worker with it at start-up, so
            # workers never race to probe the same cache hierarchy they are
            # measuring — whatever the start method (spawn workers inherit
            # neither the parent's memo nor, without REPRO_CACHE_DIR, a
            # persisted calibration file).  The same initializer seeds each
            # persistent worker's plan cache (or its disable), which then
            # stays warm across every chunk the worker serves.
            plan_entries = 0 if resolved_plan is None else resolved_plan.max_entries
            executor = get_executor(
                "processes",
                workers,
                chunksize=chunksize,
                initializer=_process_worker_init,
                initargs=(chunk_budget_bytes(), plan_entries),
            )
        else:
            # serial and threads run in-process: explicit activity/plan
            # cache instances are honoured directly (threads share the
            # parent's memory, so warm entries flow both ways).
            worker = partial(
                _run_uncached,
                activity_cache=resolved_activity,
                plan_cache=resolved_plan,
            )
            executor = get_executor(backend_name, workers)
        try:
            _consume(executor.map(worker, pending_configs), span=executor.chunk_span)
        except BaseException:
            # Don't let queued sweep points keep computing (or leak worker
            # processes / shared-memory segments) after one point failed.
            executor.shutdown(cancel=True)
            raise
        # Surface what the executor had to absorb (process-pool rebuilds,
        # chunk resubmissions, a threads fallback) in this run's stats —
        # results are identical either way, but the events must be loud.
        resilience = getattr(executor, "resilience", None)
        if resilience is not None:
            stats.pool_rebuilds = resilience.pool_rebuilds
            stats.chunks_resubmitted = resilience.chunks_resubmitted
            stats.degraded_backend = resilience.fallback_backend
        executor.shutdown()

    stats.duration_s = time.perf_counter() - started
    return [result for result in results if result is not None]


def run_sweep(
    base: ExperimentConfig,
    parameter: str,
    values: Sequence[Any],
    target: str = "pattern",
    label: str = "",
    workers: int = 1,
    cache: "object | None" = DEFAULT_CACHE,
    activity_cache: "object | None" = DEFAULT_CACHE,
    plan_cache: "object | None" = DEFAULT_CACHE,
    progress: ProgressHook | None = None,
    stats: RunStats | None = None,
    backend: str = "auto",
) -> SweepResult:
    """Run a one-parameter sweep and collect it into a :class:`SweepResult`."""
    configs = sweep_configs(base, parameter, values, target=target)
    results = run_configs(
        configs,
        workers=workers,
        cache=cache,
        activity_cache=activity_cache,
        plan_cache=plan_cache,
        progress=progress,
        stats=stats,
        backend=backend,
    )
    return SweepResult(
        parameter=parameter,
        values=list(values),
        results=results,
        label=label or f"{base.pattern_family}/{base.dtype}/{base.gpu}: {parameter} sweep",
    )
