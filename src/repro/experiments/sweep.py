"""Parameter sweeps over experiment configurations.

Sweeps are the unit of work behind every figure panel: one configuration,
one parameter varied over a list of values.  Runs are embarrassingly
parallel across sweep points; ``workers > 1`` distributes them over a
process pool (each point re-creates its device and models locally, so no
state is shared).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Any, Iterable, Sequence

from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import run_experiment
from repro.experiments.results import ExperimentResult, SweepResult

__all__ = ["run_sweep", "run_configs", "sweep_configs"]


def sweep_configs(
    base: ExperimentConfig,
    parameter: str,
    values: Sequence[Any],
    target: str = "pattern",
) -> list[ExperimentConfig]:
    """Build the list of configs for a sweep.

    ``target`` selects where the parameter lives: ``"pattern"`` puts it into
    the pattern parameters (e.g. ``std``, ``sparsity``, ``fraction``);
    ``"config"`` replaces a field of the experiment config itself (e.g.
    ``dtype``, ``matrix_size``, ``gpu``).
    """
    if target not in ("pattern", "config"):
        raise ExperimentError(f"target must be 'pattern' or 'config', got {target!r}")
    if not values:
        raise ExperimentError("a sweep needs at least one value")
    configs = []
    for value in values:
        if target == "pattern":
            params = dict(base.pattern_params)
            params[parameter] = value
            config = base.with_overrides(pattern_params=params)
        else:
            config = base.with_overrides(**{parameter: value})
        config = config.with_overrides(label=f"{base.label or base.pattern_family}:{parameter}={value}")
        configs.append(config)
    return configs


def run_configs(
    configs: Iterable[ExperimentConfig], workers: int = 1
) -> list[ExperimentResult]:
    """Run a list of configurations, optionally across a process pool."""
    config_list = list(configs)
    if workers < 1:
        raise ExperimentError(f"workers must be >= 1, got {workers}")
    if workers == 1 or len(config_list) <= 1:
        return [run_experiment(config) for config in config_list]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(run_experiment, config_list))


def run_sweep(
    base: ExperimentConfig,
    parameter: str,
    values: Sequence[Any],
    target: str = "pattern",
    label: str = "",
    workers: int = 1,
) -> SweepResult:
    """Run a one-parameter sweep and collect it into a :class:`SweepResult`."""
    configs = sweep_configs(base, parameter, values, target=target)
    results = run_configs(configs, workers=workers)
    return SweepResult(
        parameter=parameter,
        values=list(values),
        results=results,
        label=label or f"{base.pattern_family}/{base.dtype}/{base.gpu}: {parameter} sweep",
    )
