"""Parameter sweeps over experiment configurations.

Sweeps are the unit of work behind every figure panel: one configuration,
one parameter varied over a list of values.  Runs are embarrassingly
parallel across sweep points; ``workers > 1`` distributes them over a
process pool (each point re-creates its device and models locally, so no
state is shared).

The runner is cache- and duplicate-aware: every configuration is
fingerprinted (:mod:`repro.cache.fingerprint`), physically identical points
are computed once, previously computed points are served from the
content-addressed result cache, and only the remainder is submitted to the
pool — in chunks, to amortize process start-up and pickling.  A ``progress``
hook and a :class:`RunStats` out-parameter expose what happened.
"""

from __future__ import annotations

import copy
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.cache.fingerprint import experiment_fingerprint
from repro.cache.store import DEFAULT_CACHE, resolve_cache
from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import ExperimentRunner
from repro.experiments.results import ExperimentResult, SweepResult

__all__ = ["RunStats", "run_sweep", "run_configs", "sweep_configs"]

#: Signature of the optional progress hook: ``(done, total, label)`` where
#: ``done``/``total`` count the *distinct* configurations the runner resolves
#: (duplicates complete together with their representative when deduplication
#: is on) and ``label`` names the configuration that just completed or was
#: served from the cache.
ProgressHook = Callable[[int, int, str], None]


@dataclass
class RunStats:
    """What a :func:`run_configs` invocation actually did."""

    #: sweep points requested
    total: int = 0
    #: configurations resolved independently: distinct fingerprints when
    #: deduplication is on, every requested point otherwise
    unique: int = 0
    #: distinct configurations served from the result cache
    cache_hits: int = 0
    #: distinct configurations actually computed
    executed: int = 0
    #: wall-clock time of the whole call, seconds
    duration_s: float = 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "total": self.total,
            "unique": self.unique,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "duration_s": self.duration_s,
        }


def sweep_configs(
    base: ExperimentConfig,
    parameter: str,
    values: Sequence[Any],
    target: str = "pattern",
) -> list[ExperimentConfig]:
    """Build the list of configs for a sweep.

    ``target`` selects where the parameter lives: ``"pattern"`` puts it into
    the pattern parameters (e.g. ``std``, ``sparsity``, ``fraction``);
    ``"config"`` replaces a field of the experiment config itself (e.g.
    ``dtype``, ``matrix_size``, ``gpu``).
    """
    if target not in ("pattern", "config"):
        raise ExperimentError(f"target must be 'pattern' or 'config', got {target!r}")
    if not values:
        raise ExperimentError("a sweep needs at least one value")
    configs = []
    for value in values:
        if target == "pattern":
            params = dict(base.pattern_params)
            params[parameter] = value
            config = base.with_overrides(pattern_params=params)
        else:
            config = base.with_overrides(**{parameter: value})
        config = config.with_overrides(label=f"{base.label or base.pattern_family}:{parameter}={value}")
        configs.append(config)
    return configs


def _run_uncached(config: ExperimentConfig) -> ExperimentResult:
    """Pool worker entry point: always compute (workers have no shared cache)."""
    return ExperimentRunner(config).run()


def _stamp_label(result: ExperimentResult, config: ExperimentConfig) -> ExperimentResult:
    """Stamp ``config``'s label onto ``result`` (labels are not fingerprinted)."""
    result.config["label"] = config.describe()["label"]
    return result


def run_configs(
    configs: Iterable[ExperimentConfig],
    workers: int = 1,
    cache: "object | None" = DEFAULT_CACHE,
    dedupe: bool = True,
    chunksize: int | None = None,
    progress: ProgressHook | None = None,
    stats: RunStats | None = None,
) -> list[ExperimentResult]:
    """Run a list of configurations, optionally across a process pool.

    Parameters
    ----------
    configs:
        The configurations to run; results come back in the same order.
    workers:
        Process-pool width.  ``1`` runs inline.
    cache:
        An explicit :class:`~repro.cache.store.ExperimentCache`, ``None`` to
        disable caching, or the default sentinel for the process-wide cache.
    dedupe:
        Compute physically identical configurations (same fingerprint,
        labels aside) only once and fan the result back out.
    chunksize:
        Pool submission chunk size; defaults to roughly four chunks per
        worker, which amortizes pickling without starving the pool.
    progress:
        Optional ``(done, total, label)`` hook invoked as distinct
        configurations complete (see :data:`ProgressHook`).
    stats:
        Optional :class:`RunStats` instance filled in place with what the
        call did (useful alongside the returned results).
    """
    config_list = list(configs)
    if workers < 1:
        raise ExperimentError(f"workers must be >= 1, got {workers}")
    if chunksize is not None and chunksize < 1:
        raise ExperimentError(f"chunksize must be >= 1, got {chunksize}")
    stats = stats if stats is not None else RunStats()
    # Reset every counter: a reused RunStats instance must describe this
    # call only, not accumulate across calls.
    stats.total = len(config_list)
    stats.unique = 0
    stats.cache_hits = 0
    stats.executed = 0
    stats.duration_s = 0.0
    started = time.perf_counter()

    resolved = resolve_cache(cache)
    results: list[ExperimentResult | None] = [None] * len(config_list)

    # Group indices by fingerprint (order-preserving).  Without deduplication
    # every index forms its own group, but fingerprints are still the cache
    # keys for the groups' representatives.
    groups: dict[str, list[int]] = {}
    if dedupe or resolved is not None:
        keys = [experiment_fingerprint(config) for config in config_list]
    else:
        keys = [str(index) for index in range(len(config_list))]
    if dedupe:
        for index, key in enumerate(keys):
            groups.setdefault(key, []).append(index)
    else:
        for index, key in enumerate(keys):
            groups.setdefault(f"{key}#{index}", []).append(index)
    stats.unique = len(groups)

    done = 0
    total = len(groups)

    def _complete(key: str, indices: list[int], result: ExperimentResult) -> None:
        nonlocal done
        for position, index in enumerate(indices):
            copied = result if position == 0 else copy.deepcopy(result)
            results[index] = _stamp_label(copied, config_list[index])
        done += 1
        if progress is not None:
            progress(done, total, config_list[indices[0]].describe()["label"])

    pending: list[tuple[str, list[int]]] = []
    for key, indices in groups.items():
        cached = resolved.get(key.split("#")[0]) if resolved is not None else None
        if cached is not None:
            stats.cache_hits += 1
            _complete(key, indices, cached)
        else:
            pending.append((key, indices))

    if pending:
        pending_configs = [config_list[indices[0]] for _, indices in pending]
        if workers == 1 or len(pending_configs) == 1:
            computed: Iterable[ExperimentResult] = map(_run_uncached, pending_configs)
        else:
            if chunksize is None:
                chunksize = max(1, len(pending_configs) // (workers * 4))
            pool = ProcessPoolExecutor(max_workers=workers)
            computed = pool.map(_run_uncached, pending_configs, chunksize=chunksize)
        try:
            for (key, indices), result in zip(pending, computed):
                if resolved is not None:
                    resolved.put(key.split("#")[0], result)
                stats.executed += 1
                _complete(key, indices, result)
        finally:
            if workers > 1 and len(pending_configs) > 1:
                pool.shutdown()

    stats.duration_s = time.perf_counter() - started
    return [result for result in results if result is not None]


def run_sweep(
    base: ExperimentConfig,
    parameter: str,
    values: Sequence[Any],
    target: str = "pattern",
    label: str = "",
    workers: int = 1,
    cache: "object | None" = DEFAULT_CACHE,
    progress: ProgressHook | None = None,
    stats: RunStats | None = None,
) -> SweepResult:
    """Run a one-parameter sweep and collect it into a :class:`SweepResult`."""
    configs = sweep_configs(base, parameter, values, target=target)
    results = run_configs(
        configs, workers=workers, cache=cache, progress=progress, stats=stats
    )
    return SweepResult(
        parameter=parameter,
        values=list(values),
        results=results,
        label=label or f"{base.pattern_family}/{base.dtype}/{base.gpu}: {parameter} sweep",
    )
