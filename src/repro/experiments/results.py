"""Result containers for experiments, sweeps and figures."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.activity.report import ActivityReport
from repro.errors import ExperimentError
from repro.util.stats import SummaryStats, summarize
from repro.util.tables import format_series_chart, format_table

__all__ = ["SeedMeasurement", "ExperimentResult", "SweepResult", "FigureResult"]


@dataclass(frozen=True)
class SeedMeasurement:
    """Everything measured for one seed of one configuration."""

    seed: int
    power_watts: float
    unconstrained_power_watts: float
    iteration_time_s: float
    iteration_energy_j: float
    activity_factor: float
    throttled: bool
    clock_scale: float
    activity: ActivityReport

    def as_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "power_watts": self.power_watts,
            "unconstrained_power_watts": self.unconstrained_power_watts,
            "iteration_time_s": self.iteration_time_s,
            "iteration_energy_j": self.iteration_energy_j,
            "activity_factor": self.activity_factor,
            "throttled": self.throttled,
            "clock_scale": self.clock_scale,
            "activity": self.activity.as_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SeedMeasurement":
        """Rebuild a measurement from :meth:`as_dict` output."""
        return cls(
            seed=int(data["seed"]),
            power_watts=float(data["power_watts"]),
            unconstrained_power_watts=float(data["unconstrained_power_watts"]),
            iteration_time_s=float(data["iteration_time_s"]),
            iteration_energy_j=float(data["iteration_energy_j"]),
            activity_factor=float(data["activity_factor"]),
            throttled=bool(data["throttled"]),
            clock_scale=float(data["clock_scale"]),
            activity=ActivityReport.from_dict(data["activity"]),
        )


@dataclass
class ExperimentResult:
    """Aggregate of one configuration over all its seeds."""

    config: Mapping[str, Any]
    measurements: list[SeedMeasurement]

    def __post_init__(self) -> None:
        if not self.measurements:
            raise ExperimentError("an experiment result needs at least one measurement")

    # ------------------------------------------------------------ aggregates

    @property
    def label(self) -> str:
        return str(self.config.get("label", ""))

    def power_summary(self) -> SummaryStats:
        return summarize(m.power_watts for m in self.measurements)

    @property
    def mean_power_watts(self) -> float:
        return self.power_summary().mean

    @property
    def power_std_watts(self) -> float:
        return self.power_summary().std

    @property
    def mean_iteration_time_s(self) -> float:
        return summarize(m.iteration_time_s for m in self.measurements).mean

    @property
    def mean_iteration_energy_j(self) -> float:
        return summarize(m.iteration_energy_j for m in self.measurements).mean

    @property
    def mean_activity_factor(self) -> float:
        return summarize(m.activity_factor for m in self.measurements).mean

    @property
    def mean_bit_alignment(self) -> float:
        return summarize(m.activity.bit_alignment for m in self.measurements).mean

    @property
    def mean_hamming_fraction(self) -> float:
        return summarize(m.activity.mean_hamming_fraction for m in self.measurements).mean

    @property
    def any_throttled(self) -> bool:
        return any(m.throttled for m in self.measurements)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentResult":
        """Rebuild a result from :meth:`as_dict` output (the aggregate fields
        of the serialized form are derived and therefore ignored)."""
        return cls(
            config=dict(data["config"]),
            measurements=[SeedMeasurement.from_dict(m) for m in data["measurements"]],
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "config": dict(self.config),
            "measurements": [m.as_dict() for m in self.measurements],
            "mean_power_watts": self.mean_power_watts,
            "power_std_watts": self.power_std_watts,
            "mean_iteration_time_s": self.mean_iteration_time_s,
            "mean_iteration_energy_j": self.mean_iteration_energy_j,
            "mean_activity_factor": self.mean_activity_factor,
            "mean_bit_alignment": self.mean_bit_alignment,
            "mean_hamming_fraction": self.mean_hamming_fraction,
            "any_throttled": self.any_throttled,
        }


@dataclass
class SweepResult:
    """Results of one configuration swept over a single parameter."""

    parameter: str
    values: list[Any]
    results: list[ExperimentResult]
    label: str = ""

    def __post_init__(self) -> None:
        if len(self.values) != len(self.results):
            raise ExperimentError(
                f"sweep has {len(self.values)} values but {len(self.results)} results"
            )
        if not self.results:
            raise ExperimentError("a sweep needs at least one point")

    # ------------------------------------------------------------ accessors

    def powers(self) -> list[float]:
        return [r.mean_power_watts for r in self.results]

    def energies(self) -> list[float]:
        return [r.mean_iteration_energy_j for r in self.results]

    def runtimes(self) -> list[float]:
        return [r.mean_iteration_time_s for r in self.results]

    def activity_factors(self) -> list[float]:
        return [r.mean_activity_factor for r in self.results]

    def power_range_fraction(self) -> float:
        """Peak-to-trough power swing relative to the maximum power."""
        powers = self.powers()
        high, low = max(powers), min(powers)
        return (high - low) / high if high > 0 else 0.0

    def relative_powers(self) -> list[float]:
        """Power at each point relative to the first point of the sweep."""
        powers = self.powers()
        baseline = powers[0]
        if baseline == 0:
            raise ExperimentError("baseline power is zero; cannot normalize")
        return [p / baseline for p in powers]

    # ------------------------------------------------------------ rendering

    def to_rows(self) -> list[list[Any]]:
        rows = []
        for value, result in zip(self.values, self.results):
            rows.append(
                [
                    value,
                    result.mean_power_watts,
                    result.power_std_watts,
                    result.mean_iteration_time_s * 1e6,
                    result.mean_iteration_energy_j * 1e3,
                    result.mean_activity_factor,
                ]
            )
        return rows

    def render_table(self, precision: int = 2) -> str:
        headers = [self.parameter, "power_W", "std_W", "runtime_us", "energy_mJ", "activity"]
        return format_table(headers, self.to_rows(), precision=precision, title=self.label)

    def render_chart(self) -> str:
        try:
            xs = [float(v) for v in self.values]
        except (TypeError, ValueError):
            xs = list(range(len(self.values)))
        return format_series_chart(
            xs, {"power_W": self.powers()}, title=self.label or self.parameter
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "parameter": self.parameter,
            "values": list(self.values),
            "label": self.label,
            "results": [r.as_dict() for r in self.results],
        }


@dataclass
class FigureResult:
    """A reproduced paper figure: one or more labelled panels."""

    name: str
    description: str
    panels: dict[str, SweepResult] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def add_panel(self, key: str, sweep: SweepResult) -> None:
        if key in self.panels:
            raise ExperimentError(f"panel {key!r} already present in {self.name}")
        self.panels[key] = sweep

    def panel(self, key: str) -> SweepResult:
        try:
            return self.panels[key]
        except KeyError:
            raise ExperimentError(
                f"figure {self.name} has no panel {key!r}; available: {sorted(self.panels)}"
            ) from None

    def render(self, charts: bool = True) -> str:
        blocks = [f"=== {self.name}: {self.description} ==="]
        for key in self.panels:
            sweep = self.panels[key]
            blocks.append(f"--- panel {key} ---")
            blocks.append(sweep.render_table())
            if charts:
                blocks.append(sweep.render_chart())
        if self.notes:
            blocks.append("notes:")
            blocks.extend(f"  - {note}" for note in self.notes)
        return "\n".join(blocks)

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "panels": {key: sweep.as_dict() for key, sweep in self.panels.items()},
            "notes": list(self.notes),
        }

    def save_json(self, path: "str | Path") -> Path:
        """Write the figure result to a JSON file and return its path."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.as_dict(), indent=2))
        return target


def results_to_json(results: Iterable[ExperimentResult]) -> str:
    """Serialize a collection of experiment results to a JSON string."""
    return json.dumps([r.as_dict() for r in results], indent=2)
