"""Cacheable experiment plans: the per-configuration state a run reuses.

Running one :class:`~repro.experiments.config.ExperimentConfig` needs a
bundle of derived objects before any seed is touched: the GEMM problem
geometry, the input :class:`~repro.patterns.base.Pattern`, the simulated
:class:`~repro.gpu.device.Device`, the CUTLASS-style
:class:`~repro.kernels.launch.KernelLaunch` plan and the DCGM telemetry
monitor.  None of those depend on the seed loop — only on the workload
geometry, the device and the telemetry knobs — yet the harness historically
rebuilt all of them for every sweep point, even when consecutive points
differed only in ``base_seed``, seed count, iteration count or the
measurement procedure.

:class:`ExperimentPlan` packages that bundle behind a content-addressed
key (:func:`~repro.cache.fingerprint.plan_fingerprint`), and
:class:`PlanCache` is the in-memory LRU tier that lets every consumer —
:func:`repro.run_experiment`, the sweep runner, and each persistent
process-pool worker — build each distinct plan exactly once and share it
across points, chunks and repeated calls.

Why sharing is safe
-------------------

Every object inside a plan is *stateless after construction*:

* patterns take their RNG as a ``generate()`` argument and hold only
  immutable parameters;
* :class:`~repro.kernels.launch.KernelLaunch` and
  :class:`~repro.kernels.gemm.GemmProblem` are frozen dataclasses;
* the :class:`~repro.gpu.device.Device` and the telemetry monitor expose
  pure functions of their arguments (traces are seeded explicitly).

A cache hit therefore returns the *same* plan object to many runners (and
to many threads of the ``threads`` backend) without copying, and the
results are bit-for-bit identical to building a fresh plan per point.  The
plan cache is a pure performance tier: unlike the experiment and activity
tiers it can never serve a stale *result*, only a stale build — and builds
are invalidated by the code-version-aware fingerprint anyway.

Plans hold live objects, so this tier is memory-only (no disk backend);
``REPRO_PLAN_CACHE_MAX_ENTRIES`` bounds the default instance (``0``
disables it) and ``REPRO_NO_CACHE=1`` disables it along with the other
tiers.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.cache.fingerprint import canonical_json, plan_fingerprint
from repro.cache.store import DEFAULT_CACHE
from repro.dtypes.registry import get_dtype
from repro.errors import ExperimentError
from repro.gpu.device import Device
from repro.kernels.gemm import GemmProblem
from repro.kernels.launch import KernelLaunch, plan_launch
from repro.patterns.base import Pattern
from repro.patterns.library import build_pattern
from repro.telemetry.dcgm import DcgmMonitor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.config import ExperimentConfig

__all__ = [
    "ExperimentPlan",
    "PlanCache",
    "PlanCacheStats",
    "build_plan",
    "build_problem",
    "build_workload_pattern",
    "workload_pattern_key",
    "clear_workload_pattern_memo",
    "get_default_plan_cache",
    "set_default_plan_cache",
    "resolve_plan_cache",
    "peek_default_plan_cache",
]

#: LRU width of the process-wide default plan cache; overridden by the
#: ``REPRO_PLAN_CACHE_MAX_ENTRIES`` environment variable (``0`` disables
#: the default tier entirely).
DEFAULT_PLAN_CACHE_ENTRIES = 256


@dataclass(frozen=True)
class ExperimentPlan:
    """Everything a run derives from its config before touching a seed.

    Plans are immutable and their members are stateless (see the module
    docstring), so one plan may be shared by any number of concurrent
    runners.  ``fingerprint`` is the content-addressed key the plan was
    built under (:func:`~repro.cache.fingerprint.plan_fingerprint`).
    """

    fingerprint: str
    device: Device
    problem: GemmProblem
    pattern: Pattern
    launch: KernelLaunch
    monitor: DcgmMonitor

    def describe(self) -> dict[str, Any]:
        """JSON-serializable summary (for logging and diagnostics)."""
        return {
            "fingerprint": self.fingerprint,
            "device": self.device.describe(),
            "launch": self.launch.describe(),
            "pattern": type(self.pattern).__name__,
        }


@dataclass
class PlanCacheStats:
    """Counters describing how a :class:`PlanCache` has been used.

    ``builds`` counts actual plan constructions — the number the
    build-once guarantees are asserted against: after a cold sweep,
    ``builds`` equals the number of *distinct* plans, not sweep points.
    ``puts`` counts every insertion, whether from a build or from the
    public :meth:`PlanCache.put`.
    """

    hits: int = 0
    misses: int = 0
    builds: int = 0
    puts: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 with no lookups)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "builds": self.builds,
            "puts": self.puts,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class PlanCache:
    """Bounded, thread-safe, in-memory LRU of :class:`ExperimentPlan`s.

    Unlike the JSON-backed experiment/activity tiers this cache hands out
    the *stored instance itself* — plans are immutable, so defensive
    copying would only burn the time the cache exists to save — and it has
    no disk backend, because plans hold live objects (devices, monitors)
    whose serialization would cost more than rebuilding them.

    :meth:`get_or_build` holds the cache lock *across the build*, so when
    many sweep threads request the same cold plan at once exactly one of
    them constructs it and the rest wait for the entry.  Plan construction
    is a few microseconds of dataclass assembly, so serializing builds is
    cheaper than ever building twice.
    """

    def __init__(self, max_entries: int = DEFAULT_PLAN_CACHE_ENTRIES) -> None:
        if max_entries < 1:
            raise ExperimentError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.stats = PlanCacheStats()
        self._entries: "OrderedDict[str, ExperimentPlan]" = OrderedDict()
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ API

    def get(self, key: str) -> "ExperimentPlan | None":
        """Return the cached plan for ``key``, or ``None``."""
        with self._lock:
            plan = self._entries.get(key)
            if plan is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return plan

    def put(self, key: str, plan: ExperimentPlan) -> None:
        """Store ``plan`` under ``key`` (no copy; plans are immutable)."""
        if not isinstance(plan, ExperimentPlan):
            raise ExperimentError(
                f"PlanCache stores ExperimentPlan, got {type(plan).__name__}"
            )
        with self._lock:
            self._insert(key, plan)
            self.stats.puts += 1

    def get_or_build(
        self, key: str, builder: "Callable[[], ExperimentPlan]"
    ) -> ExperimentPlan:
        """Return the plan for ``key``, building (and storing) it on a miss.

        The build runs under the cache lock so each distinct plan is built
        exactly once per cache, even when concurrent sweep threads race on
        a cold key.
        """
        with self._lock:
            plan = self._entries.get(key)
            if plan is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return plan
            self.stats.misses += 1
            plan = builder()
            self.stats.builds += 1
            self._insert(key, plan)
            self.stats.puts += 1
            return plan

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def describe_memory(self) -> dict[str, Any]:
        """Occupancy and usage counters, shaped like the JSON tiers'
        :meth:`~repro.cache.store.JsonDiskCache.describe_memory` so the
        ``python -m repro.cache stats`` live report can include this tier."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "disk_dir": None,
                **self.stats.as_dict(),
            }

    # ------------------------------------------------------------- dunders

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    # ------------------------------------------------------------ internals

    def _insert(self, key: str, plan: ExperimentPlan) -> None:
        self._entries[key] = plan
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1


# ------------------------------------------------------------------ builders


def build_problem(config: "ExperimentConfig") -> GemmProblem:
    """The GEMM problem geometry of a configuration."""
    return GemmProblem.square(
        config.matrix_size, dtype=config.dtype, transpose_b=config.transpose_b
    )


def workload_pattern_key(config: "ExperimentConfig") -> str:
    """Canonical key of the config subset that determines the pattern.

    Patterns depend on the workload alone — family, parameters and
    dtype — not on the device, matrix size or measurement procedure, so
    this key is deliberately much coarser than the plan fingerprint.
    """
    return canonical_json(
        {
            "family": config.pattern_family,
            "params": dict(config.pattern_params),
            "dtype": get_dtype(config.dtype).name,
        }
    )


#: Workload-keyed pattern memo: plans that differ only in device (or any
#: other non-workload field) share one pattern object instead of each
#: rebuilding an identical one.  Sharing is safe because patterns are
#: stateless after construction (see the module docstring); the memo is a
#: small LRU because distinct workloads per process are few.
_PATTERN_MEMO_MAX_ENTRIES = 256
_pattern_memo: "OrderedDict[str, Pattern]" = OrderedDict()
_pattern_memo_lock = threading.Lock()


def clear_workload_pattern_memo() -> None:
    """Drop every shared pattern (subsequent builds construct fresh ones)."""
    with _pattern_memo_lock:
        _pattern_memo.clear()


def build_workload_pattern(config: "ExperimentConfig", shared: bool = True) -> Pattern:
    """The input pattern of a configuration (stateless; RNG comes later).

    With ``shared`` (the default), identical workloads — same family,
    parameters and dtype, any device — get the *same* pattern object via a
    process-wide memo; ``shared=False`` always constructs a private
    instance.
    """
    if not shared:
        spec = get_dtype(config.dtype)
        return build_pattern(config.pattern_family, spec, **dict(config.pattern_params))
    key = workload_pattern_key(config)
    with _pattern_memo_lock:
        pattern = _pattern_memo.get(key)
        if pattern is not None:
            _pattern_memo.move_to_end(key)
            return pattern
        spec = get_dtype(config.dtype)
        pattern = build_pattern(config.pattern_family, spec, **dict(config.pattern_params))
        _pattern_memo[key] = pattern
        while len(_pattern_memo) > _PATTERN_MEMO_MAX_ENTRIES:
            _pattern_memo.popitem(last=False)
        return pattern


def _construct_plan(config: "ExperimentConfig", fingerprint: str) -> ExperimentPlan:
    device = Device.create(config.gpu, instance_id=config.instance_id)
    problem = build_problem(config)
    return ExperimentPlan(
        fingerprint=fingerprint,
        device=device,
        problem=problem,
        pattern=build_workload_pattern(config),
        launch=plan_launch(problem, device),
        monitor=DcgmMonitor(device, config=config.telemetry),
    )


def build_plan(
    config: "ExperimentConfig", cache: "PlanCache | None | object" = DEFAULT_CACHE
) -> ExperimentPlan:
    """Build (or fetch) the :class:`ExperimentPlan` for a configuration.

    ``cache`` accepts an explicit :class:`PlanCache`, ``None`` to always
    construct a fresh plan, or the ``DEFAULT_CACHE`` sentinel for the
    process-wide tier.  The returned plan is identical either way — the
    cache only skips the rebuild.
    """
    resolved = resolve_plan_cache(cache)
    key = plan_fingerprint(config)
    if resolved is None:
        return _construct_plan(config, key)
    return resolved.get_or_build(key, lambda: _construct_plan(config, key))


# --------------------------------------------------------- default instance

_default_plan_cache: "PlanCache | None" = None
_default_plan_initialized = False


def get_default_plan_cache() -> "PlanCache | None":
    """The lazily created process-wide plan cache (``None`` if disabled).

    Disabled by ``REPRO_NO_CACHE=1`` (with the other tiers) or by
    ``REPRO_PLAN_CACHE_MAX_ENTRIES=0``; the latter also sizes the LRU.
    """
    global _default_plan_cache, _default_plan_initialized
    if not _default_plan_initialized:
        _default_plan_initialized = True
        from repro.cache.store import _caching_disabled, _env_int

        entries = _env_int("REPRO_PLAN_CACHE_MAX_ENTRIES", DEFAULT_PLAN_CACHE_ENTRIES)
        if _caching_disabled() or entries < 1:
            _default_plan_cache = None
        else:
            _default_plan_cache = PlanCache(max_entries=entries)
    return _default_plan_cache


def set_default_plan_cache(cache: "PlanCache | None") -> None:
    """Replace the process-wide plan cache (``None`` disables it)."""
    global _default_plan_cache, _default_plan_initialized
    _default_plan_cache = cache
    _default_plan_initialized = True


def resolve_plan_cache(cache: "PlanCache | None | object") -> "PlanCache | None":
    """Resolve a ``plan_cache`` argument (sentinel → process default)."""
    if cache is DEFAULT_CACHE:
        return get_default_plan_cache()
    if cache is None or isinstance(cache, PlanCache):
        return cache
    raise ExperimentError(
        f"plan_cache must be a PlanCache, None or DEFAULT_CACHE, got {type(cache).__name__}"
    )


def peek_default_plan_cache() -> "dict[str, PlanCache]":
    """The default plan cache if this process has *already* created one.

    Mirrors :func:`repro.cache.store.peek_default_caches`: never
    instantiates anything, so the cache CLI's live-stats report cannot
    fabricate an empty tier just to describe it.
    """
    if _default_plan_initialized and _default_plan_cache is not None:
        return {"plan": _default_plan_cache}
    return {}
