"""Measurement harness: experiment configuration, execution, sweeps, figures.

The harness mirrors the paper's methodology: for each configuration it runs
(simulates) a loop of identical GEMM iterations per seed, samples power at
100 ms, trims the first 500 ms of samples, and averages across seeds, with
A and B drawn from the same pattern but different seeds.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import ExperimentRunner, run_experiment
from repro.experiments.plan import ExperimentPlan, PlanCache, build_plan
from repro.experiments.results import ExperimentResult, FigureResult, SeedMeasurement, SweepResult
from repro.experiments.sweep import RunStats, run_configs, run_sweep

__all__ = [
    "ExperimentConfig",
    "ExperimentRunner",
    "ExperimentPlan",
    "PlanCache",
    "build_plan",
    "run_experiment",
    "ExperimentResult",
    "SeedMeasurement",
    "SweepResult",
    "FigureResult",
    "RunStats",
    "run_sweep",
    "run_configs",
]
