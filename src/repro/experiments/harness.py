"""Experiment runner.

Reproduces the paper's measurement loop for one configuration:

1. For each seed, generate A and B from the configured pattern (same
   pattern, different seeds; B stored transposed unless disabled).
2. Plan the CUTLASS-style kernel launch and estimate switching activity.
3. Run the power model (with TDP throttling) and the runtime model.
4. Simulate the DCGM 100 ms power trace for the full iteration loop, trim
   the first 500 ms of samples, and average the rest.
5. Aggregate across seeds into an :class:`ExperimentResult`.
"""

from __future__ import annotations

import math

from repro.activity.engine import estimate_activity
from repro.dtypes.registry import get_dtype
from repro.experiments.config import ExperimentConfig
from repro.experiments.results import ExperimentResult, SeedMeasurement
from repro.gpu.device import Device
from repro.kernels.gemm import GemmOperands, GemmProblem
from repro.kernels.launch import plan_launch
from repro.patterns.library import build_pattern
from repro.power.energy import EnergyEstimate
from repro.power.model import PowerModel
from repro.runtime.model import RuntimeModel
from repro.telemetry.dcgm import DcgmMonitor
from repro.util.rng import derive_rng, derive_seed

__all__ = ["ExperimentRunner", "run_experiment"]

#: Minimum simulated measurement window.  The paper sizes its iteration
#: counts so each run spans many 100 ms samples; short configurations are
#: padded up to this duration (by running more iterations) so warmup
#: trimming and trace averaging stay meaningful.
MIN_MEASUREMENT_DURATION_S = 3.0


class ExperimentRunner:
    """Runs one :class:`~repro.experiments.config.ExperimentConfig`."""

    def __init__(self, config: ExperimentConfig) -> None:
        self.config = config
        self.device = Device.create(config.gpu, instance_id=config.instance_id)
        self.power_model = PowerModel(self.device)
        self.runtime_model = RuntimeModel()

    # ------------------------------------------------------------------ API

    def run(self) -> ExperimentResult:
        measurements = [self._run_seed(index) for index in range(self.config.seeds)]
        description = self.config.describe()
        description["device"] = self.device.describe()
        return ExperimentResult(config=description, measurements=measurements)

    # ------------------------------------------------------------- internals

    def _build_problem(self) -> GemmProblem:
        size = self.config.matrix_size
        return GemmProblem.square(
            size, dtype=self.config.dtype, transpose_b=self.config.transpose_b
        )

    def _generate_operands(self, problem: GemmProblem, seed_index: int) -> GemmOperands:
        spec = get_dtype(self.config.dtype)
        pattern = build_pattern(
            self.config.pattern_family, spec, **dict(self.config.pattern_params)
        )
        rng_a = derive_rng(self.config.base_seed, "A", seed_index)
        rng_b = derive_rng(self.config.base_seed, "B", seed_index)
        a = pattern.generate(problem.a_shape, spec, rng_a)
        b_stored = pattern.generate(problem.b_storage_shape, spec, rng_b)
        return GemmOperands(problem=problem, a=a, b_stored=b_stored)

    def _run_seed(self, seed_index: int) -> SeedMeasurement:
        config = self.config
        problem = self._build_problem()
        operands = self._generate_operands(problem, seed_index)
        launch = plan_launch(problem, self.device)

        activity = estimate_activity(operands, sampling=config.sampling, seed=seed_index)
        power = self.power_model.estimate(
            launch,
            activity,
            include_process_variation=config.include_process_variation,
        )
        runtime = self.runtime_model.estimate(launch, clock_scale=power.clock_scale)

        # Size the simulated measurement window like the paper sizes its
        # iteration counts: long enough for stable 100 ms sampling.
        iterations = max(
            config.iterations,
            int(math.ceil(MIN_MEASUREMENT_DURATION_S / runtime.iteration_time_s)),
        )
        duration_s = iterations * runtime.iteration_time_s

        monitor = DcgmMonitor(self.device, config=config.telemetry)
        trace_seed = derive_seed(config.base_seed, "trace", seed_index)
        trace = monitor.power_trace(power.watts, duration_s, seed=trace_seed)
        trimmed = trace.trim_warmup(config.warmup_trim_s)
        measured_power = trimmed.mean_power_watts()

        energy = EnergyEstimate(
            power_watts=measured_power,
            iteration_time_s=runtime.iteration_time_s,
            iterations=iterations,
        )

        return SeedMeasurement(
            seed=seed_index,
            power_watts=measured_power,
            unconstrained_power_watts=power.unconstrained_watts,
            iteration_time_s=runtime.iteration_time_s,
            iteration_energy_j=energy.iteration_energy_j,
            activity_factor=power.activity_factor,
            throttled=power.throttled,
            clock_scale=power.clock_scale,
            activity=activity,
        )


def run_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Convenience wrapper: run a configuration and return its result."""
    return ExperimentRunner(config).run()
