"""Experiment runner.

Reproduces the paper's measurement loop for one configuration:

1. Resolve the configuration's :class:`~repro.experiments.plan.
   ExperimentPlan` — device, pattern, CUTLASS-style launch plan and
   telemetry monitor — from the plan cache, building it only when no
   physically identical configuration has planned before.
2. For each seed, generate A and B from the plan's pattern (same pattern,
   different seeds; B stored transposed unless disabled) and estimate
   switching activity — all seeds go through the batched activity engine
   in a single call.
3. Run the power model (with TDP throttling) and the runtime model.
4. Simulate the DCGM 100 ms power trace for the full iteration loop, trim
   the first 500 ms of samples, and average the rest.
5. Aggregate across seeds into an :class:`ExperimentResult`.

``run_experiment`` additionally consults the content-addressed result cache
(:mod:`repro.cache`) so repeated runs of the same configuration are served
without recomputation.
"""

from __future__ import annotations

import math
from functools import partial

from repro.activity.engine import (
    ActivityEngine,
    estimate_activity,
    recommended_chunk,
)
from repro.activity.report import ActivityReport
from repro.cache.fingerprint import activity_fingerprint, experiment_fingerprint
from repro.cache.store import DEFAULT_CACHE, resolve_cache
from repro.dtypes.registry import get_dtype
from repro.experiments.config import ExperimentConfig
from repro.experiments.plan import (
    ExperimentPlan,
    build_plan,
    build_problem,
    build_workload_pattern,
)
from repro.experiments.results import ExperimentResult, SeedMeasurement
from repro.kernels.gemm import GemmOperands, GemmProblem
from repro.kernels.launch import KernelLaunch, plan_launch
from repro.patterns.base import Pattern
from repro.power.energy import EnergyEstimate
from repro.power.model import PowerModel
from repro.runtime.model import RuntimeModel
from repro.telemetry.dcgm import DcgmMonitor
from repro.util.rng import derive_rng, derive_seed

__all__ = ["ExperimentRunner", "run_experiment"]

#: Minimum simulated measurement window.  The paper sizes its iteration
#: counts so each run spans many 100 ms samples; short configurations are
#: padded up to this duration (by running more iterations) so warmup
#: trimming and trace averaging stay meaningful.
MIN_MEASUREMENT_DURATION_S = 3.0


class ExperimentRunner:
    """Runs one :class:`~repro.experiments.config.ExperimentConfig`.

    Each runner resolves its configuration's
    :class:`~repro.experiments.plan.ExperimentPlan` (device, pattern,
    launch plan, monitor) from the plan cache — so physically identical
    configurations plan once per process, not once per runner — and builds
    its own power/runtime models and activity engine on top.  Runners
    share nothing *mutable* with each other except the thread-safe caches
    (plans are immutable and stateless, see :mod:`repro.experiments.plan`),
    so the sweep runner may drive many of them concurrently from its
    ``threads`` backend.  The expensive part of a run is
    switching-activity estimation, whose kernels release the GIL inside
    NumPy (see :mod:`repro.util.bits`), which is what makes those threads
    scale.
    """

    def __init__(
        self,
        config: ExperimentConfig,
        activity_cache: "object | None" = DEFAULT_CACHE,
        plan_cache: "object | None" = DEFAULT_CACHE,
    ) -> None:
        self.config = config
        self.plan: ExperimentPlan = build_plan(config, cache=plan_cache)
        self.device = self.plan.device
        self.power_model = PowerModel(self.device)
        self.runtime_model = RuntimeModel()
        self.activity_engine = ActivityEngine(
            sampling=config.sampling, cache=activity_cache
        )

    # ------------------------------------------------------------------ API

    def run(self) -> ExperimentResult:
        """Run all seeds of the configuration through the batched pipeline.

        Problem, pattern, launch plan and telemetry monitor come from the
        runner's (possibly cache-shared) :class:`ExperimentPlan` and are
        shared by every seed; switching activity for the whole seed batch
        goes through the :class:`ActivityEngine` in one call.  Each seed is
        keyed by :func:`~repro.cache.fingerprint.activity_fingerprint` and
        operands are passed as factories, so seeds already in the activity
        cache (e.g. the same workload measured on another GPU) skip operand
        generation and estimation entirely.  The per-seed measurements are
        bit-for-bit identical to running each seed independently without
        any cache.
        """
        config = self.config
        problem = self.plan.problem
        pattern = self.plan.pattern
        launch = self.plan.launch
        monitor = self.plan.monitor

        # The engine materializes operand factories chunk by chunk (matching
        # its own stacking granularity) so peak memory is one chunk of seeds,
        # not the whole batch — at paper scale a seed's operands are ~70 MB.
        # The chunk is sized from the machine-calibrated working-set budget
        # (repro.parallel.calibrate), not a fixed constant.
        per_invocation = problem.n * problem.k + problem.m * problem.k
        chunk = recommended_chunk(per_invocation)
        factories = [
            partial(self._generate_operands, problem, index, pattern=pattern)
            for index in range(config.seeds)
        ]
        keys = None
        if self.activity_engine.cache is not None:
            keys = [
                activity_fingerprint(config, seed=index)
                for index in range(config.seeds)
            ]
        reports: list[ActivityReport] = self.activity_engine.estimate_batch(
            factories, seeds=range(config.seeds), keys=keys, chunk=chunk
        )
        measurements = [
            self._measure_seed(index, launch, report, monitor)
            for index, report in enumerate(reports)
        ]
        description = config.describe()
        description["device"] = self.device.describe()
        return ExperimentResult(config=description, measurements=measurements)

    # ------------------------------------------------------------- internals

    def _generate_operands(
        self, problem: GemmProblem, seed_index: int, pattern: Pattern | None = None
    ) -> GemmOperands:
        spec = get_dtype(self.config.dtype)
        if pattern is None:
            pattern = build_workload_pattern(self.config)
        rng_a = derive_rng(self.config.base_seed, "A", seed_index)
        rng_b = derive_rng(self.config.base_seed, "B", seed_index)
        a = pattern.generate(problem.a_shape, spec, rng_a)
        b_stored = pattern.generate(problem.b_storage_shape, spec, rng_b)
        return GemmOperands(problem=problem, a=a, b_stored=b_stored)

    def _run_seed(self, seed_index: int) -> SeedMeasurement:
        """Run a single seed end to end (the unbatched reference path).

        Deliberately bypasses the plan: problem, launch and monitor are
        rebuilt from scratch so this path stays an independent reference
        for the plan-sharing equivalence tests.
        """
        config = self.config
        problem = build_problem(config)
        operands = self._generate_operands(problem, seed_index)
        launch = plan_launch(problem, self.device)
        activity = estimate_activity(operands, sampling=config.sampling, seed=seed_index)
        monitor = DcgmMonitor(self.device, config=config.telemetry)
        return self._measure_seed(seed_index, launch, activity, monitor)

    def _measure_seed(
        self,
        seed_index: int,
        launch: KernelLaunch,
        activity: ActivityReport,
        monitor: DcgmMonitor,
    ) -> SeedMeasurement:
        config = self.config
        power = self.power_model.estimate(
            launch,
            activity,
            include_process_variation=config.include_process_variation,
        )
        runtime = self.runtime_model.estimate(launch, clock_scale=power.clock_scale)

        # Size the simulated measurement window like the paper sizes its
        # iteration counts: long enough for stable 100 ms sampling.
        iterations = max(
            config.iterations,
            int(math.ceil(MIN_MEASUREMENT_DURATION_S / runtime.iteration_time_s)),
        )
        duration_s = iterations * runtime.iteration_time_s

        trace_seed = derive_seed(config.base_seed, "trace", seed_index)
        trace = monitor.power_trace(power.watts, duration_s, seed=trace_seed)
        trimmed = trace.trim_warmup(config.warmup_trim_s)
        measured_power = trimmed.mean_power_watts()

        energy = EnergyEstimate(
            power_watts=measured_power,
            iteration_time_s=runtime.iteration_time_s,
            iterations=iterations,
        )

        return SeedMeasurement(
            seed=seed_index,
            power_watts=measured_power,
            unconstrained_power_watts=power.unconstrained_watts,
            iteration_time_s=runtime.iteration_time_s,
            iteration_energy_j=energy.iteration_energy_j,
            activity_factor=power.activity_factor,
            throttled=power.throttled,
            clock_scale=power.clock_scale,
            activity=activity,
        )


def run_experiment(
    config: ExperimentConfig,
    cache: "object | None" = DEFAULT_CACHE,
    activity_cache: "object | None" = DEFAULT_CACHE,
    plan_cache: "object | None" = DEFAULT_CACHE,
) -> ExperimentResult:
    """Run a configuration, consulting the content-addressed result caches.

    ``cache`` accepts an explicit :class:`~repro.cache.store.ExperimentCache`,
    ``None`` to force recomputation, or the default sentinel to use the
    process-wide cache (see :mod:`repro.cache`).  Cache hits return a copy
    whose label is re-stamped from ``config``, since labels are excluded
    from the fingerprint.  ``activity_cache`` (same convention, with
    :class:`~repro.cache.store.ActivityCache`) feeds the per-seed activity
    tier beneath the experiment cache: on an experiment-cache miss, seeds
    whose workload was already estimated — for any device or measurement
    procedure — are reused instead of recomputed.  ``plan_cache`` (same
    convention, with :class:`~repro.experiments.plan.PlanCache`) skips
    rebuilding the pattern/launch/monitor plan when a physically identical
    configuration already planned; it never changes results, only build
    time.
    """
    resolved = resolve_cache(cache)
    if resolved is None:
        return ExperimentRunner(
            config, activity_cache=activity_cache, plan_cache=plan_cache
        ).run()
    key = experiment_fingerprint(config)
    hit = resolved.get(key)
    if hit is not None:
        hit.config["label"] = config.describe()["label"]
        return hit
    result = ExperimentRunner(
        config, activity_cache=activity_cache, plan_cache=plan_cache
    ).run()
    resolved.put(key, result)
    return result
