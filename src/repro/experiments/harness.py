"""Experiment runner: orchestration over the pure estimation core.

The measurement pipeline itself — plan resolution, per-seed operand
generation, batched activity estimation, power/runtime modeling and the
simulated DCGM trace — lives in :mod:`repro.core` and is side-effect-free.
This module owns the *orchestration* concerns of a one-shot run:

* :class:`ExperimentRunner` wraps one
  :class:`~repro.core.EstimationPipeline` per configuration (kept as a
  class so sweep workers and callers can hold per-config state), and
* :func:`run_experiment` consults the content-addressed result cache
  (:mod:`repro.cache`) around the pipeline, so repeated runs of the same
  configuration are served without recomputation.

The sweep runner (:mod:`repro.experiments.sweep`) and the serving layer
(:mod:`repro.serve`) layer batching, deduplication and request coalescing
over the same core, which is what keeps their results bit-for-bit
identical to a direct call here.
"""

from __future__ import annotations

import warnings
from typing import Any

from repro.activity.report import ActivityReport
from repro.cache.fingerprint import experiment_fingerprint
from repro.cache.store import DEFAULT_CACHE, resolve_cache
from repro.core.pipeline import EstimationPipeline
from repro.experiments.config import ExperimentConfig
from repro.experiments.plan import ExperimentPlan
from repro.experiments.results import ExperimentResult, SeedMeasurement
from repro.kernels.gemm import GemmOperands, GemmProblem
from repro.kernels.launch import KernelLaunch
from repro.patterns.base import Pattern
from repro.telemetry.dcgm import DcgmMonitor

__all__ = ["ExperimentRunner", "run_experiment"]

#: Names that moved to :mod:`repro.core` in the core/orchestration split;
#: module ``__getattr__`` below keeps the old imports working (with a
#: :class:`DeprecationWarning`) for one release.
_MOVED_TO_CORE = {
    "MIN_MEASUREMENT_DURATION_S": "MIN_MEASUREMENT_DURATION_S",
}


def __getattr__(name: str) -> Any:
    if name in _MOVED_TO_CORE:
        warnings.warn(
            f"repro.experiments.harness.{name} moved to "
            f"repro.core.{_MOVED_TO_CORE[name]}; the old location will be "
            "removed in a future release",
            DeprecationWarning,
            stacklevel=2,
        )
        import repro.core as core

        return getattr(core, _MOVED_TO_CORE[name])
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class ExperimentRunner:
    """Runs one :class:`~repro.experiments.config.ExperimentConfig`.

    A thin orchestration wrapper around the pure
    :class:`~repro.core.EstimationPipeline`: the pipeline computes, the
    runner is the stable per-config handle the sweep machinery (and older
    callers) hold on to.  The pipeline's plan/model attributes are
    mirrored here so existing introspection keeps working.
    """

    def __init__(
        self,
        config: ExperimentConfig,
        activity_cache: "object | None" = DEFAULT_CACHE,
        plan_cache: "object | None" = DEFAULT_CACHE,
    ) -> None:
        self.pipeline = EstimationPipeline(
            config, activity_cache=activity_cache, plan_cache=plan_cache
        )
        self.config = config
        self.plan: ExperimentPlan = self.pipeline.plan
        self.device = self.pipeline.device
        self.power_model = self.pipeline.power_model
        self.runtime_model = self.pipeline.runtime_model
        self.activity_engine = self.pipeline.activity_engine

    # ------------------------------------------------------------------ API

    def run(self) -> ExperimentResult:
        """Run all seeds through the batched core pipeline."""
        return self.pipeline.run()

    # ------------------------------------------------------------- internals
    # Delegates kept for backward compatibility; the implementations live in
    # repro.core.pipeline.

    def _generate_operands(
        self, problem: GemmProblem, seed_index: int, pattern: Pattern | None = None
    ) -> GemmOperands:
        return self.pipeline.generate_operands(problem, seed_index, pattern=pattern)

    def _run_seed(self, seed_index: int) -> SeedMeasurement:
        return self.pipeline.run_seed_reference(seed_index)

    def _measure_seed(
        self,
        seed_index: int,
        launch: KernelLaunch,
        activity: ActivityReport,
        monitor: DcgmMonitor,
    ) -> SeedMeasurement:
        return self.pipeline.measure_seed(seed_index, launch, activity, monitor)


def run_experiment(
    config: ExperimentConfig,
    cache: "object | None" = DEFAULT_CACHE,
    activity_cache: "object | None" = DEFAULT_CACHE,
    plan_cache: "object | None" = DEFAULT_CACHE,
) -> ExperimentResult:
    """Run a configuration, consulting the content-addressed result caches.

    ``cache`` accepts an explicit :class:`~repro.cache.store.ExperimentCache`,
    ``None`` to force recomputation, or the default sentinel to use the
    process-wide cache (see :mod:`repro.cache`).  Cache hits return a copy
    whose label is re-stamped from ``config``, since labels are excluded
    from the fingerprint.  ``activity_cache`` (same convention, with
    :class:`~repro.cache.store.ActivityCache`) feeds the per-seed activity
    tier beneath the experiment cache: on an experiment-cache miss, seeds
    whose workload was already estimated — for any device or measurement
    procedure — are reused instead of recomputed.  ``plan_cache`` (same
    convention, with :class:`~repro.experiments.plan.PlanCache`) skips
    rebuilding the pattern/launch/monitor plan when a physically identical
    configuration already planned; it never changes results, only build
    time.
    """
    resolved = resolve_cache(cache)
    if resolved is None:
        return ExperimentRunner(
            config, activity_cache=activity_cache, plan_cache=plan_cache
        ).run()
    key = experiment_fingerprint(config)
    hit = resolved.get(key)
    if hit is not None:
        hit.config["label"] = config.describe()["label"]
        return hit
    result = ExperimentRunner(
        config, activity_cache=activity_cache, plan_cache=plan_cache
    ).run()
    resolved.put(key, result)
    return result
