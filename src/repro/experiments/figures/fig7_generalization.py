"""Figure 7: generalization across GPU generations.

The paper replicates four experiments (distribution mean, randomized MSBs,
sorted rows, general sparsity) with FP16 inputs on a V100, A100, H100 and
Quadro RTX 6000.  The RTX 6000 throttled at 2048x2048 and was therefore run
at 512x512; the same special case is applied here.

This figure is the flagship consumer of the per-seed activity cache
(:class:`~repro.cache.store.ActivityCache`): the bit-level activity of a
sweep point depends on the workload and seed but *not* on the GPU model, so
every GPU after the first reuses the same per-seed estimates.  The sweeps
run experiment-major (all GPUs of one experiment back to back) to keep
those shared entries hot in the cache's LRU.  One tier below, the plan
cache (:mod:`repro.experiments.plan`) deduplicates the per-point
device/pattern/launch/monitor builds: a cold 4-experiment × 4-GPU run
plans each distinct (workload, GPU) combination exactly once — per process
and per persistent pool worker — instead of once per sweep point.
"""

from __future__ import annotations

from repro.experiments.figures.common import (
    FigureSettings,
    base_config,
    mean_sweep_values,
    resolve_settings,
)
from repro.experiments.results import FigureResult
from repro.experiments.sweep import run_sweep
from repro.gpu.specs import PAPER_GPUS

__all__ = ["run_fig7_generalization", "FIG7_DTYPE", "FIG7_EXPERIMENTS"]

#: The generalization study uses FP16 (no tensor cores) throughout.
FIG7_DTYPE = "fp16"

#: (experiment key, pattern family, swept parameter) per panel row.
FIG7_EXPERIMENTS: tuple[tuple[str, str, str], ...] = (
    ("mean", "gaussian", "mean"),
    ("msb", "randomize_msb", "fraction"),
    ("sorted_rows", "sorted_rows", "fraction"),
    ("sparsity", "sparsity", "sparsity"),
)


def _sweep_values(settings: FigureSettings, experiment: str) -> list[float]:
    if experiment == "mean":
        return settings.subsample(mean_sweep_values(FIG7_DTYPE))
    if experiment == "msb":
        return settings.subsample([0.0, 0.25, 0.5, 0.75, 1.0])
    if experiment == "sorted_rows":
        return settings.subsample([0.0, 0.25, 0.5, 0.75, 1.0])
    return settings.subsample([0.0, 0.25, 0.5, 0.75, 1.0])


def _matrix_size_for(gpu: str, settings: FigureSettings) -> int:
    """The RTX 6000 runs a smaller matrix, as in the paper."""
    if gpu == "rtx6000":
        return min(settings.matrix_size, 512)
    return settings.matrix_size


def run_fig7_generalization(settings: FigureSettings | None = None) -> FigureResult:
    """Reproduce Figure 7 (four experiments across four GPU models)."""
    settings = resolve_settings(settings)
    figure = FigureResult(
        name="fig7",
        description="Input-dependent power trends across NVIDIA GPU generations (FP16)",
    )

    # Experiment-major order: consecutive sweeps differ only in the GPU, so
    # the activity tier serves every device after the first from cache (the
    # RTX 6000 re-estimates only when its smaller matrix changes the
    # workload).  Panel keys stay "<gpu>/<experiment>" either way.
    for experiment, family, parameter in FIG7_EXPERIMENTS:
        values = _sweep_values(settings, experiment)
        params: dict[str, object] = {}
        if family == "gaussian":
            params = {"mean": 0.0, "std": 1.0}
        for gpu in PAPER_GPUS:
            size = _matrix_size_for(gpu, settings)
            base = base_config(settings, FIG7_DTYPE, pattern_family=family, **params)
            base = base.with_overrides(gpu=gpu, matrix_size=size)
            sweep = run_sweep(
                base,
                parameter,
                values,
                label=f"Fig7 {experiment} on {gpu} ({size}^2, {FIG7_DTYPE})",
                workers=settings.workers,
                backend=settings.backend,
            )
            figure.add_panel(f"{gpu}/{experiment}", sweep)

    figure.notes.append(
        "V100, A100 and H100 should show consistent trends; the RTX 6000 "
        "(older design, GDDR6, lower TDP) shows less pronounced swings"
    )
    return figure


def power_swing_by_gpu(figure: FigureResult) -> dict[str, float]:
    """Largest relative power swing observed per GPU (for trend comparison)."""
    swings: dict[str, float] = {}
    for key, sweep in figure.panels.items():
        gpu = key.split("/", 1)[0]
        swings[gpu] = max(swings.get(gpu, 0.0), sweep.power_range_fraction())
    return swings
