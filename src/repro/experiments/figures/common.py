"""Shared settings and helpers for the per-figure experiment definitions."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.dtypes.registry import PAPER_DTYPES, get_dtype
from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.parallel.backends import BACKENDS

__all__ = ["FigureSettings", "base_config", "mean_sweep_values"]


@dataclass(frozen=True)
class FigureSettings:
    """Knobs controlling how faithfully (and how slowly) figures are reproduced.

    ``quick()`` keeps matrices small so the whole figure suite runs in
    seconds (used by tests and the default benchmark pass); ``paper()``
    matches the paper's 2048x2048 matrices and 10 seeds.
    """

    matrix_size: int = 256
    seeds: int = 2
    gpu: str = "a100"
    dtypes: tuple[str, ...] = PAPER_DTYPES
    #: number of points per swept parameter (sweeps are subsampled to this)
    sweep_points: int = 5
    workers: int = 1
    #: sweep execution backend (see :mod:`repro.parallel`): ``"auto"``
    #: resolves to released-GIL threads when ``workers > 1``
    backend: str = "auto"

    def __post_init__(self) -> None:
        if self.matrix_size < 8:
            raise ExperimentError(f"matrix_size must be >= 8, got {self.matrix_size}")
        if self.seeds < 1:
            raise ExperimentError(f"seeds must be >= 1, got {self.seeds}")
        if self.sweep_points < 2:
            raise ExperimentError(f"sweep_points must be >= 2, got {self.sweep_points}")
        if self.backend not in BACKENDS + ("auto",):
            raise ExperimentError(
                f"backend must be one of {BACKENDS + ('auto',)}, got {self.backend!r}"
            )
        for dtype in self.dtypes:
            get_dtype(dtype)

    @classmethod
    def quick(cls, **overrides: object) -> "FigureSettings":
        """Fast settings for tests and default benchmark runs."""
        return replace(cls(), **overrides)  # type: ignore[arg-type]

    @classmethod
    def standard(cls, **overrides: object) -> "FigureSettings":
        """Medium-fidelity settings (1024² matrices, 3 seeds)."""
        settings = cls(matrix_size=1024, seeds=3, sweep_points=6)
        return replace(settings, **overrides)  # type: ignore[arg-type]

    @classmethod
    def paper(cls, **overrides: object) -> "FigureSettings":
        """Paper-faithful settings (2048² matrices, 10 seeds)."""
        settings = cls(matrix_size=2048, seeds=10, sweep_points=8)
        return replace(settings, **overrides)  # type: ignore[arg-type]

    def subsample(self, values: list) -> list:
        """Subsample a sweep's value list down to ``sweep_points`` entries."""
        if len(values) <= self.sweep_points:
            return list(values)
        step = (len(values) - 1) / (self.sweep_points - 1)
        indices = sorted({int(round(i * step)) for i in range(self.sweep_points)})
        return [values[i] for i in indices]


def resolve_settings(settings: "FigureSettings | None") -> FigureSettings:
    """Normalize the optional settings argument every figure runner accepts."""
    return settings if settings is not None else FigureSettings.quick()


def base_config(
    settings: FigureSettings,
    dtype: str,
    pattern_family: str = "gaussian",
    **pattern_params: object,
) -> ExperimentConfig:
    """Build the baseline experiment config for a figure panel."""
    return ExperimentConfig(
        pattern_family=pattern_family,
        pattern_params=dict(pattern_params),
        dtype=dtype,
        gpu=settings.gpu,
        matrix_size=settings.matrix_size,
        seeds=settings.seeds,
    )


def mean_sweep_values(dtype: str) -> list[float]:
    """Mean values swept in the Figure 3b experiment, per datatype.

    The paper keeps values inside each datatype's representable range; INT8
    therefore sweeps a much smaller range than the floating point types.
    """
    if get_dtype(dtype).is_integer:
        return [0.0, 8.0, 24.0, 60.0, 100.0]
    return [0.0, 16.0, 256.0, 4096.0, 16384.0]


def std_sweep_values(dtype: str) -> list[float]:
    """Standard deviations swept in the Figure 3a experiment, per datatype.

    The paper chooses parameters so values "practically fall within each
    datatype's representation range": for INT8 that means standard deviations
    large enough that values do not collapse onto a handful of integers, yet
    small enough to avoid constant saturation at ±127.
    """
    if get_dtype(dtype).is_integer:
        return [4.0, 8.0, 16.0, 25.0, 48.0, 64.0]
    return [0.25, 1.0, 16.0, 210.0, 1024.0, 4096.0]
