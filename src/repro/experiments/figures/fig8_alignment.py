"""Figure 8: bit alignment and Hamming weight versus GPU power.

Every experiment configuration from the earlier sections contributes one
scatter point per datatype: its average power, the average bit alignment
between the multiplied A/B operand pairs, and the average Hamming weight of
its inputs.  The reproduction runs a representative subset of those
configurations and reports the per-datatype correlations.
"""

from __future__ import annotations

from repro.analysis.correlation import correlate_power_with_bit_metrics
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures.common import FigureSettings, base_config, resolve_settings
from repro.experiments.results import ExperimentResult, FigureResult, SweepResult
from repro.experiments.sweep import run_configs

__all__ = ["run_fig8_alignment", "scatter_configurations"]

#: Representative configurations drawn from every experiment family.
_SCATTER_SPECS: tuple[tuple[str, dict], ...] = (
    ("gaussian", {}),
    ("gaussian", {"mean": 4096.0, "std": 1.0}),
    ("value_set", {"set_size": 4}),
    ("value_set", {"set_size": 256}),
    ("constant_random", {}),
    ("bit_flip", {"probability": 0.25}),
    ("randomize_lsb", {"fraction": 0.5}),
    ("randomize_msb", {"fraction": 0.5}),
    ("sorted_rows", {"fraction": 1.0}),
    ("sorted_within_rows", {"fraction": 1.0}),
    ("sparsity", {"sparsity": 0.5}),
    ("sorted_sparsity", {"sparsity": 0.35}),
    ("zero_lsb", {"fraction": 0.5}),
    ("zero_msb", {"fraction": 0.5}),
)


def scatter_configurations(settings: FigureSettings, dtype: str) -> list[ExperimentConfig]:
    """The experiment configurations contributing scatter points for one datatype."""
    configs = []
    for family, params in _SCATTER_SPECS:
        config = base_config(settings, dtype, pattern_family=family, **params)
        label = f"{family}({','.join(f'{k}={v}' for k, v in params.items())})/{dtype}"
        configs.append(config.with_overrides(label=label))
    return configs


def run_fig8_alignment(settings: FigureSettings | None = None) -> FigureResult:
    """Reproduce Figure 8 (alignment / Hamming weight vs. power scatter)."""
    settings = resolve_settings(settings)
    figure = FigureResult(
        name="fig8",
        description="Bit alignment and Hamming weight of input values vs. GPU power",
    )

    all_results: list[ExperimentResult] = []
    for dtype in settings.dtypes:
        configs = scatter_configurations(settings, dtype)
        results = run_configs(configs, workers=settings.workers, backend=settings.backend)
        all_results.extend(results)
        sweep = SweepResult(
            parameter="configuration",
            values=[c.label for c in configs],
            results=results,
            label=f"Fig8 scatter points ({dtype})",
        )
        figure.add_panel(f"scatter/{dtype}", sweep)

    for summary in correlate_power_with_bit_metrics(all_results):
        figure.notes.append(
            f"{summary.dtype}: corr(power, alignment) pearson={summary.alignment_pearson:+.2f}, "
            f"corr(power, hamming) pearson={summary.hamming_pearson:+.2f} "
            f"({summary.num_points} points)"
        )
    figure.notes.append(
        "paper: higher alignment / lower Hamming weight loosely track lower power "
        "for FP datatypes, though not perfectly consistently"
    )
    return figure
