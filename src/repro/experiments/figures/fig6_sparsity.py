"""Figure 6: effects of input value sparsity on GPU power.

Four panels per datatype (standard dense GEMM throughout, as in the paper):

* (a) random sparsity applied to Gaussian inputs (T12)
* (b) random sparsity applied after fully sorting the inputs (T13 — power
  peaks around 30–40 % sparsity for floating point datatypes)
* (c) zeroing least significant bits (T14)
* (d) zeroing most significant bits (T15)
"""

from __future__ import annotations

from repro.experiments.figures.common import FigureSettings, base_config, resolve_settings
from repro.experiments.results import FigureResult
from repro.experiments.sweep import run_sweep

__all__ = [
    "run_fig6_sparsity",
    "SPARSITY_SWEEP",
    "SORTED_SPARSITY_SWEEP",
    "ZERO_BIT_FRACTION_SWEEP",
]

#: Sparsity levels swept in panel (a).
SPARSITY_SWEEP: list[float] = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0]
#: Sparsity levels swept in panel (b); denser sampling around the expected peak.
SORTED_SPARSITY_SWEEP: list[float] = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 1.0]
#: Fractions of the word width zeroed in panels (c) and (d).
ZERO_BIT_FRACTION_SWEEP: list[float] = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0]


def run_fig6_sparsity(settings: FigureSettings | None = None) -> FigureResult:
    """Reproduce Figure 6 (sparsity, sparsity-after-sort, zeroed LSBs/MSBs)."""
    settings = resolve_settings(settings)
    figure = FigureResult(
        name="fig6",
        description="Effects of input value sparsity on GPU power",
    )

    for dtype in settings.dtypes:
        sparsity_values = settings.subsample(SPARSITY_SWEEP)
        sparse_base = base_config(settings, dtype, pattern_family="sparsity", sparsity=0.0)
        figure.add_panel(
            f"a_sparsity/{dtype}",
            run_sweep(
                sparse_base,
                "sparsity",
                sparsity_values,
                label=f"Fig6a general sparsity ({dtype})",
                workers=settings.workers,
                backend=settings.backend,
            ),
        )

        sorted_sparsity_values = settings.subsample(SORTED_SPARSITY_SWEEP)
        sorted_sparse_base = base_config(
            settings, dtype, pattern_family="sorted_sparsity", sparsity=0.0
        )
        figure.add_panel(
            f"b_sorted_sparsity/{dtype}",
            run_sweep(
                sorted_sparse_base,
                "sparsity",
                sorted_sparsity_values,
                label=f"Fig6b sparsity after sorting ({dtype})",
                workers=settings.workers,
                backend=settings.backend,
            ),
        )

        zero_values = settings.subsample(ZERO_BIT_FRACTION_SWEEP)
        zero_lsb_base = base_config(settings, dtype, pattern_family="zero_lsb", fraction=0.0)
        figure.add_panel(
            f"c_zero_lsb/{dtype}",
            run_sweep(
                zero_lsb_base,
                "fraction",
                zero_values,
                label=f"Fig6c zeroed LSBs ({dtype})",
                workers=settings.workers,
                backend=settings.backend,
            ),
        )

        zero_msb_base = base_config(settings, dtype, pattern_family="zero_msb", fraction=0.0)
        figure.add_panel(
            f"d_zero_msb/{dtype}",
            run_sweep(
                zero_msb_base,
                "fraction",
                zero_values,
                label=f"Fig6d zeroed MSBs ({dtype})",
                workers=settings.workers,
                backend=settings.backend,
            ),
        )

    figure.notes.append("T12: sparsity reduces power monotonically")
    figure.notes.append(
        "T13: sparsity on sorted inputs first raises power (peak near 30-40%) "
        "before zero-dominance wins"
    )
    figure.notes.append("T14/T15: zeroing LSBs or MSBs reduces power")
    return figure
