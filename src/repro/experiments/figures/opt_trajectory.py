"""Optimization-trajectory driver: the three engines on a real objective.

Not a paper figure — a figure-*style* driver for the
:mod:`repro.optimize.engines` subsystem.  All three engines minimize
mean power over the magnitude-sparsity knob of one experiment
configuration (the paper's T12 monotonicity makes the optimum the
sparsest point, so convergence is easy to eyeball), and each panel's
sweep is the *incumbent-best* experiment result after every engine
iteration — a convergence trajectory in the same
:class:`~repro.experiments.results.FigureResult` shape the paper-figure
drivers produce.

The bisection panel answers the threshold form of the same question:
the smallest sparsity whose power fits under a cap halfway between the
dense and fully-sparse extremes.
"""

from __future__ import annotations

from repro.experiments.figures.common import FigureSettings, base_config, resolve_settings
from repro.experiments.results import FigureResult, SweepResult
from repro.experiments.sweep import run_configs
from repro.optimize.engines import (
    BisectionEngine,
    ConfigObjective,
    Dimension,
    NelderMeadEngine,
    OptimizationRunner,
    ParameterSpace,
    RandomRefineEngine,
)

__all__ = ["run_opt_trajectory"]

_MAX_SPARSITY = 0.95


def _trajectory_panel(runner: OptimizationRunner) -> "SweepResult | None":
    """Incumbent-best result after each iteration, as a pseudo-sweep."""
    runner.run()
    values = []
    results = []
    for record, result in zip(runner.history, runner.incumbent_results):
        if result is None:
            continue
        values.append(record.index)
        results.append(result)
    if not results:
        return None
    return SweepResult(
        parameter="iteration",
        values=values,
        results=results,
        label=runner.engine.name,
    )


def run_opt_trajectory(settings: "FigureSettings | None" = None) -> FigureResult:
    """Run all three engines against the sparsity/power objective."""
    settings = resolve_settings(settings)
    base = base_config(settings, dtype="fp16_t", pattern_family="sparsity", sparsity=0.0)
    space = ParameterSpace([Dimension(name="sparsity", low=0.0, high=_MAX_SPARSITY)])
    objective = ConfigObjective(base=base, metric="mean_power_watts", mode="min")

    figure = FigureResult(
        name="opt_trajectory",
        description="engine convergence on the sparsity/power objective",
    )

    # Shared endpoints: dense and fully-sparse power pin the cap target
    # for the bisection panel (halfway between the extremes).
    endpoints = run_configs(
        [space.to_config({"sparsity": 0.0}, base), space.to_config({"sparsity": _MAX_SPARSITY}, base)],
        workers=settings.workers,
        backend=settings.backend,
    )
    dense_watts = endpoints[0].mean_power_watts
    sparse_watts = endpoints[1].mean_power_watts
    cap_watts = 0.5 * (dense_watts + sparse_watts)

    runners = {
        "nelder_mead": OptimizationRunner(
            NelderMeadEngine(space, seed=0, max_iterations=2 * settings.sweep_points),
            objective,
            workers=settings.workers,
            backend=settings.backend,
            keep_results=True,
        ),
        "random": OptimizationRunner(
            RandomRefineEngine(space, seed=0, rounds=settings.sweep_points, batch_size=4),
            objective,
            workers=settings.workers,
            backend=settings.backend,
            keep_results=True,
        ),
        "bisection": OptimizationRunner(
            BisectionEngine(space, target=cap_watts, direction="decreasing"),
            objective,
            workers=settings.workers,
            backend=settings.backend,
            keep_results=True,
        ),
    }
    for key, runner in runners.items():
        panel = _trajectory_panel(runner)
        if panel is not None:
            figure.add_panel(key, panel)

    figure.notes.append(
        f"dense {dense_watts:.2f} W, sparse({_MAX_SPARSITY}) {sparse_watts:.2f} W; "
        f"bisection cap target {cap_watts:.2f} W"
    )
    figure.notes.append(
        "each panel tracks the incumbent-best experiment result per engine iteration"
    )
    best = runners["nelder_mead"].engine.best
    if best is not None:
        figure.notes.append(
            f"nelder_mead best sparsity {best.point['sparsity']:.4f} "
            f"at {best.objective:.2f} W"
        )
    return figure
