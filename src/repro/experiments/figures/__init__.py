"""Per-figure experiment definitions.

Each module reproduces one figure of the paper and returns a
:class:`~repro.experiments.results.FigureResult`.  ``run_figure`` is the
single entry point used by the benchmark harness and the examples.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ExperimentError
from repro.experiments.figures.common import FigureSettings
from repro.experiments.figures.fig1_2_runtime_energy import run_fig1_runtime, run_fig2_energy
from repro.experiments.figures.fig3_distribution import run_fig3_distribution
from repro.experiments.figures.fig4_bit_similarity import run_fig4_bit_similarity
from repro.experiments.figures.fig5_placement import run_fig5_placement
from repro.experiments.figures.fig6_sparsity import run_fig6_sparsity
from repro.experiments.figures.fig7_generalization import run_fig7_generalization
from repro.experiments.figures.fig8_alignment import run_fig8_alignment
from repro.experiments.figures.opt_trajectory import run_opt_trajectory
from repro.experiments.results import FigureResult

__all__ = [
    "FIGURES",
    "FigureSettings",
    "run_figure",
    "list_figures",
    # figure-style drivers that are not paper figures (not in FIGURES)
    "run_opt_trajectory",
]

FIGURES: dict[str, Callable[..., FigureResult]] = {
    "fig1": run_fig1_runtime,
    "fig2": run_fig2_energy,
    "fig3": run_fig3_distribution,
    "fig4": run_fig4_bit_similarity,
    "fig5": run_fig5_placement,
    "fig6": run_fig6_sparsity,
    "fig7": run_fig7_generalization,
    "fig8": run_fig8_alignment,
}


def list_figures() -> list[str]:
    """Names of all reproducible figures."""
    return sorted(FIGURES)


def run_figure(name: str, settings: FigureSettings | None = None) -> FigureResult:
    """Run the reproduction of one paper figure by name (e.g. ``"fig5"``)."""
    key = name.strip().lower()
    try:
        runner = FIGURES[key]
    except KeyError:
        raise ExperimentError(
            f"unknown figure {name!r}; available: {list_figures()}"
        ) from None
    return runner(settings)
