"""Figures 1 and 2: iteration runtime and energy by datatype.

Both figures use the paper's baseline workload — 2048x2048 GEMM with
Gaussian random inputs (mean 0, std 210 for floating point and 25 for INT8)
— and compare the four datatype setups.  Figure 1 reports average iteration
runtime; Figure 2 reports average iteration energy.

The two figures run *identical* configurations, so with the default caches
the second driver is served entirely from the experiment result tier; when
results are recomputed (``cache=None`` benchmarking, code-version bumps),
the plan cache (:mod:`repro.experiments.plan`) still deduplicates the
device/pattern/launch/monitor builds across the two runs.
"""

from __future__ import annotations

from repro.experiments.figures.common import FigureSettings, base_config, resolve_settings
from repro.experiments.results import FigureResult, SweepResult
from repro.experiments.sweep import run_configs

__all__ = ["run_fig1_runtime", "run_fig2_energy"]


def _run_dtype_comparison(settings: FigureSettings) -> SweepResult:
    """Run the Gaussian baseline for every datatype and collect one sweep."""
    configs = [
        base_config(settings, dtype, pattern_family="gaussian").with_overrides(
            label=f"gaussian/{dtype}"
        )
        for dtype in settings.dtypes
    ]
    results = run_configs(configs, workers=settings.workers, backend=settings.backend)
    return SweepResult(
        parameter="dtype",
        values=list(settings.dtypes),
        results=results,
        label=f"Gaussian baseline by datatype ({settings.gpu}, {settings.matrix_size}^2)",
    )


def run_fig1_runtime(settings: FigureSettings | None = None) -> FigureResult:
    """Figure 1: average iteration runtime by datatype."""
    settings = resolve_settings(settings)
    sweep = _run_dtype_comparison(settings)
    figure = FigureResult(
        name="fig1",
        description="Average GEMM iteration runtime by datatype (Gaussian inputs)",
    )
    figure.add_panel("runtime_by_dtype", sweep)
    fastest = min(zip(sweep.values, sweep.runtimes()), key=lambda kv: kv[1])
    figure.notes.append(
        f"fastest datatype: {fastest[0]} at {fastest[1] * 1e6:.1f} us per iteration "
        "(tensor cores accelerate FP16-T, as in the paper)"
    )
    figure.notes.append(
        "runtimes are input-independent by construction; the paper observes "
        "microsecond-level consistency across experiments"
    )
    return figure


def run_fig2_energy(settings: FigureSettings | None = None) -> FigureResult:
    """Figure 2: average iteration energy by datatype."""
    settings = resolve_settings(settings)
    sweep = _run_dtype_comparison(settings)
    figure = FigureResult(
        name="fig2",
        description="Average GEMM iteration energy by datatype (Gaussian inputs)",
    )
    figure.add_panel("energy_by_dtype", sweep)
    cheapest = min(zip(sweep.values, sweep.energies()), key=lambda kv: kv[1])
    figure.notes.append(
        f"lowest energy per iteration: {cheapest[0]} at {cheapest[1] * 1e3:.2f} mJ"
    )
    figure.notes.append(
        "energy follows runtime (power is similar across datatypes for random "
        "inputs), matching the identical patterns the paper notes between "
        "Figures 1 and 2"
    )
    return figure
