"""Figure 5: effects of input value placement (sorting) on GPU power.

Four panels per datatype, all starting from the same Gaussian values:

* (a) partial sort into rows, B **not** transposed (T8)
* (b) partial sort into rows, B transposed so sorted values align (T9)
* (c) partial sort into columns (T10)
* (d) partial sort within each row (T11)
"""

from __future__ import annotations

from repro.experiments.figures.common import FigureSettings, base_config, resolve_settings
from repro.experiments.results import FigureResult
from repro.experiments.sweep import run_sweep

__all__ = ["run_fig5_placement", "SORT_FRACTION_SWEEP"]

#: Sort fractions swept in every panel.
SORT_FRACTION_SWEEP: list[float] = [0.0, 0.25, 0.5, 0.75, 1.0]


def run_fig5_placement(settings: FigureSettings | None = None) -> FigureResult:
    """Reproduce Figure 5 (row / aligned / column / intra-row sorting)."""
    settings = resolve_settings(settings)
    figure = FigureResult(
        name="fig5",
        description="Effects of input value placement on GPU power",
    )
    fractions = settings.subsample(SORT_FRACTION_SWEEP)

    for dtype in settings.dtypes:
        rows_base = base_config(
            settings, dtype, pattern_family="sorted_rows", fraction=0.0
        ).with_overrides(transpose_b=False)
        figure.add_panel(
            f"a_sorted_rows/{dtype}",
            run_sweep(
                rows_base,
                "fraction",
                fractions,
                label=f"Fig5a sorted into rows, B not transposed ({dtype})",
                workers=settings.workers,
                backend=settings.backend,
            ),
        )

        aligned_base = base_config(
            settings, dtype, pattern_family="sorted_rows", fraction=0.0
        ).with_overrides(transpose_b=True)
        figure.add_panel(
            f"b_sorted_aligned/{dtype}",
            run_sweep(
                aligned_base,
                "fraction",
                fractions,
                label=f"Fig5b sorted and aligned, B transposed ({dtype})",
                workers=settings.workers,
                backend=settings.backend,
            ),
        )

        columns_base = base_config(
            settings, dtype, pattern_family="sorted_columns", fraction=0.0
        )
        figure.add_panel(
            f"c_sorted_columns/{dtype}",
            run_sweep(
                columns_base,
                "fraction",
                fractions,
                label=f"Fig5c sorted into columns ({dtype})",
                workers=settings.workers,
                backend=settings.backend,
            ),
        )

        within_base = base_config(
            settings, dtype, pattern_family="sorted_within_rows", fraction=0.0
        )
        figure.add_panel(
            f"d_sorted_within_rows/{dtype}",
            run_sweep(
                within_base,
                "fraction",
                fractions,
                label=f"Fig5d sorted within rows ({dtype})",
                workers=settings.workers,
                backend=settings.backend,
            ),
        )

    figure.notes.append("T8/T10: sorting into rows or columns reduces power")
    figure.notes.append("T9: aligned sorting (B transposed) reduces power the most")
    figure.notes.append("T11: intra-row sorting helps, but less than full sorting")
    return figure
