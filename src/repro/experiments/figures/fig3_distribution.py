"""Figure 3: effects of input value distribution on GPU power.

Three panels per datatype:

* (a) Gaussian standard-deviation sweep with mean fixed at 0 (T1)
* (b) Gaussian mean sweep with standard deviation fixed at 1 (T2)
* (c) values drawn uniformly from a small set of Gaussian values (T3)
"""

from __future__ import annotations

from repro.experiments.figures.common import (
    FigureSettings,
    base_config,
    mean_sweep_values,
    resolve_settings,
    std_sweep_values,
)
from repro.experiments.results import FigureResult
from repro.experiments.sweep import run_sweep

__all__ = ["run_fig3_distribution", "STD_SWEEP", "SET_SIZE_SWEEP"]

#: Standard deviations swept in panel (a) for floating point datatypes
#: (see :func:`repro.experiments.figures.common.std_sweep_values`).
STD_SWEEP: list[float] = [0.25, 1.0, 16.0, 210.0, 1024.0, 4096.0]
#: Value-set sizes swept in panel (c).
SET_SIZE_SWEEP: list[int] = [1, 4, 16, 64, 256, 1024]


def run_fig3_distribution(settings: FigureSettings | None = None) -> FigureResult:
    """Reproduce Figure 3 (distribution std / mean / value-set panels)."""
    settings = resolve_settings(settings)
    figure = FigureResult(
        name="fig3",
        description="Effects of input value distribution on GPU power",
    )

    for dtype in settings.dtypes:
        std_values = settings.subsample(std_sweep_values(dtype))
        std_base = base_config(settings, dtype, pattern_family="gaussian", mean=0.0, std=1.0)
        figure.add_panel(
            f"a_std/{dtype}",
            run_sweep(
                std_base,
                "std",
                std_values,
                label=f"Fig3a std sweep ({dtype})",
                workers=settings.workers,
                backend=settings.backend,
            ),
        )

        mean_values = settings.subsample(mean_sweep_values(dtype))
        mean_base = base_config(settings, dtype, pattern_family="gaussian", mean=0.0, std=1.0)
        figure.add_panel(
            f"b_mean/{dtype}",
            run_sweep(
                mean_base,
                "mean",
                mean_values,
                label=f"Fig3b mean sweep ({dtype})",
                workers=settings.workers,
                backend=settings.backend,
            ),
        )

        set_values = settings.subsample(SET_SIZE_SWEEP)
        set_base = base_config(settings, dtype, pattern_family="value_set", set_size=16)
        figure.add_panel(
            f"c_value_set/{dtype}",
            run_sweep(
                set_base,
                "set_size",
                set_values,
                label=f"Fig3c value-set sweep ({dtype})",
                workers=settings.workers,
                backend=settings.backend,
            ),
        )

    figure.notes.append("T1: std sweeps should be nearly flat")
    figure.notes.append("T2: larger means should reduce power for FP datatypes")
    figure.notes.append("T3: smaller value sets should reduce power")
    return figure
