"""Figure 4: effects of bit similarity on GPU power.

The A matrix is filled with one random value and B with another (different
seeds), then:

* (a) each bit of each element is flipped with increasing probability (T4)
* (b) an increasing number of least significant bits is randomized (T5)
* (c) an increasing number of most significant bits is randomized (T6)

The same figure also exposes the datatype power ranking (T7: FP16-T is the
most power hungry setup).
"""

from __future__ import annotations

from repro.experiments.figures.common import FigureSettings, base_config, resolve_settings
from repro.experiments.results import FigureResult
from repro.experiments.sweep import run_sweep

__all__ = [
    "run_fig4_bit_similarity",
    "FLIP_PROBABILITY_SWEEP",
    "BIT_FRACTION_SWEEP",
]

#: Per-bit flip probabilities swept in panel (a).
FLIP_PROBABILITY_SWEEP: list[float] = [0.0, 0.05, 0.1, 0.2, 0.35, 0.5]
#: Fractions of the word width randomized in panels (b) and (c).
BIT_FRACTION_SWEEP: list[float] = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0]


def run_fig4_bit_similarity(settings: FigureSettings | None = None) -> FigureResult:
    """Reproduce Figure 4 (random bit flips, randomized LSBs, randomized MSBs)."""
    settings = resolve_settings(settings)
    figure = FigureResult(
        name="fig4",
        description="Effects of bit similarity on GPU power",
    )

    for dtype in settings.dtypes:
        flip_values = settings.subsample(FLIP_PROBABILITY_SWEEP)
        flip_base = base_config(settings, dtype, pattern_family="bit_flip", probability=0.0)
        figure.add_panel(
            f"a_bit_flip/{dtype}",
            run_sweep(
                flip_base,
                "probability",
                flip_values,
                label=f"Fig4a random bit flips ({dtype})",
                workers=settings.workers,
                backend=settings.backend,
            ),
        )

        fraction_values = settings.subsample(BIT_FRACTION_SWEEP)
        lsb_base = base_config(settings, dtype, pattern_family="randomize_lsb", fraction=0.0)
        figure.add_panel(
            f"b_lsb/{dtype}",
            run_sweep(
                lsb_base,
                "fraction",
                fraction_values,
                label=f"Fig4b randomized LSBs ({dtype})",
                workers=settings.workers,
                backend=settings.backend,
            ),
        )

        msb_base = base_config(settings, dtype, pattern_family="randomize_msb", fraction=0.0)
        figure.add_panel(
            f"c_msb/{dtype}",
            run_sweep(
                msb_base,
                "fraction",
                fraction_values,
                label=f"Fig4c randomized MSBs ({dtype})",
                workers=settings.workers,
                backend=settings.backend,
            ),
        )

    figure.notes.append("T4: more flipped bits -> more power")
    figure.notes.append("T5/T6: randomizing more LSBs/MSBs -> more power")
    figure.notes.append("T7: FP16-T should show the highest power of all datatypes")
    return figure


def datatype_power_ranking(figure: FigureResult) -> dict[str, float]:
    """Extract the per-datatype peak power from a Figure 4 result (for T7)."""
    ranking: dict[str, float] = {}
    for key, sweep in figure.panels.items():
        dtype = key.split("/", 1)[1]
        peak = max(sweep.powers())
        ranking[dtype] = max(ranking.get(dtype, 0.0), peak)
    return ranking
