"""Kernel runtime (performance) model.

Iteration runtime is needed twice: Figure 1 reports it directly, and the
energy numbers of Figure 2 are power x runtime.  The paper observes that
runtime is *input independent* (microsecond-level consistent across all
experiments for a given datatype) — the model reproduces that property by
construction, because runtime depends only on shapes, datatype and device.
"""

from repro.runtime.model import RuntimeEstimate, RuntimeModel
from repro.runtime.roofline import compute_bound_time_s, memory_bound_time_s, roofline_time_s

__all__ = [
    "RuntimeModel",
    "RuntimeEstimate",
    "compute_bound_time_s",
    "memory_bound_time_s",
    "roofline_time_s",
]
