"""Per-kernel runtime model."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PowerModelError
from repro.kernels.launch import KernelLaunch
from repro.runtime.roofline import compute_bound_time_s, memory_bound_time_s, roofline_time_s

__all__ = ["RuntimeEstimate", "RuntimeModel"]

#: Achievable fraction of peak throughput for a well-tuned large square GEMM,
#: by execution path.  Tensor-core pipelines typically sustain a slightly
#: lower fraction of their (much higher) peak than plain FMA pipelines.
_DEFAULT_EFFICIENCY = {
    "fp64": 0.90,
    "fp32": 0.90,
    "fp16": 0.88,
    "fp16_t": 0.82,
    "bf16": 0.82,
    "int8": 0.85,
    "int32": 0.85,
}

#: Fixed per-kernel launch overhead (driver + grid launch), seconds.
KERNEL_LAUNCH_OVERHEAD_S = 4e-6


@dataclass(frozen=True)
class RuntimeEstimate:
    """Runtime breakdown of one kernel iteration."""

    iteration_time_s: float
    compute_time_s: float
    memory_time_s: float
    launch_overhead_s: float
    compute_bound: bool
    clock_scale: float

    @property
    def iteration_time_us(self) -> float:
        return self.iteration_time_s * 1e6


class RuntimeModel:
    """Roofline-style runtime model with clock-scale (throttling) support."""

    def __init__(self, efficiency_overrides: dict[str, float] | None = None) -> None:
        self.efficiency = dict(_DEFAULT_EFFICIENCY)
        if efficiency_overrides:
            for dtype, value in efficiency_overrides.items():
                if not 0.0 < value <= 1.0:
                    raise PowerModelError(
                        f"efficiency for {dtype!r} must be in (0, 1], got {value}"
                    )
                self.efficiency[dtype] = value

    def dtype_efficiency(self, dtype: str) -> float:
        return self.efficiency.get(dtype, 0.85)

    def estimate(self, launch: KernelLaunch, clock_scale: float = 1.0) -> RuntimeEstimate:
        """Estimate the runtime of one kernel iteration.

        ``clock_scale`` lowers the SM clock (DVFS/throttling); compute time
        scales inversely with it, memory time is unaffected.
        """
        if not 0.0 < clock_scale <= 1.0:
            raise PowerModelError(f"clock_scale must be in (0, 1], got {clock_scale}")
        problem = launch.problem
        device = launch.device
        peak = device.peak_throughput_flops(problem.dtype) * launch.occupancy
        efficiency = self.dtype_efficiency(problem.dtype)
        compute = compute_bound_time_s(launch.flops, peak, efficiency) / clock_scale
        memory = memory_bound_time_s(
            launch.dram_traffic_bytes, device.memory.effective_bandwidth
        )
        body = roofline_time_s(compute, memory, overlap=0.95)
        total = body + KERNEL_LAUNCH_OVERHEAD_S
        return RuntimeEstimate(
            iteration_time_s=total,
            compute_time_s=compute,
            memory_time_s=memory,
            launch_overhead_s=KERNEL_LAUNCH_OVERHEAD_S,
            compute_bound=compute >= memory,
            clock_scale=clock_scale,
        )
