"""Roofline building blocks: compute-bound and memory-bound times."""

from __future__ import annotations

from repro.errors import PowerModelError

__all__ = ["compute_bound_time_s", "memory_bound_time_s", "roofline_time_s"]


def compute_bound_time_s(flops: float, peak_flops_per_s: float, efficiency: float = 1.0) -> float:
    """Time to execute ``flops`` at ``efficiency`` of the peak throughput."""
    if flops < 0:
        raise PowerModelError(f"flops must be non-negative, got {flops}")
    if peak_flops_per_s <= 0:
        raise PowerModelError(f"peak throughput must be positive, got {peak_flops_per_s}")
    if not 0.0 < efficiency <= 1.0:
        raise PowerModelError(f"efficiency must be in (0, 1], got {efficiency}")
    return flops / (peak_flops_per_s * efficiency)


def memory_bound_time_s(traffic_bytes: float, bandwidth_bytes_per_s: float) -> float:
    """Time to move ``traffic_bytes`` at the given effective bandwidth."""
    if traffic_bytes < 0:
        raise PowerModelError(f"traffic must be non-negative, got {traffic_bytes}")
    if bandwidth_bytes_per_s <= 0:
        raise PowerModelError(f"bandwidth must be positive, got {bandwidth_bytes_per_s}")
    return traffic_bytes / bandwidth_bytes_per_s


def roofline_time_s(compute_time_s: float, memory_time_s: float, overlap: float = 1.0) -> float:
    """Combine compute and memory time.

    ``overlap = 1.0`` models perfect overlap (the classical roofline max);
    ``overlap = 0.0`` models fully serialized compute and memory phases.
    """
    if not 0.0 <= overlap <= 1.0:
        raise PowerModelError(f"overlap must be in [0, 1], got {overlap}")
    overlapped = max(compute_time_s, memory_time_s)
    serialized = compute_time_s + memory_time_s
    return overlap * overlapped + (1.0 - overlap) * serialized
