"""Fleet-scale scenario simulation: from one GEMM to a datacenter trace.

``repro.fleet`` composes the paper's per-kernel power estimates into
cluster-level power/energy time series.  A seeded :class:`Trace` (diurnal
LLM inference, training-step streams, mixed dtype/sparsity tenants — or
your own JSON) is placed onto a modeled :class:`FleetSpec` of hundreds of
GPUs by a :class:`DiscreteTimeScheduler` that resolves per-GPU power caps
into DVFS frequency scaling, and :func:`simulate` folds the placements
into a :class:`FleetResult` with per-tenant energy attribution.

The estimation engine's cache tiers make this tractable: a million
scheduled kernels collapse to one engine run per distinct (workload, GPU
model) fingerprint, and a warm simulation issues none.  Everything is
replayable — same trace + same ``REPRO_FLEET_SEED`` ⇒ bit-for-bit
identical series on every execution backend.

Command line::

    python -m repro.fleet generate-trace --kind diurnal --out trace.json
    python -m repro.fleet simulate trace.json --gpus a100:192,h100:64
    python -m repro.fleet summarize result.json

See ``docs/fleet.md`` for the trace wire format, the scheduler model and
the attribution semantics.
"""

from repro.fleet.attribution import IDLE_TENANT, EnergyAttribution, attribute_energy
from repro.fleet.scheduler import (
    CapEvent,
    DiscreteTimeScheduler,
    FleetGPU,
    FleetSchedule,
    FleetSpec,
    KernelEstimate,
    ScheduledKernel,
)
from repro.fleet.simulator import FleetResult, build_estimates, simulate
from repro.fleet.trace import (
    GENERATORS,
    Trace,
    TraceJob,
    WorkloadSpec,
    default_fleet_seed,
    generate_diurnal_trace,
    generate_mixed_trace,
    generate_trace,
    generate_training_trace,
)

__all__ = [
    "Trace",
    "TraceJob",
    "WorkloadSpec",
    "GENERATORS",
    "generate_trace",
    "generate_diurnal_trace",
    "generate_training_trace",
    "generate_mixed_trace",
    "default_fleet_seed",
    "FleetGPU",
    "CapEvent",
    "FleetSpec",
    "KernelEstimate",
    "ScheduledKernel",
    "FleetSchedule",
    "DiscreteTimeScheduler",
    "IDLE_TENANT",
    "EnergyAttribution",
    "attribute_energy",
    "FleetResult",
    "build_estimates",
    "simulate",
]
