"""``python -m repro.fleet`` — generate, simulate and summarize fleet traces.

Subcommands:

* ``generate-trace`` — write a seeded synthetic trace (``--kind
  diurnal|training|mixed``) as JSON.  The seed defaults to
  ``REPRO_FLEET_SEED``; the same kind + parameters + seed always writes
  the identical file.
* ``simulate``       — replay a trace JSON against a fleet (``--gpus
  a100:192,h100:64``), optionally under per-GPU power caps and cap
  events, and print/save the :class:`~repro.fleet.simulator.FleetResult`.
  ``--expect SUMMARY.json`` turns the run into a replay check: the
  freshly computed summary must equal the golden file exactly (exit 1
  otherwise) — this is what CI's fleet job runs.
* ``summarize``      — print the tables of a saved result (or the shape
  of a saved trace) without re-simulating.

Examples::

    python -m repro.fleet generate-trace --kind diurnal --seed 7 --out trace.json
    python -m repro.fleet simulate trace.json --gpus a100:256 --cap-at 100:180 --out result.json
    python -m repro.fleet simulate trace.json --gpus a100:2 --expect golden_summary.json
    python -m repro.fleet summarize result.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Any, Mapping

from repro.errors import ReproError
from repro.fleet.scheduler import CapEvent, FleetSpec
from repro.fleet.simulator import FleetResult, simulate
from repro.fleet.trace import GENERATORS, Trace, _env_int, generate_trace

__all__ = ["main"]


def _env_backend(environ: "Mapping[str, str] | None" = None) -> str:
    env = os.environ if environ is None else environ
    return env.get("REPRO_FLEET_BACKEND", "auto").strip() or "auto"


def _parse_gpus(text: str) -> "dict[str, int]":
    """``a100:192,h100:64`` -> ``{"a100": 192, "h100": 64}``."""
    counts: "dict[str, int]" = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        model, _, count_text = part.partition(":")
        model = model.strip()
        if not model:
            raise ReproError(f"invalid --gpus entry {part!r}; expected MODEL[:COUNT]")
        try:
            count = int(count_text) if count_text else 1
        except ValueError:
            raise ReproError(
                f"invalid GPU count {count_text!r} in --gpus entry {part!r}"
            ) from None
        counts[model] = counts.get(model, 0) + count
    if not counts:
        raise ReproError(f"--gpus {text!r} names no GPUs")
    return counts


def _parse_cap_event(text: str) -> CapEvent:
    """``TICK:WATTS`` (or ``TICK:off``) -> a fleet-wide :class:`CapEvent`."""
    tick_text, sep, watts_text = text.partition(":")
    if not sep:
        raise ReproError(f"invalid --cap-at {text!r}; expected TICK:WATTS or TICK:off")
    try:
        tick = int(tick_text)
    except ValueError:
        raise ReproError(f"invalid --cap-at tick {tick_text!r}") from None
    watts_text = watts_text.strip().lower()
    if watts_text in ("off", "none", ""):
        return CapEvent(tick=tick, cap_watts=None)
    try:
        watts = float(watts_text)
    except ValueError:
        raise ReproError(f"invalid --cap-at watts {watts_text!r}") from None
    return CapEvent(tick=tick, cap_watts=watts)


def _cmd_generate(args: argparse.Namespace) -> int:
    kwargs: "dict[str, Any]" = {}
    if args.seed is not None:
        kwargs["seed"] = args.seed
    if args.ticks is not None:
        kwargs["ticks"] = args.ticks
    if args.tick_s is not None:
        kwargs["tick_s"] = args.tick_s
    trace = generate_trace(args.kind, **kwargs)
    target = trace.save_json(args.out)
    print(
        f"wrote {trace.name!r}: {len(trace.jobs)} jobs / {trace.total_kernels} kernels "
        f"across {len(trace.workloads)} workloads -> {target}"
    )
    return 0


def _build_fleet(args: argparse.Namespace) -> FleetSpec:
    return FleetSpec.from_counts(
        _parse_gpus(args.gpus),
        cap_watts=args.cap,
        cap_events=[_parse_cap_event(text) for text in args.cap_at],
        include_idle_power=not args.no_idle_power,
    )


def _check_expected(result: FleetResult, expect_path: Path) -> int:
    try:
        expected = json.loads(expect_path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        print(f"cannot read expected summary {expect_path}: {exc}", file=sys.stderr)
        return 1
    actual = result.summary()
    if actual == expected:
        print(f"replay OK: summary matches {expect_path}")
        return 0
    print(f"replay MISMATCH against {expect_path}:", file=sys.stderr)
    keys = sorted(set(expected) | set(actual))
    for key in keys:
        want, got = expected.get(key), actual.get(key)
        if want != got:
            print(f"  {key}: expected {want!r}, got {got!r}", file=sys.stderr)
    return 1


def _cmd_simulate(args: argparse.Namespace) -> int:
    trace = Trace.load(args.trace)
    fleet = _build_fleet(args)
    result = simulate(
        trace,
        fleet,
        workers=args.workers,
        backend=args.backend,
    )
    if args.out:
        result.save_json(args.out)
    if args.json:
        print(json.dumps(result.summary(), indent=2, sort_keys=True))
    else:
        print(result.render())
    if args.expect is not None:
        return _check_expected(result, Path(args.expect))
    return 0


def _cmd_summarize(args: argparse.Namespace) -> int:
    path = Path(args.path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ReproError(f"cannot read {path}: {exc}") from exc
    fmt = payload.get("format", "") if isinstance(payload, dict) else ""
    if fmt.startswith("repro.fleet.trace"):
        trace = Trace.from_dict(payload)
        print(
            f"trace {trace.name!r}: {len(trace.jobs)} jobs / {trace.total_kernels} "
            f"kernels, {len(trace.workloads)} workloads, tick_s={trace.tick_s}, "
            f"tenants: {', '.join(trace.tenants) or '(none)'}"
        )
        return 0
    result = FleetResult.load(path)
    if args.json:
        print(json.dumps(result.summary(), indent=2, sort_keys=True))
    else:
        print(result.render())
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet",
        description="Datacenter-scale trace simulation over the estimation engine.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser(
        "generate-trace", help="write a seeded synthetic trace as JSON"
    )
    generate.add_argument("--kind", choices=sorted(GENERATORS), default="diurnal")
    generate.add_argument(
        "--seed", type=int, default=None,
        help="generator seed (default: REPRO_FLEET_SEED, default 0)",
    )
    generate.add_argument("--ticks", type=int, default=None, help="trace length in ticks")
    generate.add_argument("--tick-s", type=float, default=None, help="seconds per tick")
    generate.add_argument("--out", required=True, help="output JSON path")
    generate.set_defaults(func=_cmd_generate)

    simulate_parser = sub.add_parser("simulate", help="replay a trace against a fleet")
    simulate_parser.add_argument("trace", help="trace JSON (see generate-trace)")
    simulate_parser.add_argument(
        "--gpus", default="a100:8",
        help="fleet shape, MODEL[:COUNT] comma-separated (default: a100:8)",
    )
    simulate_parser.add_argument(
        "--cap", type=float, default=None, help="uniform per-GPU power cap, watts"
    )
    simulate_parser.add_argument(
        "--cap-at", action="append", default=[], metavar="TICK:WATTS",
        help="fleet-wide cap event (repeatable; TICK:off clears the cap)",
    )
    simulate_parser.add_argument(
        "--no-idle-power", action="store_true",
        help="do not account idle-GPU power to the '(idle)' pseudo-tenant",
    )
    simulate_parser.add_argument(
        "--workers", type=int, default=_env_int("REPRO_FLEET_WORKERS", 1),
        help="estimation worker-pool width (default: REPRO_FLEET_WORKERS or 1)",
    )
    simulate_parser.add_argument(
        "--backend", default=_env_backend(),
        help="estimation execution backend (default: REPRO_FLEET_BACKEND or auto)",
    )
    simulate_parser.add_argument("--out", default=None, help="save the full result JSON here")
    simulate_parser.add_argument(
        "--json", action="store_true", help="print the rounded summary JSON instead of tables"
    )
    simulate_parser.add_argument(
        "--expect", default=None, metavar="SUMMARY.json",
        help="replay check: fail (exit 1) unless the summary equals this file",
    )
    simulate_parser.set_defaults(func=_cmd_simulate)

    summarize = sub.add_parser(
        "summarize", help="print a saved result (or trace) without re-simulating"
    )
    summarize.add_argument("path", help="result or trace JSON")
    summarize.add_argument("--json", action="store_true", help="summary JSON output")
    summarize.set_defaults(func=_cmd_summarize)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
