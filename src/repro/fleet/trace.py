"""Fleet traces: the workload streams the datacenter simulator consumes.

A *trace* is a discrete-time stream of jobs: at ``arrival_tick`` a tenant
asks the fleet to run ``kernels`` back-to-back launches of one of the
trace's named *workloads* (a GEMM input pattern, dtype and matrix size —
exactly the axes the paper shows change power draw).  Traces are plain
data: they carry no GPU placement and no power numbers, so one trace can
be replayed against different fleets, GPU generations and cap policies
(the what-if axis of :mod:`repro.fleet.simulator`).

The JSON wire format (:meth:`Trace.as_dict` / :meth:`Trace.from_dict`)
follows the same discipline as
:meth:`repro.experiments.config.ExperimentConfig.from_dict`: unknown or
ill-typed fields raise :class:`~repro.errors.FleetError` — a misspelled
knob must not silently simulate something else.

The generators in this module produce *synthetic* traces — diurnal LLM
inference, steady training-step streams, mixed multi-tenant estates — and
are fully seeded: the same ``(generator, parameters, seed)`` triple always
yields the identical trace, byte for byte, in any process on any platform
(seeds derive through :func:`repro.util.rng.derive_rng`, which hashes with
SHA-256 rather than ``hash()``).  When no explicit ``seed=`` is given they
fall back to ``REPRO_FLEET_SEED``, so a whole pipeline can be replayed by
exporting one variable.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.errors import FleetError
from repro.experiments.config import ExperimentConfig
from repro.util.rng import derive_rng

__all__ = [
    "TRACE_FORMAT",
    "WorkloadSpec",
    "TraceJob",
    "Trace",
    "default_fleet_seed",
    "generate_diurnal_trace",
    "generate_training_trace",
    "generate_mixed_trace",
    "GENERATORS",
    "generate_trace",
]

#: Wire-format tag checked by :meth:`Trace.from_dict`; bump on layout change.
TRACE_FORMAT = "repro.fleet.trace/v1"


def _env_int(name: str, fallback: int, environ: "Mapping[str, str] | None" = None) -> int:
    env = os.environ if environ is None else environ
    raw = env.get(name, "").strip()
    if not raw:
        return fallback
    try:
        return int(raw)
    except ValueError as exc:
        raise FleetError(f"{name} must be an integer, got {raw!r}") from exc


def default_fleet_seed(environ: "Mapping[str, str] | None" = None) -> int:
    """The generator seed used when no explicit ``seed=`` is passed.

    Reads ``REPRO_FLEET_SEED`` (default ``0``) at call time — generators
    resolve it per invocation, so a test can flip the variable between
    generations and get two different, individually reproducible traces.
    """
    return _env_int("REPRO_FLEET_SEED", 0, environ)


def _require_fields(
    payload: Mapping[str, Any], known: "set[str]", what: str
) -> "dict[str, Any]":
    """Copy ``payload`` rejecting unknown fields, like the config wire format."""
    if not isinstance(payload, Mapping):
        raise FleetError(f"{what} must be a mapping, got {type(payload).__name__}")
    data = dict(payload)
    unknown = sorted(set(data) - known)
    if unknown:
        raise FleetError(
            f"unknown {what} field(s): {', '.join(unknown)}; known: {sorted(known)}"
        )
    return data


@dataclass(frozen=True)
class WorkloadSpec:
    """One named workload: the estimation-relevant axes of a GEMM stream.

    The fields deliberately mirror the workload subset of
    :class:`~repro.experiments.config.ExperimentConfig` — pattern, dtype
    and matrix size are what the paper shows move power; ``iterations``
    and ``seeds`` set the *measurement fidelity* of the per-kernel
    estimate (not the trace-side kernel count, which lives on each
    :class:`TraceJob`).  Two jobs naming the same workload share one
    estimate per GPU model through the cache tiers, which is what lets a
    million scheduled kernels collapse to a handful of engine runs.
    """

    pattern_family: str = "gaussian"
    pattern_params: Mapping[str, Any] = field(default_factory=dict)
    dtype: str = "fp16_t"
    matrix_size: int = 256
    iterations: int = 2_000
    seeds: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "pattern_params", dict(self.pattern_params))
        # Delegate domain validation (pattern family, dtype, size floors) to
        # the config it will become; a bad workload must fail at trace build
        # time, not halfway through a simulation.
        try:
            self.to_config()
        except Exception as exc:
            raise FleetError(f"invalid workload: {exc}") from exc

    def to_config(self, gpu: str = "a100", **overrides: Any) -> ExperimentConfig:
        """The :class:`ExperimentConfig` that estimates this workload on ``gpu``."""
        config = ExperimentConfig(
            pattern_family=self.pattern_family,
            pattern_params=dict(self.pattern_params),
            dtype=self.dtype,
            matrix_size=self.matrix_size,
            iterations=self.iterations,
            seeds=self.seeds,
            gpu=gpu,
        )
        return config.with_overrides(**overrides) if overrides else config

    def as_dict(self) -> "dict[str, Any]":
        return {
            "pattern_family": self.pattern_family,
            "pattern_params": dict(self.pattern_params),
            "dtype": self.dtype,
            "matrix_size": self.matrix_size,
            "iterations": self.iterations,
            "seeds": self.seeds,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "WorkloadSpec":
        data = _require_fields(
            payload,
            {"pattern_family", "pattern_params", "dtype", "matrix_size", "iterations", "seeds"},
            "workload",
        )
        try:
            return cls(**data)
        except TypeError as exc:
            raise FleetError(f"invalid workload: {exc}") from exc


@dataclass(frozen=True)
class TraceJob:
    """One scheduled request: a tenant running ``kernels`` launches of a workload."""

    arrival_tick: int
    tenant: str
    workload: str
    kernels: int = 1

    def __post_init__(self) -> None:
        if self.arrival_tick < 0:
            raise FleetError(f"arrival_tick must be >= 0, got {self.arrival_tick}")
        if self.kernels < 1:
            raise FleetError(f"kernels must be >= 1, got {self.kernels}")
        if not self.tenant:
            raise FleetError("tenant must be a non-empty string")
        if not self.workload:
            raise FleetError("workload must be a non-empty string")

    def as_dict(self) -> "dict[str, Any]":
        return {
            "arrival_tick": self.arrival_tick,
            "tenant": self.tenant,
            "workload": self.workload,
            "kernels": self.kernels,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TraceJob":
        data = _require_fields(
            payload, {"arrival_tick", "tenant", "workload", "kernels"}, "job"
        )
        try:
            return cls(**data)
        except TypeError as exc:
            raise FleetError(f"invalid job: {exc}") from exc


@dataclass(frozen=True)
class Trace:
    """A named, tick-quantized stream of jobs over a workload catalogue."""

    name: str
    tick_s: float
    workloads: Mapping[str, WorkloadSpec]
    jobs: "tuple[TraceJob, ...]" = ()
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise FleetError("a trace needs a non-empty name")
        if not (self.tick_s > 0.0 and math.isfinite(self.tick_s)):
            raise FleetError(f"tick_s must be positive and finite, got {self.tick_s}")
        object.__setattr__(self, "workloads", dict(self.workloads))
        object.__setattr__(self, "jobs", tuple(self.jobs))
        object.__setattr__(self, "metadata", dict(self.metadata))
        for key, spec in self.workloads.items():
            if not isinstance(spec, WorkloadSpec):
                raise FleetError(
                    f"workload {key!r} must be a WorkloadSpec, got {type(spec).__name__}"
                )
        missing = sorted(
            {job.workload for job in self.jobs} - set(self.workloads)
        )
        if missing:
            raise FleetError(
                f"jobs reference undeclared workload(s): {', '.join(missing)}"
            )

    # ------------------------------------------------------------ accessors

    @property
    def total_kernels(self) -> int:
        """Scheduled kernel launches across every job of the trace."""
        return sum(job.kernels for job in self.jobs)

    @property
    def tenants(self) -> "tuple[str, ...]":
        return tuple(sorted({job.tenant for job in self.jobs}))

    def used_workloads(self) -> "tuple[str, ...]":
        """Workload names actually referenced by at least one job."""
        return tuple(sorted({job.workload for job in self.jobs}))

    # ------------------------------------------------------------ wire form

    def as_dict(self) -> "dict[str, Any]":
        return {
            "format": TRACE_FORMAT,
            "name": self.name,
            "tick_s": self.tick_s,
            "workloads": {key: spec.as_dict() for key, spec in sorted(self.workloads.items())},
            "jobs": [job.as_dict() for job in self.jobs],
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Trace":
        data = _require_fields(
            payload, {"format", "name", "tick_s", "workloads", "jobs", "metadata"}, "trace"
        )
        fmt = data.pop("format", TRACE_FORMAT)
        if fmt != TRACE_FORMAT:
            raise FleetError(f"unsupported trace format {fmt!r}; expected {TRACE_FORMAT!r}")
        workloads_raw = data.get("workloads", {})
        if not isinstance(workloads_raw, Mapping):
            raise FleetError("trace 'workloads' must be a mapping of name -> workload")
        jobs_raw = data.get("jobs", [])
        if not isinstance(jobs_raw, (list, tuple)):
            raise FleetError("trace 'jobs' must be a list")
        return cls(
            name=data.get("name", ""),
            tick_s=data.get("tick_s", 0.0),
            workloads={
                key: WorkloadSpec.from_dict(value) for key, value in workloads_raw.items()
            },
            jobs=tuple(TraceJob.from_dict(entry) for entry in jobs_raw),
            metadata=data.get("metadata", {}),
        )

    def save_json(self, path: "str | Path") -> Path:
        """Write the trace to a JSON file and return its path."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n")
        return target

    @classmethod
    def load(cls, path: "str | Path") -> "Trace":
        """Read a trace written by :meth:`save_json`."""
        source = Path(path)
        try:
            payload = json.loads(source.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise FleetError(f"cannot read trace {source}: {exc}") from exc
        return cls.from_dict(payload)


# --------------------------------------------------------------- generators


def _poisson_draw(rng: Any, rate: float) -> int:
    """One Poisson draw, clamped so a runaway rate cannot explode the trace."""
    if rate <= 0.0:
        return 0
    return int(min(rng.poisson(rate), 10_000))


#: Inference-serving workload catalogue: prefill-heavy large GEMMs next to
#: small decode-step GEMMs, the same dtype split the paper's serving
#: discussion uses.
_DIURNAL_WORKLOADS: "dict[str, WorkloadSpec]" = {
    "llm_prefill": WorkloadSpec(
        pattern_family="gaussian", pattern_params={"mean": 0.0, "std": 210.0},
        dtype="fp16_t", matrix_size=256,
    ),
    "llm_decode": WorkloadSpec(
        pattern_family="gaussian", pattern_params={"mean": 0.0, "std": 210.0},
        dtype="fp16_t", matrix_size=128,
    ),
    "embedding": WorkloadSpec(
        pattern_family="sparsity", pattern_params={"sparsity": 0.5},
        dtype="int8", matrix_size=128,
    ),
}


def generate_diurnal_trace(
    *,
    ticks: int = 288,
    tick_s: float = 300.0,
    tenants: "Iterable[str]" = ("chat", "search", "api"),
    peak_rate: float = 4.0,
    base_rate: float = 0.5,
    kernels_per_job: int = 2_000,
    workloads: "Mapping[str, WorkloadSpec] | None" = None,
    seed: "int | None" = None,
    name: str = "diurnal",
) -> Trace:
    """A diurnal LLM-inference curve: sinusoidal arrival rate over one day.

    Each tenant draws Poisson job arrivals per tick with a rate that swings
    between ``base_rate`` (night trough) and ``peak_rate`` (afternoon
    peak), phase-shifted per tenant so the fleet sees overlapping but not
    synchronized waves.  Job workloads are drawn from the (small) workload
    catalogue, biased toward decode steps the way serving traffic is.
    """
    resolved_seed = default_fleet_seed() if seed is None else int(seed)
    tenant_list = list(tenants)
    if not tenant_list:
        raise FleetError("generate_diurnal_trace needs at least one tenant")
    if ticks < 0:
        raise FleetError(f"ticks must be >= 0, got {ticks}")
    catalogue = dict(_DIURNAL_WORKLOADS) if workloads is None else dict(workloads)
    keys = sorted(catalogue)
    # Decode-heavy draw weights: later keys (sorted) are not meaningful, so
    # weight explicitly by name where known, uniformly otherwise.
    weights = [3.0 if key == "llm_decode" else 1.0 for key in keys]
    total_weight = sum(weights)
    probabilities = [w / total_weight for w in weights]

    jobs: "list[TraceJob]" = []
    for tenant_index, tenant in enumerate(tenant_list):
        rng = derive_rng(resolved_seed, "fleet.diurnal", tenant)
        phase = 2.0 * math.pi * tenant_index / len(tenant_list)
        for tick in range(ticks):
            day_fraction = tick / max(ticks, 1)
            swing = 0.5 * (1.0 - math.cos(2.0 * math.pi * day_fraction + phase))
            rate = base_rate + (peak_rate - base_rate) * swing
            for _ in range(_poisson_draw(rng, rate)):
                key = keys[int(rng.choice(len(keys), p=probabilities))]
                kernels = max(1, int(rng.integers(kernels_per_job // 2, kernels_per_job + 1)))
                jobs.append(
                    TraceJob(arrival_tick=tick, tenant=tenant, workload=key, kernels=kernels)
                )
    jobs.sort(key=lambda job: (job.arrival_tick, job.tenant, job.workload, job.kernels))
    return Trace(
        name=name,
        tick_s=tick_s,
        workloads=catalogue,
        jobs=tuple(jobs),
        metadata={"generator": "diurnal", "seed": resolved_seed, "ticks": ticks},
    )


#: Training estates run few, long, dense jobs; one low-precision ablation
#: stream rides along (mixed dtype pressure on the estimator cache).
_TRAINING_WORKLOADS: "dict[str, WorkloadSpec]" = {
    "train_fwd": WorkloadSpec(
        pattern_family="gaussian", pattern_params={"mean": 0.0, "std": 210.0},
        dtype="fp16_t", matrix_size=256,
    ),
    "train_bwd": WorkloadSpec(
        pattern_family="gaussian", pattern_params={"mean": 0.0, "std": 210.0},
        dtype="fp32", matrix_size=256,
    ),
    "ablation_int8": WorkloadSpec(
        pattern_family="value_set", pattern_params={"set_size": 16},
        dtype="int8", matrix_size=128,
    ),
}


def generate_training_trace(
    *,
    ticks: int = 96,
    tick_s: float = 300.0,
    tenants: "Iterable[str]" = ("research-a", "research-b"),
    steps_per_tick: int = 1,
    kernels_per_step: int = 10_000,
    workloads: "Mapping[str, WorkloadSpec] | None" = None,
    seed: "int | None" = None,
    name: str = "training",
) -> Trace:
    """Steady training-step streams: regular arrivals, long kernel bursts.

    Every tenant submits ``steps_per_tick`` forward+backward step pairs per
    tick with slight seeded jitter in the kernel counts, plus an occasional
    int8 ablation job — the archetypal "always-on" base load under which
    the diurnal serving wave rides.
    """
    resolved_seed = default_fleet_seed() if seed is None else int(seed)
    tenant_list = list(tenants)
    if not tenant_list:
        raise FleetError("generate_training_trace needs at least one tenant")
    if ticks < 0:
        raise FleetError(f"ticks must be >= 0, got {ticks}")
    if steps_per_tick < 1:
        raise FleetError(f"steps_per_tick must be >= 1, got {steps_per_tick}")
    catalogue = dict(_TRAINING_WORKLOADS) if workloads is None else dict(workloads)

    jobs: "list[TraceJob]" = []
    for tenant in tenant_list:
        rng = derive_rng(resolved_seed, "fleet.training", tenant)
        for tick in range(ticks):
            for _ in range(steps_per_tick):
                jitter = float(rng.uniform(0.8, 1.2))
                kernels = max(1, int(kernels_per_step * jitter))
                jobs.append(
                    TraceJob(arrival_tick=tick, tenant=tenant, workload="train_fwd", kernels=kernels)
                )
                if "train_bwd" in catalogue:
                    jobs.append(
                        TraceJob(
                            arrival_tick=tick, tenant=tenant, workload="train_bwd",
                            kernels=max(1, kernels * 2),
                        )
                    )
            if "ablation_int8" in catalogue and rng.random() < 0.1:
                jobs.append(
                    TraceJob(
                        arrival_tick=tick, tenant=tenant, workload="ablation_int8",
                        kernels=max(1, kernels_per_step // 4),
                    )
                )
    jobs.sort(key=lambda job: (job.arrival_tick, job.tenant, job.workload, job.kernels))
    return Trace(
        name=name,
        tick_s=tick_s,
        workloads=catalogue,
        jobs=tuple(jobs),
        metadata={"generator": "training", "seed": resolved_seed, "ticks": ticks},
    )


def _mixed_catalogue(rng: Any, distinct_workloads: int) -> "dict[str, WorkloadSpec]":
    """A seeded catalogue of up to ``distinct_workloads`` dtype/sparsity mixes."""
    dtypes = ("fp16_t", "fp16", "fp32", "int8")
    sparsities = (0.0, 0.25, 0.5, 0.75, 0.9)
    sizes = (128, 192, 256)
    combinations = len(dtypes) * len(sparsities) * len(sizes)
    if distinct_workloads > combinations:
        raise FleetError(
            f"distinct_workloads must be <= {combinations}, got {distinct_workloads}"
        )
    catalogue: "dict[str, WorkloadSpec]" = {}
    while len(catalogue) < distinct_workloads:
        dtype = dtypes[int(rng.integers(len(dtypes)))]
        sparsity = sparsities[int(rng.integers(len(sparsities)))]
        size = sizes[int(rng.integers(len(sizes)))]
        key = f"{dtype}-s{int(sparsity * 100):02d}-{size}"
        if key in catalogue:
            continue
        if sparsity > 0.0:
            spec = WorkloadSpec(
                pattern_family="sparsity", pattern_params={"sparsity": sparsity},
                dtype=dtype, matrix_size=size,
            )
        else:
            spec = WorkloadSpec(
                pattern_family="gaussian", pattern_params={"mean": 0.0, "std": 210.0},
                dtype=dtype, matrix_size=size,
            )
        catalogue[key] = spec
    return catalogue


def generate_mixed_trace(
    *,
    ticks: int = 64,
    tick_s: float = 60.0,
    tenants: "Iterable[str]" = ("tenant-0", "tenant-1", "tenant-2", "tenant-3"),
    jobs_per_tick: float = 2.0,
    distinct_workloads: int = 8,
    kernels_per_job: int = 1_000,
    seed: "int | None" = None,
    name: str = "mixed",
) -> Trace:
    """A mixed multi-tenant estate: many dtype/sparsity variants, few shapes.

    This is the cache-collapse stressor: ``distinct_workloads`` bounds the
    number of distinct activity fingerprints however many thousand kernels
    the trace schedules, so a warm simulation issues no engine runs at all.
    """
    resolved_seed = default_fleet_seed() if seed is None else int(seed)
    tenant_list = list(tenants)
    if not tenant_list:
        raise FleetError("generate_mixed_trace needs at least one tenant")
    if ticks < 0:
        raise FleetError(f"ticks must be >= 0, got {ticks}")
    if distinct_workloads < 1:
        raise FleetError(f"distinct_workloads must be >= 1, got {distinct_workloads}")
    catalogue_rng = derive_rng(resolved_seed, "fleet.mixed", "catalogue")
    catalogue = _mixed_catalogue(catalogue_rng, distinct_workloads)
    keys = sorted(catalogue)

    jobs: "list[TraceJob]" = []
    for tenant in tenant_list:
        rng = derive_rng(resolved_seed, "fleet.mixed", tenant)
        # Each tenant leans on a seeded subset of the catalogue, the way
        # real tenants pin model versions.
        preferred = sorted(
            keys[int(rng.integers(len(keys)))] for _ in range(max(1, len(keys) // 2))
        )
        for tick in range(ticks):
            for _ in range(_poisson_draw(rng, jobs_per_tick)):
                pool = preferred if rng.random() < 0.8 else keys
                key = pool[int(rng.integers(len(pool)))]
                kernels = max(1, int(rng.integers(kernels_per_job // 2, kernels_per_job + 1)))
                jobs.append(
                    TraceJob(arrival_tick=tick, tenant=tenant, workload=key, kernels=kernels)
                )
    jobs.sort(key=lambda job: (job.arrival_tick, job.tenant, job.workload, job.kernels))
    return Trace(
        name=name,
        tick_s=tick_s,
        workloads=catalogue,
        jobs=tuple(jobs),
        metadata={"generator": "mixed", "seed": resolved_seed, "ticks": ticks},
    )


#: Generator registry for the CLI's ``generate-trace --kind``.
GENERATORS = {
    "diurnal": generate_diurnal_trace,
    "training": generate_training_trace,
    "mixed": generate_mixed_trace,
}


def generate_trace(kind: str, **kwargs: Any) -> Trace:
    """Dispatch to one of the named generators (CLI entry point)."""
    try:
        generator = GENERATORS[kind]
    except KeyError:
        raise FleetError(
            f"unknown trace kind {kind!r}; known: {sorted(GENERATORS)}"
        ) from None
    return generator(**kwargs)
