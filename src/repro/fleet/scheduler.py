"""Discrete-time placement of trace jobs onto a modeled GPU fleet.

The scheduler is deliberately simple and completely deterministic: jobs are
served strictly in trace order (FIFO by ``(arrival_tick, position)``), and
each job goes to the GPU that frees up earliest, ties broken by GPU index.
No backfilling, no migration, one job per GPU at a time — which makes the
"never double-book a GPU in a tick" invariant structural and lets the
property suite verify it from the emitted schedule alone.

Power capping propagates the way the paper's DVFS model says it must
(:mod:`repro.gpu.clocks`): a per-GPU cap below a kernel's unconstrained
draw lowers the clock until the cap is respected, which *stretches the
job's runtime* (``1/s`` for a compute-bound kernel at clock scale ``s``)
while lowering its power — capping trades ticks for watts, it does not
delete energy.  The cap that is active on the chosen GPU at the job's
start tick governs its whole run (tick-quantized semantics; a cap event
landing mid-job applies from the next placement on that GPU).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.errors import FleetError
from repro.gpu.clocks import ClockModel, ThrottleState
from repro.gpu.specs import GPUSpec, get_gpu_spec
from repro.fleet.trace import Trace, _require_fields

__all__ = [
    "FleetGPU",
    "CapEvent",
    "FleetSpec",
    "KernelEstimate",
    "ScheduledKernel",
    "FleetSchedule",
    "DiscreteTimeScheduler",
]


@dataclass(frozen=True)
class FleetGPU:
    """One modeled GPU of the fleet: a known model plus an optional cap."""

    model: str
    cap_watts: "float | None" = None

    def __post_init__(self) -> None:
        try:
            get_gpu_spec(self.model)
        except Exception as exc:
            raise FleetError(f"invalid fleet GPU: {exc}") from exc
        if self.cap_watts is not None and self.cap_watts <= 0:
            raise FleetError(f"cap_watts must be positive, got {self.cap_watts}")

    def as_dict(self) -> "dict[str, Any]":
        return {"model": self.model, "cap_watts": self.cap_watts}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FleetGPU":
        data = _require_fields(payload, {"model", "cap_watts"}, "fleet GPU")
        try:
            return cls(**data)
        except TypeError as exc:
            raise FleetError(f"invalid fleet GPU: {exc}") from exc


@dataclass(frozen=True)
class CapEvent:
    """A power-cap change at ``tick``: set (or clear) caps on some GPUs.

    ``gpus=None`` targets the whole fleet; ``cap_watts=None`` clears the
    cap back to the GPU's TDP.  Events apply to placements whose start
    tick is at or after ``tick``.
    """

    tick: int
    cap_watts: "float | None"
    gpus: "tuple[int, ...] | None" = None

    def __post_init__(self) -> None:
        if self.tick < 0:
            raise FleetError(f"cap event tick must be >= 0, got {self.tick}")
        if self.cap_watts is not None and self.cap_watts <= 0:
            raise FleetError(f"cap event cap_watts must be positive, got {self.cap_watts}")
        if self.gpus is not None:
            object.__setattr__(self, "gpus", tuple(int(g) for g in self.gpus))

    def as_dict(self) -> "dict[str, Any]":
        return {
            "tick": self.tick,
            "cap_watts": self.cap_watts,
            "gpus": list(self.gpus) if self.gpus is not None else None,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CapEvent":
        data = _require_fields(payload, {"tick", "cap_watts", "gpus"}, "cap event")
        gpus = data.get("gpus")
        if gpus is not None:
            data["gpus"] = tuple(gpus)
        try:
            return cls(**data)
        except TypeError as exc:
            raise FleetError(f"invalid cap event: {exc}") from exc


@dataclass(frozen=True)
class FleetSpec:
    """The modeled fleet: GPUs, cap events and idle-power accounting."""

    gpus: "tuple[FleetGPU, ...]"
    cap_events: "tuple[CapEvent, ...]" = ()
    #: when true, GPUs draw their spec idle power whenever no job runs on
    #: them; that energy is attributed to the ``"(idle)"`` pseudo-tenant
    include_idle_power: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "gpus", tuple(self.gpus))
        object.__setattr__(
            self, "cap_events", tuple(sorted(self.cap_events, key=lambda e: e.tick))
        )
        if not self.gpus:
            raise FleetError("a fleet needs at least one GPU")
        for event in self.cap_events:
            if event.gpus is not None:
                bad = [g for g in event.gpus if not 0 <= g < len(self.gpus)]
                if bad:
                    raise FleetError(
                        f"cap event at tick {event.tick} targets unknown GPU index(es) {bad}"
                    )

    # ------------------------------------------------------------- builders

    @classmethod
    def from_counts(
        cls,
        counts: "Mapping[str, int]",
        *,
        cap_watts: "float | None" = None,
        cap_events: "Iterable[CapEvent]" = (),
        include_idle_power: bool = True,
    ) -> "FleetSpec":
        """Build a fleet from ``{model: count}`` (sorted by model name)."""
        gpus: "list[FleetGPU]" = []
        for model in sorted(counts):
            count = int(counts[model])
            if count < 1:
                raise FleetError(f"GPU count for {model!r} must be >= 1, got {count}")
            gpus.extend(FleetGPU(model=model, cap_watts=cap_watts) for _ in range(count))
        return cls(
            gpus=tuple(gpus),
            cap_events=tuple(cap_events),
            include_idle_power=include_idle_power,
        )

    # ------------------------------------------------------------ accessors

    def __len__(self) -> int:
        return len(self.gpus)

    def models(self) -> "tuple[str, ...]":
        """Distinct GPU models present, sorted."""
        return tuple(sorted({gpu.model for gpu in self.gpus}))

    def model_counts(self) -> "dict[str, int]":
        counts: "dict[str, int]" = {}
        for gpu in self.gpus:
            counts[gpu.model] = counts.get(gpu.model, 0) + 1
        return dict(sorted(counts.items()))

    def spec(self, index: int) -> GPUSpec:
        return get_gpu_spec(self.gpus[index].model)

    def cap_at(self, tick: int, index: int) -> "float | None":
        """The cap (watts) active on GPU ``index`` at ``tick``, if any."""
        cap = self.gpus[index].cap_watts
        for event in self.cap_events:  # sorted by tick
            if event.tick > tick:
                break
            if event.gpus is None or index in event.gpus:
                cap = event.cap_watts
        return cap

    def power_limit_at(self, tick: int, index: int) -> float:
        """Effective per-GPU power limit: the cap, never above the TDP."""
        tdp = self.spec(index).tdp_watts
        cap = self.cap_at(tick, index)
        return tdp if cap is None else min(cap, tdp)

    def as_dict(self) -> "dict[str, Any]":
        return {
            "gpus": [gpu.as_dict() for gpu in self.gpus],
            "cap_events": [event.as_dict() for event in self.cap_events],
            "include_idle_power": self.include_idle_power,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FleetSpec":
        data = _require_fields(
            payload, {"gpus", "cap_events", "include_idle_power"}, "fleet"
        )
        return cls(
            gpus=tuple(FleetGPU.from_dict(entry) for entry in data.get("gpus", [])),
            cap_events=tuple(
                CapEvent.from_dict(entry) for entry in data.get("cap_events", [])
            ),
            include_idle_power=bool(data.get("include_idle_power", True)),
        )


@dataclass(frozen=True)
class KernelEstimate:
    """Per-kernel numbers the engine produced for one (workload, GPU model).

    ``unconstrained_power_watts`` and ``base_iteration_time_s`` are the
    boost-clock values (the measured TDP throttle, if any, divided back
    out), so the scheduler can re-resolve the DVFS steady state under an
    arbitrary fleet cap through :class:`~repro.gpu.clocks.ClockModel` —
    the same machinery fig7's cross-device study leans on.
    """

    workload: str
    gpu_model: str
    unconstrained_power_watts: float
    base_iteration_time_s: float
    spec: GPUSpec

    def resolve(self, power_limit_watts: "float | None") -> ThrottleState:
        """DVFS steady state of this kernel under ``power_limit_watts``."""
        idle = self.spec.idle_watts
        dynamic = max(self.unconstrained_power_watts - idle, 0.0)
        return ClockModel(self.spec).resolve_throttle(
            idle, dynamic, power_limit_watts=power_limit_watts
        )


@dataclass(frozen=True)
class ScheduledKernel:
    """One placed job: where it ran, for how long, at what power."""

    job_index: int
    tenant: str
    workload: str
    kernels: int
    gpu_index: int
    gpu_model: str
    start_tick: int
    end_tick: int  # exclusive
    power_watts: float
    clock_scale: float
    throttled: bool

    @property
    def duration_ticks(self) -> int:
        return self.end_tick - self.start_tick


@dataclass
class FleetSchedule:
    """Every placement decision for one trace on one fleet."""

    placements: "list[ScheduledKernel]" = field(default_factory=list)
    horizon_ticks: int = 0

    @property
    def throttled_jobs(self) -> int:
        return sum(1 for p in self.placements if p.throttled)

    def by_gpu(self) -> "dict[int, list[ScheduledKernel]]":
        """Placements grouped by GPU, each group in start-tick order."""
        groups: "dict[int, list[ScheduledKernel]]" = {}
        for placement in self.placements:
            groups.setdefault(placement.gpu_index, []).append(placement)
        for group in groups.values():
            group.sort(key=lambda p: p.start_tick)
        return groups


class DiscreteTimeScheduler:
    """FIFO, earliest-free-GPU placement over discrete ticks."""

    def __init__(self, fleet: FleetSpec) -> None:
        self.fleet = fleet
        #: memoized DVFS resolutions keyed by (workload, gpu model, limit)
        self._throttle_memo: "dict[tuple[str, str, float | None], ThrottleState]" = {}

    def _resolve(
        self, estimate: KernelEstimate, power_limit_watts: "float | None"
    ) -> ThrottleState:
        key = (estimate.workload, estimate.gpu_model, power_limit_watts)
        state = self._throttle_memo.get(key)
        if state is None:
            state = estimate.resolve(power_limit_watts)
            self._throttle_memo[key] = state
        return state

    def schedule(
        self,
        trace: Trace,
        estimates: "Mapping[tuple[str, str], KernelEstimate]",
    ) -> FleetSchedule:
        """Place every trace job; raises on a workload with no estimate."""
        schedule = FleetSchedule()
        if not trace.jobs:
            return schedule
        # Min-heap of (next free tick, gpu index): pop order is the whole
        # placement policy, and the tuple tie-break keeps it deterministic.
        free_at: "list[tuple[int, int]]" = [(0, g) for g in range(len(self.fleet))]
        heapq.heapify(free_at)
        jobs = sorted(
            enumerate(trace.jobs), key=lambda item: (item[1].arrival_tick, item[0])
        )
        horizon = 0
        for job_index, job in jobs:
            free_tick, gpu_index = heapq.heappop(free_at)
            model = self.fleet.gpus[gpu_index].model
            estimate = estimates.get((job.workload, model))
            if estimate is None:
                raise FleetError(
                    f"no estimate for workload {job.workload!r} on GPU model {model!r}"
                )
            start = max(job.arrival_tick, free_tick)
            limit = self.fleet.power_limit_at(start, gpu_index)
            state = self._resolve(estimate, limit)
            duration_s = (
                job.kernels * estimate.base_iteration_time_s * state.runtime_scale
            )
            ticks = max(1, math.ceil(duration_s / trace.tick_s))
            end = start + ticks
            heapq.heappush(free_at, (end, gpu_index))
            horizon = max(horizon, end)
            schedule.placements.append(
                ScheduledKernel(
                    job_index=job_index,
                    tenant=job.tenant,
                    workload=job.workload,
                    kernels=job.kernels,
                    gpu_index=gpu_index,
                    gpu_model=model,
                    start_tick=start,
                    end_tick=end,
                    power_watts=state.constrained_power_watts,
                    clock_scale=state.clock_scale,
                    throttled=state.throttled,
                )
            )
        schedule.horizon_ticks = horizon
        return schedule
