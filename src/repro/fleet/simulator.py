"""The fleet simulator: compose per-kernel estimates into cluster series.

:func:`simulate` is the heart of :mod:`repro.fleet`.  It runs in three
strictly separated phases so every phase's determinism argument is local:

1. **Estimate.**  The trace's used workloads × the fleet's distinct GPU
   models become :class:`~repro.experiments.config.ExperimentConfig`\\ s and
   resolve through :func:`~repro.experiments.sweep.run_configs` — the
   cached estimation engine with all three tiers (result, per-seed
   activity, plan) and all three execution backends.  However many million
   kernels the trace schedules, this phase issues at most one engine run
   per distinct fingerprint; a warm simulation issues none.
2. **Schedule.**  :class:`~repro.fleet.scheduler.DiscreteTimeScheduler`
   places jobs FIFO onto the earliest-free GPU, resolving per-GPU power
   caps into DVFS clock scaling (lower power, stretched runtime) through
   the paper's :class:`~repro.gpu.clocks.ClockModel`.
3. **Attribute.**  :func:`~repro.fleet.attribution.attribute_energy` folds
   the placements into per-tenant power series whose sorted-order sum *is*
   the cluster series, making per-tenant energy conservation structural.

Because phase 1 is bit-for-bit identical across ``serial``/``threads``/
``processes`` (the repo's long-standing executor invariant) and phases 2–3
are pure deterministic Python/NumPy over phase 1's output, the whole
simulation replays bit-for-bit: same trace + same seed ⇒ the same power
and energy series on any backend at any worker count.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.cache.store import DEFAULT_CACHE
from repro.errors import FleetError
from repro.experiments.results import ExperimentResult
from repro.experiments.sweep import RunStats, run_configs
from repro.fleet.attribution import EnergyAttribution, attribute_energy
from repro.fleet.scheduler import (
    DiscreteTimeScheduler,
    FleetSchedule,
    FleetSpec,
    KernelEstimate,
)
from repro.fleet.trace import Trace, _require_fields
from repro.gpu.specs import get_gpu_spec
from repro.util.stats import summarize
from repro.util.tables import format_series_chart, format_table

__all__ = ["RESULT_FORMAT", "FleetResult", "build_estimates", "simulate"]

#: Wire-format tag of :meth:`FleetResult.as_dict`; bump on layout change.
RESULT_FORMAT = "repro.fleet.result/v1"

#: Decimal places the replayable summary rounds floats to.  Fine enough
#: that nothing physical is lost, coarse enough that a 1-ulp libm
#: difference between platforms cannot flip a digit — which is what lets
#: the golden summary under ``tests/data/`` be diffed exactly.
SUMMARY_DECIMALS = 6


def _round(value: float) -> float:
    return round(float(value), SUMMARY_DECIMALS)


@dataclass
class FleetResult:
    """A simulated fleet run: the figure-style artifact of :mod:`repro.fleet`.

    Holds the cluster power series, the per-tenant attribution, and enough
    provenance (trace name/metadata, fleet shape, sweep-runner stats) to
    explain where every number came from.  Like
    :class:`~repro.experiments.results.FigureResult` it renders to tables
    and serializes to JSON (:meth:`as_dict` / :meth:`save_json`);
    :meth:`summary` is the deliberately small, float-rounded replay
    contract checked by the golden-trace test and ``--expect``.
    """

    trace_name: str
    tick_s: float
    horizon_ticks: int
    jobs: int
    scheduled_kernels: int
    distinct_configs: int
    throttled_jobs: int
    gpu_models: "dict[str, int]"
    attribution: EnergyAttribution
    run_stats: "dict[str, Any]" = field(default_factory=dict)
    metadata: "dict[str, Any]" = field(default_factory=dict)

    # ------------------------------------------------------------ series

    def power_series_watts(self) -> "list[float]":
        """Cluster power per tick, watts (empty for an empty trace)."""
        return [float(v) for v in self.attribution.cluster_power_watts()]

    def energy_series_j(self) -> "list[float]":
        """Cluster energy per tick, joules."""
        return [p * self.tick_s for p in self.power_series_watts()]

    def tenant_energy_j(self) -> "dict[str, float]":
        return self.attribution.tenant_energy_j()

    @property
    def total_energy_j(self) -> float:
        return self.attribution.total_energy_j()

    @property
    def peak_power_watts(self) -> float:
        series = self.power_series_watts()
        return max(series) if series else 0.0

    @property
    def mean_power_watts(self) -> float:
        series = self.power_series_watts()
        return summarize(series).mean if series else 0.0

    # ------------------------------------------------------------ contract

    def summary(self) -> "dict[str, Any]":
        """The rounded, replayable headline numbers (golden-diff contract)."""
        return {
            "format": "repro.fleet.summary/v1",
            "trace": self.trace_name,
            "tick_s": _round(self.tick_s),
            "horizon_ticks": self.horizon_ticks,
            "jobs": self.jobs,
            "scheduled_kernels": self.scheduled_kernels,
            "distinct_configs": self.distinct_configs,
            "throttled_jobs": self.throttled_jobs,
            "gpu_models": dict(self.gpu_models),
            "peak_power_watts": _round(self.peak_power_watts),
            "mean_power_watts": _round(self.mean_power_watts),
            "total_energy_j": _round(self.total_energy_j),
            "tenant_energy_j": {
                tenant: _round(energy)
                for tenant, energy in sorted(self.tenant_energy_j().items())
            },
        }

    # ------------------------------------------------------------ rendering

    def render(self, chart: bool = True, max_rows: int = 12) -> str:
        """Human-readable tables (and optionally a power chart)."""
        blocks = [
            f"=== fleet simulation: {self.trace_name} "
            f"({sum(self.gpu_models.values())} GPUs, {self.scheduled_kernels} kernels) ==="
        ]
        tenant_rows = [
            [tenant, energy, 100.0 * energy / self.total_energy_j if self.total_energy_j else 0.0]
            for tenant, energy in sorted(self.tenant_energy_j().items())
        ]
        blocks.append(
            format_table(
                ["tenant", "energy_J", "share_%"],
                tenant_rows,
                precision=2,
                title="Per-tenant energy attribution",
            )
        )
        summary_rows = [
            ["horizon_ticks", self.horizon_ticks],
            ["tick_s", self.tick_s],
            ["jobs", self.jobs],
            ["throttled_jobs", self.throttled_jobs],
            ["distinct_configs", self.distinct_configs],
            ["peak_power_W", self.peak_power_watts],
            ["mean_power_W", self.mean_power_watts],
            ["total_energy_J", self.total_energy_j],
        ]
        blocks.append(format_table(["metric", "value"], summary_rows, precision=3))
        series = self.power_series_watts()
        if chart and series:
            step = max(1, len(series) // 64)
            xs = [float(t) for t in range(0, len(series), step)]
            ys = [series[int(x)] for x in xs]
            blocks.append(
                format_series_chart(xs, {"cluster_W": ys}, title="Cluster power over time")
            )
        return "\n".join(blocks)

    # ------------------------------------------------------------ wire form

    def as_dict(self) -> "dict[str, Any]":
        return {
            "format": RESULT_FORMAT,
            "trace_name": self.trace_name,
            "tick_s": self.tick_s,
            "horizon_ticks": self.horizon_ticks,
            "jobs": self.jobs,
            "scheduled_kernels": self.scheduled_kernels,
            "distinct_configs": self.distinct_configs,
            "throttled_jobs": self.throttled_jobs,
            "gpu_models": dict(self.gpu_models),
            "tenant_power_watts": self.attribution.as_dict()["tenant_power_watts"],
            "run_stats": dict(self.run_stats),
            "metadata": dict(self.metadata),
            "summary": self.summary(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FleetResult":
        import numpy as np

        data = _require_fields(
            payload,
            {
                "format", "trace_name", "tick_s", "horizon_ticks", "jobs",
                "scheduled_kernels", "distinct_configs", "throttled_jobs",
                "gpu_models", "tenant_power_watts", "run_stats", "metadata",
                "summary",
            },
            "fleet result",
        )
        fmt = data.get("format", RESULT_FORMAT)
        if fmt != RESULT_FORMAT:
            raise FleetError(
                f"unsupported fleet result format {fmt!r}; expected {RESULT_FORMAT!r}"
            )
        attribution = EnergyAttribution(
            tick_s=float(data["tick_s"]),
            horizon_ticks=int(data["horizon_ticks"]),
            tenant_power_watts={
                tenant: np.asarray(series, dtype=np.float64)
                for tenant, series in data.get("tenant_power_watts", {}).items()
            },
        )
        return cls(
            trace_name=str(data["trace_name"]),
            tick_s=float(data["tick_s"]),
            horizon_ticks=int(data["horizon_ticks"]),
            jobs=int(data["jobs"]),
            scheduled_kernels=int(data["scheduled_kernels"]),
            distinct_configs=int(data["distinct_configs"]),
            throttled_jobs=int(data["throttled_jobs"]),
            gpu_models=dict(data.get("gpu_models", {})),
            attribution=attribution,
            run_stats=dict(data.get("run_stats", {})),
            metadata=dict(data.get("metadata", {})),
        )

    def save_json(self, path: "str | Path") -> Path:
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n")
        return target

    @classmethod
    def load(cls, path: "str | Path") -> "FleetResult":
        source = Path(path)
        try:
            payload = json.loads(source.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise FleetError(f"cannot read fleet result {source}: {exc}") from exc
        return cls.from_dict(payload)


def _estimate_from_result(
    workload: str, gpu_model: str, result: ExperimentResult
) -> KernelEstimate:
    """Fold one engine result into the scheduler's per-kernel numbers.

    The measured iteration time already includes whatever TDP throttle the
    measurement hit; multiplying it back by the measured clock scale
    recovers the boost-clock time, so the scheduler can re-throttle under
    an arbitrary fleet cap without double-counting the TDP.
    """
    measurements = result.measurements
    unconstrained = summarize(
        m.unconstrained_power_watts for m in measurements
    ).mean
    base_time = summarize(
        m.iteration_time_s * m.clock_scale for m in measurements
    ).mean
    return KernelEstimate(
        workload=workload,
        gpu_model=gpu_model,
        unconstrained_power_watts=unconstrained,
        base_iteration_time_s=base_time,
        spec=get_gpu_spec(gpu_model),
    )


def build_estimates(
    trace: Trace,
    fleet: FleetSpec,
    *,
    workers: int = 1,
    backend: str = "auto",
    cache: "object | None" = DEFAULT_CACHE,
    activity_cache: "object | None" = DEFAULT_CACHE,
    plan_cache: "object | None" = DEFAULT_CACHE,
    stats: "RunStats | None" = None,
    estimation_overrides: "Mapping[str, Any] | None" = None,
) -> "dict[tuple[str, str], KernelEstimate]":
    """Resolve every (used workload, GPU model) pair through the engine.

    One :func:`run_configs` call covers the whole cross product, so the
    result/activity/plan tiers and the chosen execution backend all apply;
    the returned mapping is what :class:`DiscreteTimeScheduler` consumes.
    """
    used = trace.used_workloads()
    models = fleet.models()
    pairs = [(workload, model) for workload in used for model in models]
    overrides = dict(estimation_overrides or {})
    configs = [
        trace.workloads[workload].to_config(gpu=model, **overrides)
        for workload, model in pairs
    ]
    results = run_configs(
        configs,
        workers=workers,
        backend=backend,
        cache=cache,
        activity_cache=activity_cache,
        plan_cache=plan_cache,
        stats=stats,
    )
    return {
        pair: _estimate_from_result(pair[0], pair[1], result)
        for pair, result in zip(pairs, results)
    }


def simulate(
    trace: Trace,
    fleet: FleetSpec,
    *,
    workers: int = 1,
    backend: str = "auto",
    cache: "object | None" = DEFAULT_CACHE,
    activity_cache: "object | None" = DEFAULT_CACHE,
    plan_cache: "object | None" = DEFAULT_CACHE,
    stats: "RunStats | None" = None,
    estimation_overrides: "Mapping[str, Any] | None" = None,
) -> FleetResult:
    """Simulate ``trace`` on ``fleet`` and return the :class:`FleetResult`.

    ``workers``/``backend``/cache knobs steer the estimation phase exactly
    like :func:`repro.api.run_configs`; ``estimation_overrides`` applies
    extra :class:`ExperimentConfig` field overrides to every workload
    (tests use it to pin quiet telemetry); ``stats`` lets callers keep the
    estimation-phase :class:`RunStats` accounting.  An empty trace produces
    a zero-length series without touching the engine at all.
    """
    if stats is None:
        stats = RunStats()
    if trace.jobs:
        estimates = build_estimates(
            trace,
            fleet,
            workers=workers,
            backend=backend,
            cache=cache,
            activity_cache=activity_cache,
            plan_cache=plan_cache,
            stats=stats,
            estimation_overrides=estimation_overrides,
        )
    else:
        estimates = {}
    schedule: FleetSchedule = DiscreteTimeScheduler(fleet).schedule(trace, estimates)
    attribution = attribute_energy(schedule, fleet, trace.tick_s)
    return FleetResult(
        trace_name=trace.name,
        tick_s=trace.tick_s,
        horizon_ticks=schedule.horizon_ticks,
        jobs=len(trace.jobs),
        scheduled_kernels=trace.total_kernels,
        distinct_configs=len(estimates),
        throttled_jobs=schedule.throttled_jobs,
        gpu_models=fleet.model_counts(),
        attribution=attribution,
        run_stats=stats.as_dict(),
        metadata=dict(trace.metadata),
    )
