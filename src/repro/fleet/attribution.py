"""Per-tenant power/energy attribution over a fleet schedule.

Attribution is tick-quantized and *conservative by construction*: each
placed job contributes its (cap-resolved) power to its tenant's series for
every tick it occupies a GPU, idle GPU time contributes the spec idle
power to the ``"(idle)"`` pseudo-tenant, and the cluster series is defined
as the per-tick sum of the tenant series (in sorted tenant order, so the
floating-point accumulation order — and therefore the result — is
identical on every execution backend).  Total energy therefore equals the
sum of per-tenant energies up to float addition error, which the property
suite pins down to a relative tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.fleet.scheduler import FleetSchedule, FleetSpec

__all__ = ["IDLE_TENANT", "EnergyAttribution", "attribute_energy"]

#: Pseudo-tenant that absorbs idle-GPU power (when the fleet accounts it).
IDLE_TENANT = "(idle)"


@dataclass
class EnergyAttribution:
    """Per-tenant power series and energy totals for one simulation."""

    tick_s: float
    horizon_ticks: int
    #: tenant -> per-tick power series (watts), length ``horizon_ticks``
    tenant_power_watts: "dict[str, np.ndarray]" = field(default_factory=dict)

    @property
    def tenants(self) -> "list[str]":
        return sorted(self.tenant_power_watts)

    def cluster_power_watts(self) -> np.ndarray:
        """Per-tick cluster power: the tenant series summed in sorted order."""
        total = np.zeros(self.horizon_ticks, dtype=np.float64)
        for tenant in self.tenants:
            total += self.tenant_power_watts[tenant]
        return total

    def tenant_energy_j(self) -> "dict[str, float]":
        """Energy per tenant over the whole horizon, joules."""
        return {
            tenant: float(series.sum(dtype=np.float64)) * self.tick_s
            for tenant, series in sorted(self.tenant_power_watts.items())
        }

    def total_energy_j(self) -> float:
        """Cluster energy over the whole horizon, joules."""
        return float(self.cluster_power_watts().sum(dtype=np.float64)) * self.tick_s

    def as_dict(self) -> "dict[str, Any]":
        return {
            "tick_s": self.tick_s,
            "horizon_ticks": self.horizon_ticks,
            "tenant_power_watts": {
                tenant: [float(v) for v in series]
                for tenant, series in sorted(self.tenant_power_watts.items())
            },
        }


def attribute_energy(
    schedule: FleetSchedule, fleet: FleetSpec, tick_s: float
) -> EnergyAttribution:
    """Attribute every watt of a schedule to a tenant (or to idle).

    Busy ticks carry the job's cap-resolved power (which already includes
    the GPU's idle floor); idle ticks carry the spec idle power when the
    fleet accounts idle draw.  The idle series starts from "every GPU idle
    for the whole horizon" and subtracts each placement's occupancy, so it
    is exact whatever the packing looks like.
    """
    horizon = schedule.horizon_ticks
    attribution = EnergyAttribution(tick_s=float(tick_s), horizon_ticks=horizon)
    for placement in schedule.placements:
        series = attribution.tenant_power_watts.get(placement.tenant)
        if series is None:
            series = np.zeros(horizon, dtype=np.float64)
            attribution.tenant_power_watts[placement.tenant] = series
        series[placement.start_tick : placement.end_tick] += placement.power_watts

    if fleet.include_idle_power and horizon > 0:
        idle_total = float(sum(fleet.spec(g).idle_watts for g in range(len(fleet))))
        idle = np.full(horizon, idle_total, dtype=np.float64)
        for placement in schedule.placements:
            idle[placement.start_tick : placement.end_tick] -= fleet.spec(
                placement.gpu_index
            ).idle_watts
        # Guard against float cancellation turning an exactly-busy tick into
        # a tiny negative idle contribution.
        np.maximum(idle, 0.0, out=idle)
        attribution.tenant_power_watts[IDLE_TENANT] = idle
    return attribution
