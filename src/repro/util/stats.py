"""Statistics helpers used by the measurement harness and analysis code."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "SummaryStats",
    "summarize",
    "confidence_interval",
    "trim_leading",
    "relative_change",
    "geometric_mean",
    "pearson_correlation",
    "spearman_correlation",
]


@dataclass(frozen=True)
class SummaryStats:
    """Summary statistics of a sample of measurements."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    sem: float

    def ci95(self) -> tuple[float, float]:
        """Approximate 95% confidence interval of the mean (normal approx)."""
        half = 1.96 * self.sem
        return (self.mean - half, self.mean + half)

    def as_dict(self) -> dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "sem": self.sem,
        }


def summarize(values: Iterable[float]) -> SummaryStats:
    """Compute :class:`SummaryStats` over an iterable of floats."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return SummaryStats(count=0, mean=math.nan, std=math.nan,
                            minimum=math.nan, maximum=math.nan, sem=math.nan)
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    sem = std / math.sqrt(arr.size) if arr.size > 1 else 0.0
    minimum = float(arr.min())
    maximum = float(arr.max())
    # Accumulated rounding can push the computed mean a few ulps outside the
    # sample range (e.g. mean([0.95] * 3) < 0.95); clamp so the invariant
    # min <= mean <= max always holds.
    mean = min(max(float(arr.mean()), minimum), maximum)
    return SummaryStats(
        count=int(arr.size),
        mean=mean,
        std=std,
        minimum=minimum,
        maximum=maximum,
        sem=sem,
    )


def confidence_interval(values: Sequence[float], level: float = 0.95) -> tuple[float, float]:
    """Normal-approximation confidence interval of the mean."""
    if not 0.0 < level < 1.0:
        raise ValueError(f"level must be in (0, 1), got {level}")
    stats = summarize(values)
    if stats.count == 0:
        return (math.nan, math.nan)
    # Two-sided z value; 1.96 for 95%, computed generally via erfinv.
    z = math.sqrt(2.0) * _erfinv(level)
    half = z * stats.sem
    return (stats.mean - half, stats.mean + half)


def _erfinv(x: float) -> float:
    """Inverse error function (scipy-free approximation, good to ~1e-9)."""
    # Winitzki's approximation refined with two Newton steps.
    a = 0.147
    ln_term = math.log(1.0 - x * x)
    first = 2.0 / (math.pi * a) + ln_term / 2.0
    estimate = math.copysign(
        math.sqrt(math.sqrt(first * first - ln_term / a) - first), x
    )
    for _ in range(2):
        err = math.erf(estimate) - x
        derivative = 2.0 / math.sqrt(math.pi) * math.exp(-estimate * estimate)
        estimate -= err / derivative
    return estimate


def trim_leading(values: Sequence[float], fraction: float = 0.0, count: int = 0) -> np.ndarray:
    """Drop warmup samples from the start of a series.

    Either a ``fraction`` of the series length or an absolute ``count`` of
    samples (whichever removes more) is trimmed, mirroring the paper's
    removal of the first 500 ms of power samples.
    """
    arr = np.asarray(values, dtype=np.float64)
    if not 0.0 <= fraction < 1.0:
        raise ValueError(f"fraction must be in [0, 1), got {fraction}")
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    drop = max(int(round(fraction * arr.size)), count)
    drop = min(drop, max(arr.size - 1, 0))
    return arr[drop:]


def relative_change(baseline: float, value: float) -> float:
    """Signed relative change ``(value - baseline) / baseline``."""
    if baseline == 0:
        raise ValueError("baseline must be non-zero for a relative change")
    return (value - baseline) / baseline


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return math.nan
    if np.any(arr <= 0):
        raise ValueError("geometric_mean requires strictly positive values")
    return float(np.exp(np.log(arr).mean()))


def pearson_correlation(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson correlation coefficient of two equal-length sequences."""
    xa = np.asarray(x, dtype=np.float64)
    ya = np.asarray(y, dtype=np.float64)
    if xa.shape != ya.shape:
        raise ValueError("pearson_correlation requires equal-length inputs")
    if xa.size < 2:
        return math.nan
    xs = xa - xa.mean()
    ys = ya - ya.mean()
    denom = math.sqrt(float((xs * xs).sum()) * float((ys * ys).sum()))
    if denom == 0.0:
        return 0.0
    return float((xs * ys).sum() / denom)


def spearman_correlation(x: Sequence[float], y: Sequence[float]) -> float:
    """Spearman rank correlation of two equal-length sequences."""
    xa = np.asarray(x, dtype=np.float64)
    ya = np.asarray(y, dtype=np.float64)
    if xa.shape != ya.shape:
        raise ValueError("spearman_correlation requires equal-length inputs")
    ranks_x = np.argsort(np.argsort(xa)).astype(np.float64)
    ranks_y = np.argsort(np.argsort(ya)).astype(np.float64)
    return pearson_correlation(ranks_x, ranks_y)
