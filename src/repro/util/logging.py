"""Library logging setup.

The library never configures the root logger; it exposes a package logger
that applications (examples, benchmarks) can opt into.
"""

from __future__ import annotations

import logging

__all__ = ["get_logger", "enable_console_logging"]

_PACKAGE_LOGGER_NAME = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a child logger of the ``repro`` package logger."""
    if name is None or name == _PACKAGE_LOGGER_NAME:
        return logging.getLogger(_PACKAGE_LOGGER_NAME)
    if name.startswith(f"{_PACKAGE_LOGGER_NAME}."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_PACKAGE_LOGGER_NAME}.{name}")


def enable_console_logging(level: int = logging.INFO) -> logging.Logger:
    """Attach a simple console handler to the package logger (idempotent)."""
    logger = get_logger()
    logger.setLevel(level)
    has_console = any(
        isinstance(handler, logging.StreamHandler) for handler in logger.handlers
    )
    if not has_console:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
        )
        logger.addHandler(handler)
    return logger
