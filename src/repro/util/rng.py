"""Deterministic random-number management.

Every stochastic component of the library derives its generator from an
experiment seed plus a tuple of string/integer keys.  Derivation is stable
across processes and Python versions (it hashes the key material with
SHA-256 rather than relying on ``hash()``), which keeps experiment results
reproducible and lets independent components draw independent streams.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

import numpy as np

__all__ = ["derive_seed", "derive_rng", "spawn_rngs"]


def derive_seed(base_seed: int, *keys: object) -> int:
    """Derive a 63-bit seed from ``base_seed`` and arbitrary key material.

    The same ``(base_seed, keys)`` pair always produces the same seed; any
    change to either produces an (almost surely) different one.
    """
    hasher = hashlib.sha256()
    hasher.update(str(int(base_seed)).encode("utf-8"))
    for key in keys:
        hasher.update(b"\x1f")
        hasher.update(repr(key).encode("utf-8"))
    digest = hasher.digest()
    return int.from_bytes(digest[:8], "little") & ((1 << 63) - 1)


def derive_rng(base_seed: int, *keys: object) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` derived from seed + keys."""
    return np.random.default_rng(derive_seed(base_seed, *keys))


def spawn_rngs(base_seed: int, count: int, *keys: object) -> list[np.random.Generator]:
    """Return ``count`` independent generators derived from seed + keys."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return [derive_rng(base_seed, *keys, index) for index in range(count)]


def as_seed_sequence(base_seed: int, keys: Sequence[object] = ()) -> np.random.SeedSequence:
    """Return a :class:`numpy.random.SeedSequence` for bulk spawning."""
    return np.random.SeedSequence(derive_seed(base_seed, *tuple(keys)))


def shuffled_indices(rng: np.random.Generator, n: int) -> np.ndarray:
    """Return a random permutation of ``range(n)`` as ``int64``."""
    return rng.permutation(n).astype(np.int64)


def sample_without_replacement(
    rng: np.random.Generator, population: int, count: int
) -> np.ndarray:
    """Sample ``count`` distinct indices from ``range(population)``.

    Falls back to returning the whole population (shuffled) when ``count``
    is greater than or equal to the population size.
    """
    if count >= population:
        return shuffled_indices(rng, population)
    return rng.choice(population, size=count, replace=False).astype(np.int64)


def iter_seeds(base_seed: int, count: int) -> Iterable[int]:
    """Yield ``count`` derived experiment seeds."""
    for index in range(count):
        yield derive_seed(base_seed, "seed", index)
