"""Small argument-validation helpers shared across the package."""

from __future__ import annotations

from typing import Iterable, TypeVar

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "require_positive",
    "require_non_negative",
    "require_in_range",
    "require_fraction",
    "require_one_of",
    "require_matrix",
    "require_power_of_two",
]

T = TypeVar("T")


def require_positive(value: float, name: str) -> float:
    if not value > 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return value


def require_non_negative(value: float, name: str) -> float:
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return value


def require_in_range(value: float, low: float, high: float, name: str) -> float:
    if not low <= value <= high:
        raise ConfigurationError(f"{name} must be within [{low}, {high}], got {value!r}")
    return value


def require_fraction(value: float, name: str) -> float:
    """Validate a value expected to lie in [0, 1]."""
    return require_in_range(value, 0.0, 1.0, name)


def require_one_of(value: T, options: Iterable[T], name: str) -> T:
    opts = list(options)
    if value not in opts:
        raise ConfigurationError(f"{name} must be one of {opts}, got {value!r}")
    return value


def require_matrix(array: np.ndarray, name: str) -> np.ndarray:
    arr = np.asarray(array)
    if arr.ndim != 2:
        raise ConfigurationError(f"{name} must be a 2-D matrix, got ndim={arr.ndim}")
    if arr.shape[0] == 0 or arr.shape[1] == 0:
        raise ConfigurationError(f"{name} must be non-empty, got shape {arr.shape}")
    return arr


def require_power_of_two(value: int, name: str) -> int:
    if value <= 0 or (value & (value - 1)) != 0:
        raise ConfigurationError(f"{name} must be a positive power of two, got {value!r}")
    return value
