"""Vectorized bit-level primitives.

Everything in this module operates on NumPy arrays of *unsigned integer
words* (``uint8``/``uint16``/``uint32``/``uint64``).  Encoding values of a
particular datatype into such words is the job of :mod:`repro.dtypes`; this
module only counts bits.

The implementations follow the HPC guidance for this project: no Python
loops over elements, byte-table popcount, and explicit contiguity so views
never silently copy in hot paths.

.. rubric:: Released-GIL (nogil) sections

Every hot kernel here bottoms out in NumPy ufunc/reduction loops —
``bitwise_xor``, ``bitwise_count`` (or the byte-table fancy-index gather on
older NumPy), ``sum`` reductions — all of which drop the GIL for the
duration of their C inner loop (NumPy's ``NPY_BEGIN_THREADS`` around ufunc
and reduction execution).  Python-level work per call is a handful of shape
checks and view constructions, so concurrent calls from a thread pool run
effectively in parallel; this is what makes the sweep runner's ``threads``
backend scale near-linearly on estimation-bound workloads
(``benchmarks/bench_engine_performance.py::bench_nogil_kernel_threads``
measures it).  The kernels share no mutable module state — the only global,
:data:`POPCOUNT_TABLE`, is read-only — so no locking is needed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ActivityError

__all__ = [
    "POPCOUNT_TABLE",
    "bit_width",
    "popcount",
    "hamming_weight",
    "hamming_weight_fraction",
    "hamming_distance",
    "bit_alignment",
    "toggle_count",
    "toggle_fraction",
    "toggle_fraction_along_axis",
    "toggle_fraction_per_slice",
    "set_low_bits_mask",
    "set_high_bits_mask",
]

#: Precomputed popcount for every byte value.  Indexing an arbitrary-shape
#: ``uint8`` array with this table is the fastest pure-NumPy popcount on
#: NumPy builds without the native ``bitwise_count`` ufunc.
POPCOUNT_TABLE: np.ndarray = np.array(
    [bin(i).count("1") for i in range(256)], dtype=np.uint8
)

#: NumPy >= 2.0 ships a hardware-backed popcount ufunc that is an order of
#: magnitude faster than the byte-table gather; fall back to the table on
#: older builds.
_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")

_UNSIGNED_KINDS = ("u",)


def _require_unsigned(words: np.ndarray, name: str = "words") -> np.ndarray:
    arr = np.asarray(words)
    if arr.dtype.kind not in _UNSIGNED_KINDS:
        raise ActivityError(
            f"{name} must be an unsigned integer array, got dtype {arr.dtype}"
        )
    return arr


def bit_width(words: np.ndarray) -> int:
    """Return the number of bits per word for an unsigned integer array."""
    arr = _require_unsigned(words)
    return arr.dtype.itemsize * 8


def popcount(words: np.ndarray) -> np.ndarray:
    """Count the set bits of each word.

    Parameters
    ----------
    words:
        Unsigned integer array of any shape.

    Returns
    -------
    numpy.ndarray
        ``int64`` array with the same shape as ``words`` containing the
        number of set bits in each element.
    """
    arr = _require_unsigned(words)
    if arr.size == 0:
        return np.zeros(arr.shape, dtype=np.int64)
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(arr).astype(np.int64)
    flat = np.ascontiguousarray(arr)
    as_bytes = flat.view(np.uint8).reshape(*flat.shape, flat.dtype.itemsize)
    return POPCOUNT_TABLE[as_bytes].sum(axis=-1, dtype=np.int64)


def hamming_weight(words: np.ndarray) -> int:
    """Total number of set bits across the whole array."""
    return int(popcount(words).sum())


def hamming_weight_fraction(words: np.ndarray) -> float:
    """Fraction of set bits across the whole array, in ``[0, 1]``."""
    arr = _require_unsigned(words)
    if arr.size == 0:
        return 0.0
    total_bits = arr.size * bit_width(arr)
    return hamming_weight(arr) / total_bits


def hamming_distance(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Per-element Hamming distance between two equally shaped word arrays."""
    aa = _require_unsigned(a, "a")
    bb = _require_unsigned(b, "b")
    if aa.shape != bb.shape:
        raise ActivityError(
            f"hamming_distance requires matching shapes, got {aa.shape} vs {bb.shape}"
        )
    if aa.dtype != bb.dtype:
        raise ActivityError(
            f"hamming_distance requires matching dtypes, got {aa.dtype} vs {bb.dtype}"
        )
    return popcount(np.bitwise_xor(aa, bb))


def bit_alignment(a: np.ndarray, b: np.ndarray) -> float:
    """Mean bit alignment between paired words of ``a`` and ``b``.

    Alignment is 1.0 when all bits agree and 0.0 when every bit differs,
    matching the definition used for Figure 8 of the paper.
    """
    aa = _require_unsigned(a, "a")
    if aa.size == 0:
        return 1.0
    width = bit_width(aa)
    mean_distance = float(hamming_distance(a, b).mean())
    return 1.0 - mean_distance / width


def toggle_count(a: np.ndarray, b: np.ndarray) -> int:
    """Total number of bit flips when words ``a`` are replaced by words ``b``."""
    return int(hamming_distance(a, b).sum())


def toggle_fraction(a: np.ndarray, b: np.ndarray) -> float:
    """Fraction of bits that flip when ``a`` is replaced by ``b`` (in ``[0, 1]``)."""
    aa = _require_unsigned(a, "a")
    if aa.size == 0:
        return 0.0
    total_bits = aa.size * bit_width(aa)
    return toggle_count(a, b) / total_bits


def toggle_fraction_along_axis(words: np.ndarray, axis: int) -> float:
    """Mean toggle fraction between successive words along ``axis``.

    This models a datapath latch that sees the words streamed one after the
    other in the order they appear along ``axis`` (for example the k-loop of
    a GEMM streaming a row of ``A``).  For an array with a single element
    along ``axis`` there are no transitions and the result is 0.
    """
    arr = _require_unsigned(words)
    if arr.ndim == 0:
        raise ActivityError("toggle_fraction_along_axis requires at least 1-D input")
    axis = axis % arr.ndim
    n = arr.shape[axis]
    if n < 2:
        return 0.0
    lag, lead = _successive_views(arr, axis)
    return toggle_fraction(lag, lead)


def _successive_views(arr: np.ndarray, axis: int) -> tuple[np.ndarray, np.ndarray]:
    """Zero-copy (lag, lead) views of successive words along ``axis``."""
    lag_index = [slice(None)] * arr.ndim
    lead_index = [slice(None)] * arr.ndim
    lag_index[axis] = slice(0, -1)
    lead_index[axis] = slice(1, None)
    return arr[tuple(lag_index)], arr[tuple(lead_index)]


def toggle_fraction_per_slice(words: np.ndarray, axis: int) -> np.ndarray:
    """Per-slice toggle fraction between successive words along ``axis``.

    Axis 0 is the batch axis: for input of shape ``(S, ...)`` the result is a
    ``float64`` array of ``S`` toggle fractions, where entry ``s`` equals
    ``toggle_fraction_along_axis(words[s], axis - 1)`` bit for bit (toggle
    counts are integer sums, so the reduction order cannot change the
    result).  This is the stacked fast path used by the batched activity
    estimators.
    """
    arr = _require_unsigned(words)
    if arr.ndim < 2:
        raise ActivityError("toggle_fraction_per_slice requires at least 2-D input")
    axis = axis % arr.ndim
    if axis == 0:
        raise ActivityError("axis 0 is the batch axis; toggles must run along another axis")
    batch = arr.shape[0]
    n = arr.shape[axis]
    if n < 2:
        return np.zeros(batch, dtype=np.float64)
    lag, lead = _successive_views(arr, axis)
    distances = popcount(np.bitwise_xor(lag, lead))
    per_slice = distances.reshape(batch, -1).sum(axis=1)
    total_bits = lag[0].size * bit_width(arr)
    return per_slice / total_bits


def set_low_bits_mask(width: int, count: int, dtype: np.dtype) -> int:
    """Return a mask with the ``count`` least significant bits of a ``width``-bit word set."""
    if not 0 <= count <= width:
        raise ActivityError(f"count must be within [0, {width}], got {count}")
    if count == 0:
        return 0
    mask = (1 << count) - 1
    return int(np.array(mask, dtype=np.uint64).astype(dtype))


def set_high_bits_mask(width: int, count: int, dtype: np.dtype) -> int:
    """Return a mask with the ``count`` most significant bits of a ``width``-bit word set."""
    if not 0 <= count <= width:
        raise ActivityError(f"count must be within [0, {width}], got {count}")
    if count == 0:
        return 0
    low = (1 << (width - count)) - 1
    full = (1 << width) - 1
    mask = full ^ low
    return int(np.array(mask, dtype=np.uint64).astype(dtype))
