"""Plain-text rendering of tables and simple charts.

The benchmark harness regenerates the paper's figures as text: a table of
the swept parameter vs. the measured quantity plus a small ASCII line chart
so trends (and crossovers such as the sparsity-after-sorting peak) are
visible directly in terminal output.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "format_series_chart", "format_kv"]


def _format_cell(value: object, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    precision: int = 3,
    title: str | None = None,
) -> str:
    """Render a fixed-width table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Row values; floats are formatted with ``precision`` decimals.
    precision:
        Number of decimals used for float cells.
    title:
        Optional title printed above the table.
    """
    text_rows = [[_format_cell(cell, precision) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in text_rows)
    return "\n".join(lines)


def format_series_chart(
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 60,
    height: int = 12,
    title: str | None = None,
) -> str:
    """Render one or more y-series against shared x values as an ASCII chart.

    Each series gets its own marker character.  The chart is intentionally
    simple — enough to see monotonic trends, peaks, and rankings.
    """
    if width < 10 or height < 4:
        raise ValueError("chart needs width >= 10 and height >= 4")
    xs = list(x)
    if not xs:
        return title or ""
    all_values = [v for values in series.values() for v in values]
    if not all_values:
        return title or ""
    y_min = min(all_values)
    y_max = max(all_values)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = min(xs), max(xs)
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    markers = "*o+x#@%&"
    legend = []
    for series_index, (name, values) in enumerate(series.items()):
        marker = markers[series_index % len(markers)]
        legend.append(f"{marker} = {name}")
        for xv, yv in zip(xs, values):
            col = int(round((xv - x_min) / (x_max - x_min) * (width - 1)))
            row = int(round((yv - y_min) / (y_max - y_min) * (height - 1)))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"y: [{y_min:.3f}, {y_max:.3f}]   x: [{x_min:.3g}, {x_max:.3g}]")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append("  ".join(legend))
    return "\n".join(lines)


def format_kv(pairs: Mapping[str, object], precision: int = 3, title: str | None = None) -> str:
    """Render key/value pairs aligned in two columns."""
    keys = list(pairs.keys())
    if not keys:
        return title or ""
    key_width = max(len(k) for k in keys)
    lines = []
    if title:
        lines.append(title)
    for key in keys:
        lines.append(f"{key.ljust(key_width)} : {_format_cell(pairs[key], precision)}")
    return "\n".join(lines)
