"""Shared low-level utilities: bit manipulation, RNG, statistics, rendering."""

from repro.util.bits import (
    bit_alignment,
    hamming_distance,
    hamming_weight,
    hamming_weight_fraction,
    popcount,
    toggle_count,
    toggle_fraction,
    toggle_fraction_along_axis,
)
from repro.util.rng import derive_rng, derive_seed, spawn_rngs
from repro.util.stats import (
    SummaryStats,
    confidence_interval,
    geometric_mean,
    relative_change,
    summarize,
    trim_leading,
)

__all__ = [
    "bit_alignment",
    "hamming_distance",
    "hamming_weight",
    "hamming_weight_fraction",
    "popcount",
    "toggle_count",
    "toggle_fraction",
    "toggle_fraction_along_axis",
    "derive_rng",
    "derive_seed",
    "spawn_rngs",
    "SummaryStats",
    "confidence_interval",
    "geometric_mean",
    "relative_change",
    "summarize",
    "trim_leading",
]
