"""repro: reproduction of "Input-Dependent Power Usage in GPUs" (SC 2024).

The package models how the *values and placement* of GEMM input data change
GPU power draw, reproduces the paper's measurement methodology end to end on
a simulated GPU substrate, and implements the power-aware optimizations the
paper proposes as future work.

Quick start::

    import repro

    result = repro.measure_gemm_power(
        pattern="sorted_rows", pattern_params={"fraction": 1.0},
        dtype="fp16_t", gpu="a100", matrix_size=512,
    )
    print(result.mean_power_watts)

See ``examples/`` for complete scripts and ``benchmarks/`` for the per-figure
reproduction harness.
"""

from __future__ import annotations

from repro.activity import ActivityReport, SamplingConfig, estimate_activity
from repro.dtypes import PAPER_DTYPES, get_dtype, list_dtypes
from repro.errors import ReproError
from repro.experiments import (
    ExperimentConfig,
    ExperimentResult,
    FigureResult,
    SweepResult,
    run_experiment,
    run_sweep,
)
from repro.gpu import Device, GPUSpec, get_gpu_spec, list_gpus
from repro.kernels import GemmOperands, GemmProblem, reference_gemm
from repro.patterns import build_pattern, list_patterns
from repro.power import PowerModel
from repro.runtime import RuntimeModel
from repro.telemetry import PowerTrace

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "ActivityReport",
    "SamplingConfig",
    "estimate_activity",
    "get_dtype",
    "list_dtypes",
    "PAPER_DTYPES",
    "Device",
    "GPUSpec",
    "get_gpu_spec",
    "list_gpus",
    "GemmProblem",
    "GemmOperands",
    "reference_gemm",
    "build_pattern",
    "list_patterns",
    "PowerModel",
    "RuntimeModel",
    "PowerTrace",
    "ExperimentConfig",
    "ExperimentResult",
    "SweepResult",
    "FigureResult",
    "run_experiment",
    "run_sweep",
    "measure_gemm_power",
]


def measure_gemm_power(
    pattern: str = "gaussian",
    pattern_params: dict | None = None,
    dtype: str = "fp16_t",
    gpu: str = "a100",
    matrix_size: int = 512,
    seeds: int = 3,
    **overrides: object,
) -> ExperimentResult:
    """Measure (simulate) GEMM power for one input pattern.

    This is the one-call public entry point: it builds an
    :class:`~repro.experiments.config.ExperimentConfig`, runs the
    measurement harness, and returns the aggregated result.
    """
    config = ExperimentConfig(
        pattern_family=pattern,
        pattern_params=pattern_params or {},
        dtype=dtype,
        gpu=gpu,
        matrix_size=matrix_size,
        seeds=seeds,
    )
    if overrides:
        config = config.with_overrides(**overrides)
    return run_experiment(config)
