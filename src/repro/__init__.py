"""repro: reproduction of "Input-Dependent Power Usage in GPUs" (SC 2024).

The package models how the *values and placement* of GEMM input data change
GPU power draw, reproduces the paper's measurement methodology end to end on
a simulated GPU substrate, and implements the power-aware optimizations the
paper proposes as future work.

Quick start::

    import repro

    result = repro.measure_gemm_power(
        pattern="sorted_rows", pattern_params={"fraction": 1.0},
        dtype="fp16_t", gpu="a100", matrix_size=512,
    )
    print(result.mean_power_watts)

Application code should prefer the stable façade :mod:`repro.api`
(``from repro import api``), which documents the supported entry points —
``run_experiment`` / ``run_configs`` / ``run_sweep`` / ``serve`` plus the
cache handles — with keyword-only tuning arguments and a deprecation
policy.  The estimation server lives in :mod:`repro.serve`
(``python -m repro.serve``); the pure, side-effect-free pipeline in
:mod:`repro.core`.

See ``examples/`` for complete scripts and ``benchmarks/`` for the per-figure
reproduction harness.
"""

from __future__ import annotations

from repro._version import __version__
from repro.activity import (
    ActivityEngine,
    ActivityReport,
    SamplingConfig,
    estimate_activity,
    estimate_activity_batch,
)
from repro.cache import (
    ActivityCache,
    CacheStats,
    ExperimentCache,
    activity_fingerprint,
    experiment_fingerprint,
    plan_fingerprint,
)
from repro.dtypes import PAPER_DTYPES, get_dtype, list_dtypes
from repro.errors import ReproError
from repro.experiments import (
    ExperimentConfig,
    ExperimentPlan,
    ExperimentResult,
    FigureResult,
    PlanCache,
    RunStats,
    SweepResult,
    build_plan,
    run_configs,
    run_experiment,
    run_sweep,
)
from repro.gpu import Device, GPUSpec, get_gpu_spec, list_gpus
from repro.kernels import GemmOperands, GemmProblem, reference_gemm
from repro.patterns import build_pattern, list_patterns
from repro.power import PowerModel
from repro.runtime import RuntimeModel
from repro.telemetry import PowerTrace

__all__ = [
    "__version__",
    "ReproError",
    "ActivityEngine",
    "ActivityReport",
    "SamplingConfig",
    "estimate_activity",
    "estimate_activity_batch",
    "ExperimentCache",
    "ActivityCache",
    "PlanCache",
    "CacheStats",
    "experiment_fingerprint",
    "activity_fingerprint",
    "plan_fingerprint",
    "get_dtype",
    "list_dtypes",
    "PAPER_DTYPES",
    "Device",
    "GPUSpec",
    "get_gpu_spec",
    "list_gpus",
    "GemmProblem",
    "GemmOperands",
    "reference_gemm",
    "build_pattern",
    "list_patterns",
    "PowerModel",
    "RuntimeModel",
    "PowerTrace",
    "ExperimentConfig",
    "ExperimentPlan",
    "build_plan",
    "ExperimentResult",
    "SweepResult",
    "FigureResult",
    "RunStats",
    "run_experiment",
    "run_configs",
    "run_sweep",
    "measure_gemm_power",
    "measure_gemm_power_batch",
    # lazily imported submodules (see module __getattr__)
    "api",
    "core",
    "fleet",
    "optimize",
    "serve",
]

#: Submodules exposed lazily so ``import repro`` stays cheap and the
#: ``serve`` *module* is never shadowed by a same-named function.
_LAZY_SUBMODULES = ("api", "core", "fleet", "optimize", "serve")


def __getattr__(name: str) -> object:
    if name in _LAZY_SUBMODULES:
        import importlib

        return importlib.import_module(f"repro.{name}")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> "list[str]":
    return sorted(set(globals()) | set(_LAZY_SUBMODULES))


def _build_config(
    pattern: str = "gaussian",
    pattern_params: dict | None = None,
    dtype: str = "fp16_t",
    gpu: str = "a100",
    matrix_size: int = 512,
    seeds: int = 3,
    **overrides: object,
) -> ExperimentConfig:
    config = ExperimentConfig(
        pattern_family=pattern,
        pattern_params=pattern_params or {},
        dtype=dtype,
        gpu=gpu,
        matrix_size=matrix_size,
        seeds=seeds,
    )
    return config.with_overrides(**overrides) if overrides else config


def measure_gemm_power(
    pattern: str = "gaussian",
    pattern_params: dict | None = None,
    dtype: str = "fp16_t",
    gpu: str = "a100",
    matrix_size: int = 512,
    seeds: int = 3,
    **overrides: object,
) -> ExperimentResult:
    """Measure (simulate) GEMM power for one input pattern.

    This is the one-call public entry point: it builds an
    :class:`~repro.experiments.config.ExperimentConfig`, runs the
    measurement harness (serving repeats from the content-addressed result
    cache), and returns the aggregated result.
    """
    return run_experiment(
        _build_config(
            pattern=pattern,
            pattern_params=pattern_params,
            dtype=dtype,
            gpu=gpu,
            matrix_size=matrix_size,
            seeds=seeds,
            **overrides,
        )
    )


def measure_gemm_power_batch(
    workloads: "list[ExperimentConfig | dict]",
    workers: int = 1,
    progress: "object | None" = None,
    backend: str = "auto",
) -> list[ExperimentResult]:
    """Measure a batch of workloads in one call.

    Each entry is either an :class:`ExperimentConfig` or a dict of
    :func:`measure_gemm_power` keyword arguments.  The batch goes through
    the sweep runner, so identical workloads are computed once, previously
    measured ones come from the result cache, and ``workers > 1`` fans the
    remainder out over a :mod:`repro.parallel` execution backend
    (released-GIL threads by default; see ``backend=``).
    """
    configs = [
        workload
        if isinstance(workload, ExperimentConfig)
        else _build_config(**workload)
        for workload in workloads
    ]
    return run_configs(configs, workers=workers, progress=progress, backend=backend)
