"""Single source of truth for the package version.

Kept in its own module (instead of ``repro/__init__``) so packaging tools
can read it via ``[tool.setuptools.dynamic]`` without importing the full
package, and so :mod:`repro.cache` can fingerprint the code version without
creating an import cycle.
"""

__version__ = "1.1.0"
