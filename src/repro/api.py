"""The stable public façade of the repro library.

``repro.api`` is the one import that application code needs::

    from repro import api

    result = api.run_experiment(api.ExperimentConfig(matrix_size=1024))
    sweep = api.run_sweep(api.ExperimentConfig(), "sparsity", [0.0, 0.5, 0.9])
    api.serve(port=8035)          # estimation-as-a-service (repro.serve)

Everything exported here is covered by the deprecation policy: symbols
move out of this module only after a release of ``DeprecationWarning``
shims (see ``repro.experiments.harness`` for the pattern).  The façade
functions mirror the underlying machinery with **keyword-only** tuning
arguments — positional call sites can never silently change meaning when
a knob is added — and are thin enough that going through them costs one
function call.

The deeper modules (``repro.experiments``, ``repro.cache``,
``repro.core``, ``repro.serve``) remain importable for power users;
their internals may move between minor versions, the façade's will not.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.cache.store import (
    DEFAULT_CACHE,
    ActivityCache,
    ExperimentCache,
    get_default_activity_cache,
    get_default_cache,
    peek_default_caches,
)
from repro.core import estimate_experiment
from repro.errors import ReproError
from repro.experiments import harness as _harness
from repro.experiments import sweep as _sweep
from repro.experiments.config import ExperimentConfig
from repro.experiments.plan import PlanCache, get_default_plan_cache
from repro.experiments.results import ExperimentResult, SweepResult
from repro.experiments.sweep import RunStats
from repro.fleet.scheduler import CapEvent, FleetSpec
from repro.fleet.simulator import FleetResult
from repro.fleet.simulator import simulate as _fleet_simulate
from repro.fleet.trace import Trace, generate_trace
from repro.optimize.engines import OptimizationResult
from repro.optimize.engines import run_study as _run_study
from repro.serve.server import serve
from repro.serve.service import ServiceConfig

__all__ = [
    # entry points
    "run_experiment",
    "run_configs",
    "run_sweep",
    "estimate_experiment",
    "serve",
    # optimization studies (repro.optimize.engines)
    "optimize",
    "OptimizationResult",
    # fleet-scale simulation (repro.fleet)
    "simulate_fleet",
    "generate_trace",
    "Trace",
    "FleetSpec",
    "CapEvent",
    "FleetResult",
    # configuration / results
    "ExperimentConfig",
    "ExperimentResult",
    "SweepResult",
    "RunStats",
    "ServiceConfig",
    "ReproError",
    # cache handles
    "DEFAULT_CACHE",
    "ExperimentCache",
    "ActivityCache",
    "PlanCache",
    "default_caches",
    "get_default_cache",
    "get_default_activity_cache",
    "get_default_plan_cache",
]


def run_experiment(
    config: ExperimentConfig,
    *,
    cache: "object | None" = DEFAULT_CACHE,
    activity_cache: "object | None" = DEFAULT_CACHE,
    plan_cache: "object | None" = DEFAULT_CACHE,
) -> ExperimentResult:
    """Measure one configuration, serving repeats from the result cache.

    Façade over :func:`repro.experiments.harness.run_experiment` with the
    cache knobs keyword-only; see there for cache-argument semantics
    (explicit instance / ``None`` / default sentinel).
    """
    return _harness.run_experiment(
        config, cache=cache, activity_cache=activity_cache, plan_cache=plan_cache
    )


def run_configs(
    configs: Iterable[ExperimentConfig],
    *,
    workers: int = 1,
    cache: "object | None" = DEFAULT_CACHE,
    activity_cache: "object | None" = DEFAULT_CACHE,
    plan_cache: "object | None" = DEFAULT_CACHE,
    dedupe: bool = True,
    chunksize: "int | None" = None,
    progress: "Any | None" = None,
    stats: "RunStats | None" = None,
    backend: str = "auto",
) -> list[ExperimentResult]:
    """Measure a batch of configurations, optionally across a worker pool.

    Façade over :func:`repro.experiments.sweep.run_configs` with every
    tuning argument keyword-only.
    """
    return _sweep.run_configs(
        configs,
        workers=workers,
        cache=cache,
        activity_cache=activity_cache,
        plan_cache=plan_cache,
        dedupe=dedupe,
        chunksize=chunksize,
        progress=progress,
        stats=stats,
        backend=backend,
    )


def run_sweep(
    base: ExperimentConfig,
    parameter: str,
    values: Sequence[Any],
    *,
    target: str = "pattern",
    label: str = "",
    workers: int = 1,
    cache: "object | None" = DEFAULT_CACHE,
    activity_cache: "object | None" = DEFAULT_CACHE,
    plan_cache: "object | None" = DEFAULT_CACHE,
    progress: "Any | None" = None,
    stats: "RunStats | None" = None,
    backend: str = "auto",
) -> SweepResult:
    """Sweep one parameter and collect the results.

    Façade over :func:`repro.experiments.sweep.run_sweep` with every
    tuning argument keyword-only.
    """
    return _sweep.run_sweep(
        base,
        parameter,
        values,
        target=target,
        label=label,
        workers=workers,
        cache=cache,
        activity_cache=activity_cache,
        plan_cache=plan_cache,
        progress=progress,
        stats=stats,
        backend=backend,
    )


def simulate_fleet(
    trace: Trace,
    fleet: FleetSpec,
    *,
    workers: int = 1,
    backend: str = "auto",
    cache: "object | None" = DEFAULT_CACHE,
    activity_cache: "object | None" = DEFAULT_CACHE,
    plan_cache: "object | None" = DEFAULT_CACHE,
    stats: "RunStats | None" = None,
    estimation_overrides: "dict[str, Any] | None" = None,
) -> FleetResult:
    """Replay a datacenter trace against a modeled GPU fleet.

    Façade over :func:`repro.fleet.simulator.simulate` with every tuning
    argument keyword-only.  Estimation goes through :func:`run_configs`,
    so a warm simulation touches the engine zero times regardless of how
    many kernels the trace schedules.
    """
    return _fleet_simulate(
        trace,
        fleet,
        workers=workers,
        backend=backend,
        cache=cache,
        activity_cache=activity_cache,
        plan_cache=plan_cache,
        stats=stats,
        estimation_overrides=estimation_overrides,
    )


def optimize(
    study: "Any",
    *,
    workers: int = 1,
    backend: str = "auto",
    cache: "object | None" = DEFAULT_CACHE,
    activity_cache: "object | None" = DEFAULT_CACHE,
    plan_cache: "object | None" = DEFAULT_CACHE,
    max_evaluations: "int | None" = None,
    checkpoint_path: "Any | None" = None,
) -> OptimizationResult:
    """Run an optimization study (path or mapping) to convergence.

    Façade over :func:`repro.optimize.engines.run_study` with every tuning
    argument keyword-only.  Each engine proposal is evaluated through
    :func:`run_configs`, so re-running a deterministic study against warm
    caches touches the estimation engine zero times; the returned
    :class:`OptimizationResult` records the replayable trajectory (see
    ``python -m repro.optimize`` for the CLI and ``--expect`` replay
    checks).
    """
    return _run_study(
        study,
        workers=workers,
        backend=backend,
        cache=cache,
        activity_cache=activity_cache,
        plan_cache=plan_cache,
        max_evaluations=max_evaluations,
        checkpoint_path=checkpoint_path,
    )


def default_caches() -> "dict[str, Any]":
    """The default cache tiers this process has already created.

    A read-only live view (tier name → cache instance) for inspection and
    counter scraping; creating tiers on demand is the job of the
    ``get_default_*`` accessors.
    """
    return peek_default_caches()
