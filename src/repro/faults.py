"""Deterministic fault injection for chaos-testing the repro stack.

The resilience layer (cache retry/degrade, pool rebuild, serve deadlines)
is only trustworthy if its failure paths are exercised on purpose.  This
module provides *named injection points* — call sites in the cache, pool,
and serve layers invoke :func:`fault_point` with a stable dotted name —
driven by a *seeded schedule* parsed from the ``REPRO_FAULTS`` environment
variable, e.g.::

    REPRO_FAULTS="cache.sqlite.write:busy@0.1;pool.worker:kill@3"

Each ``;``-separated entry is ``point:mode[@arg]``:

* no ``@arg``   — fire on every invocation of the point,
* ``@N`` (int)  — fire exactly on the N-th invocation (1-based, per process),
* ``@p`` (float in ``(0, 1]``) — fire with probability *p* per invocation,
  drawn from a per-spec RNG seeded from ``REPRO_FAULTS_SEED`` and the spec
  identity, so the same seed replays the same fault sequence bit-for-bit.

When no schedule is active :func:`fault_point` is a single global load and
an identity check — cheap enough to leave in production call sites.

The catalogue of points and the failure each mode simulates lives in
:data:`CATALOGUE` and is documented in ``docs/resilience.md``.
"""

from __future__ import annotations

import errno
import hashlib
import os
import random
import re
import sqlite3
import threading
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Optional

from repro.errors import FaultInjectionError, InjectedFaultError

__all__ = [
    "CATALOGUE",
    "FaultSchedule",
    "FaultSpec",
    "active_schedule",
    "fault_point",
    "install_schedule",
    "parse_schedule",
    "register_fault_modes",
    "reset",
    "schedule_from_env",
    "uninstall_schedule",
]

_POINT_RE = re.compile(r"^[a-z0-9_]+(?:\.[a-z0-9_]+)*$")
_MODE_RE = re.compile(r"^[a-z0-9_]+$")


@dataclass(frozen=True)
class FaultSpec:
    """One parsed ``point:mode[@arg]`` entry of a fault schedule."""

    point: str
    mode: str
    probability: "Optional[float]" = None  # Bernoulli trigger per invocation
    at: "Optional[int]" = None  # fire exactly on this 1-based invocation

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        point, colon, rest = text.partition(":")
        if not colon or not rest:
            raise FaultInjectionError(
                f"fault spec {text!r} must look like 'point:mode[@arg]'"
            )
        mode, at_sep, arg = rest.partition("@")
        if not _POINT_RE.match(point):
            raise FaultInjectionError(f"invalid fault point name {point!r}")
        if not _MODE_RE.match(mode):
            raise FaultInjectionError(f"invalid fault mode name {mode!r}")
        if not at_sep:
            return cls(point=point, mode=mode)
        if re.fullmatch(r"\d+", arg):
            nth = int(arg)
            if nth < 1:
                raise FaultInjectionError(
                    f"fault spec {text!r}: invocation index must be >= 1"
                )
            return cls(point=point, mode=mode, at=nth)
        try:
            probability = float(arg)
        except ValueError:
            raise FaultInjectionError(
                f"fault spec {text!r}: argument must be an int count "
                f"or a float probability"
            ) from None
        if not 0.0 < probability <= 1.0:
            raise FaultInjectionError(
                f"fault spec {text!r}: probability must be in (0, 1]"
            )
        return cls(point=point, mode=mode, probability=probability)

    def fires(self, invocation: int, rng: "random.Random") -> bool:
        if self.at is not None:
            return invocation == self.at
        if self.probability is not None:
            return rng.random() < self.probability
        return True

    def __str__(self) -> str:
        if self.at is not None:
            return f"{self.point}:{self.mode}@{self.at}"
        if self.probability is not None:
            return f"{self.point}:{self.mode}@{self.probability:g}"
        return f"{self.point}:{self.mode}"


def parse_schedule(text: str) -> "list[FaultSpec]":
    """Parse a ``;``-separated ``REPRO_FAULTS`` value into specs."""
    specs = []
    for part in text.split(";"):
        part = part.strip()
        if part:
            specs.append(FaultSpec.parse(part))
    return specs


def _spec_rng(seed: int, index: int, spec: FaultSpec) -> "random.Random":
    """A private RNG per spec so trigger draws never interleave across
    points — the fault sequence depends only on each point's hit order."""
    material = f"{seed}:{index}:{spec.point}:{spec.mode}".encode()
    digest = hashlib.sha256(material).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


class FaultSchedule:
    """A set of :class:`FaultSpec` plus per-point invocation counters.

    Thread-safe; the ``fired`` log records every injected fault in order,
    which the replay tests compare across runs with the same seed.
    """

    def __init__(self, specs: "Iterable[FaultSpec]", seed: int = 0) -> None:
        self.specs = list(specs)
        self.seed = seed
        self._by_point: "dict[str, list[tuple[FaultSpec, random.Random]]]" = {}
        for index, spec in enumerate(self.specs):
            pair = (spec, _spec_rng(seed, index, spec))
            self._by_point.setdefault(spec.point, []).append(pair)
        self._hits: "dict[str, int]" = {}
        self._fired: "list[dict]" = []
        self._lock = threading.Lock()

    @property
    def fired(self) -> "list[dict]":
        with self._lock:
            return list(self._fired)

    def hits(self, point: str) -> int:
        with self._lock:
            return self._hits.get(point, 0)

    def describe(self) -> dict:
        with self._lock:
            return {
                "seed": self.seed,
                "specs": [str(spec) for spec in self.specs],
                "hits": dict(self._hits),
                "fired": list(self._fired),
            }

    def hit(self, point: str) -> None:
        """Record one invocation of ``point``; raise if a spec fires."""
        armed = self._by_point.get(point)
        if armed is None:
            return
        with self._lock:
            invocation = self._hits.get(point, 0) + 1
            self._hits[point] = invocation
            firing = None
            for spec, rng in armed:
                if firing is None and spec.fires(invocation, rng):
                    firing = spec
                    self._fired.append(
                        {
                            "point": point,
                            "mode": spec.mode,
                            "invocation": invocation,
                        }
                    )
        if firing is not None:
            _trigger(point, firing.mode)


def _oserror(code: int) -> OSError:
    return OSError(code, os.strerror(code))


def _worker_kill() -> None:
    # Mimic an OOM-killed / segfaulted pool worker: die without cleanup.
    os._exit(86)


# Injection-point catalogue: point -> mode -> builder.  A builder either
# returns the exception to raise at the call site or performs an abrupt
# action (e.g. killing the process) and returns None.
CATALOGUE: "dict[str, dict[str, Callable[[], Optional[BaseException]]]]" = {
    "cache.sqlite.open": {
        "busy": lambda: sqlite3.OperationalError("database is locked"),
        "corrupt": lambda: sqlite3.DatabaseError(
            "database disk image is malformed"
        ),
        "error": lambda: InjectedFaultError("injected cache.sqlite.open fault"),
    },
    "cache.sqlite.read": {
        "busy": lambda: sqlite3.OperationalError("database is locked"),
        "corrupt": lambda: sqlite3.DatabaseError(
            "database disk image is malformed"
        ),
        "error": lambda: InjectedFaultError("injected cache.sqlite.read fault"),
    },
    "cache.sqlite.write": {
        "busy": lambda: sqlite3.OperationalError("database is locked"),
        "corrupt": lambda: sqlite3.DatabaseError(
            "database disk image is malformed"
        ),
        "full": lambda: _oserror(errno.ENOSPC),
        "error": lambda: InjectedFaultError("injected cache.sqlite.write fault"),
    },
    "cache.json.read": {
        "error": lambda: _oserror(errno.EIO),
    },
    "cache.json.write": {
        "enospc": lambda: _oserror(errno.ENOSPC),
        "readonly": lambda: _oserror(errno.EROFS),
        "error": lambda: _oserror(errno.EIO),
    },
    "pool.worker": {
        "kill": _worker_kill,
        "raise": lambda: InjectedFaultError("injected pool.worker fault"),
    },
    "serve.batch": {
        "error": lambda: InjectedFaultError("injected serve.batch fault"),
    },
}


def register_fault_modes(
    point: str, modes: "Mapping[str, Callable[[], Optional[BaseException]]]"
) -> None:
    """Extend the catalogue with custom modes (used by tests)."""
    if not _POINT_RE.match(point):
        raise FaultInjectionError(f"invalid fault point name {point!r}")
    CATALOGUE.setdefault(point, {}).update(modes)


def _trigger(point: str, mode: str) -> None:
    modes = CATALOGUE.get(point)
    builder = modes.get(mode) if modes else None
    if builder is None:
        raise FaultInjectionError(
            f"fault point {point!r} has no mode {mode!r}; "
            f"known: {sorted(modes) if modes else 'none'}"
        )
    outcome = builder()
    if outcome is not None:
        raise outcome


ENV_FAULTS = "REPRO_FAULTS"
ENV_FAULTS_SEED = "REPRO_FAULTS_SEED"


def schedule_from_env(environ: "Optional[Mapping[str, str]]" = None) -> "Optional[FaultSchedule]":
    """Build a schedule from ``REPRO_FAULTS`` / ``REPRO_FAULTS_SEED``.

    Returns ``None`` when ``REPRO_FAULTS`` is unset or empty.
    """
    env = os.environ if environ is None else environ
    raw = env.get("REPRO_FAULTS", "").strip()
    if not raw:
        return None
    seed_raw = env.get("REPRO_FAULTS_SEED", "0").strip() or "0"
    try:
        seed = int(seed_raw)
    except ValueError:
        raise FaultInjectionError(
            f"REPRO_FAULTS_SEED must be an integer, got {seed_raw!r}"
        ) from None
    return FaultSchedule(parse_schedule(raw), seed=seed)


# The active schedule resolves lazily from the environment on the first
# fault_point() hit, so spawned pool workers pick the schedule up from the
# inherited environment without any explicit plumbing.
_UNRESOLVED = object()
_active: object = _UNRESOLVED


def active_schedule() -> "Optional[FaultSchedule]":
    """The schedule in effect, resolving ``REPRO_FAULTS`` on first use."""
    global _active
    if _active is _UNRESOLVED:
        _active = schedule_from_env()
    return _active  # type: ignore[return-value]


def install_schedule(schedule: "Optional[FaultSchedule]") -> "Optional[FaultSchedule]":
    """Activate ``schedule`` for this process (bypassing the environment)."""
    global _active
    _active = schedule
    return schedule


def uninstall_schedule() -> None:
    """Disable fault injection regardless of the environment."""
    global _active
    _active = None


def reset() -> None:
    """Forget any resolved schedule; the next hit re-reads the environment."""
    global _active
    _active = _UNRESOLVED


def fault_point(point: str) -> None:
    """Hook for a named injection point; near-zero overhead when inactive."""
    schedule = _active
    if schedule is None:
        return
    if schedule is _UNRESOLVED:
        schedule = active_schedule()
        if schedule is None:
            return
    schedule.hit(point)  # type: ignore[union-attr]
