"""Named registry of every input pattern family used in the paper.

Experiments refer to patterns by family name plus parameters (for example
``build_pattern("sorted_rows", dtype="fp16", fraction=0.5)``); this module
maps those names to the base pattern + transform composition each one needs,
including the paper's default Gaussian scale per datatype.

Built patterns are *stateless*: they hold only immutable parameters, and
``generate(shape, spec, rng)`` takes its RNG per call, so the same pattern
object can serve any number of seeds — or any number of concurrent sweep
threads — without coupling them.  The experiment plan cache
(:mod:`repro.experiments.plan`) relies on this to share one pattern
instance across every sweep point with the same workload geometry.
"""

from __future__ import annotations

from typing import Callable

from repro.dtypes.base import DTypeSpec
from repro.dtypes.convert import paper_distribution_scale
from repro.dtypes.registry import get_dtype
from repro.errors import PatternError
from repro.patterns.base import Pattern, TransformedPattern
from repro.patterns.bitsim import (
    RandomBitFlipTransform,
    RandomizeHighBitsTransform,
    RandomizeLowBitsTransform,
)
from repro.patterns.distribution import (
    ConstantPattern,
    ConstantRandomPattern,
    GaussianPattern,
    UniformPattern,
    ValueSetPattern,
)
from repro.patterns.placement import PartialSortTransform
from repro.patterns.sparsity import (
    SparsityTransform,
    StructuredSparsityTransform,
    ZeroHighBitsTransform,
    ZeroLowBitsTransform,
)

__all__ = ["paper_base_pattern", "build_pattern", "list_patterns", "PATTERN_FAMILIES"]


def paper_base_pattern(dtype: "str | DTypeSpec", mean: float = 0.0) -> GaussianPattern:
    """The paper's default input: Gaussian, mean 0, datatype-appropriate std."""
    spec = get_dtype(dtype)
    return GaussianPattern(mean=mean, std=paper_distribution_scale(spec))


def _constant_base(dtype: DTypeSpec) -> ConstantRandomPattern:
    """Constant random fill used as the starting point of bit-similarity runs."""
    return ConstantRandomPattern(mean=0.0, std=paper_distribution_scale(dtype))


# ----------------------------------------------------------------- builders


def _gaussian(dtype: DTypeSpec, mean: float = 0.0, std: float | None = None) -> Pattern:
    if std is None:
        std = paper_distribution_scale(dtype)
    return GaussianPattern(mean=mean, std=std)


def _uniform(dtype: DTypeSpec, low: float = -1.0, high: float = 1.0) -> Pattern:
    return UniformPattern(low=low, high=high)


def _constant(dtype: DTypeSpec, value: float = 1.0) -> Pattern:
    return ConstantPattern(value=value)


def _constant_random(dtype: DTypeSpec) -> Pattern:
    return _constant_base(dtype)


def _value_set(dtype: DTypeSpec, set_size: int = 16) -> Pattern:
    return ValueSetPattern(
        set_size=set_size, mean=0.0, std=paper_distribution_scale(dtype)
    )


def _bit_flip(dtype: DTypeSpec, probability: float = 0.0) -> Pattern:
    return TransformedPattern(_constant_base(dtype), [RandomBitFlipTransform(probability)])


def _randomize_lsb(
    dtype: DTypeSpec, count: int | None = None, fraction: float | None = 0.0
) -> Pattern:
    return TransformedPattern(
        _constant_base(dtype), [RandomizeLowBitsTransform(count=count, fraction=fraction)]
    )


def _randomize_msb(
    dtype: DTypeSpec, count: int | None = None, fraction: float | None = 0.0
) -> Pattern:
    return TransformedPattern(
        _constant_base(dtype), [RandomizeHighBitsTransform(count=count, fraction=fraction)]
    )


def _sorted(dtype: DTypeSpec, fraction: float = 1.0, mode: str = "rows") -> Pattern:
    return TransformedPattern(
        paper_base_pattern(dtype), [PartialSortTransform(fraction=fraction, mode=mode)]
    )


def _sorted_rows(dtype: DTypeSpec, fraction: float = 1.0) -> Pattern:
    return _sorted(dtype, fraction=fraction, mode="rows")


def _sorted_columns(dtype: DTypeSpec, fraction: float = 1.0) -> Pattern:
    return _sorted(dtype, fraction=fraction, mode="columns")


def _sorted_within_rows(dtype: DTypeSpec, fraction: float = 1.0) -> Pattern:
    return _sorted(dtype, fraction=fraction, mode="within_rows")


def _sparsity(dtype: DTypeSpec, sparsity: float = 0.0) -> Pattern:
    return TransformedPattern(paper_base_pattern(dtype), [SparsityTransform(sparsity)])


def _sorted_sparsity(dtype: DTypeSpec, sparsity: float = 0.0) -> Pattern:
    return TransformedPattern(
        paper_base_pattern(dtype),
        [PartialSortTransform(fraction=1.0, mode="rows"), SparsityTransform(sparsity)],
    )


def _zero_lsb(
    dtype: DTypeSpec, count: int | None = None, fraction: float | None = 0.0
) -> Pattern:
    return TransformedPattern(
        paper_base_pattern(dtype), [ZeroLowBitsTransform(count=count, fraction=fraction)]
    )


def _zero_msb(
    dtype: DTypeSpec, count: int | None = None, fraction: float | None = 0.0
) -> Pattern:
    return TransformedPattern(
        paper_base_pattern(dtype), [ZeroHighBitsTransform(count=count, fraction=fraction)]
    )


def _structured_sparsity(dtype: DTypeSpec, n: int = 2, m: int = 4) -> Pattern:
    return TransformedPattern(
        paper_base_pattern(dtype), [StructuredSparsityTransform(n=n, m=m)]
    )


#: Mapping of family name to builder callable ``f(dtype_spec, **params)``.
PATTERN_FAMILIES: dict[str, Callable[..., Pattern]] = {
    "gaussian": _gaussian,
    "uniform": _uniform,
    "constant": _constant,
    "constant_random": _constant_random,
    "value_set": _value_set,
    "bit_flip": _bit_flip,
    "randomize_lsb": _randomize_lsb,
    "randomize_msb": _randomize_msb,
    "sorted_rows": _sorted_rows,
    "sorted_columns": _sorted_columns,
    "sorted_within_rows": _sorted_within_rows,
    "sparsity": _sparsity,
    "sorted_sparsity": _sorted_sparsity,
    "zero_lsb": _zero_lsb,
    "zero_msb": _zero_msb,
    "structured_sparsity": _structured_sparsity,
}


def list_patterns() -> list[str]:
    """Return the names of all pattern families."""
    return sorted(PATTERN_FAMILIES)


def build_pattern(family: str, dtype: "str | DTypeSpec", **params: object) -> Pattern:
    """Build a pattern from a family name, a datatype, and family parameters."""
    key = family.strip().lower()
    try:
        builder = PATTERN_FAMILIES[key]
    except KeyError:
        known = ", ".join(list_patterns())
        raise PatternError(f"unknown pattern family {family!r}; known: {known}") from None
    spec = get_dtype(dtype)
    try:
        return builder(spec, **params)
    except TypeError as exc:
        raise PatternError(f"invalid parameters for pattern {family!r}: {exc}") from exc
