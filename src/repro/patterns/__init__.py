"""Input pattern generators and transforms.

This package generates every input variation studied in the paper: value
distributions (Gaussian mean/std sweeps, small value sets), bit similarity
(constant fills with random bit flips, randomized LSBs/MSBs), placement
(partial sorting into rows/columns, intra-row sorting), and sparsity
(random zeros, sparsity after sorting, zeroed LSBs/MSBs).
"""

from repro.patterns.base import Pattern, Transform, TransformedPattern
from repro.patterns.bitsim import (
    RandomBitFlipTransform,
    RandomizeHighBitsTransform,
    RandomizeLowBitsTransform,
)
from repro.patterns.distribution import (
    ConstantPattern,
    ConstantRandomPattern,
    GaussianPattern,
    UniformPattern,
    ValueSetPattern,
)
from repro.patterns.placement import PartialSortTransform, sort_columns, sort_rows, sort_within_rows
from repro.patterns.sparsity import (
    SparsityTransform,
    StructuredSparsityTransform,
    ZeroHighBitsTransform,
    ZeroLowBitsTransform,
)
from repro.patterns.library import (
    PATTERN_FAMILIES,
    build_pattern,
    list_patterns,
    paper_base_pattern,
)

__all__ = [
    "Pattern",
    "Transform",
    "TransformedPattern",
    "GaussianPattern",
    "ConstantPattern",
    "ConstantRandomPattern",
    "UniformPattern",
    "ValueSetPattern",
    "RandomBitFlipTransform",
    "RandomizeLowBitsTransform",
    "RandomizeHighBitsTransform",
    "PartialSortTransform",
    "sort_rows",
    "sort_columns",
    "sort_within_rows",
    "SparsityTransform",
    "StructuredSparsityTransform",
    "ZeroLowBitsTransform",
    "ZeroHighBitsTransform",
    "PATTERN_FAMILIES",
    "build_pattern",
    "list_patterns",
    "paper_base_pattern",
]
