"""Sparsity transforms (paper §IV-D).

* :class:`SparsityTransform` — set a random fraction of elements to zero
  (Fig. 6a; composed after a full sort it gives Fig. 6b).
* :class:`ZeroLowBitsTransform` / :class:`ZeroHighBitsTransform` — zero the
  least / most significant bits of every element (Fig. 6c / 6d, "sparsity in
  physical structure").
* :class:`StructuredSparsityTransform` — N:M structured sparsity along rows
  (extension; used by the power-aware sparsity designs of §V).
"""

from __future__ import annotations

import numpy as np

from repro.dtypes.base import DTypeSpec
from repro.errors import PatternError
from repro.patterns.base import Transform
from repro.patterns.bitsim import resolve_bit_count
from repro.util.bits import set_high_bits_mask, set_low_bits_mask

__all__ = [
    "SparsityTransform",
    "ZeroLowBitsTransform",
    "ZeroHighBitsTransform",
    "StructuredSparsityTransform",
]


class SparsityTransform(Transform):
    """Set a uniformly random fraction of elements to zero."""

    def __init__(self, sparsity: float) -> None:
        if not 0.0 <= sparsity <= 1.0:
            raise PatternError(f"sparsity must be in [0, 1], got {sparsity}")
        self.sparsity = float(sparsity)
        self.name = f"sparsity({self.sparsity:g})"

    def apply(
        self, values: np.ndarray, dtype: DTypeSpec, rng: np.random.Generator
    ) -> np.ndarray:
        arr = np.array(values, dtype=np.float64, copy=True)
        if self.sparsity == 0.0:
            return arr
        count = int(round(self.sparsity * arr.size))
        if count >= arr.size:
            return np.zeros_like(arr)
        zero_indices = rng.choice(arr.size, size=count, replace=False)
        flat = arr.reshape(-1)
        flat[zero_indices] = 0.0
        return arr

    def describe(self) -> dict[str, object]:
        return {"name": "sparsity", "sparsity": self.sparsity}


class ZeroLowBitsTransform(Transform):
    """Zero the ``count`` least significant bits of every element."""

    def __init__(self, count: int | None = None, fraction: float | None = None) -> None:
        self.count = count
        self.fraction = fraction
        label = f"{count}" if count is not None else (f"{fraction:g}w" if fraction is not None else "unset")
        self.name = f"zero_lsb({label})"

    def apply(
        self, values: np.ndarray, dtype: DTypeSpec, rng: np.random.Generator
    ) -> np.ndarray:
        count = resolve_bit_count(dtype, self.count, self.fraction)
        if count == 0:
            return np.array(values, dtype=np.float64, copy=True)
        words = dtype.encode(values)
        mask = words.dtype.type(set_low_bits_mask(dtype.bits, count, words.dtype))
        return dtype.decode(words & ~mask)

    def describe(self) -> dict[str, object]:
        return {"name": "zero_lsb", "count": self.count, "fraction": self.fraction}


class ZeroHighBitsTransform(Transform):
    """Zero the ``count`` most significant bits of every element."""

    def __init__(self, count: int | None = None, fraction: float | None = None) -> None:
        self.count = count
        self.fraction = fraction
        label = f"{count}" if count is not None else (f"{fraction:g}w" if fraction is not None else "unset")
        self.name = f"zero_msb({label})"

    def apply(
        self, values: np.ndarray, dtype: DTypeSpec, rng: np.random.Generator
    ) -> np.ndarray:
        count = resolve_bit_count(dtype, self.count, self.fraction)
        if count == 0:
            return np.array(values, dtype=np.float64, copy=True)
        words = dtype.encode(values)
        mask = words.dtype.type(set_high_bits_mask(dtype.bits, count, words.dtype))
        return dtype.decode(words & ~mask)

    def describe(self) -> dict[str, object]:
        return {"name": "zero_msb", "count": self.count, "fraction": self.fraction}


class StructuredSparsityTransform(Transform):
    """Keep the ``n`` largest-magnitude values in every group of ``m`` along rows.

    This is the N:M structured sparsity pattern supported by NVIDIA sparse
    tensor cores (e.g. 2:4); it is used by the power-aware sparsity designs
    in :mod:`repro.optimize.sparsity_design`.
    """

    def __init__(self, n: int, m: int) -> None:
        if m < 1 or n < 0 or n > m:
            raise PatternError(f"invalid N:M sparsity spec {n}:{m}")
        self.n = int(n)
        self.m = int(m)
        self.name = f"structured_sparsity({self.n}:{self.m})"

    def apply(
        self, values: np.ndarray, dtype: DTypeSpec, rng: np.random.Generator
    ) -> np.ndarray:
        arr = np.array(values, dtype=np.float64, copy=True)
        rows, cols = arr.shape
        if cols % self.m != 0:
            raise PatternError(
                f"matrix width {cols} is not a multiple of the group size {self.m}"
            )
        groups = arr.reshape(rows, cols // self.m, self.m)
        if self.n == 0:
            return np.zeros_like(arr)
        # Rank within each group by magnitude; zero everything below the top n.
        order = np.argsort(np.abs(groups), axis=-1)
        keep = np.zeros_like(groups, dtype=bool)
        top_indices = order[..., self.m - self.n:]
        np.put_along_axis(keep, top_indices, True, axis=-1)
        groups = np.where(keep, groups, 0.0)
        return groups.reshape(rows, cols)

    def describe(self) -> dict[str, object]:
        return {"name": "structured_sparsity", "n": self.n, "m": self.m}
