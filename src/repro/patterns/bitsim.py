"""Bit-similarity transforms (paper §IV-B).

All three transforms operate directly on the datatype's bit representation
and therefore always produce representable values:

* :class:`RandomBitFlipTransform` — flip each bit independently with a
  given probability (Fig. 4a: "random bits are flipped in each element").
* :class:`RandomizeLowBitsTransform` — replace the ``count`` least
  significant bits with random bits (Fig. 4b).
* :class:`RandomizeHighBitsTransform` — replace the ``count`` most
  significant bits with random bits (Fig. 4c).
"""

from __future__ import annotations

import numpy as np

from repro.dtypes.base import DTypeSpec
from repro.errors import PatternError
from repro.patterns.base import Transform
from repro.util.bits import set_high_bits_mask, set_low_bits_mask

__all__ = [
    "RandomBitFlipTransform",
    "RandomizeLowBitsTransform",
    "RandomizeHighBitsTransform",
    "resolve_bit_count",
]


def resolve_bit_count(dtype: DTypeSpec, count: int | None, fraction: float | None) -> int:
    """Resolve an absolute bit count from either ``count`` or ``fraction``.

    Exactly one of the two must be provided; ``fraction`` is interpreted as
    a fraction of the datatype's width, rounded to the nearest integer.
    """
    if (count is None) == (fraction is None):
        raise PatternError("provide exactly one of count or fraction")
    if count is not None:
        resolved = int(count)
    else:
        if not 0.0 <= float(fraction) <= 1.0:
            raise PatternError(f"fraction must be in [0, 1], got {fraction}")
        resolved = int(round(float(fraction) * dtype.bits))
    if not 0 <= resolved <= dtype.bits:
        raise PatternError(
            f"bit count {resolved} out of range for {dtype.name} ({dtype.bits} bits)"
        )
    return resolved


def _random_words(
    rng: np.random.Generator, shape: tuple[int, ...], word_dtype: np.dtype
) -> np.ndarray:
    """Uniform random words of the requested unsigned dtype."""
    bits = word_dtype.itemsize * 8
    if bits <= 32:
        raw = rng.integers(0, 1 << bits, size=shape, dtype=np.uint64)
    else:
        low = rng.integers(0, 1 << 32, size=shape, dtype=np.uint64)
        high = rng.integers(0, 1 << 32, size=shape, dtype=np.uint64)
        raw = (high << np.uint64(32)) | low
    return raw.astype(word_dtype)


class RandomBitFlipTransform(Transform):
    """Flip each bit of each element independently with probability ``probability``."""

    def __init__(self, probability: float) -> None:
        if not 0.0 <= probability <= 1.0:
            raise PatternError(f"probability must be in [0, 1], got {probability}")
        self.probability = float(probability)
        self.name = f"bit_flip(p={self.probability:g})"

    def apply(
        self, values: np.ndarray, dtype: DTypeSpec, rng: np.random.Generator
    ) -> np.ndarray:
        if self.probability == 0.0:
            return np.array(values, dtype=np.float64, copy=True)
        words = dtype.encode(values)
        width = dtype.bits
        # Build the flip mask bit-plane by bit-plane; width is at most 64 so
        # this stays a handful of vectorized draws.
        flip = np.zeros(words.shape, dtype=np.uint64)
        for bit in range(width):
            plane = rng.random(words.shape) < self.probability
            flip |= plane.astype(np.uint64) << np.uint64(bit)
        flipped = np.bitwise_xor(words, flip.astype(words.dtype))
        return dtype.decode(flipped)

    def describe(self) -> dict[str, object]:
        return {"name": "bit_flip", "probability": self.probability}


class RandomizeLowBitsTransform(Transform):
    """Replace the ``count`` least significant bits of every element with random bits."""

    def __init__(self, count: int | None = None, fraction: float | None = None) -> None:
        self.count = count
        self.fraction = fraction
        label = f"{count}" if count is not None else (f"{fraction:g}w" if fraction is not None else "unset")
        self.name = f"randomize_lsb({label})"

    def apply(
        self, values: np.ndarray, dtype: DTypeSpec, rng: np.random.Generator
    ) -> np.ndarray:
        count = resolve_bit_count(dtype, self.count, self.fraction)
        if count == 0:
            return np.array(values, dtype=np.float64, copy=True)
        words = dtype.encode(values)
        mask = words.dtype.type(set_low_bits_mask(dtype.bits, count, words.dtype))
        random_bits = _random_words(rng, words.shape, words.dtype) & mask
        randomized = (words & ~mask) | random_bits
        return dtype.decode(randomized)

    def describe(self) -> dict[str, object]:
        return {"name": "randomize_lsb", "count": self.count, "fraction": self.fraction}


class RandomizeHighBitsTransform(Transform):
    """Replace the ``count`` most significant bits of every element with random bits."""

    def __init__(self, count: int | None = None, fraction: float | None = None) -> None:
        self.count = count
        self.fraction = fraction
        label = f"{count}" if count is not None else (f"{fraction:g}w" if fraction is not None else "unset")
        self.name = f"randomize_msb({label})"

    def apply(
        self, values: np.ndarray, dtype: DTypeSpec, rng: np.random.Generator
    ) -> np.ndarray:
        count = resolve_bit_count(dtype, self.count, self.fraction)
        if count == 0:
            return np.array(values, dtype=np.float64, copy=True)
        words = dtype.encode(values)
        mask = words.dtype.type(set_high_bits_mask(dtype.bits, count, words.dtype))
        random_bits = _random_words(rng, words.shape, words.dtype) & mask
        randomized = (words & ~mask) | random_bits
        return dtype.decode(randomized)

    def describe(self) -> dict[str, object]:
        return {"name": "randomize_msb", "count": self.count, "fraction": self.fraction}
