"""Value-distribution patterns (paper §IV-A).

* :class:`GaussianPattern` — Gaussian values with configurable mean and
  standard deviation (Fig. 3a/3b sweeps).
* :class:`ValueSetPattern` — values drawn uniformly, with replacement, from
  a small set of Gaussian random values (Fig. 3c).
* :class:`ConstantPattern` / :class:`ConstantRandomPattern` — constant
  fills, the starting point for the bit-similarity experiments (Fig. 4).
* :class:`UniformPattern` — uniform values (extension, not in the paper).
"""

from __future__ import annotations

import numpy as np

from repro.dtypes.base import DTypeSpec
from repro.dtypes.convert import clip_to_range
from repro.errors import PatternError
from repro.patterns.base import Pattern

__all__ = [
    "GaussianPattern",
    "ValueSetPattern",
    "ConstantPattern",
    "ConstantRandomPattern",
    "UniformPattern",
]


class GaussianPattern(Pattern):
    """Matrix of Gaussian random values, clipped into the datatype's range."""

    def __init__(self, mean: float = 0.0, std: float = 1.0) -> None:
        if std < 0:
            raise PatternError(f"std must be >= 0, got {std}")
        self.mean = float(mean)
        self.std = float(std)
        self.name = f"gaussian(mean={self.mean:g},std={self.std:g})"

    def _raw_values(
        self, shape: tuple[int, int], dtype: DTypeSpec, rng: np.random.Generator
    ) -> np.ndarray:
        values = rng.normal(self.mean, self.std, size=shape)
        return clip_to_range(values, dtype)

    def describe(self) -> dict[str, object]:
        return {"name": "gaussian", "mean": self.mean, "std": self.std}


class ValueSetPattern(Pattern):
    """Values selected uniformly (with replacement) from a small Gaussian set."""

    def __init__(self, set_size: int, mean: float = 0.0, std: float = 1.0) -> None:
        if set_size < 1:
            raise PatternError(f"set_size must be >= 1, got {set_size}")
        if std < 0:
            raise PatternError(f"std must be >= 0, got {std}")
        self.set_size = int(set_size)
        self.mean = float(mean)
        self.std = float(std)
        self.name = f"value_set(size={self.set_size})"

    def _raw_values(
        self, shape: tuple[int, int], dtype: DTypeSpec, rng: np.random.Generator
    ) -> np.ndarray:
        pool = rng.normal(self.mean, self.std, size=self.set_size)
        pool = clip_to_range(pool, dtype)
        indices = rng.integers(0, self.set_size, size=shape)
        return pool[indices]

    def describe(self) -> dict[str, object]:
        return {
            "name": "value_set",
            "set_size": self.set_size,
            "mean": self.mean,
            "std": self.std,
        }


class ConstantPattern(Pattern):
    """Matrix filled with a single fixed value."""

    def __init__(self, value: float) -> None:
        self.value = float(value)
        self.name = f"constant({self.value:g})"

    def _raw_values(
        self, shape: tuple[int, int], dtype: DTypeSpec, rng: np.random.Generator
    ) -> np.ndarray:
        clipped = float(clip_to_range(np.array([self.value]), dtype)[0])
        return np.full(shape, clipped, dtype=np.float64)

    def describe(self) -> dict[str, object]:
        return {"name": "constant", "value": self.value}


class ConstantRandomPattern(Pattern):
    """Matrix filled with a single random Gaussian value.

    The paper's bit-similarity experiments fill the A matrix with one random
    value and the B matrix with another; using different seeds for A and B
    (as the harness does) reproduces that setup.
    """

    def __init__(self, mean: float = 0.0, std: float = 1.0) -> None:
        if std < 0:
            raise PatternError(f"std must be >= 0, got {std}")
        self.mean = float(mean)
        self.std = float(std)
        self.name = f"constant_random(mean={self.mean:g},std={self.std:g})"

    def _raw_values(
        self, shape: tuple[int, int], dtype: DTypeSpec, rng: np.random.Generator
    ) -> np.ndarray:
        value = rng.normal(self.mean, self.std)
        clipped = float(clip_to_range(np.array([value]), dtype)[0])
        return np.full(shape, clipped, dtype=np.float64)

    def describe(self) -> dict[str, object]:
        return {"name": "constant_random", "mean": self.mean, "std": self.std}


class UniformPattern(Pattern):
    """Matrix of uniform random values in ``[low, high)`` (extension)."""

    def __init__(self, low: float, high: float) -> None:
        if not high > low:
            raise PatternError(f"high must be > low, got low={low}, high={high}")
        self.low = float(low)
        self.high = float(high)
        self.name = f"uniform({self.low:g},{self.high:g})"

    def _raw_values(
        self, shape: tuple[int, int], dtype: DTypeSpec, rng: np.random.Generator
    ) -> np.ndarray:
        values = rng.uniform(self.low, self.high, size=shape)
        return clip_to_range(values, dtype)

    def describe(self) -> dict[str, object]:
        return {"name": "uniform", "low": self.low, "high": self.high}
