"""Placement (sorting) transforms (paper §IV-C).

"Sorting n percent" follows the paper's definition: the lowest n percent of
values are sorted (ascending) into the first n percent of indices in the
traversal order (row-major for row sorting, column-major for column
sorting); the remaining values keep their original relative order in the
remaining indices.
"""

from __future__ import annotations

import numpy as np

from repro.dtypes.base import DTypeSpec
from repro.errors import PatternError
from repro.patterns.base import Transform

__all__ = [
    "sort_rows",
    "sort_columns",
    "sort_within_rows",
    "PartialSortTransform",
    "SORT_MODES",
]

SORT_MODES = ("rows", "columns", "within_rows")


def _partial_sort_flat(flat: np.ndarray, fraction: float) -> np.ndarray:
    """Partially sort a 1-D array per the paper's definition."""
    size = flat.size
    k = int(round(fraction * size))
    if k <= 0:
        return flat.copy()
    if k >= size:
        return np.sort(flat, kind="stable")
    order = np.argsort(flat, kind="stable")
    lowest_indices = order[:k]
    lowest_sorted = flat[lowest_indices]  # argsort output is already ascending
    keep_mask = np.ones(size, dtype=bool)
    keep_mask[lowest_indices] = False
    rest_in_original_order = flat[keep_mask]
    return np.concatenate([lowest_sorted, rest_in_original_order])


def sort_rows(matrix: np.ndarray, fraction: float) -> np.ndarray:
    """Partially sort a matrix into rows (row-major traversal)."""
    _check_fraction(fraction)
    arr = np.asarray(matrix, dtype=np.float64)
    flat = arr.reshape(-1)  # row-major
    return _partial_sort_flat(flat, fraction).reshape(arr.shape)


def sort_columns(matrix: np.ndarray, fraction: float) -> np.ndarray:
    """Partially sort a matrix into columns (column-major traversal)."""
    _check_fraction(fraction)
    arr = np.asarray(matrix, dtype=np.float64)
    flat = arr.reshape(-1, order="F")
    return _partial_sort_flat(flat, fraction).reshape(arr.shape, order="F")


def sort_within_rows(matrix: np.ndarray, fraction: float) -> np.ndarray:
    """Partially sort each row independently (paper's intra-row sorting)."""
    _check_fraction(fraction)
    arr = np.asarray(matrix, dtype=np.float64)
    result = np.empty_like(arr)
    for row_index in range(arr.shape[0]):
        result[row_index] = _partial_sort_flat(arr[row_index], fraction)
    return result


def _check_fraction(fraction: float) -> None:
    if not 0.0 <= fraction <= 1.0:
        raise PatternError(f"sort fraction must be in [0, 1], got {fraction}")


class PartialSortTransform(Transform):
    """Partial sorting transform; ``mode`` selects rows/columns/within_rows."""

    def __init__(self, fraction: float, mode: str = "rows") -> None:
        _check_fraction(fraction)
        if mode not in SORT_MODES:
            raise PatternError(f"mode must be one of {SORT_MODES}, got {mode!r}")
        self.fraction = float(fraction)
        self.mode = mode
        self.name = f"sort_{mode}({self.fraction:g})"

    def apply(
        self, values: np.ndarray, dtype: DTypeSpec, rng: np.random.Generator
    ) -> np.ndarray:
        if self.mode == "rows":
            return sort_rows(values, self.fraction)
        if self.mode == "columns":
            return sort_columns(values, self.fraction)
        return sort_within_rows(values, self.fraction)

    def describe(self) -> dict[str, object]:
        return {"name": "partial_sort", "mode": self.mode, "fraction": self.fraction}
