"""Pattern and transform abstractions.

A :class:`Pattern` produces a matrix of values that are exactly
representable in a target datatype.  A :class:`Transform` rewrites such a
matrix (sorting it, sparsifying it, flipping bits, ...) while keeping it
representable.  :class:`TransformedPattern` composes a base pattern with a
sequence of transforms; that composition is how every experiment in the
paper is expressed.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.dtypes.base import DTypeSpec
from repro.dtypes.registry import get_dtype
from repro.errors import PatternError

__all__ = ["Pattern", "Transform", "TransformedPattern"]


class Pattern(ABC):
    """Generates matrices of datatype-representable values."""

    #: human-readable identifier used in experiment configs and reports
    name: str = "pattern"

    @abstractmethod
    def _raw_values(
        self, shape: tuple[int, int], dtype: DTypeSpec, rng: np.random.Generator
    ) -> np.ndarray:
        """Produce raw ``float64`` values before quantization."""

    def generate(
        self,
        shape: tuple[int, int],
        dtype: "str | DTypeSpec",
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Generate a ``float64`` matrix whose values are representable in ``dtype``."""
        spec = get_dtype(dtype)
        if len(shape) != 2 or shape[0] <= 0 or shape[1] <= 0:
            raise PatternError(f"shape must be a positive 2-tuple, got {shape!r}")
        values = self._raw_values((int(shape[0]), int(shape[1])), spec, rng)
        values = np.asarray(values, dtype=np.float64)
        if values.shape != tuple(shape):
            raise PatternError(
                f"pattern {self.name!r} produced shape {values.shape}, expected {tuple(shape)}"
            )
        return spec.quantize(values)

    def describe(self) -> dict[str, object]:
        """Return a JSON-serializable description of the pattern."""
        return {"name": self.name}

    def with_transforms(self, *transforms: "Transform") -> "TransformedPattern":
        """Return a new pattern that applies ``transforms`` after this one."""
        return TransformedPattern(self, transforms)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.describe()!r}>"


class Transform(ABC):
    """Rewrites a matrix of datatype-representable values."""

    name: str = "transform"

    @abstractmethod
    def apply(
        self, values: np.ndarray, dtype: DTypeSpec, rng: np.random.Generator
    ) -> np.ndarray:
        """Return a transformed copy of ``values`` (still representable in ``dtype``)."""

    def describe(self) -> dict[str, object]:
        return {"name": self.name}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.describe()!r}>"


class TransformedPattern(Pattern):
    """A base pattern followed by an ordered sequence of transforms."""

    def __init__(self, base: Pattern, transforms: Sequence[Transform]) -> None:
        if not isinstance(base, Pattern):
            raise PatternError(f"base must be a Pattern, got {type(base).__name__}")
        self.base = base
        self.transforms = tuple(transforms)
        for transform in self.transforms:
            if not isinstance(transform, Transform):
                raise PatternError(
                    f"transforms must be Transform instances, got {type(transform).__name__}"
                )
        suffix = "+".join(t.name for t in self.transforms)
        self.name = f"{base.name}+{suffix}" if suffix else base.name

    def _raw_values(
        self, shape: tuple[int, int], dtype: DTypeSpec, rng: np.random.Generator
    ) -> np.ndarray:  # pragma: no cover - generate() is overridden
        return self.base._raw_values(shape, dtype, rng)

    def generate(
        self,
        shape: tuple[int, int],
        dtype: "str | DTypeSpec",
        rng: np.random.Generator,
    ) -> np.ndarray:
        spec = get_dtype(dtype)
        values = self.base.generate(shape, spec, rng)
        for transform in self.transforms:
            values = transform.apply(values, spec, rng)
            values = np.asarray(values, dtype=np.float64)
            if values.shape != tuple(shape):
                raise PatternError(
                    f"transform {transform.name!r} changed shape to {values.shape}"
                )
        return values

    def describe(self) -> dict[str, object]:
        return {
            "name": self.name,
            "base": self.base.describe(),
            "transforms": [t.describe() for t in self.transforms],
        }
