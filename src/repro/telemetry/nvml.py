"""``pynvml``-style facade over simulated devices.

The API mirrors the subset of NVML that power-measurement scripts use:
initialization, device handles, instantaneous power reads (milliwatts, as
NVML reports), utilization rates and the enforced power limit.  A "load" can
be attached to a device to represent a running kernel; reads then return the
load's power plus sensor noise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TelemetryError
from repro.gpu.device import Device
from repro.util.rng import derive_rng

__all__ = ["NVMLDeviceHandle", "SimulatedNVML"]


@dataclass
class NVMLDeviceHandle:
    """Opaque handle returned by :meth:`SimulatedNVML.device_get_handle_by_index`."""

    index: int
    device: Device
    #: steady-state power of whatever is currently running, or None if idle
    load_watts: float | None = None
    #: SM utilization of the current load, percent
    load_utilization: float = 0.0


class SimulatedNVML:
    """Simulated NVML session managing one or more devices."""

    def __init__(self, devices: list[Device], seed: int = 0) -> None:
        if not devices:
            raise TelemetryError("SimulatedNVML needs at least one device")
        self._devices = list(devices)
        self._handles: list[NVMLDeviceHandle] | None = None
        self._seed = seed
        self._read_count = 0

    # ------------------------------------------------------------ lifecycle

    def init(self) -> None:
        """``nvmlInit``: create device handles."""
        self._handles = [
            NVMLDeviceHandle(index=i, device=dev) for i, dev in enumerate(self._devices)
        ]

    def shutdown(self) -> None:
        """``nvmlShutdown``: drop handles."""
        self._handles = None

    def __enter__(self) -> "SimulatedNVML":
        self.init()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # -------------------------------------------------------------- queries

    def device_get_count(self) -> int:
        return len(self._devices)

    def device_get_handle_by_index(self, index: int) -> NVMLDeviceHandle:
        handles = self._require_init()
        if not 0 <= index < len(handles):
            raise TelemetryError(f"device index {index} out of range")
        return handles[index]

    def device_get_name(self, handle: NVMLDeviceHandle) -> str:
        return f"NVIDIA {handle.device.spec.name.upper()} (simulated)"

    def device_get_power_usage(self, handle: NVMLDeviceHandle) -> int:
        """Instantaneous power in milliwatts (NVML convention)."""
        self._read_count += 1
        rng = derive_rng(self._seed, "nvml_read", handle.index, self._read_count)
        if handle.load_watts is None:
            watts = handle.device.idle_watts + handle.device.process_variation_watts()
        else:
            watts = handle.load_watts
        watts = max(watts + rng.normal(0.0, 1.2), 0.0)
        return int(round(watts * 1000.0))

    def device_get_enforced_power_limit(self, handle: NVMLDeviceHandle) -> int:
        """Enforced power limit in milliwatts."""
        return int(round(handle.device.tdp_watts * 1000.0))

    def device_get_utilization_rates(self, handle: NVMLDeviceHandle) -> dict[str, float]:
        """GPU/memory utilization percentages, like ``nvmlDeviceGetUtilizationRates``."""
        gpu = handle.load_utilization if handle.load_watts is not None else 0.0
        return {"gpu": gpu, "memory": gpu * 0.6}

    # ----------------------------------------------------------- load hooks

    def attach_load(
        self, handle: NVMLDeviceHandle, power_watts: float, utilization_percent: float = 98.5
    ) -> None:
        """Attach a running kernel's steady power draw to a device."""
        if power_watts < 0:
            raise TelemetryError(f"load power must be non-negative, got {power_watts}")
        handle.load_watts = float(power_watts)
        handle.load_utilization = float(utilization_percent)

    def detach_load(self, handle: NVMLDeviceHandle) -> None:
        handle.load_watts = None
        handle.load_utilization = 0.0

    def _require_init(self) -> list[NVMLDeviceHandle]:
        if self._handles is None:
            raise TelemetryError("NVML not initialized; call init() first")
        return self._handles
