"""DCGM-style field monitor.

Mimics ``dcgmi dmon -e 155,203 -d 100``: a monitor watches a set of field
identifiers on one device at a fixed period and produces tabular records.
The harness uses it to obtain the 100 ms power trace the paper collects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TelemetryError
from repro.gpu.device import Device
from repro.telemetry.sampler import TelemetryConfig, simulate_power_trace
from repro.telemetry.trace import PowerTrace

__all__ = [
    "DCGM_FI_DEV_POWER_USAGE",
    "DCGM_FI_DEV_GPU_UTIL",
    "DcgmRecord",
    "DcgmMonitor",
]

#: DCGM field identifiers (matching NVIDIA's numbering for the fields used).
DCGM_FI_DEV_POWER_USAGE = 155
DCGM_FI_DEV_GPU_UTIL = 203

_SUPPORTED_FIELDS = {DCGM_FI_DEV_POWER_USAGE, DCGM_FI_DEV_GPU_UTIL}


@dataclass(frozen=True)
class DcgmRecord:
    """One monitoring sample."""

    timestamp_s: float
    fields: dict[int, float] = field(default_factory=dict)

    def value(self, field_id: int) -> float:
        try:
            return self.fields[field_id]
        except KeyError:
            raise TelemetryError(f"field {field_id} not present in record") from None


class DcgmMonitor:
    """Watches a simulated device while a kernel loop runs."""

    def __init__(
        self,
        device: Device,
        field_ids: tuple[int, ...] = (DCGM_FI_DEV_POWER_USAGE, DCGM_FI_DEV_GPU_UTIL),
        config: TelemetryConfig | None = None,
    ) -> None:
        unknown = set(field_ids) - _SUPPORTED_FIELDS
        if unknown:
            raise TelemetryError(f"unsupported DCGM field ids: {sorted(unknown)}")
        if not field_ids:
            raise TelemetryError("at least one field id must be watched")
        self.device = device
        self.field_ids = tuple(field_ids)
        self.config = config or TelemetryConfig()

    def watch_run(
        self,
        steady_power_watts: float,
        duration_s: float,
        utilization_percent: float = 98.5,
        seed: int = 0,
    ) -> list[DcgmRecord]:
        """Monitor a kernel loop with the given steady power and duration."""
        trace = self.power_trace(steady_power_watts, duration_s, seed=seed)
        records = []
        for t, p in zip(trace.timestamps_s, trace.power_watts):
            fields: dict[int, float] = {}
            if DCGM_FI_DEV_POWER_USAGE in self.field_ids:
                fields[DCGM_FI_DEV_POWER_USAGE] = float(p)
            if DCGM_FI_DEV_GPU_UTIL in self.field_ids:
                fields[DCGM_FI_DEV_GPU_UTIL] = float(utilization_percent)
            records.append(DcgmRecord(timestamp_s=float(t), fields=fields))
        return records

    def power_trace(
        self, steady_power_watts: float, duration_s: float, seed: int = 0
    ) -> PowerTrace:
        """Return the raw power trace (what the harness consumes)."""
        return simulate_power_trace(
            steady_power_watts=steady_power_watts,
            duration_s=duration_s,
            idle_power_watts=self.device.idle_watts,
            config=self.config,
            seed=seed,
        )

    @staticmethod
    def records_to_trace(records: list[DcgmRecord], sample_period_s: float) -> PowerTrace:
        """Convert monitoring records back into a :class:`PowerTrace`."""
        if not records:
            raise TelemetryError("cannot build a trace from zero records")
        times = [r.timestamp_s for r in records]
        watts = [r.value(DCGM_FI_DEV_POWER_USAGE) for r in records]
        return PowerTrace(
            timestamps_s=times, power_watts=watts, sample_period_s=sample_period_s
        )
