"""Power-trace simulation.

Given the steady-state power of a kernel loop, produce the time series a
DCGM/NVML power sensor would report: a warmup ramp from idle toward the
steady level (board capacitance, thermal inertia, clock ramp), per-sample
sensor noise, and the configured sampling period.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.errors import TelemetryError
from repro.telemetry.trace import PowerTrace
from repro.util.rng import derive_rng

__all__ = ["TelemetryConfig", "simulate_power_trace"]


@lru_cache(maxsize=64)
def _sample_time_grid(num_samples: int, sample_period_s: float) -> np.ndarray:
    """Shared, read-only sampling-time grid.

    Every trace with the same sample count and period uses the same
    timestamps, so the grid is built once and reused across the seeds and
    sweep points of a measurement campaign (traces never mutate their
    timestamps; the array is marked read-only to enforce that).
    """
    times = np.arange(num_samples, dtype=np.float64) * sample_period_s
    times.setflags(write=False)
    return times


@dataclass(frozen=True)
class TelemetryConfig:
    """Sampling behaviour of the simulated power sensor."""

    #: sampling period; the paper samples every 100 ms
    sample_period_s: float = 0.1
    #: time constant of the warmup ramp from idle to steady power
    warmup_time_constant_s: float = 0.18
    #: standard deviation of per-sample sensor noise, watts
    noise_std_watts: float = 1.6
    #: amplitude of slow power drift (thermal / fan effects), watts
    drift_watts: float = 0.8
    #: period of the slow drift, seconds
    drift_period_s: float = 7.0

    def __post_init__(self) -> None:
        if self.sample_period_s <= 0:
            raise TelemetryError("sample period must be positive")
        if self.warmup_time_constant_s <= 0:
            raise TelemetryError("warmup time constant must be positive")
        if self.noise_std_watts < 0 or self.drift_watts < 0:
            raise TelemetryError("noise and drift amplitudes must be non-negative")


def simulate_power_trace(
    steady_power_watts: float,
    duration_s: float,
    idle_power_watts: float,
    config: TelemetryConfig | None = None,
    seed: int = 0,
) -> PowerTrace:
    """Simulate the power trace of a kernel loop running for ``duration_s``.

    The trace starts at idle power and approaches the steady level with an
    exponential ramp, reproducing why the paper trims the first 500 ms.
    """
    if duration_s <= 0:
        raise TelemetryError(f"duration must be positive, got {duration_s}")
    if steady_power_watts < 0 or idle_power_watts < 0:
        raise TelemetryError("power levels must be non-negative")
    config = config or TelemetryConfig()
    rng = derive_rng(seed, "telemetry", round(steady_power_watts, 3), round(duration_s, 6))

    num_samples = max(int(np.ceil(duration_s / config.sample_period_s)), 1)
    times = _sample_time_grid(num_samples, config.sample_period_s)

    ramp = 1.0 - np.exp(-times / config.warmup_time_constant_s)
    power = idle_power_watts + (steady_power_watts - idle_power_watts) * ramp

    if config.drift_watts > 0:
        phase = rng.uniform(0.0, 2.0 * np.pi)
        power = power + config.drift_watts * np.sin(
            2.0 * np.pi * times / config.drift_period_s + phase
        )
    if config.noise_std_watts > 0:
        power = power + rng.normal(0.0, config.noise_std_watts, size=num_samples)

    power = np.clip(power, 0.0, None)
    return PowerTrace(
        timestamps_s=times,
        power_watts=power,
        sample_period_s=config.sample_period_s,
    )
