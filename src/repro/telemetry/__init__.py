"""Simulated GPU telemetry (NVML / DCGM).

The paper measures power with NVIDIA DCGM command-line tools at a 100 ms
period and trims the first 500 ms of samples as warmup.  Real NVML/DCGM is
unavailable without the hardware, so this package provides behaviourally
faithful substitutes: a power-trace simulator with warmup ramp and sensor
noise, a ``pynvml``-style API facade, and a DCGM-style field monitor.  The
measurement harness in :mod:`repro.experiments` is written against these
interfaces exactly as the paper's harness is written against the real ones.
"""

from repro.telemetry.dcgm import DcgmMonitor, DCGM_FI_DEV_POWER_USAGE, DCGM_FI_DEV_GPU_UTIL
from repro.telemetry.nvml import SimulatedNVML, NVMLDeviceHandle
from repro.telemetry.sampler import TelemetryConfig, simulate_power_trace
from repro.telemetry.trace import PowerTrace

__all__ = [
    "PowerTrace",
    "TelemetryConfig",
    "simulate_power_trace",
    "SimulatedNVML",
    "NVMLDeviceHandle",
    "DcgmMonitor",
    "DCGM_FI_DEV_POWER_USAGE",
    "DCGM_FI_DEV_GPU_UTIL",
]
