"""Power traces: time series of power samples plus the paper's post-processing."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TelemetryError
from repro.util.stats import SummaryStats, summarize

__all__ = ["PowerTrace"]


@dataclass
class PowerTrace:
    """A sampled power time series for one measurement run."""

    timestamps_s: np.ndarray
    power_watts: np.ndarray
    sample_period_s: float

    def __post_init__(self) -> None:
        self.timestamps_s = np.asarray(self.timestamps_s, dtype=np.float64)
        self.power_watts = np.asarray(self.power_watts, dtype=np.float64)
        if self.timestamps_s.shape != self.power_watts.shape:
            raise TelemetryError(
                "timestamps and power arrays must have the same shape, got "
                f"{self.timestamps_s.shape} vs {self.power_watts.shape}"
            )
        if self.timestamps_s.ndim != 1:
            raise TelemetryError("a power trace must be one-dimensional")
        if self.sample_period_s <= 0:
            raise TelemetryError(
                f"sample period must be positive, got {self.sample_period_s}"
            )
        if self.timestamps_s.size and np.any(np.diff(self.timestamps_s) < 0):
            raise TelemetryError("timestamps must be non-decreasing")

    # ------------------------------------------------------------ properties

    @property
    def num_samples(self) -> int:
        return int(self.power_watts.size)

    @property
    def duration_s(self) -> float:
        if self.num_samples == 0:
            return 0.0
        return float(self.timestamps_s[-1] - self.timestamps_s[0]) + self.sample_period_s

    def mean_power_watts(self) -> float:
        if self.num_samples == 0:
            raise TelemetryError("cannot average an empty power trace")
        return float(self.power_watts.mean())

    def summary(self) -> SummaryStats:
        return summarize(self.power_watts)

    def energy_joules(self) -> float:
        """Total energy, integrating samples over the sampling period."""
        return float(self.power_watts.sum() * self.sample_period_s)

    # ------------------------------------------------------------ transforms

    def trim_warmup(self, warmup_s: float = 0.5) -> "PowerTrace":
        """Drop the first ``warmup_s`` seconds of samples (paper's procedure)."""
        if warmup_s < 0:
            raise TelemetryError(f"warmup must be non-negative, got {warmup_s}")
        if self.num_samples == 0:
            return self
        cutoff = self.timestamps_s[0] + warmup_s
        keep = self.timestamps_s >= cutoff
        if not np.any(keep):
            # Keep at least the final sample so the trace stays usable.
            keep = np.zeros_like(keep)
            keep[-1] = True
        return PowerTrace(
            timestamps_s=self.timestamps_s[keep],
            power_watts=self.power_watts[keep],
            sample_period_s=self.sample_period_s,
        )

    def resampled(self, period_s: float) -> "PowerTrace":
        """Resample the trace to a different period by nearest-sample selection."""
        if period_s <= 0:
            raise TelemetryError(f"period must be positive, got {period_s}")
        if self.num_samples == 0:
            return PowerTrace(self.timestamps_s, self.power_watts, period_s)
        start, end = self.timestamps_s[0], self.timestamps_s[-1]
        new_times = np.arange(start, end + period_s / 2, period_s)
        indices = np.searchsorted(self.timestamps_s, new_times, side="left")
        indices = np.clip(indices, 0, self.num_samples - 1)
        return PowerTrace(new_times, self.power_watts[indices], period_s)

    def as_dict(self) -> dict[str, object]:
        return {
            "timestamps_s": self.timestamps_s.tolist(),
            "power_watts": self.power_watts.tolist(),
            "sample_period_s": self.sample_period_s,
        }
