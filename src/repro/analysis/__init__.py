"""Analysis: bit alignment, Hamming weight, correlations, takeaway checks, reports."""

from repro.analysis.alignment import matrix_bit_alignment, pairwise_alignment_profile
from repro.analysis.correlation import CorrelationSummary, correlate_power_with_bit_metrics
from repro.analysis.hamming import hamming_profile, matrix_hamming_fraction
from repro.analysis.reporting import render_experiment_table, render_figure_markdown
from repro.analysis.takeaways import TakeawayCheck, evaluate_takeaways

__all__ = [
    "matrix_bit_alignment",
    "pairwise_alignment_profile",
    "matrix_hamming_fraction",
    "hamming_profile",
    "CorrelationSummary",
    "correlate_power_with_bit_metrics",
    "TakeawayCheck",
    "evaluate_takeaways",
    "render_experiment_table",
    "render_figure_markdown",
]
