"""Correlation analysis between bit-level metrics and power (Figure 8).

Each experiment configuration contributes one point: its average power, the
average bit alignment of the operand pairs it multiplies, and the average
Hamming weight of its A matrix.  The paper reports that — across floating
point datatypes — higher alignment and lower Hamming weight loosely
correlate with lower power, while noting the trend is "not entirely
consistent".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import AnalysisError
from repro.experiments.results import ExperimentResult
from repro.util.stats import pearson_correlation, spearman_correlation

__all__ = ["CorrelationSummary", "correlate_power_with_bit_metrics", "scatter_points"]


@dataclass(frozen=True)
class CorrelationSummary:
    """Correlations between power and the two Figure-8 metrics for one datatype."""

    dtype: str
    num_points: int
    alignment_pearson: float
    alignment_spearman: float
    hamming_pearson: float
    hamming_spearman: float

    def as_dict(self) -> dict[str, float | str | int]:
        return {
            "dtype": self.dtype,
            "num_points": self.num_points,
            "alignment_pearson": self.alignment_pearson,
            "alignment_spearman": self.alignment_spearman,
            "hamming_pearson": self.hamming_pearson,
            "hamming_spearman": self.hamming_spearman,
        }


def scatter_points(
    results: Iterable[ExperimentResult],
) -> list[dict[str, float | str]]:
    """Extract (dtype, power, alignment, hamming) scatter points from results."""
    points = []
    for result in results:
        points.append(
            {
                "dtype": str(result.config.get("dtype", "unknown")),
                "label": result.label,
                "power_watts": result.mean_power_watts,
                "bit_alignment": result.mean_bit_alignment,
                "hamming_fraction": result.mean_hamming_fraction,
            }
        )
    return points


def correlate_power_with_bit_metrics(
    results: Sequence[ExperimentResult],
) -> list[CorrelationSummary]:
    """Per-datatype correlations between power and alignment / Hamming weight."""
    if not results:
        raise AnalysisError("correlation analysis needs at least one result")
    by_dtype: dict[str, list[ExperimentResult]] = {}
    for result in results:
        by_dtype.setdefault(str(result.config.get("dtype", "unknown")), []).append(result)

    summaries = []
    for dtype, group in sorted(by_dtype.items()):
        powers = [r.mean_power_watts for r in group]
        alignments = [r.mean_bit_alignment for r in group]
        hammings = [r.mean_hamming_fraction for r in group]
        summaries.append(
            CorrelationSummary(
                dtype=dtype,
                num_points=len(group),
                alignment_pearson=pearson_correlation(alignments, powers),
                alignment_spearman=spearman_correlation(alignments, powers),
                hamming_pearson=pearson_correlation(hammings, powers),
                hamming_spearman=spearman_correlation(hammings, powers),
            )
        )
    return summaries
