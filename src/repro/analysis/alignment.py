"""Bit-alignment metrics (Figure 8).

The paper defines bit alignment between two values as 1 when every bit
matches and 0 when every bit differs, and reports the average alignment
between the A and B matrices of each experiment configuration.
"""

from __future__ import annotations

import numpy as np

from repro.dtypes.registry import get_dtype
from repro.errors import AnalysisError
from repro.util.bits import bit_alignment, hamming_distance

__all__ = ["matrix_bit_alignment", "pairwise_alignment_profile"]


def matrix_bit_alignment(a: np.ndarray, b: np.ndarray, dtype: str) -> float:
    """Mean bit alignment between elementwise-paired entries of A and B.

    Both matrices must have the same shape; this matches the paper's
    matrix-level alignment metric (A and B share the same pattern, so the
    elementwise pairing is the natural correspondence).
    """
    spec = get_dtype(dtype)
    a_arr = np.asarray(a, dtype=np.float64)
    b_arr = np.asarray(b, dtype=np.float64)
    if a_arr.shape != b_arr.shape:
        raise AnalysisError(
            f"alignment requires equal shapes, got {a_arr.shape} vs {b_arr.shape}"
        )
    return bit_alignment(spec.encode(a_arr), spec.encode(b_arr))


def pairwise_alignment_profile(a: np.ndarray, b: np.ndarray, dtype: str) -> dict[str, float]:
    """Distributional summary of per-element bit alignment between A and B."""
    spec = get_dtype(dtype)
    a_words = spec.encode(np.asarray(a, dtype=np.float64))
    b_words = spec.encode(np.asarray(b, dtype=np.float64))
    if a_words.shape != b_words.shape:
        raise AnalysisError(
            f"alignment requires equal shapes, got {a_words.shape} vs {b_words.shape}"
        )
    per_element = 1.0 - hamming_distance(a_words, b_words) / spec.bits
    return {
        "mean": float(per_element.mean()),
        "std": float(per_element.std()),
        "min": float(per_element.min()),
        "max": float(per_element.max()),
        "p10": float(np.percentile(per_element, 10)),
        "p90": float(np.percentile(per_element, 90)),
    }
