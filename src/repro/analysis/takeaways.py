"""Automated checks of the paper's takeaways T1–T15.

Each check inspects the relevant sweep(s) and verifies the *direction* (and
where applicable the shape, e.g. the interior peak of T13) of the trend the
paper reports.  Checks are deliberately tolerant about magnitudes: the
reproduction targets trend fidelity, not absolute watts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import AnalysisError
from repro.experiments.results import SweepResult
from repro.util.stats import spearman_correlation

__all__ = ["TakeawayCheck", "evaluate_takeaways", "TAKEAWAY_STATEMENTS"]

#: The paper's takeaway statements, verbatim (abbreviated).
TAKEAWAY_STATEMENTS: dict[str, str] = {
    "T1": "Input distribution standard deviation does not significantly impact power",
    "T2": "Larger input value means can reduce power for FP datatypes",
    "T3": "Inputs from a small set of unique values decrease power consumption",
    "T4": "Input data with highly similar bits uses less power",
    "T5": "As more least significant bits are randomized, power increases",
    "T6": "As more of the most significant bits are randomized, power increases",
    "T7": "FP16-T is the most power hungry data type",
    "T8": "Sorting input values can decrease power consumption",
    "T9": "Aligning sorted values decreases power even more than just sorting",
    "T10": "Sorting values into columns can decrease power consumption",
    "T11": "Intra-row sorting can decrease power, but to a lesser extent than sorting fully",
    "T12": "Matrix sparsity decreases GEMM power",
    "T13": "Sparsity applied to sorted matrices can actually increase power consumption",
    "T14": "Zeroing least significant bits can reduce power",
    "T15": "Zeroing most significant bits can reduce power",
}


@dataclass(frozen=True)
class TakeawayCheck:
    """Outcome of checking one takeaway against reproduced data."""

    takeaway: str
    statement: str
    passed: bool
    detail: str

    def as_dict(self) -> dict[str, object]:
        return {
            "takeaway": self.takeaway,
            "statement": self.statement,
            "passed": self.passed,
            "detail": self.detail,
        }


def _make(takeaway: str, passed: bool, detail: str) -> TakeawayCheck:
    return TakeawayCheck(
        takeaway=takeaway,
        statement=TAKEAWAY_STATEMENTS[takeaway],
        passed=bool(passed),
        detail=detail,
    )


def _trend(sweep: SweepResult) -> float:
    """Spearman correlation between the swept value and power."""
    try:
        xs = [float(v) for v in sweep.values]
    except (TypeError, ValueError):
        xs = list(range(len(sweep.values)))
    return spearman_correlation(xs, sweep.powers())


# --------------------------------------------------------------- T1 – T3


def check_t1_std_insensitive(sweep: SweepResult, tolerance: float = 0.08) -> TakeawayCheck:
    """T1: power swing over the std sweep stays within ``tolerance`` of max power."""
    swing = sweep.power_range_fraction()
    return _make("T1", swing <= tolerance, f"power swing {swing:.1%} (tolerance {tolerance:.0%})")


def check_t2_mean_reduces_power(sweep: SweepResult) -> TakeawayCheck:
    """T2: power at the largest mean is below power at mean 0 (FP datatypes)."""
    powers = sweep.powers()
    drop = powers[0] - powers[-1]
    return _make(
        "T2",
        powers[-1] < powers[0],
        f"power {powers[0]:.1f} W at mean={sweep.values[0]} vs "
        f"{powers[-1]:.1f} W at mean={sweep.values[-1]} (drop {drop:.1f} W)",
    )


def check_t3_small_set_reduces_power(sweep: SweepResult) -> TakeawayCheck:
    """T3: power increases with set size (so small sets use less power)."""
    trend = _trend(sweep)
    powers = sweep.powers()
    return _make(
        "T3",
        powers[0] < powers[-1] and trend > 0,
        f"power {powers[0]:.1f} W (set={sweep.values[0]}) < {powers[-1]:.1f} W "
        f"(set={sweep.values[-1]}); spearman {trend:+.2f}",
    )


# --------------------------------------------------------------- T4 – T7


def check_t4_similar_bits_use_less(sweep: SweepResult) -> TakeawayCheck:
    """T4: power rises as more random bits are flipped away from a constant fill."""
    powers = sweep.powers()
    trend = _trend(sweep)
    return _make(
        "T4",
        powers[0] < powers[-1] and trend > 0,
        f"{powers[0]:.1f} W with identical bits vs {powers[-1]:.1f} W fully randomized; "
        f"spearman {trend:+.2f}",
    )


def check_t5_lsb_randomization_increases(sweep: SweepResult) -> TakeawayCheck:
    trend = _trend(sweep)
    powers = sweep.powers()
    return _make(
        "T5", powers[-1] > powers[0] and trend > 0,
        f"power rises {powers[0]:.1f} → {powers[-1]:.1f} W; spearman {trend:+.2f}"
    )


def check_t6_msb_randomization_increases(sweep: SweepResult) -> TakeawayCheck:
    trend = _trend(sweep)
    powers = sweep.powers()
    return _make(
        "T6", powers[-1] > powers[0] and trend > 0,
        f"power rises {powers[0]:.1f} → {powers[-1]:.1f} W; spearman {trend:+.2f}"
    )


def check_t7_fp16t_most_power_hungry(power_by_dtype: Mapping[str, float]) -> TakeawayCheck:
    """T7: FP16-T draws the most power among the compared datatypes."""
    if "fp16_t" not in power_by_dtype:
        raise AnalysisError("T7 check requires an 'fp16_t' entry")
    ranked = sorted(power_by_dtype.items(), key=lambda kv: kv[1], reverse=True)
    detail = ", ".join(f"{name}={watts:.1f}W" for name, watts in ranked)
    return _make("T7", ranked[0][0] == "fp16_t", detail)


# --------------------------------------------------------------- T8 – T11


def _decreasing(sweep: SweepResult, takeaway: str) -> TakeawayCheck:
    powers = sweep.powers()
    trend = _trend(sweep)
    return _make(
        takeaway,
        powers[-1] < powers[0] and trend < 0,
        f"power falls {powers[0]:.1f} → {powers[-1]:.1f} W; spearman {trend:+.2f}",
    )


def check_t8_sorting_decreases(sweep: SweepResult) -> TakeawayCheck:
    return _decreasing(sweep, "T8")


def check_t9_aligned_sorting_better(
    sorted_sweep: SweepResult, aligned_sweep: SweepResult, tolerance: float = 0.01
) -> TakeawayCheck:
    """T9: at full sorting, the aligned variant draws less power than the plain one.

    ``tolerance`` allows the aligned variant to sit within a small relative
    margin of the unaligned one, so the check stays robust to simulated
    sensor noise at small benchmark matrix sizes.
    """
    plain = sorted_sweep.powers()[-1]
    aligned = aligned_sweep.powers()[-1]
    decreasing = aligned_sweep.powers()[-1] < aligned_sweep.powers()[0]
    return _make(
        "T9",
        aligned <= plain * (1.0 + tolerance) and decreasing,
        f"fully sorted: aligned {aligned:.1f} W vs unaligned {plain:.1f} W",
    )


def check_t10_column_sorting_decreases(sweep: SweepResult) -> TakeawayCheck:
    return _decreasing(sweep, "T10")


def check_t11_intra_row_lesser_effect(
    full_sort_sweep: SweepResult, intra_row_sweep: SweepResult
) -> TakeawayCheck:
    """T11: intra-row sorting lowers power, but by less than full sorting."""
    full_drop = full_sort_sweep.powers()[0] - full_sort_sweep.powers()[-1]
    intra_drop = intra_row_sweep.powers()[0] - intra_row_sweep.powers()[-1]
    decreases = intra_row_sweep.powers()[-1] < intra_row_sweep.powers()[0]
    return _make(
        "T11",
        decreases and intra_drop <= full_drop,
        f"intra-row drop {intra_drop:.1f} W vs full-sort drop {full_drop:.1f} W",
    )


# --------------------------------------------------------------- T12 – T15


def check_t12_sparsity_decreases(sweep: SweepResult) -> TakeawayCheck:
    return _decreasing(sweep, "T12")


def check_t13_sorted_sparsity_peak(sweep: SweepResult) -> TakeawayCheck:
    """T13: on sorted inputs, moderate sparsity *raises* power (interior peak)."""
    powers = sweep.powers()
    values = [float(v) for v in sweep.values]
    peak_index = max(range(len(powers)), key=powers.__getitem__)
    interior_peak = 0 < peak_index < len(powers) - 1
    rises_above_baseline = powers[peak_index] > powers[0]
    falls_at_high_sparsity = powers[-1] < powers[peak_index]
    return _make(
        "T13",
        interior_peak and rises_above_baseline and falls_at_high_sparsity,
        f"peak {powers[peak_index]:.1f} W at sparsity {values[peak_index]:.2f} "
        f"(baseline {powers[0]:.1f} W, fully sparse {powers[-1]:.1f} W)",
    )


def check_t14_zero_lsb_reduces(sweep: SweepResult) -> TakeawayCheck:
    return _decreasing(sweep, "T14")


def check_t15_zero_msb_reduces(sweep: SweepResult) -> TakeawayCheck:
    return _decreasing(sweep, "T15")


# ------------------------------------------------------------- aggregation


def evaluate_takeaways(
    sweeps: Mapping[str, SweepResult],
    power_by_dtype: Mapping[str, float] | None = None,
) -> list[TakeawayCheck]:
    """Evaluate every takeaway for which the required sweeps are present.

    ``sweeps`` maps well-known keys to sweep results:

    ``std``, ``mean``, ``value_set`` (Fig. 3), ``bit_flip``, ``lsb``, ``msb``
    (Fig. 4), ``sorted_rows``, ``sorted_aligned``, ``sorted_columns``,
    ``sorted_within_rows`` (Fig. 5), ``sparsity``, ``sorted_sparsity``,
    ``zero_lsb``, ``zero_msb`` (Fig. 6).  ``power_by_dtype`` supplies the
    datatype ranking for T7.
    """
    checks: list[TakeawayCheck] = []

    def have(*keys: str) -> bool:
        return all(key in sweeps for key in keys)

    if have("std"):
        checks.append(check_t1_std_insensitive(sweeps["std"]))
    if have("mean"):
        checks.append(check_t2_mean_reduces_power(sweeps["mean"]))
    if have("value_set"):
        checks.append(check_t3_small_set_reduces_power(sweeps["value_set"]))
    if have("bit_flip"):
        checks.append(check_t4_similar_bits_use_less(sweeps["bit_flip"]))
    if have("lsb"):
        checks.append(check_t5_lsb_randomization_increases(sweeps["lsb"]))
    if have("msb"):
        checks.append(check_t6_msb_randomization_increases(sweeps["msb"]))
    if power_by_dtype is not None:
        checks.append(check_t7_fp16t_most_power_hungry(power_by_dtype))
    if have("sorted_rows"):
        checks.append(check_t8_sorting_decreases(sweeps["sorted_rows"]))
    if have("sorted_rows", "sorted_aligned"):
        checks.append(
            check_t9_aligned_sorting_better(sweeps["sorted_rows"], sweeps["sorted_aligned"])
        )
    if have("sorted_columns"):
        checks.append(check_t10_column_sorting_decreases(sweeps["sorted_columns"]))
    if have("sorted_rows", "sorted_within_rows"):
        checks.append(
            check_t11_intra_row_lesser_effect(
                sweeps["sorted_rows"], sweeps["sorted_within_rows"]
            )
        )
    if have("sparsity"):
        checks.append(check_t12_sparsity_decreases(sweeps["sparsity"]))
    if have("sorted_sparsity"):
        checks.append(check_t13_sorted_sparsity_peak(sweeps["sorted_sparsity"]))
    if have("zero_lsb"):
        checks.append(check_t14_zero_lsb_reduces(sweeps["zero_lsb"]))
    if have("zero_msb"):
        checks.append(check_t15_zero_msb_reduces(sweeps["zero_msb"]))
    return checks


def passed_fraction(checks: Sequence[TakeawayCheck]) -> float:
    """Fraction of takeaway checks that passed."""
    if not checks:
        raise AnalysisError("no takeaway checks were evaluated")
    return sum(1 for c in checks if c.passed) / len(checks)
