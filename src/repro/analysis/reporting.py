"""Text/markdown rendering of experiment results and takeaway checks."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.analysis.takeaways import TakeawayCheck
from repro.experiments.results import ExperimentResult, FigureResult
from repro.util.tables import format_table

__all__ = [
    "render_experiment_table",
    "render_takeaway_report",
    "render_figure_markdown",
]


def render_experiment_table(results: Iterable[ExperimentResult], title: str = "") -> str:
    """Render a comparison table of experiment results."""
    headers = ["label", "power_W", "std_W", "runtime_us", "energy_mJ", "activity", "alignment", "hamming"]
    rows = []
    for result in results:
        rows.append(
            [
                result.label or str(result.config.get("pattern_family", "")),
                result.mean_power_watts,
                result.power_std_watts,
                result.mean_iteration_time_s * 1e6,
                result.mean_iteration_energy_j * 1e3,
                result.mean_activity_factor,
                result.mean_bit_alignment,
                result.mean_hamming_fraction,
            ]
        )
    return format_table(headers, rows, precision=3, title=title)


def render_takeaway_report(checks: Sequence[TakeawayCheck], title: str = "Takeaway checks") -> str:
    """Render a pass/fail table for takeaway checks."""
    headers = ["takeaway", "status", "detail"]
    rows = [[c.takeaway, "PASS" if c.passed else "FAIL", c.detail] for c in checks]
    passed = sum(1 for c in checks if c.passed)
    footer = f"{passed}/{len(checks)} takeaways reproduced"
    return format_table(headers, rows, title=title) + "\n" + footer


def render_figure_markdown(
    figure: FigureResult, paper_expectation: str = "", measured_summary: str = ""
) -> str:
    """Render one figure's reproduction as a markdown section (for EXPERIMENTS.md)."""
    lines = [f"### {figure.name}", "", figure.description, ""]
    if paper_expectation:
        lines += [f"**Paper:** {paper_expectation}", ""]
    if measured_summary:
        lines += [f"**Measured:** {measured_summary}", ""]
    for key, sweep in figure.panels.items():
        lines.append(f"**Panel {key}** — `{sweep.label}`")
        lines.append("")
        lines.append("| " + sweep.parameter + " | power (W) | runtime (us) | energy (mJ) |")
        lines.append("|---|---|---|---|")
        for value, result in zip(sweep.values, sweep.results):
            lines.append(
                f"| {value} | {result.mean_power_watts:.1f} | "
                f"{result.mean_iteration_time_s * 1e6:.1f} | "
                f"{result.mean_iteration_energy_j * 1e3:.2f} |"
            )
        lines.append("")
    if figure.notes:
        lines.append("Notes:")
        lines.extend(f"- {note}" for note in figure.notes)
        lines.append("")
    return "\n".join(lines)
