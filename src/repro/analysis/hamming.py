"""Hamming-weight metrics (Figure 8)."""

from __future__ import annotations

import numpy as np

from repro.dtypes.registry import get_dtype
from repro.util.bits import popcount

__all__ = ["matrix_hamming_fraction", "hamming_profile"]


def matrix_hamming_fraction(values: np.ndarray, dtype: str) -> float:
    """Mean fraction of set bits per element of a matrix in a given datatype."""
    spec = get_dtype(dtype)
    words = spec.encode(np.asarray(values, dtype=np.float64))
    if words.size == 0:
        return 0.0
    return float(popcount(words).mean()) / spec.bits


def hamming_profile(values: np.ndarray, dtype: str) -> dict[str, float]:
    """Distributional summary of per-element Hamming weight (as bit counts)."""
    spec = get_dtype(dtype)
    words = spec.encode(np.asarray(values, dtype=np.float64))
    weights = popcount(words).astype(np.float64)
    return {
        "mean_bits": float(weights.mean()),
        "std_bits": float(weights.std()),
        "min_bits": float(weights.min()),
        "max_bits": float(weights.max()),
        "mean_fraction": float(weights.mean()) / spec.bits,
        "width_bits": float(spec.bits),
    }
