"""Disk-cache lifecycle management: inspection and garbage collection.

The on-disk cache (``REPRO_CACHE_DIR``) holds two tiers side by side, each
in either (or both) of the disk-backend layouts of
:mod:`repro.cache.store`:

* experiment entries — ``<root>/entries.sqlite`` rows and/or legacy
  ``<root>/<fingerprint>.json`` files
* activity entries — the same layouts under ``<root>/activity/``

Nothing ever deletes these entries during normal operation, so long-lived
directories grow without bound.  This module provides the shared scanning,
size/age accounting and pruning used by the ``python -m repro.cache`` CLI
and by the env-driven auto-GC hook in :mod:`repro.cache.store`
(``REPRO_CACHE_MAX_BYTES`` / ``REPRO_CACHE_MAX_AGE_DAYS``).  Scanning is
read-only for both layouts (a ``stats`` or ``--dry-run`` pass never
mutates the directory — in particular it never triggers the SQLite
backend's legacy-file migration); removal dispatches per entry, unlinking
files and deleting database rows.

Pruning is safe to run concurrently with readers and writers: entries are
published atomically (SQLite journaling; temp file + ``os.replace`` for
legacy files), deletions of entries that vanished underneath us are
ignored, and a reader that loses the race simply recomputes — the cache
is a pure performance layer.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

from repro.cache.store import ACTIVITY_SUBDIR
from repro.errors import ExperimentError

__all__ = [
    "TIERS",
    "DEFAULT_COST_WEIGHTS",
    "ENV_EXPERIMENT_COST",
    "CacheEntry",
    "PruneReport",
    "tier_dir",
    "scan_cache_dir",
    "cache_dir_stats",
    "resolve_cost_weights",
    "prune_cache_dir",
    "clear_cache_dir",
    "parse_size",
    "format_size",
]

#: Known cache tiers, in the order the CLI reports them.
TIERS = ("experiment", "activity")

#: Relative recomputation cost per tier, used to weight the size-based
#: eviction order.  An experiment entry re-runs the full measurement
#: pipeline for every seed (~100x the work of the single per-seed activity
#: estimate an activity entry stores, at paper scale), so it survives size
#: pressure ~100x longer than an activity entry of the same age: GC evicts
#: cheap-to-rebuild entries first.
DEFAULT_COST_WEIGHTS: "Mapping[str, float]" = {"experiment": 100.0, "activity": 1.0}

#: Environment override for the experiment tier's cost multiplier (a float;
#: consulted when no explicit ``cost_weights`` mapping is passed).
ENV_EXPERIMENT_COST = "REPRO_CACHE_EXPERIMENT_COST"

#: Temp files from interrupted atomic writes older than this are removed by
#: every prune pass, whatever the size/age limits.
STALE_TMP_AGE_S = 3600.0


@dataclass(frozen=True)
class CacheEntry:
    """One on-disk cache entry: a legacy JSON file, or one database row
    (``backend == "sqlite"``, in which case ``path`` names the database
    holding the row)."""

    path: Path
    tier: str
    key: str
    size_bytes: int
    mtime: float
    backend: str = "json"

    def age_s(self, now: float | None = None) -> float:
        return (now if now is not None else time.time()) - self.mtime


@dataclass
class PruneReport:
    """What one :func:`prune_cache_dir` pass did."""

    examined: int = 0
    removed: list[CacheEntry] = field(default_factory=list)
    removed_tmp: int = 0
    remaining: int = 0
    remaining_bytes: int = 0
    dry_run: bool = False

    @property
    def removed_bytes(self) -> int:
        return sum(entry.size_bytes for entry in self.removed)

    def as_dict(self) -> dict[str, object]:
        return {
            "examined": self.examined,
            "removed": len(self.removed),
            "removed_bytes": self.removed_bytes,
            "removed_tmp": self.removed_tmp,
            "remaining": self.remaining,
            "remaining_bytes": self.remaining_bytes,
            "dry_run": self.dry_run,
        }


def tier_dir(root: "str | Path", tier: str) -> Path:
    """Directory holding one tier's entry files under a cache root."""
    root = Path(root)
    if tier == "experiment":
        return root
    if tier == "activity":
        return root / ACTIVITY_SUBDIR
    raise ExperimentError(f"unknown cache tier {tier!r}; expected one of {TIERS}")


def _scan_tier(root: Path, tier: str) -> list[CacheEntry]:
    from repro.cache.sqlite_store import DB_FILENAME, read_entries

    directory = tier_dir(root, tier)
    if not directory.is_dir():
        return []
    entries = []
    for path in directory.glob("*.json"):
        try:
            stat = path.stat()
        except OSError:
            continue  # deleted by a concurrent prune/clear
        entries.append(
            CacheEntry(
                path=path,
                tier=tier,
                key=path.stem,
                size_bytes=stat.st_size,
                mtime=stat.st_mtime,
            )
        )
    db_path = directory / DB_FILENAME
    for key, size_bytes, mtime in read_entries(db_path):
        entries.append(
            CacheEntry(
                path=db_path,
                tier=tier,
                key=key,
                size_bytes=size_bytes,
                mtime=mtime,
                backend="sqlite",
            )
        )
    return entries


def scan_cache_dir(
    root: "str | Path", tiers: Iterable[str] = TIERS
) -> list[CacheEntry]:
    """Every entry under ``root`` for the given tiers, oldest first."""
    root = Path(root)
    entries: list[CacheEntry] = []
    for tier in tiers:
        entries.extend(_scan_tier(root, tier))
    entries.sort(key=lambda entry: (entry.mtime, str(entry.path)))
    return entries


def cache_dir_stats(root: "str | Path", now: float | None = None) -> dict[str, object]:
    """Per-tier entry counts, byte totals and age extremes for ``root``."""
    now = now if now is not None else time.time()
    stats: dict[str, object] = {"root": str(root), "tiers": {}}
    total_entries = 0
    total_bytes = 0
    for tier in TIERS:
        entries = _scan_tier(Path(root), tier)
        tier_bytes = sum(entry.size_bytes for entry in entries)
        total_entries += len(entries)
        total_bytes += tier_bytes
        stats["tiers"][tier] = {
            "entries": len(entries),
            "bytes": tier_bytes,
            "oldest_age_s": max((entry.age_s(now) for entry in entries), default=0.0),
            "newest_age_s": min((entry.age_s(now) for entry in entries), default=0.0),
        }
    stats["entries"] = total_entries
    stats["bytes"] = total_bytes
    return stats


def _remove(entry: CacheEntry, report: PruneReport) -> bool:
    """Delete one entry (or pretend to, under ``dry_run``).  Returns whether
    the entry is gone — callers must keep failed deletions in their survivor
    accounting, or the report would claim space that is still occupied."""
    if not report.dry_run:
        if entry.backend == "sqlite":
            from repro.cache.sqlite_store import delete_entries

            try:
                # 0 rows deleted means another process pruned it first; the
                # entry is gone either way.
                delete_entries(entry.path, [entry.key])
            except OSError:
                return False
        else:
            try:
                entry.path.unlink()
            except FileNotFoundError:
                pass  # another process pruned it first; it is gone either way
            except OSError:
                return False
    report.removed.append(entry)
    return True


def _sweep_stale_tmp(root: Path, now: float, report: PruneReport) -> None:
    for directory in {tier_dir(root, tier) for tier in TIERS}:
        if not directory.is_dir():
            continue
        for path in directory.glob(".*.tmp"):
            try:
                if now - path.stat().st_mtime < STALE_TMP_AGE_S:
                    continue
                if not report.dry_run:
                    path.unlink()
                report.removed_tmp += 1
            except OSError:
                continue


def resolve_cost_weights(
    cost_weights: "Mapping[str, float] | None" = None,
) -> "dict[str, float]":
    """Resolve the per-tier recomputation-cost multipliers for pruning.

    An explicit mapping overrides individual tiers (missing tiers keep their
    defaults); with no mapping, ``REPRO_CACHE_EXPERIMENT_COST`` can scale
    the experiment tier from the environment.  Weights must be positive.
    """
    weights = dict(DEFAULT_COST_WEIGHTS)
    if cost_weights is None:
        raw = os.environ.get(ENV_EXPERIMENT_COST, "").strip()
        if raw:
            try:
                weights["experiment"] = float(raw)
            except ValueError:
                raise ExperimentError(
                    f"{ENV_EXPERIMENT_COST} must be a number, got {raw!r}"
                ) from None
    else:
        for tier, weight in cost_weights.items():
            if tier not in TIERS:
                raise ExperimentError(
                    f"unknown cache tier {tier!r} in cost_weights; expected one of {TIERS}"
                )
            weights[tier] = float(weight)
    for tier, weight in weights.items():
        if not weight > 0:
            raise ExperimentError(
                f"cost weight for tier {tier!r} must be > 0, got {weight}"
            )
    return weights


def prune_cache_dir(
    root: "str | Path",
    max_bytes: int | None = None,
    max_age_s: float | None = None,
    tiers: Iterable[str] = TIERS,
    dry_run: bool = False,
    now: float | None = None,
    cost_weights: "Mapping[str, float] | None" = None,
) -> PruneReport:
    """Garbage-collect a cache directory by age and/or total size.

    Entries older than ``max_age_s`` are removed first (staleness is
    absolute, so age pruning ignores cost).  If the surviving entries still
    exceed ``max_bytes`` in total, entries are removed in order of
    *cost-weighted* age — each entry's age divided by its tier's
    recomputation-cost multiplier (``cost_weights``,
    :data:`DEFAULT_COST_WEIGHTS`, or ``REPRO_CACHE_EXPERIMENT_COST``) —
    until the directory fits.  With the default ~100x experiment weight, an
    hour-old activity entry is evicted before a two-day-old experiment
    entry: GC sheds the entries that are cheapest to rebuild first.
    ``dry_run`` reports what would be deleted without touching anything.
    Stale temp files from interrupted writes are always swept.
    """
    if max_bytes is not None and max_bytes < 0:
        raise ExperimentError(f"max_bytes must be >= 0, got {max_bytes}")
    if max_age_s is not None and max_age_s < 0:
        raise ExperimentError(f"max_age_s must be >= 0, got {max_age_s}")
    weights = resolve_cost_weights(cost_weights)
    root = Path(root)
    now = now if now is not None else time.time()
    report = PruneReport(dry_run=dry_run)
    entries = scan_cache_dir(root, tiers=tiers)
    report.examined = len(entries)

    survivors: list[CacheEntry] = []
    for entry in entries:
        if not (
            max_age_s is not None
            and entry.age_s(now) > max_age_s
            and _remove(entry, report)
        ):
            survivors.append(entry)

    if max_bytes is not None:
        total = sum(entry.size_bytes for entry in survivors)
        # Eviction order: largest effective age first, where effective age
        # discounts an entry by how expensive it is to recompute.  Ties
        # (same mtime and tier) keep the scan's stable path order.
        order = sorted(
            survivors,
            key=lambda entry: entry.age_s(now) / weights[entry.tier],
            reverse=True,
        )
        kept: list[CacheEntry] = []
        for index, entry in enumerate(order):
            if total <= max_bytes:
                kept.extend(order[index:])
                break
            if _remove(entry, report):
                total -= entry.size_bytes
            else:
                kept.append(entry)
        survivors = kept

    _sweep_stale_tmp(root, now, report)
    report.remaining = len(survivors)
    report.remaining_bytes = sum(entry.size_bytes for entry in survivors)
    return report


def clear_cache_dir(
    root: "str | Path", tiers: Iterable[str] = TIERS, dry_run: bool = False
) -> PruneReport:
    """Remove every entry of the given tiers (unconditionally — unlike a
    ``max_bytes=0`` prune, this also removes zero-byte entries, which
    trivially fit any size budget)."""
    root = Path(root)
    report = PruneReport(dry_run=dry_run)
    entries = scan_cache_dir(root, tiers=tiers)
    report.examined = len(entries)
    for entry in entries:
        _remove(entry, report)
    _sweep_stale_tmp(root, time.time(), report)
    report.remaining = report.examined - len(report.removed)
    report.remaining_bytes = (
        sum(entry.size_bytes for entry in entries) - report.removed_bytes
    )
    return report


# ------------------------------------------------------------- size helpers

_SIZE_SUFFIXES = {"": 1, "B": 1, "K": 1 << 10, "M": 1 << 20, "G": 1 << 30, "T": 1 << 40}


def parse_size(text: str) -> int:
    """Parse a human byte size (``"1048576"``, ``"512K"``, ``"1.5G"``)."""
    cleaned = text.strip().upper().removesuffix("IB").removesuffix("B")
    cleaned = cleaned if cleaned else text.strip().upper()
    suffix = cleaned[-1] if cleaned and cleaned[-1] in _SIZE_SUFFIXES else ""
    number = cleaned[: len(cleaned) - len(suffix)] if suffix else cleaned
    try:
        value = float(number)
    except ValueError:
        raise ValueError(f"unparseable size {text!r}") from None
    if value < 0:
        raise ValueError(f"size must be >= 0, got {text!r}")
    return int(value * _SIZE_SUFFIXES[suffix])


def format_size(size_bytes: float) -> str:
    """Render a byte count for humans (``"1.5 MiB"``)."""
    size = float(size_bytes)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if size < 1024.0 or unit == "GiB":
            return f"{size:.1f} {unit}" if unit != "B" else f"{int(size)} B"
        size /= 1024.0
    return f"{size:.1f} GiB"  # pragma: no cover - unreachable
