"""Content-addressed fingerprints for experiment configurations.

A fingerprint is the SHA-256 digest of a canonical JSON rendering of
everything that determines an experiment's output: the full configuration
(workload, device, measurement procedure, estimator and telemetry knobs) and
a code-version tag.  Two configs with the same fingerprint are guaranteed to
produce bit-identical :class:`~repro.experiments.results.ExperimentResult`s,
because the whole pipeline is deterministic given the config — which is what
makes the fingerprint safe to use as a cache key and as a deduplication key
for sweeps.

The ``label`` field is deliberately excluded: it is presentation-only
bookkeeping, and excluding it lets different figure panels share cached
results for physically identical sweep points (callers re-stamp the label on
retrieval).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from typing import TYPE_CHECKING, Any, Mapping

from repro._version import __version__
from repro.dtypes.registry import get_dtype
from repro.gpu.specs import get_gpu_spec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.experiments.config import ExperimentConfig

__all__ = [
    "RESULT_SCHEMA_VERSION",
    "canonical_json",
    "code_fingerprint",
    "fingerprint_payload",
    "experiment_fingerprint",
    "activity_fingerprint",
    "plan_fingerprint",
]

#: Bump when the serialized result layout (or the meaning of any estimator
#: statistic) changes, so stale on-disk entries are never deserialized into
#: a newer schema.
RESULT_SCHEMA_VERSION = 1


def canonical_json(payload: Mapping[str, Any]) -> str:
    """Render ``payload`` as deterministic JSON (sorted keys, fixed separators)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)


def code_fingerprint() -> str:
    """Version tag mixed into every key: package version + result schema."""
    return f"{__version__}/schema{RESULT_SCHEMA_VERSION}"


def fingerprint_payload(payload: Mapping[str, Any]) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``payload``."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def _dtype_spec_payload(name: str) -> dict[str, Any]:
    """Resolved dtype spec, included so re-registering a dtype name under a
    different definition can never serve stale cached results."""
    spec = get_dtype(name)
    return {
        "kind": spec.kind,
        "bits": spec.bits,
        "tensor_core": spec.tensor_core,
        "float_format": asdict(spec.float_format)
        if spec.float_format is not None
        else None,
        "int_format": asdict(spec.int_format) if spec.int_format is not None else None,
    }


def experiment_fingerprint(
    config: "ExperimentConfig",
    seed: int | None = None,
    code_version: str | None = None,
) -> str:
    """Content-addressed key for one experiment configuration.

    Parameters
    ----------
    config:
        The experiment configuration.  Every field that affects the result is
        included — ``describe()`` output (minus the presentation-only label)
        plus the sampling/telemetry knobs and the process-variation switch.
    seed:
        Optional seed index for sub-experiment granularity (e.g. caching one
        :class:`~repro.activity.report.ActivityReport` per seed rather than a
        whole result).  ``None`` keys the whole multi-seed experiment.
    code_version:
        Override of :func:`code_fingerprint`, mainly for tests; any change to
        it invalidates every previously stored entry.
    """
    description = {
        key: value for key, value in config.describe().items() if key != "label"
    }
    # The dtype and GPU registries are mutable (register_* with overwrite), so
    # the names in the config are not enough: fingerprint the resolved specs
    # too, or re-registering a name would silently serve stale results.
    payload: dict[str, Any] = {
        "kind": "experiment",
        "config": description,
        "dtype_spec": _dtype_spec_payload(config.dtype),
        "gpu_spec": asdict(get_gpu_spec(config.gpu)),
        "sampling": asdict(config.sampling),
        "telemetry": asdict(config.telemetry),
        "include_process_variation": config.include_process_variation,
        "code": code_version if code_version is not None else code_fingerprint(),
    }
    if seed is not None:
        payload["seed"] = int(seed)
    return fingerprint_payload(payload)


def plan_fingerprint(
    config: "ExperimentConfig",
    code_version: str | None = None,
) -> str:
    """Content-addressed key for one configuration's *execution plan*.

    An :class:`~repro.experiments.plan.ExperimentPlan` — the pattern,
    device, kernel-launch plan and telemetry monitor a run derives before
    touching any seed — depends only on the workload geometry (pattern,
    dtype, matrix size, transposition), the device (GPU model + instance)
    and the telemetry knobs.  The seed loop (``seeds``, ``base_seed``),
    iteration counts, warmup trimming, estimator sampling and the
    process-variation switch are all deliberately excluded: sweeps that
    vary only the measurement procedure share one plan per device/workload.

    Like the other fingerprints this mixes in the *resolved* dtype and GPU
    specs (re-registering a name under a different definition must never
    serve a stale plan) and the code version, so any package upgrade
    invalidates every cached plan.
    """
    payload: dict[str, Any] = {
        "kind": "plan",
        "plan": config.describe_plan(),
        "dtype_spec": _dtype_spec_payload(config.dtype),
        "gpu_spec": asdict(get_gpu_spec(config.gpu)),
        "telemetry": asdict(config.telemetry),
        "code": code_version if code_version is not None else code_fingerprint(),
    }
    return fingerprint_payload(payload)


def activity_fingerprint(
    config: "ExperimentConfig",
    seed: int,
    code_version: str | None = None,
) -> str:
    """Content-addressed key for one seed's switching-activity estimate.

    This is the canonical subset of :func:`experiment_fingerprint`: a seed's
    :class:`~repro.activity.report.ActivityReport` depends only on the
    workload (pattern, dtype, matrix size, transposition), the seed
    derivation (``base_seed`` + seed index), the estimator's sampling knobs
    and the code version.  The GPU model, clocks, telemetry configuration,
    iteration counts and the number of seeds in the experiment are all
    deliberately excluded — that is what lets cross-device sweeps (e.g. the
    fig7 generalization study) and measurement-procedure sweeps reuse one
    estimate per seed across every point.
    """
    payload: dict[str, Any] = {
        "kind": "activity",
        "workload": {
            "pattern_family": config.pattern_family,
            "pattern_params": dict(config.pattern_params),
            "dtype": config.dtype,
            "matrix_size": config.matrix_size,
            "transpose_b": config.transpose_b,
            "base_seed": config.base_seed,
        },
        "dtype_spec": _dtype_spec_payload(config.dtype),
        "sampling": asdict(config.sampling),
        "seed": int(seed),
        "code": code_version if code_version is not None else code_fingerprint(),
    }
    return fingerprint_payload(payload)
