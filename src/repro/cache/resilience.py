"""Retry policy and resilience accounting for the disk cache tiers.

The disk tiers treat three classes of failure differently:

* **transient** (SQLite busy/locked) — retried with capped exponential
  backoff and deterministic jitter, governed by :class:`RetryPolicy`;
* **corruption** (malformed database image) — the database file is
  quarantined (renamed aside) and rebuilt empty, losing cached entries
  but never correctness;
* **fatal** (ENOSPC, read-only filesystem) — the cache degrades to
  memory-only operation with a sticky ``degraded`` flag and reason, so
  the failure is loud in ``/stats`` and ``python -m repro.cache stats``
  while results stay bit-for-bit identical to the healthy path.

:class:`ResilienceStats` counts all three so operators can distinguish
"retried and recovered" from "running without a disk tier".
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from typing import Any, Mapping, Optional

from repro.errors import ExperimentError

__all__ = ["RetryPolicy", "ResilienceStats"]


def _jitter_fraction(attempt: int) -> float:
    """Deterministic stand-in for random jitter in ``[0, 1)``.

    Derived from the attempt index alone so backoff sequences are
    replayable bit-for-bit under fault injection, while still
    decorrelating competing writers' retry timing across attempts.
    """
    digest = hashlib.sha256(f"repro-backoff-{attempt}".encode()).digest()
    return int.from_bytes(digest[:4], "big") / 2**32


def _env_int(name: str, default: int, env: "Mapping[str, str]") -> int:
    raw = env.get(name, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ExperimentError(f"{name} must be an integer, got {raw!r}") from None
    if value < 0:
        raise ExperimentError(f"{name} must be >= 0, got {value}")
    return value


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic jitter.

    ``delay_s(attempt)`` is the sleep before retry number ``attempt``
    (0-based), or ``None`` once the retry budget is exhausted.  The raw
    delay doubles per attempt from ``base_delay_s`` up to ``max_delay_s``
    and is then scaled into ``[0.5, 1.0)`` of itself by the jitter.
    """

    attempts: int = 5
    base_delay_s: float = 0.01
    max_delay_s: float = 0.25

    @classmethod
    def from_env(cls, environ: "Optional[Mapping[str, str]]" = None) -> "RetryPolicy":
        """Policy from ``REPRO_CACHE_RETRIES`` / ``REPRO_CACHE_BACKOFF_MS``."""
        env = os.environ if environ is None else environ
        attempts = _env_int("REPRO_CACHE_RETRIES", 5, env)
        backoff_ms = _env_int("REPRO_CACHE_BACKOFF_MS", 10, env)
        return cls(attempts=attempts, base_delay_s=backoff_ms / 1000.0)

    def delay_s(self, attempt: int) -> "Optional[float]":
        if attempt >= self.attempts:
            return None
        raw = min(self.max_delay_s, self.base_delay_s * (2**attempt))
        return raw * (0.5 + 0.5 * _jitter_fraction(attempt))


@dataclass
class ResilienceStats:
    """Counters describing how a cache tier has absorbed faults.

    ``degraded`` is *sticky*: once a tier falls back to memory-only
    operation it stays degraded (and keeps its first reason) until the
    process restarts, so a transient window of disk-full can never be
    silently forgotten.
    """

    retries: int = 0
    backoff_s: float = 0.0
    quarantines: int = 0
    degraded: bool = False
    degraded_reason: str = ""

    def record_retry(self, delay_s: float) -> None:
        self.retries += 1
        self.backoff_s += delay_s

    def degrade(self, reason: str) -> None:
        if not self.degraded:
            self.degraded = True
            self.degraded_reason = reason

    def as_dict(self) -> "dict[str, Any]":
        return {
            "retries": self.retries,
            "backoff_s": self.backoff_s,
            "quarantines": self.quarantines,
            "degraded": self.degraded,
            "degraded_reason": self.degraded_reason,
        }
