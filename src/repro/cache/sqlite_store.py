"""SQLite key→document store backing the disk cache tiers.

The original disk tier kept one JSON file per entry, published atomically
with temp-file + ``os.replace``.  That layout is safe for a handful of
cooperating processes, but it does not survive serving-layer traffic well:
thousands of small files cost a directory scan per GC pass, an inode per
entry, and an fsync storm under concurrent writers.  :class:`SqliteStore`
replaces it with a single SQLite database per tier directory:

* **WAL journal mode** — readers never block the (single) writer, and
  concurrent server processes sharing one cache directory serialize their
  writes through SQLite's own file locking instead of racing on
  ``os.replace``;
* **one row per entry** (``key, payload, mtime, size``) — the payload is
  the same JSON document the file backend stored, so the cache classes
  above are byte-compatible across backends;
* **crash safety** — a torn write is impossible by SQLite's journaling
  contract; a corrupt *payload* (bad JSON smuggled into a row) is treated
  as a miss and deleted by the caller, exactly like a corrupt file was.

Legacy layout migration
-----------------------

Opening a store in a directory that still contains ``<key>.json`` files
imports them into the database (keeping each file's mtime for GC age
accounting) and deletes the files.  Rows already in the database win over
legacy files of the same key — the database is newer by construction.
Import errors on individual files are treated like the JSON backend
treated corrupt entries: the file is dropped.

Thread/process safety: one :class:`SqliteStore` holds one connection,
guarded by a lock, and may be shared by many threads; many processes may
each hold their own store on the same path (``busy_timeout`` absorbs
write contention).  All errors surface as :class:`OSError` so callers
can treat disk-backend failures uniformly across backends.
"""

from __future__ import annotations

import sqlite3
import threading
import time
from pathlib import Path
from typing import Iterator

__all__ = ["DB_FILENAME", "SqliteStore", "read_entries", "delete_entries"]

#: Database file name inside a tier directory.  The JSON backend's entry
#: files sit next to it as ``<key>.json`` until migration consumes them.
DB_FILENAME = "entries.sqlite"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS entries (
    key     TEXT PRIMARY KEY,
    payload TEXT NOT NULL,
    mtime   REAL NOT NULL,
    size    INTEGER NOT NULL
)
"""

#: Seconds a writer waits on a locked database before giving up.  Five
#: seconds absorbs any realistic WAL checkpoint or competing transaction;
#: a longer stall indicates a wedged filesystem and should surface.
_BUSY_TIMEOUT_S = 5.0


class SqliteStore:
    """One tier's key→JSON-text store on a single SQLite database."""

    def __init__(self, directory: "str | Path", timeout: float = _BUSY_TIMEOUT_S) -> None:
        self.directory = Path(directory)
        self.path = self.directory / DB_FILENAME
        self._lock = threading.RLock()
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._conn = sqlite3.connect(
                str(self.path), timeout=timeout, check_same_thread=False
            )
            with self._lock:
                # WAL survives across connections (it is a database property,
                # not a connection one) but setting it is idempotent and cheap.
                self._conn.execute("PRAGMA journal_mode=WAL")
                self._conn.execute("PRAGMA synchronous=NORMAL")
                self._conn.execute(_SCHEMA)
                self._conn.commit()
        except sqlite3.Error as exc:
            raise OSError(f"cannot open cache database {self.path}: {exc}") from exc
        self._migrate_legacy_files()

    # ------------------------------------------------------------------ API

    def get(self, key: str) -> "str | None":
        """The JSON text stored under ``key``, or ``None``."""
        try:
            with self._lock:
                row = self._conn.execute(
                    "SELECT payload FROM entries WHERE key = ?", (key,)
                ).fetchone()
        except sqlite3.Error as exc:
            raise OSError(f"cache database read failed: {exc}") from exc
        return row[0] if row is not None else None

    def put(self, key: str, payload: str, mtime: "float | None" = None) -> None:
        """Insert or replace one entry (last writer wins, like os.replace)."""
        stamp = time.time() if mtime is None else float(mtime)
        try:
            with self._lock:
                self._conn.execute(
                    "INSERT OR REPLACE INTO entries (key, payload, mtime, size) "
                    "VALUES (?, ?, ?, ?)",
                    (key, payload, stamp, len(payload.encode("utf-8"))),
                )
                self._conn.commit()
        except sqlite3.Error as exc:
            raise OSError(f"cache database write failed: {exc}") from exc

    def delete(self, key: str) -> None:
        """Remove one entry (no-op when absent)."""
        try:
            with self._lock:
                self._conn.execute("DELETE FROM entries WHERE key = ?", (key,))
                self._conn.commit()
        except sqlite3.Error as exc:
            raise OSError(f"cache database delete failed: {exc}") from exc

    def contains(self, key: str) -> bool:
        try:
            with self._lock:
                row = self._conn.execute(
                    "SELECT 1 FROM entries WHERE key = ?", (key,)
                ).fetchone()
        except sqlite3.Error as exc:
            raise OSError(f"cache database read failed: {exc}") from exc
        return row is not None

    def clear(self) -> None:
        """Remove every entry (the database file itself stays)."""
        try:
            with self._lock:
                self._conn.execute("DELETE FROM entries")
                self._conn.commit()
        except sqlite3.Error as exc:
            raise OSError(f"cache database clear failed: {exc}") from exc

    def entries(self) -> "Iterator[tuple[str, int, float]]":
        """Yield ``(key, size_bytes, mtime)`` for every entry (GC scanning)."""
        try:
            with self._lock:
                rows = self._conn.execute(
                    "SELECT key, size, mtime FROM entries"
                ).fetchall()
        except sqlite3.Error as exc:
            raise OSError(f"cache database scan failed: {exc}") from exc
        return iter(rows)

    def __len__(self) -> int:
        try:
            with self._lock:
                (count,) = self._conn.execute(
                    "SELECT COUNT(*) FROM entries"
                ).fetchone()
        except sqlite3.Error as exc:
            raise OSError(f"cache database count failed: {exc}") from exc
        return int(count)

    def close(self) -> None:
        with self._lock:
            try:
                self._conn.close()
            except sqlite3.Error:  # pragma: no cover - close never fails in practice
                pass

    # ------------------------------------------------------------ internals

    def _migrate_legacy_files(self) -> None:
        """Import ``<key>.json`` files left by the file backend, then remove
        them.  ``INSERT OR IGNORE`` keeps existing rows: the database entry
        for a key is always at least as new as any file left behind."""
        legacy = sorted(self.directory.glob("*.json"))
        if not legacy:
            return
        for path in legacy:
            try:
                payload = path.read_text(encoding="utf-8")
                mtime = path.stat().st_mtime
            except OSError:
                continue  # unreadable → dropped below only if removable
            else:
                try:
                    with self._lock:
                        self._conn.execute(
                            "INSERT OR IGNORE INTO entries "
                            "(key, payload, mtime, size) VALUES (?, ?, ?, ?)",
                            (
                                path.stem,
                                payload,
                                mtime,
                                len(payload.encode("utf-8")),
                            ),
                        )
                except sqlite3.Error as exc:
                    raise OSError(
                        f"legacy cache migration failed for {path.name}: {exc}"
                    ) from exc
            try:
                path.unlink()
            except OSError:
                pass  # another process migrated it concurrently
        try:
            with self._lock:
                self._conn.commit()
        except sqlite3.Error as exc:
            raise OSError(f"legacy cache migration commit failed: {exc}") from exc

    def __enter__(self) -> "SqliteStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# -------------------------------------------------- lifecycle/GC helpers
#
# The garbage collector (repro.cache.lifecycle) must be able to *inspect*
# a database without side effects — opening a SqliteStore would run the
# legacy-file migration, and `stats`/`ls`/`--dry-run prune` must never
# mutate the directory they describe.  These free functions open a plain
# read (or delete-only) connection instead.


def read_entries(db_path: "str | Path") -> "list[tuple[str, int, float]]":
    """``(key, size_bytes, mtime)`` rows of a database, read-only.

    A missing database means no entries; an unreadable or schema-less one
    is reported as empty too (GC treats it like it treats unreadable
    files: skip, never crash the pass)."""
    path = Path(db_path)
    if not path.is_file():
        return []
    try:
        conn = sqlite3.connect(str(path), timeout=_BUSY_TIMEOUT_S)
        try:
            return [
                (str(key), int(size), float(mtime))
                for key, size, mtime in conn.execute(
                    "SELECT key, size, mtime FROM entries"
                )
            ]
        finally:
            conn.close()
    except sqlite3.Error:
        return []


def delete_entries(db_path: "str | Path", keys: "list[str]") -> int:
    """Delete the given rows from a database; returns how many went away.

    Raises :class:`OSError` when the database cannot be opened or written,
    so callers can account the failure like any other disk error."""
    if not keys:
        return 0
    path = Path(db_path)
    if not path.is_file():
        return 0
    try:
        conn = sqlite3.connect(str(path), timeout=_BUSY_TIMEOUT_S)
        try:
            cursor = conn.executemany(
                "DELETE FROM entries WHERE key = ?", [(key,) for key in keys]
            )
            conn.commit()
            return int(cursor.rowcount) if cursor.rowcount >= 0 else len(keys)
        finally:
            conn.close()
    except sqlite3.Error as exc:
        raise OSError(f"cache database delete failed: {exc}") from exc
