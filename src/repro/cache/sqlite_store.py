"""SQLite key→document store backing the disk cache tiers.

The original disk tier kept one JSON file per entry, published atomically
with temp-file + ``os.replace``.  That layout is safe for a handful of
cooperating processes, but it does not survive serving-layer traffic well:
thousands of small files cost a directory scan per GC pass, an inode per
entry, and an fsync storm under concurrent writers.  :class:`SqliteStore`
replaces it with a single SQLite database per tier directory:

* **WAL journal mode** — readers never block the (single) writer, and
  concurrent server processes sharing one cache directory serialize their
  writes through SQLite's own file locking instead of racing on
  ``os.replace``;
* **one row per entry** (``key, payload, mtime, size``) — the payload is
  the same JSON document the file backend stored, so the cache classes
  above are byte-compatible across backends;
* **crash safety** — a torn write is impossible by SQLite's journaling
  contract; a corrupt *payload* (bad JSON smuggled into a row) is treated
  as a miss and deleted by the caller, exactly like a corrupt file was.

Legacy layout migration
-----------------------

Opening a store in a directory that still contains ``<key>.json`` files
imports them into the database (keeping each file's mtime for GC age
accounting) and deletes the files.  Rows already in the database win over
legacy files of the same key — the database is newer by construction.
Import errors on individual files are treated like the JSON backend
treated corrupt entries: the file is dropped.

Thread/process safety: one :class:`SqliteStore` holds one connection,
guarded by a lock, and may be shared by many threads; many processes may
each hold their own store on the same path (``busy_timeout`` absorbs
write contention).  All errors surface as :class:`OSError` so callers
can treat disk-backend failures uniformly across backends.

Resilience
----------

Every statement batch runs through :meth:`SqliteStore._run`, which maps
three failure classes to three responses (see ``docs/resilience.md``):

* *busy/locked* — retried under the store's :class:`RetryPolicy` (capped
  exponential backoff, deterministic jitter), sleeping **outside** the
  store lock so contended writers back off without blocking readers;
* *corruption* ("malformed", "not a database") — the database file is
  quarantined (renamed to ``entries.sqlite.corrupt.<pid>.<n>``) together
  with its WAL sidecars, rebuilt empty, and the operation retried once;
* anything else — surfaced as :class:`OSError` for the cache layer's
  backend-agnostic accounting (and possible memory-only degradation).

The shared ``counters`` (:class:`ResilienceStats`) make all of this
visible in ``python -m repro.cache stats`` and the server's ``/stats``.
Fault-injection points ``cache.sqlite.open|read|write`` (see
:mod:`repro.faults`) sit at the top of each statement batch.
"""

from __future__ import annotations

import os
import sqlite3
import threading
import time
from pathlib import Path
from typing import Callable, Iterator, TypeVar

from repro.cache.resilience import ResilienceStats, RetryPolicy
from repro.faults import fault_point

__all__ = ["DB_FILENAME", "SqliteStore", "read_entries", "delete_entries"]

_T = TypeVar("_T")

#: Database file name inside a tier directory.  The JSON backend's entry
#: files sit next to it as ``<key>.json`` until migration consumes them.
DB_FILENAME = "entries.sqlite"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS entries (
    key     TEXT PRIMARY KEY,
    payload TEXT NOT NULL,
    mtime   REAL NOT NULL,
    size    INTEGER NOT NULL
)
"""

#: Seconds a writer waits on a locked database before giving up.  Five
#: seconds absorbs any realistic WAL checkpoint or competing transaction;
#: a longer stall indicates a wedged filesystem and should surface.
_BUSY_TIMEOUT_S = 5.0

#: Substrings identifying a transiently locked database (retryable) and a
#: corrupt database image (quarantine-and-rebuild) in SQLite messages.
_BUSY_MARKERS = ("locked", "busy")
_CORRUPTION_MARKERS = ("malformed", "not a database", "corrupt")

#: WAL sidecar suffixes moved aside together with a quarantined database,
#: so the rebuilt file can never adopt a stale write-ahead log.
_SIDECAR_SUFFIXES = ("-wal", "-shm")


def _is_busy(exc: sqlite3.Error) -> bool:
    message = str(exc).lower()
    return isinstance(exc, sqlite3.OperationalError) and any(
        marker in message for marker in _BUSY_MARKERS
    )


def _is_corruption(exc: sqlite3.Error) -> bool:
    message = str(exc).lower()
    return isinstance(exc, sqlite3.DatabaseError) and any(
        marker in message for marker in _CORRUPTION_MARKERS
    )


class SqliteStore:
    """One tier's key→JSON-text store on a single SQLite database."""

    def __init__(
        self,
        directory: "str | Path",
        timeout: float = _BUSY_TIMEOUT_S,
        retry: "RetryPolicy | None" = None,
        counters: "ResilienceStats | None" = None,
    ) -> None:
        self.directory = Path(directory)
        self.path = self.directory / DB_FILENAME
        self.timeout = timeout
        self.retry = RetryPolicy.from_env() if retry is None else retry
        # Shared with the owning cache so retries/quarantines surface in
        # that tier's stats; standalone stores get private counters.
        self.counters = ResilienceStats() if counters is None else counters
        self._lock = threading.RLock()
        self._conn: "sqlite3.Connection | None" = None
        self._open_with_recovery()
        self._migrate_legacy_files()

    # ------------------------------------------------------------------ API

    def get(self, key: str) -> "str | None":
        """The JSON text stored under ``key``, or ``None``."""
        row = self._run(
            "read",
            lambda: self._conn.execute(
                "SELECT payload FROM entries WHERE key = ?", (key,)
            ).fetchone(),
        )
        return row[0] if row is not None else None

    def put(self, key: str, payload: str, mtime: "float | None" = None) -> None:
        """Insert or replace one entry (last writer wins, like os.replace)."""
        stamp = time.time() if mtime is None else float(mtime)

        def _write() -> None:
            self._conn.execute(
                "INSERT OR REPLACE INTO entries (key, payload, mtime, size) "
                "VALUES (?, ?, ?, ?)",
                (key, payload, stamp, len(payload.encode("utf-8"))),
            )
            self._conn.commit()

        self._run("write", _write)

    def delete(self, key: str) -> None:
        """Remove one entry (no-op when absent)."""

        def _delete() -> None:
            self._conn.execute("DELETE FROM entries WHERE key = ?", (key,))
            self._conn.commit()

        self._run("write", _delete)

    def contains(self, key: str) -> bool:
        row = self._run(
            "read",
            lambda: self._conn.execute(
                "SELECT 1 FROM entries WHERE key = ?", (key,)
            ).fetchone(),
        )
        return row is not None

    def clear(self) -> None:
        """Remove every entry (the database file itself stays)."""

        def _clear() -> None:
            self._conn.execute("DELETE FROM entries")
            self._conn.commit()

        self._run("write", _clear)

    def entries(self) -> "Iterator[tuple[str, int, float]]":
        """Yield ``(key, size_bytes, mtime)`` for every entry (GC scanning)."""
        rows = self._run(
            "read",
            lambda: self._conn.execute(
                "SELECT key, size, mtime FROM entries"
            ).fetchall(),
        )
        return iter(rows)

    def __len__(self) -> int:
        row = self._run(
            "read",
            lambda: self._conn.execute("SELECT COUNT(*) FROM entries").fetchone(),
        )
        return int(row[0])

    def close(self) -> None:
        with self._lock:
            conn = self._conn
            if conn is None:
                return
            try:
                conn.close()
            except sqlite3.Error:  # pragma: no cover - close never fails in practice
                pass

    # ----------------------------------------------------------- resilience

    def _run(self, action: str, fn: "Callable[[], _T]") -> "_T":
        """Execute one locked statement batch with busy retry and
        corruption quarantine; every SQLite failure leaves as OSError."""
        attempt = 0
        while True:
            try:
                with self._lock:
                    fault_point(f"cache.sqlite.{action}")
                    return fn()
            except sqlite3.Error as exc:
                self._rollback()
                if _is_corruption(exc):
                    self._quarantine_and_rebuild(exc)
                    try:
                        with self._lock:
                            return fn()
                    except sqlite3.Error as retry_exc:
                        raise OSError(
                            f"cache database {action} failed after rebuild: {retry_exc}"
                        ) from retry_exc
                if _is_busy(exc):
                    delay = self.retry.delay_s(attempt)
                    if delay is not None:
                        attempt += 1
                        self.counters.record_retry(delay)
                        # Outside the lock: contended writers back off
                        # without stalling this store's other threads.
                        time.sleep(delay)
                        continue
                raise OSError(f"cache database {action} failed: {exc}") from exc

    def _rollback(self) -> None:
        """Drop any transaction a failed batch left open (best effort)."""
        try:
            with self._lock:
                if self._conn is not None:
                    self._conn.rollback()
        except sqlite3.Error:  # pragma: no cover - rollback on a dead handle
            pass

    def _open_with_recovery(self) -> None:
        """Open the database, retrying busy errors and quarantining a
        corrupt image, mirroring :meth:`_run` for the connect path."""
        attempt = 0
        while True:
            try:
                self._connect()
                return
            except sqlite3.Error as exc:
                if _is_corruption(exc):
                    self._quarantine_and_rebuild(exc)
                    return
                if _is_busy(exc):
                    delay = self.retry.delay_s(attempt)
                    if delay is not None:
                        attempt += 1
                        self.counters.record_retry(delay)
                        time.sleep(delay)
                        continue
                raise OSError(
                    f"cannot open cache database {self.path}: {exc}"
                ) from exc

    def _connect(self) -> None:
        """(Re)open the connection and ensure the schema exists.

        The only place ``self._conn`` is assigned after construction, so
        the quarantine path and ``__init__`` share one code path."""
        fault_point("cache.sqlite.open")
        self.directory.mkdir(parents=True, exist_ok=True)
        conn = sqlite3.connect(
            str(self.path), timeout=self.timeout, check_same_thread=False
        )
        try:
            # WAL survives across connections (it is a database property,
            # not a connection one) but setting it is idempotent and cheap.
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(_SCHEMA)
            conn.commit()
        except sqlite3.Error:
            try:
                conn.close()
            except sqlite3.Error:  # pragma: no cover - close of a dead handle
                pass
            raise
        self._conn = conn

    def _quarantine_and_rebuild(self, exc: sqlite3.Error) -> None:
        """Move a corrupt database (and WAL sidecars) aside, then rebuild.

        Cached entries in the quarantined file are lost — the cache only
        trades recomputation for time, never correctness — but the file is
        kept on disk for post-mortem inspection.  Raises :class:`OSError`
        when the filesystem refuses the quarantine or the rebuild."""
        self.counters.quarantines += 1
        with self._lock:
            conn = self._conn
            if conn is not None:
                try:
                    conn.close()
                except sqlite3.Error:  # pragma: no cover - close of a dead handle
                    pass
            stamp = f"corrupt.{os.getpid()}.{self.counters.quarantines}"
            try:
                os.replace(self.path, self.path.with_name(f"{DB_FILENAME}.{stamp}"))
            except FileNotFoundError:
                pass  # never materialized; rebuild below creates it
            except OSError as move_exc:
                raise OSError(
                    f"cache database corrupt ({exc}) and quarantine failed: {move_exc}"
                ) from exc
            for suffix in _SIDECAR_SUFFIXES:
                sidecar = self.path.with_name(f"{DB_FILENAME}{suffix}")
                try:
                    os.replace(sidecar, sidecar.with_name(f"{sidecar.name}.{stamp}"))
                except OSError:
                    pass  # no sidecar, or not movable: the fresh DB resets it
            try:
                self._connect()
            except sqlite3.Error as rebuild_exc:
                raise OSError(
                    f"cache database rebuild after corruption failed: {rebuild_exc}"
                ) from rebuild_exc

    # ------------------------------------------------------------ internals

    def _migrate_legacy_files(self) -> None:
        """Import ``<key>.json`` files left by the file backend, then remove
        them.  ``INSERT OR IGNORE`` keeps existing rows: the database entry
        for a key is always at least as new as any file left behind."""
        legacy = sorted(self.directory.glob("*.json"))
        if not legacy:
            return
        for path in legacy:
            try:
                payload = path.read_text(encoding="utf-8")
                mtime = path.stat().st_mtime
            except OSError:
                continue  # unreadable → dropped below only if removable
            else:
                try:
                    with self._lock:
                        self._conn.execute(
                            "INSERT OR IGNORE INTO entries "
                            "(key, payload, mtime, size) VALUES (?, ?, ?, ?)",
                            (
                                path.stem,
                                payload,
                                mtime,
                                len(payload.encode("utf-8")),
                            ),
                        )
                except sqlite3.Error as exc:
                    raise OSError(
                        f"legacy cache migration failed for {path.name}: {exc}"
                    ) from exc
            try:
                path.unlink()
            except OSError:
                pass  # another process migrated it concurrently
        try:
            with self._lock:
                self._conn.commit()
        except sqlite3.Error as exc:
            raise OSError(f"legacy cache migration commit failed: {exc}") from exc

    def __enter__(self) -> "SqliteStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# -------------------------------------------------- lifecycle/GC helpers
#
# The garbage collector (repro.cache.lifecycle) must be able to *inspect*
# a database without side effects — opening a SqliteStore would run the
# legacy-file migration, and `stats`/`ls`/`--dry-run prune` must never
# mutate the directory they describe.  These free functions open a plain
# read (or delete-only) connection instead.


def read_entries(db_path: "str | Path") -> "list[tuple[str, int, float]]":
    """``(key, size_bytes, mtime)`` rows of a database, read-only.

    A missing database means no entries; an unreadable or schema-less one
    is reported as empty too (GC treats it like it treats unreadable
    files: skip, never crash the pass)."""
    path = Path(db_path)
    if not path.is_file():
        return []
    try:
        conn = sqlite3.connect(str(path), timeout=_BUSY_TIMEOUT_S)
        try:
            return [
                (str(key), int(size), float(mtime))
                for key, size, mtime in conn.execute(
                    "SELECT key, size, mtime FROM entries"
                )
            ]
        finally:
            conn.close()
    except sqlite3.Error:
        return []


def delete_entries(db_path: "str | Path", keys: "list[str]") -> int:
    """Delete the given rows from a database; returns how many went away.

    Raises :class:`OSError` when the database cannot be opened or written,
    so callers can account the failure like any other disk error."""
    if not keys:
        return 0
    path = Path(db_path)
    if not path.is_file():
        return 0
    try:
        conn = sqlite3.connect(str(path), timeout=_BUSY_TIMEOUT_S)
        try:
            cursor = conn.executemany(
                "DELETE FROM entries WHERE key = ?", [(key,) for key in keys]
            )
            conn.commit()
            return int(cursor.rowcount) if cursor.rowcount >= 0 else len(keys)
        finally:
            conn.close()
    except sqlite3.Error as exc:
        raise OSError(f"cache database delete failed: {exc}") from exc
