"""Content-addressed experiment-result store.

The store maps fingerprints (see :mod:`repro.cache.fingerprint`) to
:class:`~repro.experiments.results.ExperimentResult` objects through two
tiers:

* an in-memory LRU bounded by ``max_entries`` (the hot tier every lookup
  touches first), and
* an optional on-disk JSON backend (one file per key) that survives the
  process and feeds the LRU on a memory miss.

Values are defensively deep-copied on both ``put`` and ``get`` so callers
can mutate results (e.g. re-stamp labels) without corrupting the store.

A process-wide default cache backs :func:`repro.run_experiment` and the
sweep runner; it is created lazily, bounded, and controlled by the
``REPRO_NO_CACHE`` / ``REPRO_CACHE_DIR`` / ``REPRO_CACHE_MAX_ENTRIES``
environment variables.
"""

from __future__ import annotations

import copy
import json
import os
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import ExperimentError

if TYPE_CHECKING:  # pragma: no cover - typing only; imported lazily at runtime
    from repro.experiments.results import ExperimentResult

__all__ = [
    "CacheStats",
    "ExperimentCache",
    "DEFAULT_CACHE",
    "get_default_cache",
    "set_default_cache",
    "resolve_cache",
]


@dataclass
class CacheStats:
    """Counters describing how a cache instance has been used."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    disk_hits: int = 0
    disk_errors: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 with no lookups)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
            "disk_errors": self.disk_errors,
            "hit_rate": self.hit_rate,
        }


@dataclass
class ExperimentCache:
    """Bounded LRU of experiment results with an optional disk backend."""

    max_entries: int = 128
    disk_dir: "str | Path | None" = None
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.max_entries < 1:
            raise ExperimentError(f"max_entries must be >= 1, got {self.max_entries}")
        self._entries: OrderedDict[str, ExperimentResult] = OrderedDict()
        if self.disk_dir is not None:
            self.disk_dir = Path(self.disk_dir)
            self.disk_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------ API

    def get(self, key: str) -> "ExperimentResult | None":
        """Return a copy of the stored result for ``key``, or ``None``."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return copy.deepcopy(entry)
        entry = self._load_from_disk(key)
        if entry is not None:
            self._insert(key, entry)
            self.stats.hits += 1
            self.stats.disk_hits += 1
            return copy.deepcopy(entry)
        self.stats.misses += 1
        return None

    def put(self, key: str, result: "ExperimentResult") -> None:
        """Store a copy of ``result`` under ``key`` (memory and disk)."""
        from repro.experiments.results import ExperimentResult

        if not isinstance(result, ExperimentResult):
            raise ExperimentError(
                f"ExperimentCache stores ExperimentResult, got {type(result).__name__}"
            )
        self._insert(key, copy.deepcopy(result))
        self.stats.puts += 1
        if self.disk_dir is not None:
            path = self._path(key)
            try:
                path.write_text(json.dumps(result.as_dict()))
            except OSError:
                self.stats.disk_errors += 1

    def clear(self, disk: bool = False) -> None:
        """Drop every in-memory entry (and the disk files when ``disk``)."""
        self._entries.clear()
        if disk and self.disk_dir is not None:
            for path in Path(self.disk_dir).glob("*.json"):
                try:
                    path.unlink()
                except OSError:
                    self.stats.disk_errors += 1

    # ------------------------------------------------------------- dunders

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        if key in self._entries:
            return True
        return self.disk_dir is not None and self._path(key).exists()

    # ------------------------------------------------------------ internals

    def _insert(self, key: str, result: "ExperimentResult") -> None:
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def _path(self, key: str) -> Path:
        assert self.disk_dir is not None
        return Path(self.disk_dir) / f"{key}.json"

    def _load_from_disk(self, key: str) -> "ExperimentResult | None":
        from repro.experiments.results import ExperimentResult

        if self.disk_dir is None:
            return None
        path = self._path(key)
        if not path.exists():
            return None
        try:
            return ExperimentResult.from_dict(json.loads(path.read_text()))
        except (OSError, ValueError, KeyError, TypeError, ExperimentError):
            # A corrupt or incompatible file is treated as a miss; it will be
            # overwritten by the next put for this key.
            self.stats.disk_errors += 1
            return None


# --------------------------------------------------------- default instance

#: Sentinel meaning "use the process-wide default cache" in APIs that accept
#: an optional cache (``None`` always means "no caching").
DEFAULT_CACHE = object()

_default_cache: ExperimentCache | None = None
_default_initialized = False


def get_default_cache() -> ExperimentCache | None:
    """Return the lazily created process-wide cache (``None`` if disabled)."""
    global _default_cache, _default_initialized
    if not _default_initialized:
        _default_initialized = True
        if os.environ.get("REPRO_NO_CACHE", "").strip() not in ("", "0"):
            _default_cache = None
        else:
            max_entries = int(os.environ.get("REPRO_CACHE_MAX_ENTRIES", "128"))
            disk_dir = os.environ.get("REPRO_CACHE_DIR") or None
            _default_cache = ExperimentCache(max_entries=max_entries, disk_dir=disk_dir)
    return _default_cache


def set_default_cache(cache: ExperimentCache | None) -> None:
    """Replace the process-wide cache (``None`` disables default caching)."""
    global _default_cache, _default_initialized
    _default_cache = cache
    _default_initialized = True


def resolve_cache(cache: "ExperimentCache | None | object") -> ExperimentCache | None:
    """Resolve a ``cache`` argument: sentinel → default, ``None`` → disabled."""
    if cache is DEFAULT_CACHE:
        return get_default_cache()
    if cache is None or isinstance(cache, ExperimentCache):
        return cache
    raise ExperimentError(
        f"cache must be an ExperimentCache, None or DEFAULT_CACHE, got {type(cache).__name__}"
    )
