"""Content-addressed result stores: the experiment and activity cache tiers.

The caches map fingerprints (see :mod:`repro.cache.fingerprint`) to values
through two storage tiers:

* an in-memory LRU bounded by ``max_entries`` (the hot tier every lookup
  touches first), and
* an optional on-disk backend that survives the process and feeds the LRU
  on a memory miss.  Two disk backends exist behind one interface: the
  default ``"sqlite"`` backend (one WAL-mode database per tier directory,
  :mod:`repro.cache.sqlite_store` — safe under the serving layer's
  concurrent multi-process traffic) and the legacy ``"json"`` backend
  (one file per key, atomic temp-file publication).  ``REPRO_CACHE_BACKEND``
  selects the backend for ``"auto"`` instances; opening a SQLite-backed
  directory migrates any legacy ``*.json`` entries into the database.

Two cache classes share that machinery:

* :class:`ExperimentCache` stores whole
  :class:`~repro.experiments.results.ExperimentResult` objects keyed by
  :func:`~repro.cache.fingerprint.experiment_fingerprint` — one entry per
  (config, code version).
* :class:`ActivityCache` stores per-seed
  :class:`~repro.activity.report.ActivityReport` objects keyed by
  :func:`~repro.cache.fingerprint.activity_fingerprint` — the expensive
  bit-level estimate, reusable across every experiment that shares the
  workload (GPU model, clocks and telemetry knobs do not matter).

(A third, memory-only tier — the plan cache of
:mod:`repro.experiments.plan` — lives outside this module because it holds
live objects rather than JSON documents, but it follows the same
fingerprint discipline and appears alongside these tiers in the CLI's live
stats.)

Cache-tier invariants
---------------------

Every tier upholds four invariants, in roughly priority order:

1. **Correct-by-key** — a key is a SHA-256 digest over *everything* that
   determines the value, including resolved dtype/GPU specs and the code
   version; two configs with equal fingerprints are guaranteed bit-identical
   results, so a hit can never change what a caller computes, only when.
2. **Isolation** — values are defensively deep-copied on both ``put`` and
   ``get``, so callers can mutate results (e.g. re-stamp labels) without
   corrupting the store or each other.
3. **Crash/concurrency safety** — disk writes are atomic under concurrent
   processes (SQLite's journaling for the default backend; uniquely named
   temp file + :func:`os.replace` for the JSON backend), so processes
   sharing a cache directory can never observe a torn entry; unreadable or
   incompatible entries are treated as misses and deleted.  In-memory LRU
   bookkeeping is guarded by a re-entrant lock (the ``threads`` backend
   hits one instance from many workers), while copies and disk I/O run
   outside it.
4. **Boundedness** — the in-memory tier is a strict LRU of ``max_entries``;
   the disk tier is pruned by size/age lifecycle GC
   (:mod:`repro.cache.lifecycle`), never trusted to grow without limit.

Process-wide default instances back :func:`repro.run_experiment`, the sweep
runner and the activity engine; they are created lazily, bounded, and
controlled by the ``REPRO_NO_CACHE`` / ``REPRO_CACHE_DIR`` /
``REPRO_CACHE_BACKEND`` / ``REPRO_CACHE_MAX_ENTRIES`` /
``REPRO_ACTIVITY_CACHE_MAX_ENTRIES`` environment variables.  When ``REPRO_CACHE_MAX_BYTES`` or
``REPRO_CACHE_MAX_AGE_DAYS`` is set, the shared disk directory is pruned
(see :mod:`repro.cache.lifecycle`) the first time a default cache is built.
"""

from __future__ import annotations

import copy
import errno as errno_module
import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.cache.resilience import ResilienceStats
from repro.errors import ExperimentError, ReproError
from repro.faults import fault_point

if TYPE_CHECKING:  # pragma: no cover - typing only; imported lazily at runtime
    from repro.activity.report import ActivityReport
    from repro.experiments.results import ExperimentResult

__all__ = [
    "CacheStats",
    "DISK_BACKENDS",
    "resolve_disk_backend",
    "JsonDiskCache",
    "ExperimentCache",
    "ActivityCache",
    "DEFAULT_CACHE",
    "ACTIVITY_SUBDIR",
    "get_default_cache",
    "set_default_cache",
    "resolve_cache",
    "get_default_activity_cache",
    "set_default_activity_cache",
    "resolve_activity_cache",
    "peek_default_caches",
]

#: Subdirectory of a shared cache root (``REPRO_CACHE_DIR``) that holds the
#: activity tier's files; experiment entries live at the root itself.
ACTIVITY_SUBDIR = "activity"

#: Disk backends a cache can resolve ``"auto"`` to.  ``"sqlite"`` (the
#: default) keeps one WAL-mode database per tier directory and is the only
#: backend safe under heavy concurrent multi-process write traffic;
#: ``"json"`` is the legacy one-file-per-entry layout.
DISK_BACKENDS = ("sqlite", "json")

#: Environment override for the ``"auto"`` disk-backend choice.
ENV_CACHE_BACKEND = "REPRO_CACHE_BACKEND"


def resolve_disk_backend(backend: str) -> str:
    """Resolve a ``disk_backend`` argument to a concrete backend name.

    ``"auto"`` consults ``REPRO_CACHE_BACKEND`` and falls back to
    ``"sqlite"``; explicit names pass through (never overridden by the
    environment, matching the precedence rule every other knob follows).
    """
    if backend == "auto":
        backend = os.environ.get("REPRO_CACHE_BACKEND", "sqlite").strip().lower() or "sqlite"
    if backend not in DISK_BACKENDS:
        raise ExperimentError(
            f"disk_backend must be one of {DISK_BACKENDS + ('auto',)}, got {backend!r}"
        )
    return backend


class _JsonFileBackend:
    """Legacy disk backend: one atomically published JSON file per key."""

    def __init__(self, directory: Path) -> None:
        self.directory = directory
        self.directory.mkdir(parents=True, exist_ok=True)

    def path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def read_text(self, key: str) -> "str | None":
        fault_point("cache.json.read")
        path = self.path(key)
        if not path.exists():
            return None
        return path.read_text()

    def write_text(self, key: str, text: str) -> None:
        """Atomically publish one entry: temp file in the same directory,
        then :func:`os.replace`, so concurrent readers (and writers racing
        on the same key) only ever see a complete JSON document.  The temp
        name includes the thread id because writes run outside the cache
        lock — two threads of one process may publish the same key at once."""
        fault_point("cache.json.write")
        path = self.path(key)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.{threading.get_ident()}.tmp")
        try:
            tmp.write_text(text)
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise

    def delete(self, key: str) -> None:
        try:
            self.path(key).unlink()
        except FileNotFoundError:
            pass

    def contains(self, key: str) -> bool:
        return self.path(key).exists()

    def clear(self) -> int:
        """Remove every entry file; returns how many removals failed."""
        errors = 0
        for path in self.directory.glob("*.json"):
            try:
                path.unlink()
            except OSError:
                errors += 1
        return errors


class _SqliteDiskBackend:
    """Default disk backend: one WAL-mode SQLite database per directory.

    Thin adapter putting :class:`~repro.cache.sqlite_store.SqliteStore`
    behind the same five calls as :class:`_JsonFileBackend`; every failure
    surfaces as :class:`OSError`, so the cache layer's error accounting is
    backend-agnostic.
    """

    def __init__(self, directory: Path, counters: "ResilienceStats | None" = None) -> None:
        from repro.cache.sqlite_store import SqliteStore

        self.directory = directory
        # Sharing the owning cache's resilience counters means SQLite-level
        # retries and quarantines show up in that tier's stats directly.
        self._store = SqliteStore(directory, counters=counters)

    def read_text(self, key: str) -> "str | None":
        return self._store.get(key)

    def write_text(self, key: str, text: str) -> None:
        self._store.put(key, text)

    def delete(self, key: str) -> None:
        self._store.delete(key)

    def contains(self, key: str) -> bool:
        return self._store.contains(key)

    def clear(self) -> int:
        self._store.clear()
        return 0


@dataclass
class CacheStats:
    """Counters describing how a cache instance has been used."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    disk_hits: int = 0
    disk_errors: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 with no lookups)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
            "disk_errors": self.disk_errors,
            "hit_rate": self.hit_rate,
        }


@dataclass
class JsonDiskCache:
    """Bounded LRU of JSON-serializable values with an optional disk backend.

    Subclasses define the value type by overriding :meth:`_check_value`,
    :meth:`_serialize` and :meth:`_deserialize`; everything else — LRU
    bookkeeping, defensive copying, atomic disk writes and corrupt-entry
    recovery — is shared.  ``disk_backend`` picks the on-disk layout
    (``"sqlite"``, ``"json"``, or ``"auto"`` → :func:`resolve_disk_backend`);
    the serialized documents are identical across backends, so the same
    keys yield the same payloads whichever stores them.

    Instances are thread-safe: the sweep runner's ``threads`` backend has
    many workers consulting one cache concurrently, so the LRU bookkeeping
    and the usage counters are guarded by a re-entrant lock.  (Disk entries
    are additionally safe across *processes*: SQLite journaling for the
    default backend, atomic temp-file publication for the JSON backend.)
    """

    max_entries: int = 128
    disk_dir: "str | Path | None" = None
    stats: CacheStats = field(default_factory=CacheStats)
    disk_backend: str = "auto"
    resilience: ResilienceStats = field(default_factory=ResilienceStats)

    def __post_init__(self) -> None:
        if self.max_entries < 1:
            raise ExperimentError(f"max_entries must be >= 1, got {self.max_entries}")
        self._entries: OrderedDict[str, Any] = OrderedDict()
        self._lock = threading.RLock()
        self._backend: "_SqliteDiskBackend | _JsonFileBackend | None" = None
        if self.disk_dir is not None:
            self.disk_dir = Path(self.disk_dir)
            self.disk_backend = resolve_disk_backend(self.disk_backend)
            try:
                if self.disk_backend == "sqlite":
                    self._backend = _SqliteDiskBackend(
                        self.disk_dir, counters=self.resilience
                    )
                else:
                    self._backend = _JsonFileBackend(self.disk_dir)
            except OSError as exc:
                # An unusable disk tier at construction (read-only FS, full
                # disk, unrecoverable corruption) degrades the cache to
                # memory-only instead of failing every experiment run.
                self.stats.disk_errors += 1
                self.resilience.degrade(f"disk tier unusable at open: {exc}")

    # ----------------------------------------------------- value protocol

    def _check_value(self, value: Any) -> None:
        """Raise :class:`ExperimentError` unless ``value`` is storable."""
        raise NotImplementedError

    def _serialize(self, value: Any) -> dict[str, Any]:
        raise NotImplementedError

    def _deserialize(self, data: dict[str, Any]) -> Any:
        raise NotImplementedError

    # ------------------------------------------------------------------ API

    def get(self, key: str) -> Any:
        """Return a copy of the stored value for ``key``, or ``None``.

        Only the LRU bookkeeping and counters run under the lock; the
        defensive deep copy and any disk read happen outside it, so
        concurrent hits do not serialize on copying (stored entries are
        never mutated in place — ``put`` inserts its own copy and ``get``
        hands out copies — so unlocked reads of one entry are safe).
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
        if entry is not None:
            return copy.deepcopy(entry)
        entry = self._load_from_disk(key)
        with self._lock:
            if entry is not None:
                self._insert(key, entry)
                self.stats.hits += 1
                self.stats.disk_hits += 1
            else:
                self.stats.misses += 1
        return copy.deepcopy(entry) if entry is not None else None

    def put(self, key: str, value: Any) -> None:
        """Store a copy of ``value`` under ``key`` (memory and disk).

        The deep copy and the (atomic, uniquely-temp-named) disk write run
        outside the lock for the same reason as in :meth:`get`.
        """
        self._check_value(value)
        stored = copy.deepcopy(value)
        with self._lock:
            self._insert(key, stored)
            self.stats.puts += 1
        if self._backend is not None:
            self._write_to_disk(key, value)

    def clear(self, disk: bool = False) -> None:
        """Drop every in-memory entry (and the disk entries when ``disk``)."""
        with self._lock:
            self._entries.clear()
        if disk and self._backend is not None:
            try:
                errors = self._backend.clear()
            except OSError:
                errors = 1
            if errors:
                with self._lock:
                    self.stats.disk_errors += errors

    def describe_memory(self) -> dict[str, Any]:
        """In-memory LRU occupancy and usage counters, for live inspection
        (the ``python -m repro.cache stats`` CLI includes this when invoked
        from a process that has default caches instantiated)."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "disk_dir": str(self.disk_dir) if self.disk_dir is not None else None,
                "disk_backend": self.disk_backend if self.disk_dir is not None else None,
                **self.stats.as_dict(),
                "resilience": self.resilience.as_dict(),
            }

    # ------------------------------------------------------------- dunders

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._entries:
                return True
        if self._backend is None:
            return False
        # Disk probe outside the lock, like every other disk touch here.
        try:
            return self._backend.contains(key)
        except OSError:
            return False

    # ------------------------------------------------------------ internals

    def _insert(self, key: str, value: Any) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def _write_to_disk(self, key: str, value: Any) -> None:
        """Publish one entry through the disk backend (atomic under both
        concurrent threads and concurrent processes, whichever backend)."""
        backend = self._backend
        if backend is None:  # degraded concurrently; memory tier already has it
            return
        try:
            backend.write_text(key, json.dumps(self._serialize(value)))
        except OSError as exc:
            with self._lock:
                self.stats.disk_errors += 1
            self._maybe_degrade(exc)

    def _load_from_disk(self, key: str) -> Any:
        backend = self._backend
        if backend is None:
            return None
        try:
            raw = backend.read_text(key)
        except OSError as exc:
            with self._lock:
                self.stats.disk_errors += 1
            self._maybe_degrade(exc)
            return None
        if raw is None:
            return None
        try:
            return self._deserialize(json.loads(raw))
        except (ValueError, KeyError, TypeError, ReproError):
            # A corrupt or incompatible entry is a miss; delete it so it
            # does not occupy space or trip every future lookup.
            with self._lock:
                self.stats.disk_errors += 1
            try:
                backend.delete(key)
            except OSError:
                pass
            return None

    #: ``errno`` values meaning the disk tier is unusable as a whole (not
    #: just one entry): full disk, quota, read-only filesystem.
    _FATAL_DISK_ERRNOS = frozenset(
        {errno_module.ENOSPC, errno_module.EROFS, errno_module.EDQUOT}
    )

    def _maybe_degrade(self, exc: OSError) -> None:
        """Fall back to memory-only operation on whole-tier disk failures.

        Per-entry failures keep the backend: the next key may well work.
        A full or read-only filesystem will fail every future touch, so
        the backend is dropped and the sticky ``degraded`` flag raised —
        results stay identical, only persistence stops.
        """
        if exc.errno not in self._FATAL_DISK_ERRNOS:
            return
        self._backend = None
        self.resilience.degrade(f"memory-only: {exc}")


@dataclass
class ExperimentCache(JsonDiskCache):
    """LRU + disk store of whole :class:`ExperimentResult` objects."""

    def _check_value(self, value: Any) -> None:
        from repro.experiments.results import ExperimentResult

        if not isinstance(value, ExperimentResult):
            raise ExperimentError(
                f"ExperimentCache stores ExperimentResult, got {type(value).__name__}"
            )

    def _serialize(self, value: "ExperimentResult") -> dict[str, Any]:
        return value.as_dict()

    def _deserialize(self, data: dict[str, Any]) -> "ExperimentResult":
        from repro.experiments.results import ExperimentResult

        return ExperimentResult.from_dict(data)


@dataclass
class ActivityCache(JsonDiskCache):
    """LRU + disk store of per-seed :class:`ActivityReport` objects.

    Reports are small (a couple dozen floats), so the default LRU is much
    wider than the experiment tier's.
    """

    max_entries: int = 1024

    def _check_value(self, value: Any) -> None:
        from repro.activity.report import ActivityReport

        if not isinstance(value, ActivityReport):
            raise ExperimentError(
                f"ActivityCache stores ActivityReport, got {type(value).__name__}"
            )

    def _serialize(self, value: "ActivityReport") -> dict[str, Any]:
        return value.as_dict()

    def _deserialize(self, data: dict[str, Any]) -> "ActivityReport":
        from repro.activity.report import ActivityReport

        return ActivityReport.from_dict(data)


# --------------------------------------------------------- default instances

#: Sentinel meaning "use the process-wide default cache" in APIs that accept
#: an optional cache (``None`` always means "no caching").
DEFAULT_CACHE = object()

_default_cache: ExperimentCache | None = None
_default_initialized = False
_default_activity_cache: ActivityCache | None = None
_default_activity_initialized = False
_auto_pruned = False


def _caching_disabled() -> bool:
    return os.environ.get("REPRO_NO_CACHE", "").strip() not in ("", "0")


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ExperimentError(f"{name} must be an integer, got {raw!r}") from None


def _maybe_auto_prune(root: str) -> None:
    """Apply ``REPRO_CACHE_MAX_BYTES`` / ``REPRO_CACHE_MAX_AGE_DAYS`` once
    per process, when the first disk-backed default cache is created."""
    global _auto_pruned
    if _auto_pruned:
        return
    _auto_pruned = True
    max_bytes = os.environ.get("REPRO_CACHE_MAX_BYTES", "").strip()
    max_age_days = os.environ.get("REPRO_CACHE_MAX_AGE_DAYS", "").strip()
    if not max_bytes and not max_age_days:
        return
    from repro.cache.lifecycle import parse_size, prune_cache_dir

    try:
        limit = parse_size(max_bytes) if max_bytes else None
        age_s = float(max_age_days) * 86400.0 if max_age_days else None
    except ValueError as exc:
        raise ExperimentError(f"invalid cache GC environment variable: {exc}") from None
    prune_cache_dir(root, max_bytes=limit, max_age_s=age_s)


def get_default_cache() -> ExperimentCache | None:
    """Return the lazily created process-wide cache (``None`` if disabled)."""
    global _default_cache, _default_initialized
    if not _default_initialized:
        _default_initialized = True
        if _caching_disabled():
            _default_cache = None
        else:
            max_entries = _env_int("REPRO_CACHE_MAX_ENTRIES", 128)
            disk_dir = os.environ.get("REPRO_CACHE_DIR") or None
            if disk_dir is not None:
                _maybe_auto_prune(disk_dir)
            _default_cache = ExperimentCache(max_entries=max_entries, disk_dir=disk_dir)
    return _default_cache


def set_default_cache(cache: ExperimentCache | None) -> None:
    """Replace the process-wide cache (``None`` disables default caching)."""
    global _default_cache, _default_initialized
    _default_cache = cache
    _default_initialized = True


def resolve_cache(cache: "ExperimentCache | None | object") -> ExperimentCache | None:
    """Resolve a ``cache`` argument: sentinel → default, ``None`` → disabled."""
    if cache is DEFAULT_CACHE:
        return get_default_cache()
    if cache is None or isinstance(cache, ExperimentCache):
        return cache
    raise ExperimentError(
        f"cache must be an ExperimentCache, None or DEFAULT_CACHE, got {type(cache).__name__}"
    )


def get_default_activity_cache() -> ActivityCache | None:
    """Return the lazily created process-wide activity cache.

    Shares ``REPRO_NO_CACHE`` and ``REPRO_CACHE_DIR`` with the experiment
    tier; its disk files live under ``$REPRO_CACHE_DIR/activity/`` and its
    LRU width is ``REPRO_ACTIVITY_CACHE_MAX_ENTRIES`` (default 1024).
    """
    global _default_activity_cache, _default_activity_initialized
    if not _default_activity_initialized:
        _default_activity_initialized = True
        if _caching_disabled():
            _default_activity_cache = None
        else:
            max_entries = _env_int("REPRO_ACTIVITY_CACHE_MAX_ENTRIES", 1024)
            root = os.environ.get("REPRO_CACHE_DIR") or None
            disk_dir = None
            if root is not None:
                _maybe_auto_prune(root)
                disk_dir = os.path.join(root, ACTIVITY_SUBDIR)
            _default_activity_cache = ActivityCache(
                max_entries=max_entries, disk_dir=disk_dir
            )
    return _default_activity_cache


def set_default_activity_cache(cache: ActivityCache | None) -> None:
    """Replace the process-wide activity cache (``None`` disables it)."""
    global _default_activity_cache, _default_activity_initialized
    _default_activity_cache = cache
    _default_activity_initialized = True


def resolve_activity_cache(cache: "ActivityCache | None | object") -> ActivityCache | None:
    """Resolve an ``activity_cache`` argument (sentinel → process default)."""
    if cache is DEFAULT_CACHE:
        return get_default_activity_cache()
    if cache is None or isinstance(cache, ActivityCache):
        return cache
    raise ExperimentError(
        "activity_cache must be an ActivityCache, None or DEFAULT_CACHE, "
        f"got {type(cache).__name__}"
    )


def peek_default_caches() -> "dict[str, Any]":
    """The default cache instances this process has *already* created.

    Unlike the ``get_default_*`` accessors this never instantiates anything:
    it is how the ``python -m repro.cache stats`` CLI reports live in-memory
    counters when invoked from a running process, without a fresh subprocess
    invocation fabricating empty caches just to describe them.  The
    memory-only plan tier (:mod:`repro.experiments.plan`) is included under
    ``"plan"`` when that module has been imported and its default created;
    every value answers ``describe_memory()``.
    """
    import sys

    live: dict[str, Any] = {}
    if _default_initialized and _default_cache is not None:
        live["experiment"] = _default_cache
    if _default_activity_initialized and _default_activity_cache is not None:
        live["activity"] = _default_activity_cache
    # Looked up through sys.modules (not imported) so peeking can neither
    # trigger the experiments package import nor create the plan tier.
    plan_module = sys.modules.get("repro.experiments.plan")
    if plan_module is not None:
        live.update(plan_module.peek_default_plan_cache())
    return live
