"""``python -m repro.cache`` — inspect and prune the on-disk result cache.

Subcommands operate on a cache root directory (``--dir`` or the
``REPRO_CACHE_DIR`` environment variable) holding the two tiers written by
:mod:`repro.cache.store`:

* ``stats`` — entry counts, byte totals and age range per tier.  When
  :func:`main` is invoked from a process that already holds default cache
  instances (rather than via a fresh subprocess), the report also includes
  each live cache's in-memory LRU occupancy and hit/miss counters —
  including the memory-only plan tier (:mod:`repro.experiments.plan`)
  when the process has created one.
* ``ls``    — list entries (key, tier, size, age), oldest first.
* ``prune`` — garbage-collect by total size and/or age.  Size pruning
  evicts by cost-weighted age (cheap-to-rebuild activity entries first; see
  ``--experiment-cost``).
* ``clear`` — remove every entry of one or both tiers.

Examples::

    python -m repro.cache stats
    python -m repro.cache ls --tier activity
    python -m repro.cache prune --max-bytes 500M --max-age-days 30
    python -m repro.cache prune --max-bytes 1G --experiment-cost 250 --dry-run
    python -m repro.cache clear --tier experiment
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.cache.lifecycle import (
    TIERS,
    cache_dir_stats,
    clear_cache_dir,
    format_size,
    parse_size,
    prune_cache_dir,
    scan_cache_dir,
)
from repro.cache.store import peek_default_caches
from repro.errors import ReproError

__all__ = ["main"]


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dir",
        dest="cache_dir",
        default=None,
        help="cache root directory (default: $REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of a table",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cache",
        description="Inspect and prune the repro on-disk result cache.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    _add_common(sub.add_parser("stats", help="summarize both cache tiers"))

    ls = sub.add_parser("ls", help="list cache entries, oldest first")
    _add_common(ls)
    ls.add_argument("--tier", choices=(*TIERS, "all"), default="all")

    prune = sub.add_parser("prune", help="garbage-collect by size and/or age")
    _add_common(prune)
    prune.add_argument(
        "--max-bytes",
        default=None,
        help="keep the directory under this total size (accepts K/M/G suffixes)",
    )
    prune.add_argument(
        "--max-age-days",
        type=float,
        default=None,
        help="remove entries older than this many days",
    )
    prune.add_argument(
        "--experiment-cost",
        type=float,
        default=None,
        help=(
            "recomputation-cost multiplier of experiment entries relative to "
            "activity entries for size pruning (default ~100; also "
            "settable via REPRO_CACHE_EXPERIMENT_COST)"
        ),
    )
    prune.add_argument("--tier", choices=(*TIERS, "all"), default="all")
    prune.add_argument(
        "--dry-run", action="store_true", help="report what would be removed"
    )

    clear = sub.add_parser("clear", help="remove every entry of the given tiers")
    _add_common(clear)
    clear.add_argument("--tier", choices=(*TIERS, "all"), default="all")
    clear.add_argument(
        "--dry-run", action="store_true", help="report what would be removed"
    )
    return parser


def _resolve_dir(args: argparse.Namespace) -> str:
    cache_dir = args.cache_dir or os.environ.get("REPRO_CACHE_DIR") or ""
    if not cache_dir:
        raise SystemExit(
            "no cache directory: pass --dir or set REPRO_CACHE_DIR"
        )
    return cache_dir


def _tiers(args: argparse.Namespace) -> tuple[str, ...]:
    tier = getattr(args, "tier", "all")
    return TIERS if tier == "all" else (tier,)


def _age(seconds: float) -> str:
    if seconds < 120:
        return f"{seconds:.0f}s"
    if seconds < 7200:
        return f"{seconds / 60:.0f}m"
    if seconds < 172800:
        return f"{seconds / 3600:.1f}h"
    return f"{seconds / 86400:.1f}d"


def _cmd_stats(args: argparse.Namespace) -> int:
    root = _resolve_dir(args)
    stats = cache_dir_stats(root)
    # Disk stats describe the directory; the in-memory LRU tiers only exist
    # inside a running process.  When main() is called from such a process
    # (not a fresh `python -m` subprocess) report its live caches too — but
    # only when no explicit --dir was given: the live caches belong to the
    # process's own $REPRO_CACHE_DIR root, and attaching their counters to
    # a stats report about some *other* directory would misattribute them.
    live = peek_default_caches() if args.cache_dir is None else {}
    if live:
        stats["memory"] = {tier: cache.describe_memory() for tier, cache in live.items()}
    if args.json:
        print(json.dumps(stats, indent=2))
        return 0
    print(f"cache root: {root}")
    tiers: dict = stats["tiers"]  # type: ignore[assignment]
    for tier in TIERS:
        info = tiers[tier]
        line = (
            f"  {tier:<10} {info['entries']:>6} entries  "
            f"{format_size(info['bytes']):>10}"
        )
        if info["entries"]:
            line += (
                f"  oldest {_age(info['oldest_age_s'])}, "
                f"newest {_age(info['newest_age_s'])}"
            )
        print(line)
    print(f"  {'total':<10} {stats['entries']:>6} entries  {format_size(stats['bytes']):>10}")
    for tier, info in stats.get("memory", {}).items():  # type: ignore[union-attr]
        print(
            f"  [live] {tier:<10} {info['entries']}/{info['max_entries']} in memory  "
            f"{info['hits']} hits / {info['misses']} misses "
            f"({info['hit_rate']:.0%} hit rate), {info['puts']} puts, "
            f"{info['evictions']} evictions"
        )
        resilience = info.get("resilience")
        if resilience is None:
            continue  # the plan tier has no disk backend to absorb faults
        line = (
            f"         {'':<10} {resilience['retries']} retries "
            f"({resilience['backoff_s']:.3f}s backoff), "
            f"{resilience['quarantines']} quarantines"
        )
        if resilience["degraded"]:
            line += f", DEGRADED: {resilience['degraded_reason']}"
        print(line)
    return 0


def _cmd_ls(args: argparse.Namespace) -> int:
    root = _resolve_dir(args)
    entries = scan_cache_dir(root, tiers=_tiers(args))
    if args.json:
        print(
            json.dumps(
                [
                    {
                        "key": entry.key,
                        "tier": entry.tier,
                        "bytes": entry.size_bytes,
                        "age_s": entry.age_s(),
                        "path": str(entry.path),
                    }
                    for entry in entries
                ],
                indent=2,
            )
        )
        return 0
    if not entries:
        print("cache is empty")
        return 0
    for entry in entries:
        print(
            f"{entry.key[:16]:<16}  {entry.tier:<10}  "
            f"{format_size(entry.size_bytes):>10}  {_age(entry.age_s()):>6}"
        )
    print(f"{len(entries)} entries")
    return 0


def _report(report, args: argparse.Namespace) -> int:
    if args.json:
        print(json.dumps(report.as_dict(), indent=2))
        return 0
    verb = "would remove" if report.dry_run else "removed"
    print(
        f"{verb} {len(report.removed)} of {report.examined} entries "
        f"({format_size(report.removed_bytes)}); "
        f"{report.remaining} remain ({format_size(report.remaining_bytes)})"
    )
    if report.removed_tmp:
        print(f"{verb} {report.removed_tmp} stale temp file(s)")
    return 0


def _cmd_prune(args: argparse.Namespace) -> int:
    root = _resolve_dir(args)
    if args.max_bytes is None and args.max_age_days is None:
        raise SystemExit("prune needs --max-bytes and/or --max-age-days")
    max_bytes = parse_size(args.max_bytes) if args.max_bytes is not None else None
    max_age_s = args.max_age_days * 86400.0 if args.max_age_days is not None else None
    cost_weights = (
        {"experiment": args.experiment_cost}
        if args.experiment_cost is not None
        else None
    )
    report = prune_cache_dir(
        root,
        max_bytes=max_bytes,
        max_age_s=max_age_s,
        tiers=_tiers(args),
        dry_run=args.dry_run,
        cost_weights=cost_weights,
    )
    return _report(report, args)


def _cmd_clear(args: argparse.Namespace) -> int:
    root = _resolve_dir(args)
    report = clear_cache_dir(root, tiers=_tiers(args), dry_run=args.dry_run)
    return _report(report, args)


_COMMANDS = {
    "stats": _cmd_stats,
    "ls": _cmd_ls,
    "prune": _cmd_prune,
    "clear": _cmd_clear,
}


def main(argv: "list[str] | None" = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ReproError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    sys.exit(main())
