"""Content-addressed caching of experiment results and activity reports.

The measurement pipeline is fully deterministic: an
:class:`~repro.experiments.config.ExperimentConfig` (plus the code version)
completely determines its :class:`~repro.experiments.results.ExperimentResult`,
and the expensive part — the per-seed bit-level activity estimate — depends
on even less (just the workload, seed derivation and sampling knobs).  This
package exploits that with two cache tiers:

* :mod:`repro.cache.fingerprint` — canonical SHA-256 keys:
  :func:`experiment_fingerprint` over config + code version for whole
  results, :func:`activity_fingerprint` over the workload subset + seed
  for per-seed :class:`~repro.activity.report.ActivityReport` objects, and
  :func:`plan_fingerprint` over the plan subset (workload geometry +
  device + telemetry) for the memory-only plan tier hosted by
  :mod:`repro.experiments.plan`.
* :mod:`repro.cache.store` — bounded in-memory LRUs with optional on-disk
  JSON backends (:class:`ExperimentCache` and :class:`ActivityCache`), plus
  the process-wide default instances that :func:`repro.run_experiment`, the
  sweep runner and the activity engine consult automatically.
* :mod:`repro.cache.lifecycle` — disk-cache garbage collection (by total
  size and entry age) behind the ``python -m repro.cache`` CLI
  (``stats`` / ``ls`` / ``prune`` / ``clear``).

Typical use::

    from repro.cache import ExperimentCache
    cache = ExperimentCache(max_entries=256, disk_dir="results/cache")
    result = repro.run_experiment(config, cache=cache)   # cold: computes
    result = repro.run_experiment(config, cache=cache)   # warm: cache hit
    print(cache.stats.hit_rate)

The activity tier makes sweeps that vary only the device or the measurement
procedure (e.g. the fig7 cross-GPU study) estimate activity once per seed::

    configs = [base.with_overrides(gpu=gpu) for gpu in ("v100", "a100", "h100")]
    results = repro.run_configs(configs)   # one activity estimate per seed

Environment variables: ``REPRO_NO_CACHE=1`` disables both default tiers,
``REPRO_CACHE_DIR`` gives them a disk backend (activity entries live in an
``activity/`` subdirectory), ``REPRO_CACHE_MAX_ENTRIES`` /
``REPRO_ACTIVITY_CACHE_MAX_ENTRIES`` bound the LRUs, and
``REPRO_CACHE_MAX_BYTES`` / ``REPRO_CACHE_MAX_AGE_DAYS`` trigger a prune of
the disk directory when the first default cache is created.
"""

from repro.cache.fingerprint import (
    RESULT_SCHEMA_VERSION,
    activity_fingerprint,
    canonical_json,
    code_fingerprint,
    experiment_fingerprint,
    fingerprint_payload,
    plan_fingerprint,
)
from repro.cache.lifecycle import (
    CacheEntry,
    PruneReport,
    cache_dir_stats,
    clear_cache_dir,
    prune_cache_dir,
    scan_cache_dir,
)
from repro.cache.store import (
    DEFAULT_CACHE,
    ActivityCache,
    CacheStats,
    ExperimentCache,
    get_default_activity_cache,
    get_default_cache,
    resolve_activity_cache,
    resolve_cache,
    set_default_activity_cache,
    set_default_cache,
)

__all__ = [
    "RESULT_SCHEMA_VERSION",
    "canonical_json",
    "code_fingerprint",
    "experiment_fingerprint",
    "activity_fingerprint",
    "plan_fingerprint",
    "fingerprint_payload",
    "CacheStats",
    "ExperimentCache",
    "ActivityCache",
    "DEFAULT_CACHE",
    "get_default_cache",
    "set_default_cache",
    "resolve_cache",
    "get_default_activity_cache",
    "set_default_activity_cache",
    "resolve_activity_cache",
    "CacheEntry",
    "PruneReport",
    "scan_cache_dir",
    "cache_dir_stats",
    "prune_cache_dir",
    "clear_cache_dir",
]
