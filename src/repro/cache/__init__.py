"""Content-addressed caching of experiment results.

The measurement pipeline is fully deterministic: an
:class:`~repro.experiments.config.ExperimentConfig` (plus the code version)
completely determines its :class:`~repro.experiments.results.ExperimentResult`.
This package exploits that to avoid recomputation:

* :mod:`repro.cache.fingerprint` — canonical SHA-256 keys over
  config + seed + code-version, shared by caching and sweep deduplication.
* :mod:`repro.cache.store` — a bounded in-memory LRU with an optional
  on-disk JSON backend, plus the process-wide default instance that
  :func:`repro.run_experiment`, :func:`repro.experiments.sweep.run_configs`
  and :func:`repro.experiments.sweep.run_sweep` consult automatically.

Typical use::

    from repro.cache import ExperimentCache
    cache = ExperimentCache(max_entries=256, disk_dir="results/cache")
    result = repro.run_experiment(config, cache=cache)   # cold: computes
    result = repro.run_experiment(config, cache=cache)   # warm: cache hit
    print(cache.stats.hit_rate)

Environment variables: ``REPRO_NO_CACHE=1`` disables the default cache,
``REPRO_CACHE_DIR`` gives it a disk backend, and
``REPRO_CACHE_MAX_ENTRIES`` bounds it.
"""

from repro.cache.fingerprint import (
    RESULT_SCHEMA_VERSION,
    canonical_json,
    code_fingerprint,
    experiment_fingerprint,
    fingerprint_payload,
)
from repro.cache.store import (
    DEFAULT_CACHE,
    CacheStats,
    ExperimentCache,
    get_default_cache,
    resolve_cache,
    set_default_cache,
)

__all__ = [
    "RESULT_SCHEMA_VERSION",
    "canonical_json",
    "code_fingerprint",
    "experiment_fingerprint",
    "fingerprint_payload",
    "CacheStats",
    "ExperimentCache",
    "DEFAULT_CACHE",
    "get_default_cache",
    "set_default_cache",
    "resolve_cache",
]
