"""CUTLASS-style tiling configurations.

A GEMM is decomposed into threadblock tiles (``block_m x block_n`` outputs,
iterating over ``block_k`` slices of the reduction dimension), warp tiles
within a threadblock and MMA fragments within a warp.  The defaults below
follow the shapes CUTLASS picks for large square problems on Ampere-class
GPUs; they control the operand streaming granularity and the DRAM traffic
estimate, not the functional result.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dtypes.registry import get_dtype
from repro.errors import KernelError
from repro.gpu.specs import GPUSpec
from repro.kernels.gemm import GemmProblem

__all__ = ["TileConfig", "default_tile_config"]


@dataclass(frozen=True)
class TileConfig:
    """Threadblock / warp / instruction tiling of a GEMM kernel."""

    block_m: int
    block_n: int
    block_k: int
    warp_m: int = 64
    warp_n: int = 64
    stages: int = 3

    def __post_init__(self) -> None:
        if min(self.block_m, self.block_n, self.block_k) <= 0:
            raise KernelError("tile dimensions must be positive")
        if self.warp_m > self.block_m or self.warp_n > self.block_n:
            raise KernelError("warp tile cannot exceed the threadblock tile")
        if self.block_m % self.warp_m or self.block_n % self.warp_n:
            raise KernelError("threadblock tile must be a multiple of the warp tile")
        if self.stages < 1:
            raise KernelError("pipeline stages must be >= 1")

    @property
    def warps_per_block(self) -> int:
        return (self.block_m // self.warp_m) * (self.block_n // self.warp_n)

    def grid_shape(self, problem: GemmProblem) -> tuple[int, int]:
        """Number of threadblocks along (rows of A, columns of B)."""
        tiles_n = -(-problem.n // self.block_m)
        tiles_m = -(-problem.m // self.block_n)
        return (tiles_n, tiles_m)

    def num_threadblocks(self, problem: GemmProblem) -> int:
        rows, cols = self.grid_shape(problem)
        return rows * cols

    def k_iterations(self, problem: GemmProblem) -> int:
        """Number of mainloop iterations over the reduction dimension."""
        return -(-problem.k // self.block_k)

    def shared_memory_bytes(self, element_bytes: float) -> float:
        """Shared memory needed for the double-buffered A and B tiles."""
        per_stage = (self.block_m + self.block_n) * self.block_k * element_bytes
        return per_stage * self.stages

    def describe(self) -> dict[str, object]:
        return {
            "block_m": self.block_m,
            "block_n": self.block_n,
            "block_k": self.block_k,
            "warp_m": self.warp_m,
            "warp_n": self.warp_n,
            "stages": self.stages,
        }


_DEFAULT_TILES = {
    # dtype name -> (block_m, block_n, block_k)
    "fp64": (64, 64, 16),
    "fp32": (128, 128, 8),
    "fp16": (128, 128, 32),
    "fp16_t": (128, 128, 32),
    "bf16": (128, 128, 32),
    "int8": (128, 128, 64),
    "int32": (128, 128, 16),
}


def default_tile_config(dtype: str, spec: GPUSpec | None = None) -> TileConfig:
    """Return the default CUTLASS-like tile configuration for a datatype.

    The tile is shrunk for devices whose shared memory cannot hold the
    double-buffered operand tiles (relevant for the older RTX 6000).
    """
    name = get_dtype(dtype).name
    try:
        block_m, block_n, block_k = _DEFAULT_TILES[name]
    except KeyError:
        raise KernelError(f"no default tile configuration for dtype {name!r}") from None
    config = TileConfig(block_m=block_m, block_n=block_n, block_k=block_k)
    if spec is not None:
        element_bytes = get_dtype(dtype).bits / 8.0
        available = spec.shared_mem_per_sm_kb * 1024
        while config.shared_memory_bytes(element_bytes) > available and config.block_k > 8:
            config = TileConfig(
                block_m=config.block_m,
                block_n=config.block_n,
                block_k=config.block_k // 2,
                warp_m=config.warp_m,
                warp_n=config.warp_n,
                stages=max(config.stages - 1, 2),
            )
    return config
