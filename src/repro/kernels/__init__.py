"""GEMM kernel model: problem specification, CUTLASS-style tiling, streaming order.

The paper runs standard (dense) CUTLASS GEMM kernels.  We reproduce the
parts of those kernels that matter for input-dependent power: the functional
result (a reference NumPy GEMM) and, more importantly, the *order* in which
operand values are streamed through the datapath, because that order
determines the bit-flip counts the power model consumes.
"""

from repro.kernels.gemm import GemmOperands, GemmProblem, reference_gemm
from repro.kernels.launch import KernelLaunch, plan_launch
from repro.kernels.schedule import OperandStreams, build_streams
from repro.kernels.tiling import TileConfig, default_tile_config

__all__ = [
    "GemmProblem",
    "GemmOperands",
    "reference_gemm",
    "TileConfig",
    "default_tile_config",
    "OperandStreams",
    "build_streams",
    "KernelLaunch",
    "plan_launch",
]
