"""GEMM problem specification and reference implementation.

The GEMM computed throughout the paper is ``D = alpha * A @ B + beta * C``
with ``A`` of shape ``(N, K)``, ``B`` of shape ``(K, M)`` and ``C``/``D`` of
shape ``(N, M)``.  The experiments zero ``C`` and update it in place.  The
paper's default input preparation generates the B matrix with the same
pattern as A and then *transposes* it before use; ``transpose_b`` captures
that choice (Figure 5a is the one experiment that turns it off).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dtypes.base import DTypeSpec
from repro.dtypes.registry import get_dtype
from repro.errors import KernelError

__all__ = ["GemmProblem", "GemmOperands", "reference_gemm"]


@dataclass(frozen=True)
class GemmProblem:
    """Shape, datatype and scalars of one GEMM invocation."""

    n: int
    m: int
    k: int
    dtype: str = "fp16_t"
    alpha: float = 1.0
    beta: float = 0.0
    transpose_b: bool = True

    def __post_init__(self) -> None:
        if min(self.n, self.m, self.k) <= 0:
            raise KernelError(
                f"GEMM dimensions must be positive, got n={self.n} m={self.m} k={self.k}"
            )
        # Normalize the datatype name early so downstream lookups are cheap.
        object.__setattr__(self, "dtype", get_dtype(self.dtype).name)

    @classmethod
    def square(cls, size: int, dtype: str = "fp16_t", **kwargs: object) -> "GemmProblem":
        """Square GEMM of the kind used throughout the paper (2048 default)."""
        return cls(n=size, m=size, k=size, dtype=dtype, **kwargs)  # type: ignore[arg-type]

    @property
    def dtype_spec(self) -> DTypeSpec:
        return get_dtype(self.dtype)

    @property
    def flops(self) -> float:
        """Floating point (or integer) operations per GEMM: 2*N*M*K."""
        return 2.0 * self.n * self.m * self.k

    @property
    def a_shape(self) -> tuple[int, int]:
        return (self.n, self.k)

    @property
    def b_storage_shape(self) -> tuple[int, int]:
        """Shape in which the B operand is generated/stored.

        When ``transpose_b`` is set the kernel consumes ``B_stored.T``, so
        the stored matrix has shape ``(M, K)``; otherwise it is ``(K, M)``.
        """
        return (self.m, self.k) if self.transpose_b else (self.k, self.m)

    @property
    def c_shape(self) -> tuple[int, int]:
        return (self.n, self.m)

    def operand_bytes(self) -> float:
        """Total bytes of A, B, C and D at the problem datatype."""
        element = self.dtype_spec.bits / 8.0
        return element * (self.n * self.k + self.k * self.m + 2 * self.n * self.m)

    def describe(self) -> dict[str, object]:
        return {
            "n": self.n,
            "m": self.m,
            "k": self.k,
            "dtype": self.dtype,
            "alpha": self.alpha,
            "beta": self.beta,
            "transpose_b": self.transpose_b,
        }


@dataclass
class GemmOperands:
    """Concrete input matrices for one GEMM invocation.

    ``a`` has shape ``(N, K)``; ``b_stored`` has the storage shape defined by
    the problem (``(M, K)`` when the kernel transposes it).  ``b_used``
    resolves the transpose and always has shape ``(K, M)``.
    """

    problem: GemmProblem
    a: np.ndarray
    b_stored: np.ndarray
    c: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.a = np.asarray(self.a, dtype=np.float64)
        self.b_stored = np.asarray(self.b_stored, dtype=np.float64)
        if self.a.shape != self.problem.a_shape:
            raise KernelError(
                f"A has shape {self.a.shape}, expected {self.problem.a_shape}"
            )
        if self.b_stored.shape != self.problem.b_storage_shape:
            raise KernelError(
                f"B has shape {self.b_stored.shape}, expected {self.problem.b_storage_shape}"
            )
        if self.c is not None:
            self.c = np.asarray(self.c, dtype=np.float64)
            if self.c.shape != self.problem.c_shape:
                raise KernelError(
                    f"C has shape {self.c.shape}, expected {self.problem.c_shape}"
                )

    @property
    def b_used(self) -> np.ndarray:
        """B as consumed by the kernel, shape ``(K, M)``."""
        return self.b_stored.T if self.problem.transpose_b else self.b_stored

    def effective_c(self) -> np.ndarray:
        return np.zeros(self.problem.c_shape) if self.c is None else self.c


def reference_gemm(operands: GemmOperands) -> np.ndarray:
    """Functional reference for ``D = alpha * A @ B + beta * C``.

    Inputs are quantized to the problem datatype before the multiply and the
    output is returned in float64 (the accumulate precision on NVIDIA tensor
    cores is wider than the operand precision, which float64 subsumes).
    """
    problem = operands.problem
    spec = problem.dtype_spec
    a = spec.quantize(operands.a)
    b = spec.quantize(operands.b_used)
    c = operands.effective_c()
    return problem.alpha * (a @ b) + problem.beta * c
