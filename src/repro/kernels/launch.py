"""Kernel launch planning: grid shape, occupancy, FLOPs and DRAM traffic.

:func:`plan_launch` is a pure function of ``(problem, device, tile,
blocks_per_sm)`` and :class:`KernelLaunch` is a frozen dataclass — planning
the same problem on the same device always produces an identical plan with
no retained mutable state.  That purity is load-bearing: it is what lets
the experiment plan cache (:mod:`repro.experiments.plan`) key a launch plan
by configuration digest and hand one shared instance to any number of
concurrent runners, bit-for-bit equivalent to replanning per point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import KernelError
from repro.gpu.device import Device
from repro.gpu.memory import gemm_dram_traffic_bytes
from repro.kernels.gemm import GemmProblem
from repro.kernels.tiling import TileConfig, default_tile_config

__all__ = ["KernelLaunch", "plan_launch"]


@dataclass(frozen=True)
class KernelLaunch:
    """A GEMM problem bound to a device and a tile configuration."""

    problem: GemmProblem
    device: Device
    tile: TileConfig
    threadblocks: int
    waves: float
    occupancy: float
    flops: float
    dram_traffic_bytes: float

    @property
    def element_bytes(self) -> float:
        return self.problem.dtype_spec.bits / 8.0

    def describe(self) -> dict[str, object]:
        return {
            "problem": self.problem.describe(),
            "device": self.device.name,
            "tile": self.tile.describe(),
            "threadblocks": self.threadblocks,
            "waves": self.waves,
            "occupancy": self.occupancy,
            "flops": self.flops,
            "dram_traffic_bytes": self.dram_traffic_bytes,
        }


def plan_launch(
    problem: GemmProblem,
    device: Device,
    tile: TileConfig | None = None,
    blocks_per_sm: int = 1,
) -> KernelLaunch:
    """Plan the execution of a GEMM on a device.

    ``blocks_per_sm`` is the number of threadblocks resident per SM; large
    CUTLASS tiles typically allow one resident block per SM, which is the
    configuration the paper's kernels run (≈98.5% reported utilization).
    """
    if blocks_per_sm < 1:
        raise KernelError(f"blocks_per_sm must be >= 1, got {blocks_per_sm}")
    device.validate_dtype(problem.dtype)
    if tile is None:
        tile = default_tile_config(problem.dtype, device.spec)
    threadblocks = tile.num_threadblocks(problem)
    slots = device.spec.sm_count * blocks_per_sm
    waves = threadblocks / slots
    # Utilization of the SM array: full waves keep every SM busy; the tail
    # wave only occupies part of the device.
    full_waves = int(waves)
    tail = threadblocks - full_waves * slots
    if full_waves > 0:
        occupancy = (full_waves * slots + tail) / ((full_waves + (1 if tail else 0)) * slots)
    else:
        occupancy = tail / slots if slots else 0.0
    traffic = gemm_dram_traffic_bytes(
        n=problem.n,
        m=problem.m,
        k=problem.k,
        element_bytes=max(int(problem.dtype_spec.bits // 8), 1),
        tile_m=tile.block_n,
        tile_n=tile.block_m,
        l2_capacity_bytes=device.memory.l2_capacity_bytes,
    )
    return KernelLaunch(
        problem=problem,
        device=device,
        tile=tile,
        threadblocks=threadblocks,
        waves=waves,
        occupancy=min(occupancy, 1.0),
        flops=problem.flops,
        dram_traffic_bytes=traffic,
    )
