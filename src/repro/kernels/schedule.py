"""Operand streaming order of the tiled GEMM mainloop.

For an output element ``(i, j)`` the mainloop walks the reduction dimension
``k``: the multiplier sees the operand sequence ``A[i, 0], A[i, 1], ...``
on one input and ``B[0, j], B[1, j], ...`` on the other, while the
accumulator sees the running partial sums.  The DRAM/L2 interface, by
contrast, sees operands in *storage* order (row-major of the stored
matrices).  Both orders are needed by the switching-activity engine and are
captured here.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Sequence

import numpy as np

from repro.dtypes.base import DTypeSpec
from repro.errors import KernelError
from repro.kernels.gemm import GemmOperands
from repro.util.rng import sample_without_replacement

__all__ = [
    "OperandStreams",
    "StackedOperandStreams",
    "build_streams",
    "build_streams_stacked",
]


@dataclass
class OperandStreams:
    """Bit-level views of the operands in streaming and storage order."""

    dtype: DTypeSpec
    #: A as consumed, shape (N, K); the k-stream runs along axis 1
    a_used: np.ndarray
    #: B as consumed, shape (K, M); the k-stream runs along axis 0
    b_used: np.ndarray
    #: B as stored in memory (row-major), shape (M, K) or (K, M)
    b_stored: np.ndarray

    @cached_property
    def a_words(self) -> np.ndarray:
        """Bit patterns of A in consumption order (N, K)."""
        return self.dtype.encode(self.a_used)

    @cached_property
    def b_words(self) -> np.ndarray:
        """Bit patterns of B in consumption order (K, M)."""
        return self.dtype.encode(self.b_used)

    @cached_property
    def b_stored_words(self) -> np.ndarray:
        """Bit patterns of B in storage order."""
        return self.dtype.encode(self.b_stored)

    @property
    def n(self) -> int:
        return self.a_used.shape[0]

    @property
    def k(self) -> int:
        return self.a_used.shape[1]

    @property
    def m(self) -> int:
        return self.b_used.shape[1]

    def sample_output_positions(
        self, rng: np.random.Generator, count: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sample distinct output coordinates ``(i, j)`` for per-output analysis.

        Sampling is over the full ``N x M`` output space; when ``count``
        exceeds the space the whole space is returned (shuffled).
        """
        if count <= 0:
            raise KernelError(f"sample count must be positive, got {count}")
        total = self.n * self.m
        flat = sample_without_replacement(rng, total, min(count, total))
        rows = flat // self.m
        cols = flat % self.m
        return rows.astype(np.int64), cols.astype(np.int64)


def build_streams(operands: GemmOperands) -> OperandStreams:
    """Build :class:`OperandStreams` for a concrete GEMM invocation."""
    spec = operands.problem.dtype_spec
    a_used = spec.quantize(operands.a)
    # Quantization is elementwise, so the consumed operand is exactly the
    # quantized stored matrix (transposed when the kernel transposes B);
    # quantizing once saves a full encode/decode pass over B.
    b_stored = spec.quantize(operands.b_stored)
    b_used = b_stored.T if operands.problem.transpose_b else b_stored
    return OperandStreams(dtype=spec, a_used=a_used, b_used=b_used, b_stored=b_stored)


@dataclass
class StackedOperandStreams:
    """Operand streams of a whole batch of same-shape GEMM invocations.

    The batch (seed) axis is axis 0 of every array: ``a_used`` has shape
    ``(S, N, K)``, ``b_used`` has shape ``(S, K, M)`` and ``b_stored`` keeps
    the storage layout per slice.  Quantization and bit-pattern encoding run
    once over the full stack, which is the expensive part of building
    per-invocation streams; the per-slice values (and therefore any activity
    statistics derived from them) are bit-for-bit identical to building
    :class:`OperandStreams` one invocation at a time.
    """

    dtype: DTypeSpec
    #: A operands as consumed, shape (S, N, K)
    a_used: np.ndarray
    #: B operands as consumed, shape (S, K, M)
    b_used: np.ndarray
    #: B operands as stored in memory, shape (S, M, K) or (S, K, M)
    b_stored: np.ndarray

    @cached_property
    def a_words(self) -> np.ndarray:
        """Bit patterns of A in consumption order, shape (S, N, K)."""
        return self.dtype.encode(self.a_used)

    @cached_property
    def b_words(self) -> np.ndarray:
        """Bit patterns of B in consumption order, shape (S, K, M)."""
        return self.dtype.encode(self.b_used)

    @cached_property
    def b_stored_words(self) -> np.ndarray:
        """Bit patterns of B in storage order, shape (S, *, *)."""
        return self.dtype.encode(self.b_stored)

    @property
    def batch(self) -> int:
        return self.a_used.shape[0]

    @property
    def n(self) -> int:
        return self.a_used.shape[1]

    @property
    def k(self) -> int:
        return self.a_used.shape[2]

    @property
    def m(self) -> int:
        return self.b_used.shape[2]

    def slice(self, index: int) -> OperandStreams:
        """Return one invocation of the batch as plain :class:`OperandStreams`.

        The already-encoded word stacks are shared with the returned view, so
        slicing never re-encodes.
        """
        streams = OperandStreams(
            dtype=self.dtype,
            a_used=self.a_used[index],
            b_used=self.b_used[index],
            b_stored=self.b_stored[index],
        )
        for name in ("a_words", "b_words", "b_stored_words"):
            if name in self.__dict__:  # only forward what is already encoded
                streams.__dict__[name] = self.__dict__[name][index]
        return streams


def build_streams_stacked(
    operands: "Sequence[GemmOperands] | Sequence[OperandStreams]",
) -> StackedOperandStreams:
    """Stack a batch of same-shape GEMM invocations into one stream object.

    All invocations must share shape, datatype and B-transposition; they are
    quantized in a single vectorized pass.
    """
    items = list(operands)
    if not items:
        raise KernelError("build_streams_stacked needs at least one invocation")
    if not isinstance(items[0], (GemmOperands, OperandStreams)):
        raise KernelError(
            f"build_streams_stacked expects GemmOperands or OperandStreams, "
            f"got {type(items[0]).__name__}"
        )
    if isinstance(items[0], OperandStreams):
        first = items[0]
        for other in items[1:]:
            if not isinstance(other, OperandStreams):
                raise KernelError("cannot mix OperandStreams with other operand types")
            if other.dtype.name != first.dtype.name or (
                (other.n, other.k, other.m) != (first.n, first.k, first.m)
            ):
                raise KernelError("stacked streams must share shape and dtype")
        return StackedOperandStreams(
            dtype=first.dtype,
            a_used=np.stack([s.a_used for s in items]),
            b_used=np.stack([s.b_used for s in items]),
            b_stored=np.stack([s.b_stored for s in items]),
        )
    first_problem = items[0].problem
    signature = (
        first_problem.n,
        first_problem.m,
        first_problem.k,
        first_problem.dtype,
        first_problem.transpose_b,
    )
    for op in items[1:]:
        if not isinstance(op, GemmOperands):
            raise KernelError("cannot mix GemmOperands with other operand types")
        problem = op.problem
        if (problem.n, problem.m, problem.k, problem.dtype, problem.transpose_b) != signature:
            raise KernelError(
                "stacked operands must share shape, dtype and transposition; got "
                f"{signature} vs {(problem.n, problem.m, problem.k, problem.dtype, problem.transpose_b)}"
            )
    spec = first_problem.dtype_spec
    a_used = spec.quantize(np.stack([op.a for op in items]))
    b_stored = spec.quantize(np.stack([op.b_stored for op in items]))
    if first_problem.transpose_b:
        b_used = b_stored.transpose(0, 2, 1)
    else:
        b_used = b_stored
    return StackedOperandStreams(dtype=spec, a_used=a_used, b_used=b_used, b_stored=b_stored)
