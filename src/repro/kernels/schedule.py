"""Operand streaming order of the tiled GEMM mainloop.

For an output element ``(i, j)`` the mainloop walks the reduction dimension
``k``: the multiplier sees the operand sequence ``A[i, 0], A[i, 1], ...``
on one input and ``B[0, j], B[1, j], ...`` on the other, while the
accumulator sees the running partial sums.  The DRAM/L2 interface, by
contrast, sees operands in *storage* order (row-major of the stored
matrices).  Both orders are needed by the switching-activity engine and are
captured here.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.dtypes.base import DTypeSpec
from repro.errors import KernelError
from repro.kernels.gemm import GemmOperands
from repro.util.rng import sample_without_replacement

__all__ = ["OperandStreams", "build_streams"]


@dataclass
class OperandStreams:
    """Bit-level views of the operands in streaming and storage order."""

    dtype: DTypeSpec
    #: A as consumed, shape (N, K); the k-stream runs along axis 1
    a_used: np.ndarray
    #: B as consumed, shape (K, M); the k-stream runs along axis 0
    b_used: np.ndarray
    #: B as stored in memory (row-major), shape (M, K) or (K, M)
    b_stored: np.ndarray

    @cached_property
    def a_words(self) -> np.ndarray:
        """Bit patterns of A in consumption order (N, K)."""
        return self.dtype.encode(self.a_used)

    @cached_property
    def b_words(self) -> np.ndarray:
        """Bit patterns of B in consumption order (K, M)."""
        return self.dtype.encode(self.b_used)

    @cached_property
    def b_stored_words(self) -> np.ndarray:
        """Bit patterns of B in storage order."""
        return self.dtype.encode(self.b_stored)

    @property
    def n(self) -> int:
        return self.a_used.shape[0]

    @property
    def k(self) -> int:
        return self.a_used.shape[1]

    @property
    def m(self) -> int:
        return self.b_used.shape[1]

    def sample_output_positions(
        self, rng: np.random.Generator, count: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sample distinct output coordinates ``(i, j)`` for per-output analysis.

        Sampling is over the full ``N x M`` output space; when ``count``
        exceeds the space the whole space is returned (shuffled).
        """
        if count <= 0:
            raise KernelError(f"sample count must be positive, got {count}")
        total = self.n * self.m
        flat = sample_without_replacement(rng, total, min(count, total))
        rows = flat // self.m
        cols = flat % self.m
        return rows.astype(np.int64), cols.astype(np.int64)


def build_streams(operands: GemmOperands) -> OperandStreams:
    """Build :class:`OperandStreams` for a concrete GEMM invocation."""
    spec = operands.problem.dtype_spec
    a_used = spec.quantize(operands.a)
    b_used = spec.quantize(operands.b_used)
    b_stored = spec.quantize(operands.b_stored)
    return OperandStreams(dtype=spec, a_used=a_used, b_used=b_used, b_stored=b_stored)
