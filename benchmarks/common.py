"""Shared infrastructure for the benchmark harness.

Every benchmark reproduces one of the paper's figures (or an ablation /
optimizer study on top of them), prints the regenerated rows/series, checks
that the trend *shape* matches what the paper reports, and saves the raw
results under ``benchmarks/results/``.

The fidelity profile is controlled with the ``REPRO_BENCH_PROFILE``
environment variable:

* ``quick`` (default) — 512x512 matrices, 2 seeds: every trend is clearly
  visible and the full harness finishes in a few minutes.
* ``standard`` — 1024x1024 matrices, 3 seeds.
* ``paper`` — the paper's 2048x2048 matrices and 10 seeds (slow).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.experiments.figures import FigureSettings
from repro.experiments.results import FigureResult

__all__ = ["bench_settings", "emit_figure", "RESULTS_DIR", "PROFILE"]

RESULTS_DIR = Path(__file__).resolve().parent / "results"

PROFILE = os.environ.get("REPRO_BENCH_PROFILE", "quick").strip().lower()


def bench_settings(**overrides) -> FigureSettings:
    """Figure settings for the selected benchmark profile."""
    if PROFILE == "paper":
        settings = FigureSettings.paper()
    elif PROFILE == "standard":
        settings = FigureSettings.standard()
    else:
        settings = FigureSettings.quick(matrix_size=512, seeds=2, sweep_points=5)
    if overrides:
        import dataclasses

        settings = dataclasses.replace(settings, **overrides)
    return settings


def emit_figure(figure: FigureResult, extra_notes: list[str] | None = None) -> Path:
    """Print a figure's tables/charts and persist them under results/."""
    if extra_notes:
        figure.notes.extend(extra_notes)
    text = figure.render(charts=True)
    print()
    print(text)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{figure.name}.txt").write_text(text + "\n")
    (RESULTS_DIR / f"{figure.name}.json").write_text(json.dumps(figure.as_dict(), indent=2))
    return RESULTS_DIR / f"{figure.name}.json"
