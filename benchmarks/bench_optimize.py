"""Optimization-study benchmarks (pytest-benchmark): cold vs warm replay.

The optimization runner's performance contract is the same cache collapse
the sweep and fleet layers enforce: a deterministic study proposes the
identical point sequence on every run, so the *second* run of a study
against warm caches must execute **zero** engine runs — the warm path is
pure engine arithmetic plus cache lookups.  These benchmarks time both
phases and assert the collapse, so a regression that re-couples study
cost to the evaluation count (instead of the distinct-configuration
count) is caught as a timing cliff, not discovered in production.

CI's bench-smoke job runs this module with few rounds and records the
timings for the artifact-diff step (``scripts/bench_compare.py``).
"""

from __future__ import annotations

from repro.cache.store import ActivityCache, ExperimentCache
from repro.experiments.plan import PlanCache
from repro.optimize.engines import build_runner

#: Quiet, small estimation settings: the benchmark times the optimization
#: machinery, not measurement fidelity.
_BASE_CONFIG = {
    "pattern_family": "sparsity",
    "pattern_params": {"sparsity": 0.0},
    "matrix_size": 128,
    "seeds": 1,
    "iterations": 200,
    "sampling": {"output_samples": 64},
    "telemetry": {"noise_std_watts": 0.0, "drift_watts": 0.0},
}

STUDY = {
    "format": "repro.optimize.study/v1",
    "engine": "nelder_mead",
    "engine_params": {"seed": 0, "max_iterations": 12},
    "space": [{"name": "sparsity", "low": 0.0, "high": 0.95}],
    "base_config": _BASE_CONFIG,
    "objective": {"metric": "mean_power_watts", "mode": "min"},
}


def _fresh_caches():
    return {
        "cache": ExperimentCache(),
        "activity_cache": ActivityCache(),
        "plan_cache": PlanCache(),
    }


def bench_optimize_cold(benchmark):
    """Cold study: every distinct proposal goes through the engine."""

    def run():
        return build_runner(STUDY, **_fresh_caches()).run()

    result = benchmark(run)
    assert result.converged
    assert result.engine_runs > 0, "a cold study must execute engine runs"
    assert result.best_point is not None


def bench_optimize_warm(benchmark):
    """Warm replay: zero engine runs, pure engine + cache arithmetic."""
    caches = _fresh_caches()
    cold = build_runner(STUDY, **caches).run()  # prime the tiers

    def run():
        return build_runner(STUDY, **caches).run()

    result = benchmark(run)
    assert result.engine_runs == 0, "a warm replay must not touch the engine"
    assert result.summary() == cold.summary(), "replay must be deterministic"
