"""Figure 4: effects of bit similarity on GPU power.

Paper expectations (T4-T7): power rises as bits become less similar (random
flips, randomized LSBs, randomized MSBs), and FP16-T is the most power
hungry datatype overall.
"""

from __future__ import annotations

from common import bench_settings, emit_figure
from repro.analysis.takeaways import (
    check_t4_similar_bits_use_less,
    check_t5_lsb_randomization_increases,
    check_t6_msb_randomization_increases,
    check_t7_fp16t_most_power_hungry,
)
from repro.experiments.figures import run_figure
from repro.experiments.figures.fig4_bit_similarity import datatype_power_ranking


def bench_fig4_bit_similarity(benchmark):
    settings = bench_settings()
    figure = benchmark.pedantic(run_figure, args=("fig4", settings), rounds=1, iterations=1)

    checks = []
    for dtype in settings.dtypes:
        checks.append(check_t4_similar_bits_use_less(figure.panel(f"a_bit_flip/{dtype}")))
        checks.append(check_t5_lsb_randomization_increases(figure.panel(f"b_lsb/{dtype}")))
        checks.append(check_t6_msb_randomization_increases(figure.panel(f"c_msb/{dtype}")))
    checks.append(check_t7_fp16t_most_power_hungry(datatype_power_ranking(figure)))
    emit_figure(figure, [f"{c.takeaway}: {'PASS' if c.passed else 'FAIL'} — {c.detail}" for c in checks])

    failed = [c for c in checks if not c.passed]
    assert not failed, f"bit-similarity takeaways failed: {[c.takeaway for c in failed]}"

    # The paper reports swings of up to ~38% between the most similar and the
    # most random inputs; verify a substantial relative swing is visible.
    fp16t_swing = figure.panel("a_bit_flip/fp16_t").power_range_fraction()
    assert fp16t_swing > 0.04
