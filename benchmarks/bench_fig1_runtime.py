"""Figure 1: average iteration runtime by datatype.

Paper expectation: runtimes are very consistent across experiments for a
given datatype; the tensor-core FP16-T setup is the fastest, FP32 the
slowest of the four setups.
"""

from __future__ import annotations

from common import bench_settings, emit_figure
from repro.experiments.figures import run_figure


def bench_fig1_runtime_by_dtype(benchmark):
    figure = benchmark.pedantic(
        run_figure, args=("fig1", bench_settings()), rounds=1, iterations=1
    )
    emit_figure(figure)

    sweep = figure.panel("runtime_by_dtype")
    runtime = dict(zip(sweep.values, sweep.runtimes()))
    # Shape checks: tensor cores are the fastest path, FP32 the slowest.
    assert runtime["fp16_t"] < runtime["fp16"] < runtime["fp32"]
    assert runtime["int8"] < runtime["fp32"]
