"""Figure 6: effects of input value sparsity on GPU power.

Paper expectations (T12-T15): sparsity reduces power monotonically; sparsity
applied after sorting *increases* power first (peak around 30-40% for FP
datatypes); zeroing LSBs or MSBs reduces power.
"""

from __future__ import annotations

from common import bench_settings, emit_figure
from repro.analysis.takeaways import (
    check_t12_sparsity_decreases,
    check_t13_sorted_sparsity_peak,
    check_t14_zero_lsb_reduces,
    check_t15_zero_msb_reduces,
)
from repro.experiments.figures import run_figure


def bench_fig6_sparsity(benchmark):
    settings = bench_settings(sweep_points=max(bench_settings().sweep_points, 6))
    figure = benchmark.pedantic(run_figure, args=("fig6", settings), rounds=1, iterations=1)

    checks = []
    for dtype in settings.dtypes:
        checks.append(check_t12_sparsity_decreases(figure.panel(f"a_sparsity/{dtype}")))
        if dtype in ("fp16", "fp16_t", "bf16"):
            # The paper observes the sorted-sparsity peak for FP datatypes.
            # Our uniform bit-weighted toggle model reproduces it for the
            # 16-bit formats; for FP32 the random low-mantissa bits dilute
            # the effect (documented deviation in EXPERIMENTS.md).
            checks.append(check_t13_sorted_sparsity_peak(figure.panel(f"b_sorted_sparsity/{dtype}")))
        checks.append(check_t14_zero_lsb_reduces(figure.panel(f"c_zero_lsb/{dtype}")))
        checks.append(check_t15_zero_msb_reduces(figure.panel(f"d_zero_msb/{dtype}")))
    emit_figure(figure, [f"{c.takeaway}: {'PASS' if c.passed else 'FAIL'} — {c.detail}" for c in checks])

    failed = [c for c in checks if not c.passed]
    assert not failed, f"sparsity takeaways failed: {[c.takeaway for c in failed]}"

    # Crossover check: the sorted-sparsity peak sits at interior sparsity for FP16-T.
    sweep = figure.panel("b_sorted_sparsity/fp16_t")
    peak_value = sweep.values[max(range(len(sweep.powers())), key=sweep.powers().__getitem__)]
    assert 0.05 <= float(peak_value) <= 0.6
