"""Figure 3: effects of input value distribution on GPU power.

Paper expectations (T1-T3): the std sweep is nearly flat; larger means
reduce power for floating point datatypes; small value sets reduce power.
"""

from __future__ import annotations

from common import bench_settings, emit_figure
from repro.analysis.takeaways import (
    check_t1_std_insensitive,
    check_t2_mean_reduces_power,
    check_t3_small_set_reduces_power,
)
from repro.experiments.figures import run_figure


def bench_fig3_value_distribution(benchmark):
    settings = bench_settings()
    figure = benchmark.pedantic(run_figure, args=("fig3", settings), rounds=1, iterations=1)

    checks = []
    for dtype in settings.dtypes:
        checks.append(check_t1_std_insensitive(figure.panel(f"a_std/{dtype}")))
        if dtype != "int8":
            checks.append(check_t2_mean_reduces_power(figure.panel(f"b_mean/{dtype}")))
        checks.append(check_t3_small_set_reduces_power(figure.panel(f"c_value_set/{dtype}")))
    emit_figure(figure, [f"{c.takeaway}: {'PASS' if c.passed else 'FAIL'} — {c.detail}" for c in checks])

    failed = [c for c in checks if not c.passed]
    assert not failed, f"distribution takeaways failed: {[c.takeaway for c in failed]}"
