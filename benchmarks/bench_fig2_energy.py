"""Figure 2: average iteration energy by datatype (Gaussian random inputs).

Paper expectation: iteration energy mirrors iteration runtime because power
is similar across datatypes for random inputs — FP16-T is the most energy
efficient per GEMM despite drawing the most power.
"""

from __future__ import annotations

from common import bench_settings, emit_figure
from repro.experiments.figures import run_figure


def bench_fig2_energy_by_dtype(benchmark):
    figure = benchmark.pedantic(
        run_figure, args=("fig2", bench_settings()), rounds=1, iterations=1
    )
    emit_figure(figure)

    sweep = figure.panel("energy_by_dtype")
    energy = dict(zip(sweep.values, sweep.energies()))
    runtime = dict(zip(sweep.values, sweep.runtimes()))
    # Energy ranking follows the runtime ranking (identical patterns, Fig 1 vs 2).
    energy_order = sorted(energy, key=energy.get)
    runtime_order = sorted(runtime, key=runtime.get)
    assert energy_order == runtime_order
    assert energy["fp16_t"] < energy["fp32"]
