"""Fleet-simulation benchmarks (pytest-benchmark): cold vs warm replay.

The fleet simulator's performance contract is cache collapse: a
100k-kernel trace over a 256-GPU fleet costs one engine run per distinct
(workload, GPU model) pair cold, and *zero* engine runs warm — the warm
path is pure scheduling and attribution arithmetic.  These benchmarks
time both phases so a regression that re-couples simulation cost to the
scheduled-kernel count (instead of the workload-catalogue size) is
caught as a timing cliff, not discovered in production.

``REPRO_FLEET_BENCH_GPUS`` scales the fleet (default 256); CI's
bench-smoke job runs with few rounds and records timings for the
artifact-diff step.
"""

from __future__ import annotations

import os

from repro.activity.sampler import SamplingConfig
from repro.cache.store import ActivityCache, ExperimentCache
from repro.experiments.plan import PlanCache
from repro.experiments.sweep import RunStats
from repro.fleet import FleetSpec, generate_trace
from repro.fleet.simulator import simulate
from repro.telemetry.sampler import TelemetryConfig

GPUS = int(os.environ.get("REPRO_FLEET_BENCH_GPUS", "256"))
#: Quiet, small estimation settings: the benchmark times the simulator,
#: not measurement fidelity.
QUIET = {
    "telemetry": TelemetryConfig(noise_std_watts=0.0, drift_watts=0.0),
    "sampling": SamplingConfig(output_samples=64),
    "iterations": 200,
}


def _trace_100k():
    """~100k+ scheduled kernels over a small mixed-workload catalogue."""
    trace = generate_trace(
        "mixed", ticks=32, seed=7, distinct_workloads=8, kernels_per_job=1_000
    )
    assert trace.total_kernels >= 100_000
    return trace


def _fresh_caches():
    return {
        "cache": ExperimentCache(),
        "activity_cache": ActivityCache(),
        "plan_cache": PlanCache(),
    }


def bench_fleet_simulate_cold(benchmark):
    """Cold simulation: every distinct workload goes through the engine."""
    trace = _trace_100k()
    fleet = FleetSpec.from_counts({"a100": GPUS})

    def run():
        return simulate(
            trace, fleet, estimation_overrides=QUIET, **_fresh_caches()
        )

    result = benchmark(run)
    assert result.scheduled_kernels >= 100_000
    assert len(fleet) == GPUS


def bench_fleet_simulate_warm(benchmark):
    """Warm simulation: zero engine runs, pure scheduling + attribution."""
    trace = _trace_100k()
    fleet = FleetSpec.from_counts({"a100": GPUS})
    caches = _fresh_caches()
    simulate(trace, fleet, estimation_overrides=QUIET, **caches)  # prime

    def run():
        stats = RunStats()
        return simulate(
            trace, fleet, stats=stats, estimation_overrides=QUIET, **caches
        ), stats

    result, stats = benchmark(run)
    assert stats.executed == 0, "warm simulation must not touch the engine"
    assert result.scheduled_kernels >= 100_000


def bench_fleet_schedule_only(benchmark):
    """Scheduler + attribution in isolation on a pre-built estimate set."""
    from repro.fleet import DiscreteTimeScheduler, attribute_energy
    from repro.fleet.simulator import build_estimates

    trace = _trace_100k()
    fleet = FleetSpec.from_counts({"a100": GPUS})
    caches = _fresh_caches()
    estimates = build_estimates(
        trace, fleet, estimation_overrides=QUIET, **caches
    )

    def run():
        schedule = DiscreteTimeScheduler(fleet).schedule(trace, estimates)
        return attribute_energy(schedule, fleet, trace.tick_s)

    attribution = benchmark(run)
    assert attribution.total_energy_j() > 0.0
