"""Figure 7: generalization of the trends across GPU generations.

Paper expectations: the V100, A100 and H100 show consistent trends (mean,
randomized MSBs, sorting and sparsity all move power the same way); the
Quadro RTX 6000 shows less pronounced swings (older design, GDDR6, lower
TDP) and is run at 512x512 because it throttles at 2048x2048.
"""

from __future__ import annotations

from common import bench_settings, emit_figure
from repro.analysis.takeaways import (
    check_t2_mean_reduces_power,
    check_t6_msb_randomization_increases,
    check_t8_sorting_decreases,
    check_t12_sparsity_decreases,
)
from repro.experiments.figures import run_figure
from repro.experiments.figures.fig7_generalization import power_swing_by_gpu
from repro.gpu.specs import PAPER_GPUS


def bench_fig7_generalization(benchmark):
    settings = bench_settings()
    figure = benchmark.pedantic(run_figure, args=("fig7", settings), rounds=1, iterations=1)

    checks = []
    for gpu in PAPER_GPUS:
        checks.append(check_t2_mean_reduces_power(figure.panel(f"{gpu}/mean")))
        checks.append(check_t6_msb_randomization_increases(figure.panel(f"{gpu}/msb")))
        checks.append(check_t8_sorting_decreases(figure.panel(f"{gpu}/sorted_rows")))
        checks.append(check_t12_sparsity_decreases(figure.panel(f"{gpu}/sparsity")))
    swings = power_swing_by_gpu(figure)
    notes = [f"{c.takeaway}@panel: {'PASS' if c.passed else 'FAIL'} — {c.detail}" for c in checks]
    notes.append("max relative power swing per GPU: " + ", ".join(f"{g}={s:.1%}" for g, s in swings.items()))
    emit_figure(figure, notes)

    failed = [c for c in checks if not c.passed]
    assert not failed, f"cross-GPU trends failed: {len(failed)} checks"

    # The RTX 6000's swings are the least pronounced of the four GPUs
    # (compare against the strongest of the HBM GPUs to stay robust to the
    # per-GPU occupancy differences of the benchmark profile's matrix size).
    assert swings["rtx6000"] <= max(swings[g] for g in ("v100", "a100", "h100")) + 1e-9
